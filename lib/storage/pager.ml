module Crc32 = Trex_util.Crc32
module Metrics = Trex_obs.Metrics

(* Process-wide totals across every pager; the per-pager mutable stats
   below stay the per-file view that [stats] reports. *)
let m_physical_reads = Metrics.counter "pager.physical_reads"
let m_physical_writes = Metrics.counter "pager.physical_writes"
let m_cache_hits = Metrics.counter "pager.cache_hits"
let m_cache_misses = Metrics.counter "pager.cache_misses"
let m_checksum_failures = Metrics.counter "pager.checksum_failures"
let m_fsyncs = Metrics.counter "pager.fsyncs"
let m_recoveries = Metrics.counter "pager.recoveries"
let m_transient_faults = Metrics.counter "pager.transient_faults"

type stats = {
  physical_reads : int;
  physical_writes : int;
  cache_hits : int;
  cache_misses : int;
  checksum_failures : int;
  recoveries : int;
}

type corruption_info = { path : string; page : int; detail : string }

exception Corruption of corruption_info

exception Injected_crash of string

exception Io_transient of { path : string; op : string; detail : string }

let () =
  Printexc.register_printer (function
    | Corruption { path; page; detail } ->
        Some
          (if page < 0 then Printf.sprintf "Corruption in %s: %s" path detail
           else Printf.sprintf "Corruption in %s, page %d: %s" path page detail)
    | Injected_crash what -> Some ("Injected_crash: " ^ what)
    | Io_transient { path; op; detail } ->
        Some (Printf.sprintf "Io_transient in %s (%s): %s" path op detail)
    | _ -> None)

type transient_spec = { seed : int; fail_one_in : int; fail_streak : int }

type fault =
  | Crash_after_writes of int
  | Torn_write of { after_writes : int; keep_bytes : int }
  | Flip_bit of { after_writes : int; byte_index : int; bit : int }
  | Drop_fsync
  | Transient_read of transient_spec
  | Transient_write of transient_spec
  | Transient_fsync of transient_spec

type recovery = { recovered : bool; epoch_used : int; note : string }

type backend =
  | Memory of bytes array ref
  | File of { fd : Unix.file_descr; cache_pages : int; path : string }

type cached = { buf : bytes; mutable dirty : bool; mutable stamp : int }

type transient_op = Read_op | Write_op | Fsync_op

(* Runtime state of one armed Transient_* fault: the PRNG decides when
   an episode starts; [pending] counts the remaining consecutive
   failures of the current episode, after which the operation succeeds
   again — so retry with enough attempts always recovers. *)
type transient_state = {
  ts_op : transient_op;
  ts_prng : Trex_util.Prng.t;
  ts_fail_one_in : int;
  ts_fail_streak : int;
  mutable ts_pending : int;
  (* guarantees the op right after an episode succeeds, so the
     documented "succeeds on attempt fail_streak + 1" holds even when
     the PRNG would immediately start a new episode *)
  mutable ts_grace : bool;
}

type t = {
  backend : backend;
  page_size : int;
  mutable page_count : int;
  mutable root : int;
  mutable epoch : int;
  scratch : bytes; (* page_size + trailer; reused by physical reads/writes *)
  cache : (int, cached) Hashtbl.t;
  mutable tick : int;
  mutable faults : fault list;
  mutable transients : transient_state list;
  mutable io_seq : int; (* every raw write, pages and header slots alike *)
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable checksum_failures : int;
  mutable recoveries : int;
}

(* On-disk format "TRExPG02".

   Two 64-byte header slots occupy the first 128 bytes; a commit with
   epoch E writes slot (E mod 2), so a torn header write can only damage
   one slot and the other still holds the previous committed epoch.
   Slot layout:
     magic (8) | epoch (8 BE) | page_size (8 BE) | page_count (8 BE)
     | root (8 BE) | zeros (20) | crc32 of bytes [0,60) (4 BE)

   Each page occupies page_size + 4 bytes: the data followed by a CRC32
   trailer written in the same syscall, so torn page writes and bit rot
   are detected on the next physical read. *)
let magic = "TRExPG02"
let slot_size = 64
let header_size = 2 * slot_size
let page_trailer = 4
let max_page_size = 1 lsl 20

let default_page_size = 8192

let path t =
  match t.backend with Memory _ -> "<memory>" | File { path; _ } -> path

let corrupt t ~page detail = raise (Corruption { path = path t; page; detail })

let mk backend ~page_size ~page_count ~root ~epoch ~recoveries =
  {
    backend;
    page_size;
    page_count;
    root;
    epoch;
    scratch = Bytes.make (page_size + page_trailer) '\x00';
    cache = Hashtbl.create 64;
    tick = 0;
    faults = [];
    transients = [];
    io_seq = 0;
    physical_reads = 0;
    physical_writes = 0;
    cache_hits = 0;
    cache_misses = 0;
    checksum_failures = 0;
    recoveries;
  }

let create_memory ?(page_size = default_page_size) () =
  mk (Memory (ref [||])) ~page_size ~page_count:0 ~root:(-1) ~epoch:0
    ~recoveries:0

(* ---- fault injection ---- *)

let transient_state_of_fault = function
  | Transient_read { seed; fail_one_in; fail_streak } ->
      Some (Read_op, seed, fail_one_in, fail_streak)
  | Transient_write { seed; fail_one_in; fail_streak } ->
      Some (Write_op, seed, fail_one_in, fail_streak)
  | Transient_fsync { seed; fail_one_in; fail_streak } ->
      Some (Fsync_op, seed, fail_one_in, fail_streak)
  | Crash_after_writes _ | Torn_write _ | Flip_bit _ | Drop_fsync -> None

let create_faulty ~faults t =
  t.faults <- faults @ t.faults;
  let armed =
    List.filter_map
      (fun f ->
        match transient_state_of_fault f with
        | None -> None
        | Some (ts_op, seed, fail_one_in, fail_streak) ->
            if fail_one_in <= 0 || fail_streak <= 0 then
              invalid_arg "Pager.create_faulty: transient spec must be positive";
            Some
              {
                ts_op;
                ts_prng = Trex_util.Prng.create seed;
                ts_fail_one_in = fail_one_in;
                ts_fail_streak = fail_streak;
                ts_pending = 0;
                ts_grace = false;
              })
      faults
  in
  t.transients <- armed @ t.transients;
  t

let clear_faults t =
  t.faults <- [];
  t.transients <- []

let io_seq t = t.io_seq

let op_name = function
  | Read_op -> "read"
  | Write_op -> "write"
  | Fsync_op -> "fsync"

(* Called at the head of each physical operation, before any bytes
   move, so a failed attempt leaves both the file and the raw-write
   sequence untouched and a retry replays it exactly. *)
let maybe_transient t op =
  List.iter
    (fun ts ->
      if ts.ts_op = op then begin
        let fail detail =
          Metrics.incr m_transient_faults;
          raise (Io_transient { path = path t; op = op_name op; detail })
        in
        if ts.ts_pending > 0 then begin
          ts.ts_pending <- ts.ts_pending - 1;
          if ts.ts_pending = 0 then ts.ts_grace <- true;
          fail
            (Printf.sprintf "injected transient (%d more in episode)"
               ts.ts_pending)
        end
        else if ts.ts_grace then ts.ts_grace <- false
        else if Trex_util.Prng.int ts.ts_prng ts.ts_fail_one_in = 0 then begin
          ts.ts_pending <- ts.ts_fail_streak - 1;
          if ts.ts_pending = 0 then ts.ts_grace <- true;
          fail
            (Printf.sprintf "injected transient (episode of %d)" ts.ts_fail_streak)
        end
      end)
    t.transients

(* Physical I/O below runs under this policy; transient failures are
   retried with deterministic backoff, anything else propagates. *)
let retry_policy_ref = ref Trex_resilience.Retry.default_policy
let set_retry_policy p = retry_policy_ref := p
let retry_policy () = !retry_policy_ref
let io_retryable = function Io_transient _ -> true | _ -> false

let with_io_retries name f =
  Trex_resilience.Retry.with_retries ~policy:!retry_policy_ref ~name
    ~retryable:io_retryable f

let fsync_dropped t =
  List.exists (function Drop_fsync -> true | _ -> false) t.faults

let do_fsync t fd =
  if not (fsync_dropped t) then
    with_io_retries "pager.fsync" (fun () ->
        maybe_transient t Fsync_op;
        Metrics.incr m_fsyncs;
        Unix.fsync fd)

(* All bytes that reach the file go through here, so the fault plan sees
   a single write sequence covering pages and header slots. *)
let raw_write t fd ~off buf len =
  t.io_seq <- t.io_seq + 1;
  let seq = t.io_seq in
  let eff_len = ref len and crash_msg = ref None in
  List.iter
    (fun fault ->
      match fault with
      | Crash_after_writes n ->
          if seq > n then
            raise
              (Injected_crash
                 (Printf.sprintf "crash before write #%d (limit %d)" seq n))
      | Torn_write { after_writes; keep_bytes } ->
          if seq = after_writes + 1 then begin
            eff_len := max 0 (min len keep_bytes);
            crash_msg :=
              Some
                (Printf.sprintf "torn write #%d (%d of %d bytes)" seq !eff_len
                   len)
          end
      | Flip_bit { after_writes; byte_index; bit } ->
          if seq = after_writes + 1 && len > 0 then begin
            let i = ((byte_index mod len) + len) mod len in
            Bytes.set buf i
              (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl (bit land 7))))
          end
      | Drop_fsync -> ()
      | Transient_read _ | Transient_write _ | Transient_fsync _ ->
          (* handled in [maybe_transient], before any bytes move *)
          ())
    t.faults;
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go o =
    if o < !eff_len then begin
      let n = Unix.write fd buf o (!eff_len - o) in
      if n <= 0 then failwith "Pager: short page write";
      go (o + n)
    end
  in
  go 0;
  match !crash_msg with Some msg -> raise (Injected_crash msg) | None -> ()

(* ---- header slots ---- *)

let encode_slot t =
  let b = Bytes.make slot_size '\x00' in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int64_be b 8 (Int64.of_int t.epoch);
  Bytes.set_int64_be b 16 (Int64.of_int t.page_size);
  Bytes.set_int64_be b 24 (Int64.of_int t.page_count);
  Bytes.set_int64_be b 32 (Int64.of_int t.root);
  Bytes.set_int32_be b (slot_size - 4) (Crc32.bytes b ~pos:0 ~len:(slot_size - 4));
  b

let write_slot t fd slot =
  raw_write t fd ~off:(slot * slot_size) (encode_slot t) slot_size

(* Advance the epoch and persist the header into the alternating slot.
   The previous epoch's slot is untouched, so the update is atomic at
   slot granularity: a crash mid-write invalidates only the new slot. *)
let commit_header ?(sync = false) t =
  match t.backend with
  | Memory _ -> ()
  | File { fd; _ } ->
      t.epoch <- t.epoch + 1;
      write_slot t fd (t.epoch land 1);
      if sync then do_fsync t fd

type decoded_slot = {
  d_epoch : int;
  d_page_size : int;
  d_page_count : int;
  d_root : int;
}

(* Returns [Error reason] rather than raising: open-time recovery wants
   to inspect both slots and pick the best one. *)
let decode_slot ~file_len b off =
  if Bytes.sub_string b off 8 <> magic then Error "bad magic"
  else begin
    let stored = Bytes.get_int32_be b (off + slot_size - 4) in
    let actual = Crc32.bytes b ~pos:off ~len:(slot_size - 4) in
    if stored <> actual then Error "header checksum mismatch"
    else begin
      let d_epoch = Int64.to_int (Bytes.get_int64_be b (off + 8)) in
      let d_page_size = Int64.to_int (Bytes.get_int64_be b (off + 16)) in
      let d_page_count = Int64.to_int (Bytes.get_int64_be b (off + 24)) in
      let d_root = Int64.to_int (Bytes.get_int64_be b (off + 32)) in
      if d_page_size <= 0 || d_page_size > max_page_size then
        Error (Printf.sprintf "absurd page_size %d" d_page_size)
      else if d_epoch < 0 then Error (Printf.sprintf "absurd epoch %d" d_epoch)
      else if d_page_count < 0 then
        Error (Printf.sprintf "absurd page_count %d" d_page_count)
      else if d_root < -1 || d_root >= d_page_count then
        Error (Printf.sprintf "root %d outside [0,%d)" d_root d_page_count)
      else if
        header_size + (d_page_count * (d_page_size + page_trailer)) > file_len
      then
        Error
          (Printf.sprintf "page_count %d overruns file of %d bytes"
             d_page_count file_len)
      else Ok { d_epoch; d_page_size; d_page_count; d_root }
    end
  end

let create_file ?(page_size = default_page_size) ?(cache_pages = 4096) path =
  if page_size <= 0 || page_size > max_page_size then
    invalid_arg (Printf.sprintf "Pager.create_file: page_size %d" page_size);
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    mk (File { fd; cache_pages; path }) ~page_size ~page_count:0 ~root:(-1)
      ~epoch:0 ~recoveries:0
  in
  (* Both slots start valid at epoch 0, so a later invalid slot always
     means damage, never a fresh file. *)
  write_slot t fd 0;
  write_slot t fd 1;
  t

let open_internal ~allow_fallback ?(cache_pages = 4096) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let fail page detail =
    Unix.close fd;
    raise (Corruption { path; page; detail })
  in
  let file_len = (Unix.fstat fd).Unix.st_size in
  if file_len < header_size then
    fail (-1) (Printf.sprintf "truncated file: %d bytes, header needs %d"
                 file_len header_size);
  let hdr = Bytes.create header_size in
  let rec fill off =
    if off < header_size then begin
      let n = Unix.read fd hdr off (header_size - off) in
      if n = 0 then fail (-1) "short header read" else fill (off + n)
    end
  in
  fill 0;
  let s0 = decode_slot ~file_len hdr 0 in
  let s1 = decode_slot ~file_len hdr slot_size in
  let finish ~slot ~fell_back ~note =
    if fell_back then Metrics.incr m_recoveries;
    let t =
      mk
        (File { fd; cache_pages; path })
        ~page_size:slot.d_page_size ~page_count:slot.d_page_count
        ~root:slot.d_root ~epoch:slot.d_epoch
        ~recoveries:(if fell_back then 1 else 0)
    in
    (t, { recovered = fell_back; epoch_used = slot.d_epoch; note })
  in
  match (s0, s1) with
  | Ok a, Ok b ->
      let newest = if a.d_epoch >= b.d_epoch then a else b in
      finish ~slot:newest ~fell_back:false
        ~note:(Printf.sprintf "clean (epoch %d)" newest.d_epoch)
  | Ok good, Error bad | Error bad, Ok good ->
      (* One slot is damaged; the survivor is the last commit that fully
         reached the disk. Strict opens refuse so the caller knows the
         newest commit may have been lost. *)
      if allow_fallback then
        finish ~slot:good ~fell_back:true
          ~note:
            (Printf.sprintf
               "fell back to header epoch %d (other slot: %s)" good.d_epoch bad)
      else
        fail (-1)
          (Printf.sprintf
             "header slot damaged (%s); reopen with recovery to fall back to \
              epoch %d"
             bad good.d_epoch)
  | Error e0, Error e1 ->
      fail (-1)
        (Printf.sprintf "both header slots invalid (slot0: %s; slot1: %s)" e0 e1)

let open_file ?cache_pages path =
  fst (open_internal ~allow_fallback:false ?cache_pages path)

let open_with_recovery ?cache_pages path =
  open_internal ~allow_fallback:true ?cache_pages path

let page_size t = t.page_size
let page_count t = t.page_count

(* Root updates are buffered in memory and only reach the disk at the
   next {!flush} — after the pages they point into — so a crash can
   never publish a root whose subtree was not written. *)
let set_root t r = t.root <- r
let get_root t = t.root

let file_offset t id = header_size + (id * (t.page_size + page_trailer))

let physical_read t fd id buf =
  with_io_retries "pager.read" @@ fun () ->
  maybe_transient t Read_op;
  let slot = t.page_size + page_trailer in
  ignore (Unix.lseek fd (file_offset t id) Unix.SEEK_SET);
  let rec fill off =
    if off >= slot then off
    else begin
      let n = Unix.read fd t.scratch off (slot - off) in
      if n = 0 then off else fill (off + n)
    end
  in
  let got = fill 0 in
  t.physical_reads <- t.physical_reads + 1;
  Metrics.incr m_physical_reads;
  if got < slot then
    corrupt t ~page:id
      (Printf.sprintf "truncated page: %d of %d bytes on disk" got slot);
  let stored = Bytes.get_int32_be t.scratch t.page_size in
  let actual = Crc32.bytes t.scratch ~pos:0 ~len:t.page_size in
  if stored <> actual then begin
    t.checksum_failures <- t.checksum_failures + 1;
    Metrics.incr m_checksum_failures;
    corrupt t ~page:id
      (Printf.sprintf "page checksum mismatch (stored %08lx, computed %08lx)"
         stored actual)
  end;
  Bytes.blit t.scratch 0 buf 0 t.page_size

let physical_write t fd id buf =
  with_io_retries "pager.write" @@ fun () ->
  maybe_transient t Write_op;
  Bytes.blit buf 0 t.scratch 0 t.page_size;
  Bytes.set_int32_be t.scratch t.page_size
    (Crc32.bytes t.scratch ~pos:0 ~len:t.page_size);
  raw_write t fd ~off:(file_offset t id) t.scratch (t.page_size + page_trailer);
  t.physical_writes <- t.physical_writes + 1;
  Metrics.incr m_physical_writes

let evict_one t fd =
  (* Evict the least recently used cached page. Linear scan is fine:
     eviction is rare relative to hits and the cache is bounded. *)
  let victim = ref (-1) and best = ref max_int in
  Hashtbl.iter
    (fun id c ->
      if c.stamp < !best then begin
        best := c.stamp;
        victim := id
      end)
    t.cache;
  if !victim >= 0 then begin
    let c = Hashtbl.find t.cache !victim in
    if c.dirty then physical_write t fd !victim c.buf;
    Hashtbl.remove t.cache !victim
  end

let touch t c =
  t.tick <- t.tick + 1;
  c.stamp <- t.tick

let allocate t =
  let id = t.page_count in
  t.page_count <- t.page_count + 1;
  (match t.backend with
  | Memory pages ->
      let arr = !pages in
      let cap = Array.length arr in
      if id >= cap then begin
        let ncap = max 64 (cap * 2) in
        let narr = Array.make ncap Bytes.empty in
        Array.blit arr 0 narr 0 cap;
        pages := narr
      end;
      !pages.(id) <- Bytes.make t.page_size '\x00'
  | File { fd; cache_pages; _ } ->
      if Hashtbl.length t.cache >= cache_pages then evict_one t fd;
      let c = { buf = Bytes.make t.page_size '\x00'; dirty = true; stamp = 0 } in
      touch t c;
      Hashtbl.replace t.cache id c);
  id

let check_id t id =
  if id < 0 || id >= t.page_count then
    invalid_arg (Printf.sprintf "Pager: page id %d out of range [0,%d)" id t.page_count)

let read t id =
  check_id t id;
  match t.backend with
  | Memory pages ->
      t.cache_hits <- t.cache_hits + 1;
      Metrics.incr m_cache_hits;
      !pages.(id)
  | File { fd; cache_pages; _ } -> (
      match Hashtbl.find_opt t.cache id with
      | Some c ->
          t.cache_hits <- t.cache_hits + 1;
          Metrics.incr m_cache_hits;
          touch t c;
          c.buf
      | None ->
          t.cache_misses <- t.cache_misses + 1;
          Metrics.incr m_cache_misses;
          if Hashtbl.length t.cache >= cache_pages then evict_one t fd;
          let buf = Bytes.create t.page_size in
          physical_read t fd id buf;
          let c = { buf; dirty = false; stamp = 0 } in
          touch t c;
          Hashtbl.replace t.cache id c;
          buf)

let read_copy t id = Bytes.copy (read t id)

let write t id buf =
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Pager.write: buffer length mismatch";
  match t.backend with
  | Memory pages ->
      if not (!pages.(id) == buf) then Bytes.blit buf 0 !pages.(id) 0 t.page_size
  | File { fd; cache_pages; _ } -> (
      match Hashtbl.find_opt t.cache id with
      | Some c ->
          if not (c.buf == buf) then Bytes.blit buf 0 c.buf 0 t.page_size;
          c.dirty <- true;
          touch t c
      | None ->
          if Hashtbl.length t.cache >= cache_pages then evict_one t fd;
          let c = { buf = Bytes.copy buf; dirty = true; stamp = 0 } in
          touch t c;
          Hashtbl.replace t.cache id c)

let flush ?(sync = false) t =
  match t.backend with
  | Memory _ -> ()
  | File { fd; _ } ->
      Hashtbl.iter
        (fun id c ->
          if c.dirty then begin
            physical_write t fd id c.buf;
            c.dirty <- false
          end)
        t.cache;
      if sync then do_fsync t fd;
      commit_header ~sync t

let verify_checksums t =
  match t.backend with
  | Memory _ -> []
  | File { fd; _ } ->
      let buf = Bytes.create t.page_size in
      let bad = ref [] in
      for id = t.page_count - 1 downto 0 do
        match physical_read t fd id buf with
        | () -> ()
        | exception Corruption { detail; _ } -> bad := (id, detail) :: !bad
      done;
      !bad

let close t =
  flush ~sync:true t;
  match t.backend with
  | Memory pages -> pages := [||]
  | File { fd; _ } -> Unix.close fd

let abort t =
  Hashtbl.reset t.cache;
  match t.backend with
  | Memory pages -> pages := [||]
  | File { fd; _ } -> ( try Unix.close fd with Unix.Unix_error _ -> ())

let stats t =
  {
    physical_reads = t.physical_reads;
    physical_writes = t.physical_writes;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    checksum_failures = t.checksum_failures;
    recoveries = t.recoveries;
  }
