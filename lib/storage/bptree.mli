(** B+tree over a {!Pager}.

    Keys and values are strings; keys compare bytewise, so composite
    keys must be produced with the order-preserving {!Trex_util.Codec}
    encoders. Leaves are chained for cheap ordered scans — exactly the
    sequential-access-by-primary-key contract the paper relies on for
    its BerkeleyDB tables.

    A single entry (key + value) must fit in roughly a quarter page;
    bigger payloads must be chunked by the caller (the paper stores long
    posting lists "divided... in several tuples", and the index layers
    here do the same). *)

type t

val create : Pager.t -> t
(** Start a fresh tree; its root id is persisted in the pager header. *)

val attach : Pager.t -> t
(** Attach to the tree whose root the pager header records.
    @raise Pager.Corruption if the pager has no committed root (a crash
    destroyed the creating commit). *)

val pager : t -> Pager.t

val refresh : t -> unit
(** Re-read the root from the pager header. Needed after {!bulk_load}
    rebuilt the tree inside a pager this handle already points at. *)

val insert : t -> key:string -> value:string -> unit
(** Insert or replace. @raise Invalid_argument if the entry is too large
    for a node. *)

val find : t -> string -> string option

val remove : t -> string -> bool
(** [true] iff the key was present. Leaves may become under-full; the
    tree never shrinks (fine for build-once index workloads). *)

val length : t -> int
(** Number of entries (O(n) on first call after {!attach}). *)

val bulk_load : Pager.t -> (string * string) Seq.t -> t
(** Build a tree from a strictly key-ascending sequence, packing leaves
    to a high fill factor. Much faster than repeated {!insert}. Ends
    with a durable commit ([Pager.flush ~sync:true]): pages are synced
    before the header that publishes the new root.
    @raise Invalid_argument if keys are not strictly ascending. *)

type verify_report = {
  pages : int;  (** distinct pages reachable from the root *)
  entries : int;
  depth : int;
  problems : string list;  (** empty iff the tree is structurally sound *)
}

val verify : t -> verify_report
(** Full structural check: node decodability, strict key order inside
    nodes, separator bounds along every root-to-leaf path, child links
    in range, no page reached twice, and the leaf sibling chain linking
    the leaves in exactly DFS order. Read-only; decode failures are
    reported as problems rather than raised. *)

(** Ordered iteration. A cursor is positioned before an entry; [next]
    yields it and advances. Cursors are snapshots of leaf contents at
    positioning time; interleaving writes invalidates them logically
    (no crash, possibly stale data) — the retrieval algorithms never
    write during reads. *)
module Cursor : sig
  type cursor

  val seek_first : t -> cursor
  val seek : t -> string -> cursor
  (** Positioned at the first entry with key [>=] the argument. *)

  val next : cursor -> (string * string) option
end

val iter : t -> (string -> string -> unit) -> unit

val iter_prefix : t -> prefix:string -> (string -> string -> unit) -> unit
(** Visit all entries whose key starts with [prefix], in key order. *)

val fold_range :
  t -> low:string -> high:string option -> init:'a -> f:('a -> string -> string -> 'a) -> 'a
(** Fold entries with [low <= key] and [key < high] (no upper bound when
    [high] is [None]). *)

val entry_budget : Pager.t -> int
(** Maximum encoded entry size accepted by {!insert} for this pager. *)
