module Metrics = Trex_obs.Metrics
module Journal = Trex_obs.Journal
module Breaker = Trex_resilience.Breaker

let m_table_opens = Metrics.counter "env.table_opens"
let m_compactions = Metrics.counter "env.compactions"
let m_quarantines = Metrics.counter "env.quarantines"

type backend = Mem | Disk of { dir : string; cache_pages : int }

type t = {
  backend : backend;
  page_size : int;
  tables : (string, Bptree.t) Hashtbl.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  mutable journal : Journal.t option;
}

let tmp_suffix = ".compact-tmp"
let journal_file = "query_journal.qj"

(* A crash between building a compaction temp file and the atomic rename
   leaves "<name>.compact-tmp.tbl" behind; the original table is intact,
   so the leftover is garbage to sweep at open. *)
let cleanup_stale_tmp dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f (tmp_suffix ^ ".tbl") then
        Sys.remove (Filename.concat dir f))
    (Sys.readdir dir)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let in_memory ?(page_size = 8192) () =
  {
    backend = Mem;
    page_size;
    tables = Hashtbl.create 8;
    breakers = Hashtbl.create 8;
    journal = None;
  }

let on_disk ?(page_size = 8192) ?(cache_pages = 4096) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Env.on_disk: %s is not a directory" dir)
  else cleanup_stale_tmp dir;
  let env =
    {
      backend = Disk { dir; cache_pages };
      page_size;
      tables = Hashtbl.create 8;
      breakers = Hashtbl.create 8;
      journal = None;
    }
  in
  (* An existing query journal is swept at open, like stale compaction
     temp files: a torn or corrupt tail from a crash is repaired here
     rather than on the first journaled query. *)
  if Sys.file_exists (Filename.concat dir journal_file) then
    env.journal <- Some (Journal.open_file (Filename.concat dir journal_file));
  env

let journal_path t =
  match t.backend with
  | Mem -> None
  | Disk { dir; _ } -> Some (Filename.concat dir journal_file)

let journal t =
  match t.journal with
  | Some j -> j
  | None ->
      let j =
        match journal_path t with
        | None -> Journal.in_memory ()
        | Some path -> Journal.open_file path
      in
      t.journal <- Some j;
      j

let has_journal t =
  t.journal <> None
  || match journal_path t with None -> false | Some p -> Sys.file_exists p

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name

let path_of dir name = Filename.concat dir (name ^ ".tbl")

let table t name =
  if not (valid_name name) then invalid_arg ("Env.table: bad name " ^ name);
  match Hashtbl.find_opt t.tables name with
  | Some tree -> tree
  | None ->
      let tree =
        match t.backend with
        | Mem -> Bptree.create (Pager.create_memory ~page_size:t.page_size ())
        | Disk { dir; cache_pages } ->
            let path = path_of dir name in
            if Sys.file_exists path then
              Bptree.attach (Pager.open_file ~cache_pages path)
            else
              Bptree.create
                (Pager.create_file ~page_size:t.page_size ~cache_pages path)
      in
      Hashtbl.add t.tables name tree;
      Metrics.incr m_table_opens;
      tree

let has_table t name =
  Hashtbl.mem t.tables name
  ||
  match t.backend with
  | Mem -> false
  | Disk { dir; _ } -> Sys.file_exists (path_of dir name)

let drop_table t name =
  (match Hashtbl.find_opt t.tables name with
  | Some tree ->
      Pager.close (Bptree.pager tree);
      Hashtbl.remove t.tables name
  | None -> ());
  match t.backend with
  | Mem -> ()
  | Disk { dir; _ } ->
      let path = path_of dir name in
      if Sys.file_exists path then Sys.remove path

(* ---- circuit breakers ---- *)

let breaker t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
      let b = Breaker.create name in
      Hashtbl.add t.breakers name b;
      b

let breaker_states t =
  Hashtbl.fold (fun name b acc -> (name, Breaker.state b) :: acc) t.breakers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Breakers are created lazily on the first failure, so a table with no
   breaker has never misbehaved and is trivially available. *)
let table_available t name =
  match Hashtbl.find_opt t.breakers name with
  | None -> true
  | Some b -> Breaker.allow b

let trip_table t name ~reason = Breaker.trip (breaker t name) ~reason

let note_table_success t name =
  match Hashtbl.find_opt t.breakers name with
  | None -> ()
  | Some b -> Breaker.record_success b

(* Drop a suspect table without trusting its contents: the open handle
   is aborted (closing would flush — pointless or harmful on a corrupt
   pager) and the backing file deleted. [table] recreates it empty; the
   self-management layer rebuilds redundant lists from the workload. *)
let quarantine_table t name =
  Metrics.incr m_quarantines;
  (match Hashtbl.find_opt t.tables name with
  | Some tree ->
      Pager.abort (Bptree.pager tree);
      Hashtbl.remove t.tables name
  | None -> ());
  match t.backend with
  | Mem -> ()
  | Disk { dir; _ } ->
      let path = path_of dir name in
      if Sys.file_exists path then Sys.remove path

let table_names t =
  let open_names = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] in
  let disk_names =
    match t.backend with
    | Mem -> []
    | Disk { dir; _ } ->
        Sys.readdir dir |> Array.to_list
        |> List.filter_map (fun f ->
               if Filename.check_suffix f ".tbl" then
                 let name = Filename.chop_suffix f ".tbl" in
                 if Filename.check_suffix name tmp_suffix then None
                 else Some name
               else None)
  in
  List.sort_uniq String.compare (open_names @ disk_names)

let table_bytes t name =
  match Hashtbl.find_opt t.tables name with
  | Some tree ->
      let p = Bptree.pager tree in
      Pager.page_count p * Pager.page_size p
  | None -> (
      match t.backend with
      | Mem -> 0
      | Disk { dir; _ } ->
          let path = path_of dir name in
          if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0)

let total_bytes t =
  List.fold_left (fun acc n -> acc + table_bytes t n) 0 (table_names t)

let compact_table ?faults t name =
  if has_table t name then begin
    Metrics.incr m_compactions;
    let tree = table t name in
    let entries = ref [] in
    Bptree.iter tree (fun k v -> entries := (k, v) :: !entries);
    let entries = List.rev !entries in
    match t.backend with
    | Mem ->
        let fresh =
          Bptree.bulk_load (Pager.create_memory ~page_size:t.page_size ()) (List.to_seq entries)
        in
        Pager.close (Bptree.pager tree);
        Hashtbl.replace t.tables name fresh
    | Disk { dir; cache_pages } ->
        let tmp = path_of dir (name ^ tmp_suffix) in
        let pager = Pager.create_file ~page_size:t.page_size ~cache_pages tmp in
        (* [faults] targets the temp-file pager so the crash matrix can
           cover the compaction window; a crash there must leave the
           original table untouched and only the swept temp file behind. *)
        (match faults with
        | Some fs -> ignore (Pager.create_faulty ~faults:fs pager)
        | None -> ());
        (try
           ignore (Bptree.bulk_load pager (List.to_seq entries));
           (* close syncs, so the temp file is fully durable before the
              rename publishes it; the directory fsync makes the rename
              itself survive a crash. *)
           Pager.close pager
         with e ->
           Pager.abort pager;
           raise e);
        Pager.close (Bptree.pager tree);
        Hashtbl.remove t.tables name;
        Sys.rename tmp (path_of dir name);
        fsync_dir dir;
        ignore (table t name)
  end

(* ---- verification & recovery ---- *)

type table_report = {
  table : string;
  ok : bool;
  pages : int;
  entries : int;
  problems : string list;
  notes : string list;
  recovered : bool;
}

let verify_tree name tree ~recovered ~notes =
  let checksum_problems =
    List.map
      (fun (page, detail) -> Printf.sprintf "page %d: %s" page detail)
      (Pager.verify_checksums (Bptree.pager tree))
  in
  let r = Bptree.verify tree in
  let problems = checksum_problems @ r.Bptree.problems in
  {
    table = name;
    ok = problems = [];
    pages = r.Bptree.pages;
    entries = r.Bptree.entries;
    problems;
    notes;
    recovered;
  }

let broken_report name ~recovered detail =
  { table = name; ok = false; pages = 0; entries = 0;
    problems = [ detail ]; notes = []; recovered }

let verify_table t name =
  match
    let tree = table t name in
    verify_tree name tree ~recovered:false ~notes:[]
  with
  | report -> report
  | exception Pager.Corruption { detail; page; _ } ->
      broken_report name ~recovered:false
        (if page >= 0 then Printf.sprintf "page %d: %s" page detail else detail)
  | exception Trex_resilience.Retry.Exhausted { name = op; attempts; _ } ->
      broken_report name ~recovered:false
        (Printf.sprintf "%s failed after %d attempts" op attempts)

let verify t = List.map (verify_table t) (table_names t)

let open_with_recovery ?(page_size = 8192) ?(cache_pages = 4096) dir =
  let env = on_disk ~page_size ~cache_pages dir in
  let reports =
    List.map
      (fun name ->
        let path = path_of dir name in
        match Pager.open_with_recovery ~cache_pages path with
        | exception Pager.Corruption { detail; _ } ->
            broken_report name ~recovered:false detail
        | pager, (recovery : Pager.recovery) -> (
            let notes =
              if recovery.Pager.recovered then [ recovery.Pager.note ] else []
            in
            match Bptree.attach pager with
            | tree ->
                Hashtbl.replace env.tables name tree;
                verify_tree name tree ~recovered:recovery.Pager.recovered ~notes
            | exception Pager.Corruption _ ->
                (* No committed root: the creating commit never reached
                   the disk, so the table is logically empty. Reinit it
                   rather than leaving an unopenable file behind. *)
                Pager.abort pager;
                let fresh =
                  Bptree.create
                    (Pager.create_file ~page_size ~cache_pages path)
                in
                Pager.flush ~sync:true (Bptree.pager fresh);
                Hashtbl.replace env.tables name fresh;
                { table = name; ok = true; pages = 1; entries = 0;
                  problems = [];
                  notes = [ "reinitialized: no committed root" ];
                  recovered = true }))
      (table_names env)
  in
  (env, reports)

let io_stats t =
  Hashtbl.fold
    (fun name tree acc -> (name, Pager.stats (Bptree.pager tree)) :: acc)
    t.tables []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flush ?(sync = false) t =
  Hashtbl.iter (fun _ tree -> Pager.flush ~sync (Bptree.pager tree)) t.tables

let close t =
  Hashtbl.iter (fun _ tree -> Pager.close (Bptree.pager tree)) t.tables;
  Hashtbl.reset t.tables;
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.close j;
      t.journal <- None
