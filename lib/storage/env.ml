module Metrics = Trex_obs.Metrics
module Journal = Trex_obs.Journal
module Breaker = Trex_resilience.Breaker

let m_table_opens = Metrics.counter "env.table_opens"
let m_compactions = Metrics.counter "env.compactions"
let m_quarantines = Metrics.counter "env.quarantines"
let m_dir_fsyncs = Metrics.counter "env.dir_fsyncs"
let m_rolled_forward = Metrics.counter "manifest.rolled_forward"
let m_rolled_back = Metrics.counter "manifest.rolled_back"
let m_unresolved = Metrics.counter "manifest.unresolved"

type backend = Mem | Disk of { dir : string; cache_pages : int }

type resolution = {
  res_op_id : int;
  res_op : string;
  res_tables : string list;
  res_outcome : string;
  res_ok : bool;
}

type t = {
  backend : backend;
  page_size : int;
  tables : (string, Bptree.t) Hashtbl.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  mutable journal : Journal.t option;
  mutable manifest : Manifest.t option;
  (* Tables named by a manifest operation that is still pending after
     replay (an unresolvable op): queries must not rely on them. *)
  blocked : (string, unit) Hashtbl.t;
  mutable resolutions : resolution list;
}

let tmp_suffix = ".compact-tmp"
let journal_file = "query_journal.qj"
let manifest_file = "MANIFEST.mf"

(* A crash between building a compaction temp file and the atomic rename
   leaves "<name>.compact-tmp.tbl" behind; the original table is intact,
   so the leftover is garbage to sweep at open. *)
let cleanup_stale_tmp dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f (tmp_suffix ^ ".tbl") then
        Sys.remove (Filename.concat dir f))
    (Sys.readdir dir)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try
         Unix.fsync fd;
         Metrics.incr m_dir_fsyncs
       with Unix.Unix_error _ -> ());
      Unix.close fd

let in_memory ?(page_size = 8192) () =
  {
    backend = Mem;
    page_size;
    tables = Hashtbl.create 8;
    breakers = Hashtbl.create 8;
    journal = None;
    manifest = None;
    blocked = Hashtbl.create 4;
    resolutions = [];
  }

(* Defined below (it needs [table]/[quarantine_table]); stored in a ref
   so [on_disk] can replay the manifest it just opened. *)
let replay_ref : (t -> unit) ref = ref (fun _ -> ())

let on_disk ?(page_size = 8192) ?(cache_pages = 4096) ?(replay = true) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Env.on_disk: %s is not a directory" dir)
  else cleanup_stale_tmp dir;
  let env =
    {
      backend = Disk { dir; cache_pages };
      page_size;
      tables = Hashtbl.create 8;
      breakers = Hashtbl.create 8;
      journal = None;
      manifest = None;
      blocked = Hashtbl.create 4;
      resolutions = [];
    }
  in
  (* An existing query journal is swept at open, like stale compaction
     temp files: a torn or corrupt tail from a crash is repaired here
     rather than on the first journaled query. *)
  if Sys.file_exists (Filename.concat dir journal_file) then
    env.journal <- Some (Journal.open_file (Filename.concat dir journal_file));
  (* Same for the operation manifest — and, unless the caller defers to
     run table recovery first ({!open_with_recovery}), pending
     operations are resolved right here so a reopened environment never
     serves the middle of a multi-table operation. *)
  if Sys.file_exists (Filename.concat dir manifest_file) then begin
    env.manifest <- Some (Manifest.open_file (Filename.concat dir manifest_file));
    if replay then !replay_ref env
  end;
  env

let journal_path t =
  match t.backend with
  | Mem -> None
  | Disk { dir; _ } -> Some (Filename.concat dir journal_file)

let journal t =
  match t.journal with
  | Some j -> j
  | None ->
      let j =
        match journal_path t with
        | None -> Journal.in_memory ()
        | Some path -> Journal.open_file path
      in
      t.journal <- Some j;
      j

let has_journal t =
  t.journal <> None
  || match journal_path t with None -> false | Some p -> Sys.file_exists p

let manifest_path t =
  match t.backend with
  | Mem -> None
  | Disk { dir; _ } -> Some (Filename.concat dir manifest_file)

let manifest t =
  match t.manifest with
  | Some m -> m
  | None ->
      let m =
        match manifest_path t with
        | None -> Manifest.in_memory ()
        | Some path -> Manifest.open_file path
      in
      t.manifest <- Some m;
      m

let has_manifest t =
  t.manifest <> None
  || match manifest_path t with None -> false | Some p -> Sys.file_exists p

let generation t = match t.manifest with Some m -> Manifest.generation m | None -> 0
let table_blocked t name = Hashtbl.mem t.blocked name
let manifest_resolutions t = List.rev t.resolutions

let manifest_unresolved t =
  List.length (List.filter (fun r -> not r.res_ok) t.resolutions)

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name

let path_of dir name = Filename.concat dir (name ^ ".tbl")

let table t name =
  if not (valid_name name) then invalid_arg ("Env.table: bad name " ^ name);
  match Hashtbl.find_opt t.tables name with
  | Some tree -> tree
  | None ->
      let tree =
        match t.backend with
        | Mem -> Bptree.create (Pager.create_memory ~page_size:t.page_size ())
        | Disk { dir; cache_pages } ->
            let path = path_of dir name in
            if Sys.file_exists path then
              Bptree.attach (Pager.open_file ~cache_pages path)
            else
              Bptree.create
                (Pager.create_file ~page_size:t.page_size ~cache_pages path)
      in
      Hashtbl.add t.tables name tree;
      Metrics.incr m_table_opens;
      tree

let has_table t name =
  Hashtbl.mem t.tables name
  ||
  match t.backend with
  | Mem -> false
  | Disk { dir; _ } -> Sys.file_exists (path_of dir name)

let drop_table t name =
  (match Hashtbl.find_opt t.tables name with
  | Some tree ->
      Pager.close (Bptree.pager tree);
      Hashtbl.remove t.tables name
  | None -> ());
  match t.backend with
  | Mem -> ()
  | Disk { dir; _ } ->
      let path = path_of dir name in
      if Sys.file_exists path then begin
        Sys.remove path;
        (* Make the unlink durable: without the directory fsync a crash
           can resurrect the deleted (possibly corrupt) table file. *)
        fsync_dir dir
      end

(* ---- circuit breakers ---- *)

let breaker t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
      let b = Breaker.create name in
      Hashtbl.add t.breakers name b;
      b

let breaker_states t =
  Hashtbl.fold (fun name b acc -> (name, Breaker.state b) :: acc) t.breakers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Breakers are created lazily on the first failure, so a table with no
   breaker has never misbehaved and is trivially available. A table
   named by an unresolved manifest operation is never available: its
   contents belong to an uncommitted generation. *)
let table_available t name =
  (not (Hashtbl.mem t.blocked name))
  &&
  match Hashtbl.find_opt t.breakers name with
  | None -> true
  | Some b -> Breaker.ready b

(* Consuming admission: an open breaker past its cooldown (or an idle
   half-open one) hands this caller the single probe slot, which the
   caller must resolve via [note_table_success] or [fail_table] /
   [trip_table]. Planning uses [table_available] and never consumes. *)
let admit_table t name =
  (not (Hashtbl.mem t.blocked name))
  &&
  match Hashtbl.find_opt t.breakers name with
  | None -> true
  | Some b -> Breaker.allow b

let table_probing t name =
  match Hashtbl.find_opt t.breakers name with
  | None -> false
  | Some b -> Breaker.probing b

let trip_table t name ~reason = Breaker.trip (breaker t name) ~reason

let fail_table t name ~reason =
  match Hashtbl.find_opt t.breakers name with
  | None -> ()
  | Some b -> Breaker.record_failure b ~reason

let note_table_success t name =
  match Hashtbl.find_opt t.breakers name with
  | None -> ()
  | Some b -> Breaker.record_success b

(* Drop a suspect table without trusting its contents: the open handle
   is aborted (closing would flush — pointless or harmful on a corrupt
   pager) and the backing file deleted. [table] recreates it empty; the
   self-management layer rebuilds redundant lists from the workload. *)
let quarantine_table t name =
  Metrics.incr m_quarantines;
  (match Hashtbl.find_opt t.tables name with
  | Some tree ->
      Pager.abort (Bptree.pager tree);
      Hashtbl.remove t.tables name
  | None -> ());
  match t.backend with
  | Mem -> ()
  | Disk { dir; _ } ->
      let path = path_of dir name in
      if Sys.file_exists path then begin
        Sys.remove path;
        fsync_dir dir
      end

let table_names t =
  let open_names = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] in
  let disk_names =
    match t.backend with
    | Mem -> []
    | Disk { dir; _ } ->
        Sys.readdir dir |> Array.to_list
        |> List.filter_map (fun f ->
               if Filename.check_suffix f ".tbl" then
                 let name = Filename.chop_suffix f ".tbl" in
                 if Filename.check_suffix name tmp_suffix then None
                 else Some name
               else None)
  in
  List.sort_uniq String.compare (open_names @ disk_names)

let table_bytes t name =
  match Hashtbl.find_opt t.tables name with
  | Some tree ->
      let p = Bptree.pager tree in
      Pager.page_count p * Pager.page_size p
  | None -> (
      match t.backend with
      | Mem -> 0
      | Disk { dir; _ } ->
          let path = path_of dir name in
          if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0)

let total_bytes t =
  List.fold_left (fun acc n -> acc + table_bytes t n) 0 (table_names t)

let compact_table ?faults t name =
  if has_table t name then begin
    Metrics.incr m_compactions;
    let tree = table t name in
    let entries = ref [] in
    Bptree.iter tree (fun k v -> entries := (k, v) :: !entries);
    let entries = List.rev !entries in
    match t.backend with
    | Mem ->
        let fresh =
          Bptree.bulk_load (Pager.create_memory ~page_size:t.page_size ()) (List.to_seq entries)
        in
        Pager.close (Bptree.pager tree);
        Hashtbl.replace t.tables name fresh
    | Disk { dir; cache_pages } ->
        let tmp = path_of dir (name ^ tmp_suffix) in
        let pager = Pager.create_file ~page_size:t.page_size ~cache_pages tmp in
        (* [faults] targets the temp-file pager so the crash matrix can
           cover the compaction window; a crash there must leave the
           original table untouched and only the swept temp file behind. *)
        (match faults with
        | Some fs -> ignore (Pager.create_faulty ~faults:fs pager)
        | None -> ());
        (try
           ignore (Bptree.bulk_load pager (List.to_seq entries));
           (* close syncs, so the temp file is fully durable before the
              rename publishes it; the directory fsync makes the rename
              itself survive a crash. *)
           Pager.close pager
         with e ->
           Pager.abort pager;
           raise e);
        Pager.close (Bptree.pager tree);
        Hashtbl.remove t.tables name;
        Sys.rename tmp (path_of dir name);
        fsync_dir dir;
        ignore (table t name)
  end

(* ---- multi-table operations (manifest protocol) ---- *)

(* Test hook: called at every sequence point of the commit protocol
   with a point name ("op:<name>:<point>"); a crash-matrix test raises
   {!Pager.Injected_crash} from it to stop the protocol cold at that
   exact boundary. *)
let op_hook : (string -> unit) option ref = ref None
let set_op_hook h = op_hook := h

let hook point = match !op_hook with Some f -> f point | None -> ()

type op = {
  op_id : int;
  op_name : string;
  op_tables : string list;
  op_rollback : string list;
}

let sync_table t name =
  if Hashtbl.mem t.tables name || has_table t name then
    Pager.flush ~sync:true (Bptree.pager (table t name))

let begin_op t ~op ~tables ?(rollback = []) () =
  let m = manifest t in
  let op_id = Manifest.fresh_op_id m in
  Manifest.append m
    (Manifest.Begin
       { op_id; op; tables; rollback; generation = Manifest.next_generation m });
  (* The Begin must be durable before any table is touched: it is what
     tells recovery which partial builds to quarantine. *)
  Manifest.sync m;
  hook (Printf.sprintf "op:%s:begun" op);
  { op_id; op_name = op; op_tables = tables; op_rollback = rollback }

let commit_op t o =
  let m = manifest t in
  (* Sync-flush each table in turn; each gap between two flushes is an
     inter-table commit boundary the crash matrix covers. Only once
     every table is durable does the Commit record — the single
     durability point — go down. *)
  List.iter
    (fun name ->
      sync_table t name;
      hook (Printf.sprintf "op:%s:flushed:%s" o.op_name name))
    o.op_tables;
  Manifest.append m (Manifest.Commit { op_id = o.op_id });
  Manifest.sync m;
  hook (Printf.sprintf "op:%s:committed" o.op_name);
  Manifest.append m (Manifest.End { op_id = o.op_id });
  Manifest.sync m;
  hook (Printf.sprintf "op:%s:done" o.op_name)

let abort_op t o ~note =
  let m = manifest t in
  List.iter (quarantine_table t) o.op_rollback;
  Manifest.append m (Manifest.Abort { op_id = o.op_id; note });
  Manifest.sync m

let apply_action t (a : Manifest.action) =
  match a with
  | Manifest.Put { table = name; key; value } ->
      Bptree.insert (table t name) ~key ~value
  | Manifest.Remove { table = name; key } -> ignore (Bptree.remove (table t name) key)
  | Manifest.Remove_prefix { table = name; prefix } ->
      let tbl = table t name in
      let keys = ref [] in
      Bptree.iter_prefix tbl ~prefix (fun k _ -> keys := k :: !keys);
      List.iter (fun k -> ignore (Bptree.remove tbl k)) !keys

let action_table (a : Manifest.action) =
  match a with
  | Manifest.Put { table; _ } | Manifest.Remove { table; _ }
  | Manifest.Remove_prefix { table; _ } ->
      table

let tables_of_steps steps =
  List.fold_left
    (fun acc a ->
      let tbl = action_table a in
      if List.mem tbl acc then acc else tbl :: acc)
    [] steps
  |> List.rev

(* Redo-logged operation: every write is recorded (with absolute
   post-state bytes) and made durable *before* the first table is
   touched, so a crash before the Commit record leaves the tables
   exactly at the pre-operation state, and a crash anywhere after it is
   repaired by replaying the steps — they are pure sets/removes, hence
   idempotent. *)
let run_logged_op t ~op ~steps () =
  let m = manifest t in
  let tables = tables_of_steps steps in
  let op_id = Manifest.fresh_op_id m in
  Manifest.append m
    (Manifest.Begin
       { op_id; op; tables; rollback = []; generation = Manifest.next_generation m });
  List.iter (fun a -> Manifest.append m (Manifest.Step { op_id; action = a })) steps;
  Manifest.sync m;
  hook (Printf.sprintf "op:%s:logged" op);
  Manifest.append m (Manifest.Commit { op_id });
  Manifest.sync m;
  hook (Printf.sprintf "op:%s:committed" op);
  List.iter (apply_action t) steps;
  hook (Printf.sprintf "op:%s:applied" op);
  List.iter
    (fun name ->
      sync_table t name;
      hook (Printf.sprintf "op:%s:flushed:%s" op name))
    tables;
  Manifest.append m (Manifest.End { op_id });
  Manifest.sync m;
  hook (Printf.sprintf "op:%s:done" op)

(* Resolve every pending manifest operation: committed ones roll
   forward (replay steps, re-flush, End), uncommitted ones roll back
   (quarantine their rollback tables, Abort). An op that cannot be
   resolved — e.g. its table raises [Pager.Corruption] during replay —
   stays pending and its tables are blocked from query planning. *)
let replay_manifest t =
  match t.manifest with
  | None -> ()
  | Some m ->
      Hashtbl.reset t.blocked;
      t.resolutions <- [];
      List.iter
        (fun (p : Manifest.pending) ->
          let record outcome ok =
            t.resolutions <-
              {
                res_op_id = p.p_op_id;
                res_op = p.p_op;
                res_tables = p.p_tables;
                res_outcome = outcome;
                res_ok = ok;
              }
              :: t.resolutions
          in
          match p.p_status with
          | Manifest.Roll_forward -> (
              match
                List.iter (apply_action t) p.p_steps;
                List.iter (sync_table t) p.p_tables
              with
              | () ->
                  Manifest.append m (Manifest.End { op_id = p.p_op_id });
                  Manifest.sync m;
                  Metrics.incr m_rolled_forward;
                  record "rolled forward" true
              | exception e ->
                  Metrics.incr m_unresolved;
                  List.iter (fun tbl -> Hashtbl.replace t.blocked tbl ()) p.p_tables;
                  record
                    (Printf.sprintf "unresolved (roll-forward failed: %s)"
                       (Printexc.to_string e))
                    false)
          | Manifest.Roll_back -> (
              match List.iter (quarantine_table t) p.p_rollback with
              | () ->
                  Manifest.append m
                    (Manifest.Abort { op_id = p.p_op_id; note = "recovery roll-back" });
                  Manifest.sync m;
                  Metrics.incr m_rolled_back;
                  record "rolled back" true
              | exception e ->
                  Metrics.incr m_unresolved;
                  List.iter (fun tbl -> Hashtbl.replace t.blocked tbl ()) p.p_tables;
                  record
                    (Printf.sprintf "unresolved (roll-back failed: %s)"
                       (Printexc.to_string e))
                    false))
        (Manifest.pending m);
      (* Fully resolved history is dead weight; shrink it to a
         checkpoint so the manifest never grows without bound. *)
      if Manifest.pending m = [] then Manifest.compact m

let () = replay_ref := replay_manifest

(* ---- verification & recovery ---- *)

type table_report = {
  table : string;
  ok : bool;
  pages : int;
  entries : int;
  problems : string list;
  notes : string list;
  recovered : bool;
}

let verify_tree name tree ~recovered ~notes =
  let checksum_problems =
    List.map
      (fun (page, detail) -> Printf.sprintf "page %d: %s" page detail)
      (Pager.verify_checksums (Bptree.pager tree))
  in
  let r = Bptree.verify tree in
  let problems = checksum_problems @ r.Bptree.problems in
  {
    table = name;
    ok = problems = [];
    pages = r.Bptree.pages;
    entries = r.Bptree.entries;
    problems;
    notes;
    recovered;
  }

let broken_report name ~recovered detail =
  { table = name; ok = false; pages = 0; entries = 0;
    problems = [ detail ]; notes = []; recovered }

let verify_table t name =
  match
    let tree = table t name in
    verify_tree name tree ~recovered:false ~notes:[]
  with
  | report -> report
  | exception Pager.Corruption { detail; page; _ } ->
      broken_report name ~recovered:false
        (if page >= 0 then Printf.sprintf "page %d: %s" page detail else detail)
  | exception Trex_resilience.Retry.Exhausted { name = op; attempts; _ } ->
      broken_report name ~recovered:false
        (Printf.sprintf "%s failed after %d attempts" op attempts)

let verify t = List.map (verify_table t) (table_names t)

let open_with_recovery ?(page_size = 8192) ?(cache_pages = 4096) dir =
  (* Table recovery must run before manifest replay: a table created
     mid-operation whose root never committed has to be reinitialized
     before roll-forward can write into it. *)
  let env = on_disk ~page_size ~cache_pages ~replay:false dir in
  let reports =
    List.map
      (fun name ->
        let path = path_of dir name in
        match Pager.open_with_recovery ~cache_pages path with
        | exception Pager.Corruption { detail; _ } ->
            broken_report name ~recovered:false detail
        | pager, (recovery : Pager.recovery) -> (
            let notes =
              if recovery.Pager.recovered then [ recovery.Pager.note ] else []
            in
            match Bptree.attach pager with
            | tree ->
                Hashtbl.replace env.tables name tree;
                verify_tree name tree ~recovered:recovery.Pager.recovered ~notes
            | exception Pager.Corruption _ ->
                (* No committed root: the creating commit never reached
                   the disk, so the table is logically empty. Reinit it
                   rather than leaving an unopenable file behind. *)
                Pager.abort pager;
                let fresh =
                  Bptree.create
                    (Pager.create_file ~page_size ~cache_pages path)
                in
                Pager.flush ~sync:true (Bptree.pager fresh);
                Hashtbl.replace env.tables name fresh;
                { table = name; ok = true; pages = 1; entries = 0;
                  problems = [];
                  notes = [ "reinitialized: no committed root" ];
                  recovered = true }))
      (table_names env)
  in
  replay_manifest env;
  (* Surface manifest resolutions on the reports of the tables each
     operation touched. *)
  let notes_for name =
    List.filter_map
      (fun r ->
        if List.mem name r.res_tables then
          Some (Printf.sprintf "manifest: op #%d %s %s" r.res_op_id r.res_op r.res_outcome)
        else None)
      (manifest_resolutions env)
  in
  let reports =
    List.map
      (fun r ->
        match notes_for r.table with
        | [] -> r
        | notes ->
            let ok = r.ok && not (table_blocked env r.table) in
            { r with ok; notes = r.notes @ notes })
      reports
  in
  (env, reports)

let io_stats t =
  Hashtbl.fold
    (fun name tree acc -> (name, Pager.stats (Bptree.pager tree)) :: acc)
    t.tables []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flush ?(sync = false) t =
  Hashtbl.iter (fun _ tree -> Pager.flush ~sync (Bptree.pager tree)) t.tables

let close t =
  Hashtbl.iter (fun _ tree -> Pager.close (Bptree.pager tree)) t.tables;
  Hashtbl.reset t.tables;
  (match t.manifest with
  | None -> ()
  | Some m ->
      Manifest.close m;
      t.manifest <- None);
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.close j;
      t.journal <- None

(* Simulated process death for crash tests: every open pager is
   aborted (dirty cached pages vanish, the files keep whatever was last
   flushed) and the logs are dropped without their closing fsync. *)
let abort t =
  Hashtbl.iter (fun _ tree -> Pager.abort (Bptree.pager tree)) t.tables;
  Hashtbl.reset t.tables;
  (match t.manifest with
  | None -> ()
  | Some m ->
      Manifest.abort m;
      t.manifest <- None);
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.close j;
      t.journal <- None
