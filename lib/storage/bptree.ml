module Codec = Trex_util.Codec
module Metrics = Trex_obs.Metrics

(* Process-wide total across every tree; per-tree stats are not kept. *)
let m_node_splits = Metrics.counter "bptree.node_splits"

(* In-memory image of a node; nodes are (de)serialized to pager pages on
   every access. Cursors keep the deserialized leaf, so scans parse each
   leaf once. *)
type node =
  | Leaf of { mutable entries : (string * string) array; mutable next : int }
  | Internal of {
      mutable keys : string array; (* separators, length = #children - 1 *)
      mutable children : int array;
    }

type t = { pager : Pager.t; mutable root : int; mutable count : int }

(* Serialized node layout: tag byte ('L'/'I'), then varint-framed
   fields. The node budget leaves room for the tag and slack. *)

let node_budget pager = Pager.page_size pager - 16
let entry_budget pager = node_budget pager / 4

let serialize_node pager node =
  let b = Codec.Buf.create ~capacity:(Pager.page_size pager) () in
  (match node with
  | Leaf { entries; next } ->
      Codec.Buf.add_raw b "L";
      Codec.Buf.add_varint b (Array.length entries);
      Array.iter
        (fun (k, v) ->
          Codec.Buf.add_string b k;
          Codec.Buf.add_string b v)
        entries;
      Codec.Buf.add_varint b next
  | Internal { keys; children } ->
      Codec.Buf.add_raw b "I";
      Codec.Buf.add_varint b (Array.length children);
      Array.iter (fun c -> Codec.Buf.add_varint b c) children;
      Array.iter (fun k -> Codec.Buf.add_string b k) keys);
  Codec.Buf.contents b

let node_size pager node = String.length (serialize_node pager node)

let write_node t id node =
  let s = serialize_node t.pager node in
  let page = Bytes.make (Pager.page_size t.pager) '\x00' in
  Bytes.blit_string s 0 page 0 (String.length s);
  Pager.write t.pager id page

let corrupt t ~page detail =
  raise (Pager.Corruption { path = Pager.path t.pager; page; detail })

(* Deserialization copies every field out of the page buffer (fresh
   tuple/array cells, and [Codec.Reader.string] substrings), so holding
   a node never aliases the pager's live cache — see Pager.read_copy for
   callers that do need raw page bytes across writes. *)
let read_node t id =
  let page = Pager.read t.pager id in
  let r = Codec.Reader.of_string (Bytes.unsafe_to_string page) in
  match
    match Codec.Reader.raw r 1 with
    | "L" ->
        let n = Codec.Reader.varint r in
        let entries =
          Array.init n (fun _ ->
              let k = Codec.Reader.string r in
              let v = Codec.Reader.string r in
              (k, v))
        in
        let next = Codec.Reader.varint r in
        Leaf { entries; next }
    | "I" ->
        let nc = Codec.Reader.varint r in
        if nc < 1 then corrupt t ~page:id "internal node with no children";
        let children = Array.init nc (fun _ -> Codec.Reader.varint r) in
        let keys = Array.init (nc - 1) (fun _ -> Codec.Reader.string r) in
        Internal { keys; children }
    | tag -> corrupt t ~page:id (Printf.sprintf "corrupt node tag %S" tag)
  with
  | node -> node
  | exception Codec.Reader.Truncated ->
      corrupt t ~page:id "truncated node encoding"

let create pager =
  let root = Pager.allocate pager in
  let t = { pager; root; count = 0 } in
  write_node t root (Leaf { entries = [||]; next = -1 });
  Pager.set_root pager root;
  t

let attach pager =
  let root = Pager.get_root pager in
  if root < 0 then
    raise
      (Pager.Corruption
         {
           path = Pager.path pager;
           page = -1;
           detail = "no committed root (tree creation never reached a commit)";
         });
  { pager; root; count = -1 }

let pager t = t.pager

let refresh t =
  let root = Pager.get_root t.pager in
  if root < 0 then failwith "Bptree.refresh: pager has no root";
  t.root <- root;
  t.count <- -1

(* First index i in [keys] with keys.(i) > key; the child to follow for
   [key] in an internal node. *)
let child_index keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index i in sorted [entries] with fst entries.(i) >= key. *)
let lower_bound entries key =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (fst entries.(mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let find t key =
  let rec go id =
    match read_node t id with
    | Internal { keys; children } -> go children.(child_index keys key)
    | Leaf { entries; _ } ->
        let i = lower_bound entries key in
        if i < Array.length entries && fst entries.(i) = key then
          Some (snd entries.(i))
        else None
  in
  go t.root

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - 1 - i);
  out

(* Result of inserting into a subtree: either the node fit, or it split
   and the parent must add (separator, right-page-id). *)
type split = No_split | Split of string * int

let insert t ~key ~value =
  if String.length key + String.length value > entry_budget t.pager then
    invalid_arg
      (Printf.sprintf "Bptree.insert: entry of %d bytes exceeds budget %d"
         (String.length key + String.length value)
         (entry_budget t.pager));
  let budget = node_budget t.pager in
  let rec go id =
    match read_node t id with
    | Leaf leaf ->
        let i = lower_bound leaf.entries key in
        let replaced =
          i < Array.length leaf.entries && fst leaf.entries.(i) = key
        in
        if replaced then leaf.entries.(i) <- (key, value)
        else begin
          leaf.entries <- array_insert leaf.entries i (key, value);
          if t.count >= 0 then t.count <- t.count + 1
        end;
        let node = Leaf { entries = leaf.entries; next = leaf.next } in
        if node_size t.pager node <= budget then begin
          write_node t id node;
          No_split
        end
        else begin
          (* Split at the midpoint entry. *)
          let n = Array.length leaf.entries in
          let mid = n / 2 in
          let left = Array.sub leaf.entries 0 mid in
          let right = Array.sub leaf.entries mid (n - mid) in
          let right_id = Pager.allocate t.pager in
          write_node t right_id (Leaf { entries = right; next = leaf.next });
          write_node t id (Leaf { entries = left; next = right_id });
          Metrics.incr m_node_splits;
          Split (fst right.(0), right_id)
        end
    | Internal node -> (
        let ci = child_index node.keys key in
        match go node.children.(ci) with
        | No_split -> No_split
        | Split (sep, right_id) ->
            node.keys <- array_insert node.keys ci sep;
            node.children <- array_insert node.children (ci + 1) right_id;
            let img = Internal { keys = node.keys; children = node.children } in
            if node_size t.pager img <= budget then begin
              write_node t id img;
              No_split
            end
            else begin
              let nk = Array.length node.keys in
              let mid = nk / 2 in
              let sep_up = node.keys.(mid) in
              let left_keys = Array.sub node.keys 0 mid in
              let right_keys = Array.sub node.keys (mid + 1) (nk - mid - 1) in
              let left_children = Array.sub node.children 0 (mid + 1) in
              let right_children =
                Array.sub node.children (mid + 1) (Array.length node.children - mid - 1)
              in
              let right_id = Pager.allocate t.pager in
              write_node t right_id
                (Internal { keys = right_keys; children = right_children });
              write_node t id
                (Internal { keys = left_keys; children = left_children });
              Metrics.incr m_node_splits;
              Split (sep_up, right_id)
            end)
  in
  match go t.root with
  | No_split -> ()
  | Split (sep, right_id) ->
      let new_root = Pager.allocate t.pager in
      write_node t new_root
        (Internal { keys = [| sep |]; children = [| t.root; right_id |] });
      t.root <- new_root;
      Pager.set_root t.pager new_root

let remove t key =
  let rec go id =
    match read_node t id with
    | Internal { keys; children } -> go children.(child_index keys key)
    | Leaf leaf ->
        let i = lower_bound leaf.entries key in
        if i < Array.length leaf.entries && fst leaf.entries.(i) = key then begin
          let entries = array_remove leaf.entries i in
          write_node t id (Leaf { entries; next = leaf.next });
          if t.count >= 0 then t.count <- t.count - 1;
          true
        end
        else false
  in
  go t.root

module Cursor = struct
  type cursor = {
    tree : t;
    mutable entries : (string * string) array;
    mutable idx : int;
    mutable next_leaf : int;
  }

  let rec load c leaf_id =
    if leaf_id < 0 then begin
      c.entries <- [||];
      c.idx <- 0;
      c.next_leaf <- -1
    end
    else
      match read_node c.tree leaf_id with
      | Leaf { entries; next } ->
          if Array.length entries = 0 && next >= 0 then load c next
          else begin
            c.entries <- entries;
            c.idx <- 0;
            c.next_leaf <- next
          end
      | Internal _ -> failwith "Bptree.Cursor: internal node in leaf chain"

  let leftmost_leaf t =
    let rec go id =
      match read_node t id with
      | Leaf _ -> id
      | Internal { children; _ } -> go children.(0)
    in
    go t.root

  let seek_first t =
    let c = { tree = t; entries = [||]; idx = 0; next_leaf = -1 } in
    load c (leftmost_leaf t);
    c

  let seek t key =
    let rec descend id =
      match read_node t id with
      | Internal { keys; children } -> descend children.(child_index keys key)
      | Leaf _ -> id
    in
    let leaf_id = descend t.root in
    let c = { tree = t; entries = [||]; idx = 0; next_leaf = -1 } in
    load c leaf_id;
    c.idx <- lower_bound c.entries key;
    (* The sought key may be past this leaf's last entry. *)
    if c.idx >= Array.length c.entries && c.next_leaf >= 0 then load c c.next_leaf;
    c

  let next c =
    if c.idx < Array.length c.entries then begin
      let e = c.entries.(c.idx) in
      c.idx <- c.idx + 1;
      if c.idx >= Array.length c.entries && c.next_leaf >= 0 then
        load c c.next_leaf;
      Some e
    end
    else None
end

let iter t f =
  let c = Cursor.seek_first t in
  let rec go () =
    match Cursor.next c with
    | Some (k, v) ->
        f k v;
        go ()
    | None -> ()
  in
  go ()

let iter_prefix t ~prefix f =
  let c = Cursor.seek t prefix in
  let plen = String.length prefix in
  let rec go () =
    match Cursor.next c with
    | Some (k, v)
      when String.length k >= plen && String.sub k 0 plen = prefix ->
        f k v;
        go ()
    | Some _ | None -> ()
  in
  go ()

let fold_range t ~low ~high ~init ~f =
  let c = Cursor.seek t low in
  let rec go acc =
    match Cursor.next c with
    | None -> acc
    | Some (k, v) -> (
        match high with
        | Some h when String.compare k h >= 0 -> acc
        | Some _ | None -> go (f acc k v))
  in
  go init

let length t =
  if t.count < 0 then begin
    let n = ref 0 in
    iter t (fun _ _ -> incr n);
    t.count <- !n
  end;
  t.count

let bulk_load pager seq =
  let budget = node_budget pager in
  let fill = budget * 4 / 5 in
  (* Pack entries into leaves left to right, then build each internal
     level from the (first-key, page) list of the level below. *)
  let leaves = ref [] in
  let cur = ref [] and cur_size = ref 8 and last_key = ref None in
  let flush_leaf () =
    if !cur <> [] then begin
      let entries = Array.of_list (List.rev !cur) in
      let id = Pager.allocate pager in
      leaves := (fst entries.(0), id, entries) :: !leaves;
      cur := [];
      cur_size := 8
    end
  in
  let count = ref 0 in
  Seq.iter
    (fun (k, v) ->
      (match !last_key with
      | Some prev when String.compare prev k >= 0 ->
          invalid_arg "Bptree.bulk_load: keys not strictly ascending"
      | Some _ | None -> ());
      last_key := Some k;
      incr count;
      let sz = String.length k + String.length v + 10 in
      if sz > entry_budget pager then
        invalid_arg "Bptree.bulk_load: entry exceeds budget";
      if !cur_size + sz > fill then flush_leaf ();
      cur := (k, v) :: !cur;
      cur_size := !cur_size + sz)
    seq;
  flush_leaf ();
  let t = { pager; root = -1; count = !count } in
  let leaves = List.rev !leaves in
  (* Chain the leaves and write them. *)
  let rec write_chain = function
    | [] -> ()
    | [ (_, id, entries) ] -> write_node t id (Leaf { entries; next = -1 })
    | (_, id, entries) :: ((_, nid, _) :: _ as rest) ->
        write_node t id (Leaf { entries; next = nid });
        write_chain rest
  in
  (match leaves with
  | [] ->
      let root = Pager.allocate pager in
      write_node t root (Leaf { entries = [||]; next = -1 });
      t.root <- root
  | _ -> write_chain leaves);
  if t.root < 0 then begin
    (* Build internal levels bottom-up from (first_key, page_id). *)
    let level =
      ref (List.map (fun (k, id, _) -> (k, id)) leaves)
    in
    while List.length !level > 1 do
      let next_level = ref [] in
      let group = ref [] and group_size = ref 8 in
      let flush_group () =
        match List.rev !group with
        | [] -> ()
        | (k0, c0) :: rest ->
            let keys = Array.of_list (List.map fst rest) in
            let children = Array.of_list (c0 :: List.map snd rest) in
            let id = Pager.allocate pager in
            write_node t id (Internal { keys; children });
            next_level := (k0, id) :: !next_level;
            group := [];
            group_size := 8
      in
      List.iter
        (fun (k, id) ->
          let sz = String.length k + 12 in
          if !group_size + sz > fill && List.length !group >= 2 then flush_group ();
          group := (k, id) :: !group;
          group_size := !group_size + sz)
        !level;
      flush_group ();
      level := List.rev !next_level
    done;
    (match !level with
    | [ (_, id) ] -> t.root <- id
    | _ -> assert false)
  end;
  Pager.set_root pager t.root;
  (* Durable commit point: the freshly packed pages reach the disk
     before the header that publishes the new root. A crash anywhere in
     the load leaves the previous committed epoch intact. *)
  Pager.flush ~sync:true pager;
  t

(* ---- structural verification ---- *)

type verify_report = {
  pages : int;
  entries : int;
  depth : int;
  problems : string list;
}

let max_reported_problems = 32

let verify t =
  let problems = ref [] and n_problems = ref 0 in
  let add p =
    incr n_problems;
    if !n_problems <= max_reported_problems then problems := p :: !problems
  in
  let page_count = Pager.page_count t.pager in
  let visited = Hashtbl.create 256 in
  let leaves = ref [] in
  (* (id, next) in key order *)
  let entries = ref 0 in
  let max_depth = ref 0 in
  let in_bounds key low high =
    (match low with Some l -> String.compare l key <= 0 | None -> true)
    && match high with Some h -> String.compare key h < 0 | None -> true
  in
  let check_sorted id what keys =
    Array.iteri
      (fun i k ->
        if i > 0 && String.compare keys.(i - 1) k >= 0 then
          add
            (Printf.sprintf "page %d: %s out of order at slot %d (%S >= %S)" id
               what i
               keys.(i - 1)
               k))
      keys
  in
  let rec walk id ~low ~high ~depth =
    if id < 0 || id >= page_count then
      add (Printf.sprintf "child link to page %d outside [0,%d)" id page_count)
    else if Hashtbl.mem visited id then
      add (Printf.sprintf "page %d reached twice (cycle or shared subtree)" id)
    else begin
      Hashtbl.add visited id ();
      if depth > !max_depth then max_depth := depth;
      match read_node t id with
      | exception Pager.Corruption { detail; _ } ->
          add (Printf.sprintf "page %d: %s" id detail)
      | Leaf { entries = es; next } ->
          leaves := (id, next) :: !leaves;
          entries := !entries + Array.length es;
          check_sorted id "leaf keys" (Array.map fst es);
          Array.iter
            (fun (k, _) ->
              if not (in_bounds k low high) then
                add
                  (Printf.sprintf "page %d: leaf key %S escapes separator bounds"
                     id k))
            es
      | Internal { keys; children } ->
          if Array.length children <> Array.length keys + 1 then
            add
              (Printf.sprintf "page %d: %d children for %d separators" id
                 (Array.length children) (Array.length keys));
          check_sorted id "separators" keys;
          Array.iter
            (fun k ->
              if not (in_bounds k low high) then
                add
                  (Printf.sprintf "page %d: separator %S escapes bounds" id k))
            keys;
          Array.iteri
            (fun i child ->
              let lo = if i = 0 then low else Some keys.(i - 1) in
              let hi =
                if i < Array.length keys then Some keys.(i) else high
              in
              walk child ~low:lo ~high:hi ~depth:(depth + 1))
            children
    end
  in
  walk t.root ~low:None ~high:None ~depth:1;
  (* The DFS visits leaves left to right; the sibling chain must link
     them in exactly that order and terminate. *)
  let rec check_chain = function
    | [] -> ()
    | [ (id, next) ] ->
        if next <> -1 then
          add (Printf.sprintf "last leaf %d has dangling next %d" id next)
    | (id, next) :: ((id', _) :: _ as rest) ->
        if next <> id' then
          add
            (Printf.sprintf "leaf %d links to %d, expected next leaf %d" id next
               id');
        check_chain rest
  in
  check_chain (List.rev !leaves);
  if !n_problems > max_reported_problems then
    problems :=
      Printf.sprintf "... and %d more problems"
        (!n_problems - max_reported_problems)
      :: !problems;
  {
    pages = Hashtbl.length visited;
    entries = !entries;
    depth = !max_depth;
    problems = List.rev !problems;
  }
