(** Cross-table operation manifest: an append-only, CRC32-framed intent
    log ([MANIFEST.mf]) that makes multi-table index operations atomic.

    Each table is individually crash-safe (dual-header epoch commits),
    but operations like [add_document] or an advisor plan touch several
    tables, and a crash between two table flushes used to leave the
    environment mixed — e.g. a half-indexed document with stale RPLs
    still servable. The manifest records every such operation as

    {v Begin(op, tables, rollback, generation)
       Step*(physical action: put / remove / remove-prefix)
       Commit
       End v}

    with the same framing discipline as the query journal: an 8-byte
    magic, then frames of [u32 length | u32 CRC32 | JSON payload]. A
    torn tail is truncated at open, corrupt frames are skipped, and the
    valid prefix is never lost ([manifest.torn_tails] /
    [manifest.corrupt_records] count what the sweep found).

    Two commit disciplines share the format:

    - {b Redo-logged operations} ([Env.run_logged_op]): every table
      write is first recorded as a [Step] holding the absolute
      post-state bytes, the steps and the [Commit] are fsynced, and
      only then are the tables touched. A crash before [Commit] leaves
      the tables untouched (roll {e back} is a no-op); after [Commit]
      the steps replay idempotently (roll {e forward}).
    - {b Build operations} ([Env.begin_op]/[commit_op]): rebuildable
      redundant tables are written directly between [Begin] and
      [Commit]; the [rollback] list names the tables recovery must
      quarantine if the [Commit] record never became durable.

    [End] (or [Abort]) marks the operation resolved; a [Begin] without
    either is {e pending} and is replayed by [Env] at open. Committed
    generations are numbered; the environment refuses to serve
    redundant lists whose operation is still pending (see
    [Env.table_blocked]). *)

(** A physical, idempotent table action. [key]/[value]/[prefix] are raw
    B+tree bytes (hex-encoded on disk). *)
type action =
  | Put of { table : string; key : string; value : string }
  | Remove of { table : string; key : string }
  | Remove_prefix of { table : string; prefix : string }

type record =
  | Checkpoint of { generation : int; next_op_id : int }
      (** Written after compaction so generation numbers and op ids
          survive truncation of resolved history. *)
  | Begin of {
      op_id : int;
      op : string;  (** operation name, e.g. ["add_document"] *)
      tables : string list;  (** every table the operation touches *)
      rollback : string list;
          (** tables recovery quarantines if the op never committed *)
      generation : int;  (** the generation this op commits *)
    }
  | Step of { op_id : int; action : action }
  | Commit of { op_id : int }
  | Abort of { op_id : int; note : string }  (** resolved by roll-back *)
  | End of { op_id : int }  (** resolved: all effects durable *)

(** How recovery must resolve a pending operation. *)
type status =
  | Roll_forward  (** [Commit] is durable: re-apply steps, finish *)
  | Roll_back  (** never committed: quarantine [rollback] tables *)

type pending = {
  p_op_id : int;
  p_op : string;
  p_tables : string list;
  p_rollback : string list;
  p_generation : int;
  p_status : status;
  p_steps : action list;  (** oldest first *)
}

type t

val in_memory : unit -> t
(** Backed by nothing; used by memory environments so the op protocol
    is exercised uniformly (no durability, no recovery). *)

val open_file : string -> t
(** Open-or-create. Sweeps the whole file: corrupt frames are skipped
    and counted, a torn tail is truncated, a foreign file is reset. *)

val path : t -> string option
val records : t -> record list
(** Oldest first, as reconstructed at open plus appends since. *)

val length : t -> int
val generation : t -> int
(** Highest committed generation (0 for a fresh manifest). *)

val next_generation : t -> int
(** The generation the next [Begin] should carry: one past the highest
    generation ever issued, committed or not. *)

val fresh_op_id : t -> int
(** Allocate the next operation id (monotonic across reopens). *)

val append : t -> record -> unit
(** Frame and append one record; no fsync (see {!sync}). Updates the
    derived state ({!generation}, {!pending}, ...) as the record
    implies. *)

val sync : t -> unit

val pending : t -> pending list
(** Operations with a [Begin] but neither [End] nor [Abort], oldest
    first — what recovery must resolve. *)

val compact : t -> unit
(** When nothing is pending, truncate resolved history down to a
    {!Checkpoint} carrying the generation and op counter. A no-op if
    any operation is pending. *)

val close : t -> unit

val abort : t -> unit
(** Test hook: drop the handle without the closing fsync, as a crashed
    process would. *)
