(** Storage environment: a namespace of B+tree tables.

    Plays the role BerkeleyDB plays in the paper — each indexed table
    ([Elements], [PostingLists], [RPLs], [ERPLs], ...) is one B+tree,
    either file-backed inside a directory or in memory. Disk usage per
    table is observable because the self-management layer optimizes
    index choice under a disk budget. *)

type t

val in_memory : ?page_size:int -> unit -> t

val on_disk : ?page_size:int -> ?cache_pages:int -> ?replay:bool -> string -> t
(** [on_disk dir] creates [dir] if needed; each table lives in
    [dir/<name>.tbl]. Existing table files are re-attached lazily by
    {!table}. Stale [*.compact-tmp.tbl] leftovers from a compaction that
    crashed before its atomic rename are deleted (the original table is
    intact in that case).

    An existing operation manifest ([MANIFEST.mf]) is swept and — with
    [replay] (default true) — replayed: operations that committed but
    never finished roll forward, uncommitted ones roll back (see
    {!Manifest} and {!manifest_resolutions}). [~replay:false] defers
    replay (used by {!open_with_recovery}, which must repair table
    headers first). *)

val table : t -> string -> Bptree.t
(** Create-or-attach. Table names must match [[A-Za-z0-9_.-]+].
    @raise Pager.Corruption when an existing table file fails header
    validation — use {!open_with_recovery} to fall back. *)

val has_table : t -> string -> bool
val drop_table : t -> string -> unit
(** Close and delete the table; a no-op when absent. *)

val quarantine_table : t -> string -> unit
(** Drop a suspect table {e without} flushing it: the open handle (if
    any) is aborted and the backing file deleted. The next {!table}
    recreates it empty; redundant index tables (RPLs/ERPLs) are then
    rebuilt by the self-management layer. A no-op when absent. *)

val table_names : t -> string list

val table_bytes : t -> string -> int
(** Bytes of storage held by the table (pages * page size); 0 when
    absent. *)

val compact_table : ?faults:Pager.fault list -> t -> string -> unit
(** Rebuild the table into freshly bulk-loaded pages, releasing the
    space dead entries and dropped lists still hold (B+trees never
    shrink in place). On disk the table file is atomically replaced
    (temp file synced before a rename, directory fsynced after); open
    cursors into the old tree are invalidated. A no-op when the table
    does not exist.

    [faults] (test hook) arms a {!Pager.fault} plan on the temp-file
    pager so the crash matrix can cover the compaction window; on an
    injected crash the temp pager is aborted and the exception
    re-raised, leaving the original table intact plus a stale
    [*.compact-tmp.tbl] for {!on_disk} to sweep. *)

val total_bytes : t -> int

val io_stats : t -> (string * Pager.stats) list
(** Per-open-table pager statistics, including the
    [storage.checksum_failures] and [storage.recoveries] counters
    ({!Pager.stats} fields [checksum_failures]/[recoveries]). *)

val flush : ?sync:bool -> t -> unit
(** Flush every open table; [~sync:true] makes each a durable commit
    point (see {!Pager.flush}). *)

val close : t -> unit
(** Closes every open table and the query journal (if open). *)

(** {1 Query journal}

    One {!Trex_obs.Journal} per environment: file-backed under the env
    directory ([dir/query_journal.qj]) for disk envs, memory-backed
    otherwise. {!on_disk} sweeps an existing journal file eagerly, so a
    torn or corrupt tail left by a crash is repaired at open (counted
    in [journal.torn_tails] / [journal.corrupt_records]) rather than on
    first use. *)

val journal : t -> Trex_obs.Journal.t
(** Find-or-open the environment's query journal. *)

val journal_path : t -> string option
(** Where the journal lives; [None] for memory-backed envs. *)

val has_journal : t -> bool
(** Whether a journal is open or its backing file exists — i.e.
    whether {!journal} would return any history. *)

(** {1 Verification & recovery} *)

type table_report = {
  table : string;
  ok : bool;  (** checksum sweep and structural verify both clean *)
  pages : int;  (** pages reachable from the root *)
  entries : int;
  problems : string list;
  notes : string list;  (** informational (e.g. recovery summary) *)
  recovered : bool;  (** opened via header-epoch fallback or reinit *)
}

val verify : t -> table_report list
(** For every table: physical checksum sweep of all pages plus
    {!Bptree.verify}. Tables that cannot even be opened are reported
    with [ok = false] rather than raising. Read-only. *)

val verify_table : t -> string -> table_report
(** {!verify} for a single table; also used as the half-open probe
    before a breaker closes. *)

val open_with_recovery :
  ?page_size:int -> ?cache_pages:int -> string -> t * table_report list
(** Open every table in [dir], falling back to the older header epoch
    where the newest slot is damaged ({!Pager.open_with_recovery}), and
    reinitializing tables whose creation never committed. Returns the
    env with all tables attached plus a verification report per table. *)

(** {1 Circuit breakers}

    One lazily-created {!Trex_resilience.Breaker} per table. The query
    layer trips a table's breaker when it observes [Pager.Corruption]
    or retry exhaustion there; [Strategy.available]/[choose] consult
    {!table_available} so planning routes around quarantined tables,
    and [Autopilot.maybe_heal] rebuilds + probes before closing. *)

val breaker : t -> string -> Trex_resilience.Breaker.t
(** Find or create the table's breaker. *)

val breaker_states : t -> (string * Trex_resilience.Breaker.state) list
(** Every breaker that exists (i.e. every table that ever failed),
    sorted by table name. *)

val table_available : t -> string -> bool
(** Whether queries could rely on the table now: true when it is not
    manifest-blocked and has no breaker, or its breaker is
    {!Trex_resilience.Breaker.ready}. Planning-time check — never
    consumes the half-open probe slot. *)

val admit_table : t -> string -> bool
(** Consuming admission for a caller about to touch the table: like
    {!table_available}, but an admitted caller on a half-open breaker
    takes the single probe slot ({!Trex_resilience.Breaker.allow}) and
    must resolve it with {!note_table_success}, {!fail_table} or
    {!trip_table}. *)

val table_probing : t -> string -> bool
(** The table's breaker has an unresolved half-open probe in flight. *)

val trip_table : t -> string -> reason:string -> unit
(** Open the table's breaker immediately. *)

val fail_table : t -> string -> reason:string -> unit
(** Count a failure with the table's breaker (re-opens a half-open
    probe; no-op when the table never failed before). *)

val note_table_success : t -> string -> unit
(** Record a successful use; closes a half-open breaker. *)

(** {1 Operation manifest}

    One {!Manifest} per environment ([dir/MANIFEST.mf]; memory-backed
    for {!in_memory}) makes multi-table operations atomic. Two
    disciplines (see {!Manifest} for the full protocol):

    - {!run_logged_op} — redo-logged: all writes are recorded as
      idempotent physical steps and fsynced before any table is
      touched. Used by [add_document], where base tables hold ground
      truth that cannot be rebuilt.
    - {!begin_op}/{!commit_op} — build ops: rebuildable redundant
      tables (RPLs/ERPLs + catalogs) are written directly; on a crash
      before [Commit], recovery quarantines the [rollback] tables.

    Replay happens at open ({!on_disk} / {!open_with_recovery});
    outcomes are exposed via {!manifest_resolutions} and the
    [manifest.rolled_forward] / [manifest.rolled_back] /
    [manifest.unresolved] counters. Tables of an operation that could
    not be resolved are {e blocked} ({!table_blocked}) so query
    planning never reads an uncommitted generation. *)

val manifest : t -> Manifest.t
(** Find-or-open the environment's manifest. *)

val manifest_path : t -> string option
(** Where the manifest lives; [None] for memory-backed envs. *)

val has_manifest : t -> bool
(** Whether a manifest is open or its backing file exists. *)

val generation : t -> int
(** Highest committed index generation (0 when no manifest exists). *)

val table_blocked : t -> string -> bool
(** True when the table belongs to a pending manifest operation that
    recovery could not resolve — its contents may be from an
    uncommitted generation and must not be served. *)

(** Outcome of resolving one pending operation during manifest replay. *)
type resolution = {
  res_op_id : int;
  res_op : string;  (** operation name from its [Begin] record *)
  res_tables : string list;
  res_outcome : string;  (** e.g. ["rolled forward"], ["rolled back"] *)
  res_ok : bool;  (** false when the op stayed pending (unresolvable) *)
}

val manifest_resolutions : t -> resolution list
(** What the last replay did, oldest first; empty when the manifest had
    nothing pending. *)

val manifest_unresolved : t -> int
(** Operations the last replay failed to resolve (their tables are
    blocked); [verify] exits 2 in the CLI when this is non-zero. *)

type op
(** Handle for an in-flight build operation. *)

val begin_op :
  t -> op:string -> tables:string list -> ?rollback:string list -> unit -> op
(** Append + fsync a [Begin] record naming the operation, every table
    it touches, and the tables recovery must quarantine if the commit
    record never becomes durable. Call {e before} the first table
    write. *)

val commit_op : t -> op -> unit
(** Sync-flush each of the operation's tables in turn, then append +
    fsync [Commit] (the single durability point) and [End]. *)

val abort_op : t -> op -> note:string -> unit
(** In-process failure path: quarantine the rollback tables now and
    mark the operation [Abort]ed so recovery does not redo the work. Do
    {e not} call this for a simulated crash ({!Pager.Injected_crash})
    — the point of the crash matrix is to leave the op pending. *)

val run_logged_op :
  t -> op:string -> steps:Manifest.action list -> unit -> unit
(** Redo-logged operation: append [Begin] + every [Step] + [Commit]
    (fsynced) {e before} applying any step to its table, then apply,
    sync-flush, and [End]. Steps must be physical and idempotent —
    absolute post-state values, not deltas. *)

val set_op_hook : (string -> unit) option -> unit
(** Test hook fired at every operation sequence point, with labels like
    ["op:add_document:logged"], ["op:rpl_build:flushed:rpls"],
    ["op:advisor_apply:committed"]. The crash matrix raises
    {!Pager.Injected_crash} from here. *)

val abort : t -> unit
(** Test hook: abandon the environment as a crashed process would —
    abort every pager (no flush), drop journal and manifest handles
    without their closing appends. *)
