module Framing = Trex_util.Framing
module Metrics = Trex_obs.Metrics
module Json = Trex_obs.Json

let m_appends = Metrics.counter "manifest.appends"
let m_corrupt = Metrics.counter "manifest.corrupt_records"
let m_torn = Metrics.counter "manifest.torn_tails"
let m_recovered = Metrics.counter "manifest.records_recovered"
let m_ops_begun = Metrics.counter "manifest.ops_begun"
let m_ops_committed = Metrics.counter "manifest.ops_committed"

type action =
  | Put of { table : string; key : string; value : string }
  | Remove of { table : string; key : string }
  | Remove_prefix of { table : string; prefix : string }

type record =
  | Checkpoint of { generation : int; next_op_id : int }
  | Begin of {
      op_id : int;
      op : string;
      tables : string list;
      rollback : string list;
      generation : int;
    }
  | Step of { op_id : int; action : action }
  | Commit of { op_id : int }
  | Abort of { op_id : int; note : string }
  | End of { op_id : int }

type status = Roll_forward | Roll_back

type pending = {
  p_op_id : int;
  p_op : string;
  p_tables : string list;
  p_rollback : string list;
  p_generation : int;
  p_status : status;
  p_steps : action list;
}

let magic = "TREXMF1\n"

type op_state = {
  mutable s_op : string;
  mutable s_tables : string list;
  mutable s_rollback : string list;
  mutable s_generation : int;
  mutable s_steps : action list; (* newest first *)
  mutable s_committed : bool;
  mutable s_resolved : bool;
}

type backend = Mem | File of { fd : Unix.file_descr; file_path : string }

type t = {
  backend : backend;
  ops : (int, op_state) Hashtbl.t;
  mutable order : int list; (* op ids, newest Begin first *)
  mutable stored : record list; (* newest first *)
  mutable count : int;
  mutable generation : int; (* highest committed *)
  mutable issued : int; (* highest generation any Begin carries *)
  mutable next_op_id : int;
  mutable closed : bool;
}

(* ------------------------------------------------------------------ *)
(* Hex codec: keys and values are raw B+tree bytes, so they pass
   through JSON hex-encoded. *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

exception Bad_hex

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise Bad_hex;
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Bad_hex
  in
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] * 16) + digit s.[(2 * i) + 1]))

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let action_to_json = function
  | Put { table; key; value } ->
      Json.Obj
        [
          ("a", Json.String "put");
          ("tbl", Json.String table);
          ("k", Json.String (to_hex key));
          ("v", Json.String (to_hex value));
        ]
  | Remove { table; key } ->
      Json.Obj
        [
          ("a", Json.String "rm");
          ("tbl", Json.String table);
          ("k", Json.String (to_hex key));
        ]
  | Remove_prefix { table; prefix } ->
      Json.Obj
        [
          ("a", Json.String "rmp");
          ("tbl", Json.String table);
          ("k", Json.String (to_hex prefix));
        ]

let record_to_json = function
  | Checkpoint { generation; next_op_id } ->
      Json.Obj
        [
          ("t", Json.String "checkpoint");
          ("gen", Json.Int generation);
          ("next", Json.Int next_op_id);
        ]
  | Begin { op_id; op; tables; rollback; generation } ->
      Json.Obj
        [
          ("t", Json.String "begin");
          ("id", Json.Int op_id);
          ("op", Json.String op);
          ("tables", Json.List (List.map (fun s -> Json.String s) tables));
          ("rollback", Json.List (List.map (fun s -> Json.String s) rollback));
          ("gen", Json.Int generation);
        ]
  | Step { op_id; action } ->
      Json.Obj
        (("t", Json.String "step")
        :: ("id", Json.Int op_id)
        ::
        (match action_to_json action with Json.Obj fields -> fields | _ -> []))
  | Commit { op_id } ->
      Json.Obj [ ("t", Json.String "commit"); ("id", Json.Int op_id) ]
  | Abort { op_id; note } ->
      Json.Obj
        [
          ("t", Json.String "abort");
          ("id", Json.Int op_id);
          ("note", Json.String note);
        ]
  | End { op_id } -> Json.Obj [ ("t", Json.String "end"); ("id", Json.Int op_id) ]

let jstr j k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let jint j k =
  match Json.member k j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let jstrs j k =
  match Json.member k j with
  | Some (Json.List l) ->
      Some (List.filter_map (function Json.String s -> Some s | _ -> None) l)
  | _ -> None

let action_of_json j =
  match (jstr j "a", jstr j "tbl", jstr j "k") with
  | Some "put", Some table, Some k -> (
      match jstr j "v" with
      | Some v -> (
          match (of_hex k, of_hex v) with
          | key, value -> Some (Put { table; key; value })
          | exception Bad_hex -> None)
      | None -> None)
  | Some "rm", Some table, Some k -> (
      match of_hex k with
      | key -> Some (Remove { table; key })
      | exception Bad_hex -> None)
  | Some "rmp", Some table, Some k -> (
      match of_hex k with
      | prefix -> Some (Remove_prefix { table; prefix })
      | exception Bad_hex -> None)
  | _ -> None

let record_of_json j =
  match jstr j "t" with
  | Some "checkpoint" -> (
      match (jint j "gen", jint j "next") with
      | Some generation, Some next_op_id -> Some (Checkpoint { generation; next_op_id })
      | _ -> None)
  | Some "begin" -> (
      match (jint j "id", jstr j "op", jint j "gen") with
      | Some op_id, Some op, Some generation ->
          Some
            (Begin
               {
                 op_id;
                 op;
                 tables = Option.value ~default:[] (jstrs j "tables");
                 rollback = Option.value ~default:[] (jstrs j "rollback");
                 generation;
               })
      | _ -> None)
  | Some "step" -> (
      match (jint j "id", action_of_json j) with
      | Some op_id, Some action -> Some (Step { op_id; action })
      | _ -> None)
  | Some "commit" -> (
      match jint j "id" with Some op_id -> Some (Commit { op_id }) | None -> None)
  | Some "abort" -> (
      match jint j "id" with
      | Some op_id ->
          Some (Abort { op_id; note = Option.value ~default:"" (jstr j "note") })
      | None -> None)
  | Some "end" -> (
      match jint j "id" with Some op_id -> Some (End { op_id }) | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Derived state                                                       *)

(* Fold one record into the op table. Orphan records (a Step/Commit/End
   whose Begin was lost to corruption) carry no recoverable intent, so
   they are counted corrupt and dropped — the per-table CRCs still
   guard the data they described. *)
let apply_record t r =
  match r with
  | Checkpoint { generation; next_op_id } ->
      t.generation <- max t.generation generation;
      t.issued <- max t.issued generation;
      t.next_op_id <- max t.next_op_id next_op_id
  | Begin { op_id; op; tables; rollback; generation } ->
      Hashtbl.replace t.ops op_id
        {
          s_op = op;
          s_tables = tables;
          s_rollback = rollback;
          s_generation = generation;
          s_steps = [];
          s_committed = false;
          s_resolved = false;
        };
      t.order <- op_id :: t.order;
      t.issued <- max t.issued generation;
      t.next_op_id <- max t.next_op_id (op_id + 1)
  | Step { op_id; action } -> (
      match Hashtbl.find_opt t.ops op_id with
      | Some s -> s.s_steps <- action :: s.s_steps
      | None -> Metrics.incr m_corrupt)
  | Commit { op_id } -> (
      match Hashtbl.find_opt t.ops op_id with
      | Some s ->
          s.s_committed <- true;
          t.generation <- max t.generation s.s_generation
      | None -> Metrics.incr m_corrupt)
  | Abort { op_id; _ } | End { op_id } -> (
      match Hashtbl.find_opt t.ops op_id with
      | Some s -> s.s_resolved <- true
      | None -> Metrics.incr m_corrupt)

(* Framed-payload codec for {!Trex_util.Framing} (same on-disk
   discipline as the query journal): undecodable JSON is a corrupt
   frame. *)
let decode payload =
  match record_of_json (Json.parse payload) with
  | r -> r
  | exception Json.Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let make backend records =
  let t =
    {
      backend;
      ops = Hashtbl.create 8;
      order = [];
      stored = [];
      count = 0;
      generation = 0;
      issued = 0;
      next_op_id = 0;
      closed = false;
    }
  in
  List.iter
    (fun r ->
      apply_record t r;
      t.stored <- r :: t.stored;
      t.count <- t.count + 1)
    records;
  t

let in_memory () = make Mem []

let open_file file_path =
  let swept = Framing.open_file ~magic ~decode file_path in
  Metrics.add m_corrupt swept.Framing.corrupt;
  Metrics.add m_recovered (List.length swept.Framing.records);
  if swept.Framing.torn then Metrics.incr m_torn;
  make (File { fd = swept.Framing.fd; file_path }) swept.Framing.records

let path t = match t.backend with Mem -> None | File f -> Some f.file_path
let records t = List.rev t.stored
let length t = t.count
let generation t = t.generation
let next_generation t = t.issued + 1

let fresh_op_id t =
  let id = t.next_op_id in
  t.next_op_id <- id + 1;
  id

let append t r =
  if t.closed then invalid_arg "Manifest.append: manifest is closed";
  (match t.backend with
  | Mem -> ()
  | File { fd; _ } -> Framing.append fd (Json.to_string (record_to_json r)));
  apply_record t r;
  t.stored <- r :: t.stored;
  t.count <- t.count + 1;
  Metrics.incr m_appends;
  (match r with
  | Begin _ -> Metrics.incr m_ops_begun
  | Commit _ -> Metrics.incr m_ops_committed
  | _ -> ())

let sync t =
  match t.backend with
  | Mem -> ()
  | File { fd; _ } -> if not t.closed then Unix.fsync fd

let pending t =
  List.rev t.order
  |> List.filter_map (fun op_id ->
         match Hashtbl.find_opt t.ops op_id with
         | Some s when not s.s_resolved ->
             Some
               {
                 p_op_id = op_id;
                 p_op = s.s_op;
                 p_tables = s.s_tables;
                 p_rollback = s.s_rollback;
                 p_generation = s.s_generation;
                 p_status = (if s.s_committed then Roll_forward else Roll_back);
                 p_steps = List.rev s.s_steps;
               }
         | _ -> None)

let compact t =
  if pending t = [] then begin
    let checkpoint = Checkpoint { generation = t.generation; next_op_id = t.next_op_id } in
    (match t.backend with
    | Mem -> ()
    | File { fd; _ } ->
        Framing.reset ~magic fd;
        Framing.append fd (Json.to_string (record_to_json checkpoint));
        Unix.fsync fd);
    Hashtbl.reset t.ops;
    t.order <- [];
    t.stored <- [ checkpoint ];
    t.count <- 1
  end

let close t =
  if not t.closed then begin
    (match t.backend with
    | Mem -> ()
    | File { fd; _ } ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        Unix.close fd);
    t.closed <- true
  end

let abort t =
  if not t.closed then begin
    (match t.backend with Mem -> () | File { fd; _ } -> Unix.close fd);
    t.closed <- true
  end
