(** Paged storage with an LRU page cache, page checksums and
    torn-write-proof header commits.

    This is the lowest layer of the BerkeleyDB-replacement substrate:
    fixed-size pages addressed by page id, backed either by an ordinary
    file or by memory (for tests and small corpora). All B+tree nodes
    live in pages obtained here, and the pager records read/write/hit
    statistics so experiments can report I/O work.

    Durability model (file backend):
    - every page is written together with a CRC32 trailer in one
      syscall; physical reads verify it and raise {!Corruption} instead
      of returning garbage;
    - the header (page size, page count, root) lives in two alternating
      slots, each individually checksummed and stamped with a commit
      epoch. {!flush} writes dirty pages first and only then commits the
      header to the slot the previous epoch does not occupy, so a crash
      at any byte boundary leaves at least one valid header. {!flush}
      with [~sync:true] additionally [fsync]s around the header commit;
    - there is no write-ahead log: a crash between commits can lose or
      mix page-granularity updates, but {!open_with_recovery} plus the
      checksum sweep guarantees the damage is detected, never silently
      served. *)

type t

type stats = {
  physical_reads : int;  (** pages fetched from the backing store *)
  physical_writes : int;  (** pages flushed to the backing store *)
  cache_hits : int;
  cache_misses : int;
  checksum_failures : int;  (** physical reads rejected by CRC *)
  recoveries : int;  (** 1 iff this handle was opened via header fallback *)
}

type corruption_info = { path : string; page : int; detail : string }
(** [page] is [-1] for file-level damage (header, truncation). *)

exception Corruption of corruption_info
(** Raised instead of propagating bytes that fail validation. *)

val create_memory : ?page_size:int -> unit -> t
(** Purely in-memory pager; pages live until {!close}. *)

val create_file : ?page_size:int -> ?cache_pages:int -> string -> t
(** [create_file path] truncates/creates [path]. [cache_pages] bounds
    the number of resident pages (default 4096). [page_size] must be in
    (0, 1 MiB]. *)

val open_file : ?cache_pages:int -> string -> t
(** Re-open a pager file written by {!create_file}; the page size is
    read from the newest valid header slot. Strict: raises
    {!Corruption} if either header slot is damaged, the file is
    truncated, or header fields are absurd — use {!open_with_recovery}
    to fall back to the older committed epoch. *)

type recovery = {
  recovered : bool;  (** the newest header slot was damaged *)
  epoch_used : int;
  note : string;  (** human-readable summary for logs/CLI *)
}

val open_with_recovery : ?cache_pages:int -> string -> t * recovery
(** Like {!open_file}, but when the newest header slot is damaged it
    falls back to the older committed epoch instead of raising, setting
    [recovered] (and the {!stats} [recoveries] counter). Still raises
    {!Corruption} when no valid header survives. *)

val page_size : t -> int
val page_count : t -> int

val allocate : t -> int
(** Extend the store by one zeroed page and return its id. *)

val read : t -> int -> bytes
(** [read t id] returns the page contents. The returned buffer is the
    live cached copy: it is invalidated by a later {!write} to the same
    id, and mutating it without a subsequent {!write} is a bug. Callers
    that hold a page across writes must use {!read_copy}.
    @raise Invalid_argument on an out-of-range id.
    @raise Corruption if the on-disk page fails its checksum. *)

val read_copy : t -> int -> bytes
(** Like {!read} but returns a private copy, safe to hold or mutate. *)

val write : t -> int -> bytes -> unit
(** Replace page [id]. The buffer length must equal [page_size t]. *)

val set_root : t -> int -> unit
(** Record a distinguished page id (the B+tree root). Buffered: it is
    persisted by the next {!flush}/{!close} header commit, after the
    pages it refers to. *)

val get_root : t -> int
(** Last value passed to {!set_root}, or [-1]. *)

val flush : ?sync:bool -> t -> unit
(** Write dirty pages, then commit the header under a fresh epoch.
    [~sync:true] (default false) makes it a durable commit point:
    [fsync] after the pages and again after the header. *)

val verify_checksums : t -> (int * string) list
(** Physically re-read every page and report [(page, detail)] for each
    one failing its CRC or truncated, bypassing the cache. [[]] means
    the on-disk image is bytewise sound (always [[]] in memory). *)

val stats : t -> stats
val close : t -> unit
(** Durable flush ([sync:true]) then release. *)

val abort : t -> unit
(** Release without flushing — the cache and any buffered root/header
    update are dropped, as a crash would drop them. Used by the fault
    harness to simulate dying at an injection point. *)

(** {1 Deterministic fault injection}

    The crash-matrix tests wrap a file pager in a fault plan; faults
    key on the pager's raw-write sequence number, which counts every
    page write {e and} header-slot write, so any physical commit point
    can be targeted deterministically. *)

exception Injected_crash of string
(** Simulated power cut. The pager must then be {!abort}ed, not
    {!close}d (closing would flush and "un-crash" it). *)

exception Io_transient of { path : string; op : string; detail : string }
(** An injected transient I/O error. Raised before any bytes move, so a
    failed attempt has no on-disk effect; physical page reads, writes
    and fsyncs retry these internally under {!retry_policy} and only an
    exhausted retry budget escapes (as
    [Trex_resilience.Retry.Exhausted], which the circuit-breaker layer
    treats as a table failure). *)

type transient_spec = {
  seed : int;  (** PRNG seed; equal seeds replay equal fault schedules *)
  fail_one_in : int;  (** an episode starts with probability 1/n per op *)
  fail_streak : int;
      (** consecutive failures per episode — the op succeeds on attempt
          [fail_streak + 1], so retry with more attempts than the streak
          always recovers *)
}

type fault =
  | Crash_after_writes of int
      (** allow that many raw writes, then raise {!Injected_crash}
          before the next one touches the file *)
  | Torn_write of { after_writes : int; keep_bytes : int }
      (** write #[after_writes+1] persists only its first [keep_bytes]
          bytes, then raises {!Injected_crash} *)
  | Flip_bit of { after_writes : int; byte_index : int; bit : int }
      (** silently corrupt one bit of write #[after_writes+1]
          ([byte_index] wraps modulo the write length) *)
  | Drop_fsync  (** turn [fsync] into a no-op *)
  | Transient_read of transient_spec
      (** physical page reads fail transiently per the spec *)
  | Transient_write of transient_spec
      (** physical page writes fail transiently per the spec *)
  | Transient_fsync of transient_spec
      (** fsyncs fail transiently per the spec *)

val create_faulty : faults:fault list -> t -> t
(** Arm a fault plan on a pager (returned for chaining). *)

val set_retry_policy : Trex_resilience.Retry.policy -> unit
(** Replace the process-wide policy under which physical page I/O
    retries {!Io_transient} failures (default
    [Trex_resilience.Retry.default_policy]). *)

val retry_policy : unit -> Trex_resilience.Retry.policy

val clear_faults : t -> unit
val io_seq : t -> int
(** Raw writes performed so far; [Crash_after_writes (io_seq t)] crashes
    on the very next write. *)

val path : t -> string
(** Backing file path, or ["<memory>"]. *)
