(** The corpus index: summary + [Elements] + [PostingLists] (+ document
    and term statistics), built once over a document collection and then
    read by every retrieval strategy.

    Building follows the paper's §2.2: every element is recorded under
    its summary sid keyed by (SID, docid, endpos); every term occurrence
    is recorded in a position-ordered, chunked posting list. *)

type stats = {
  doc_count : int;
  total_bytes : int;  (** XML source bytes *)
  element_count : int;
  avg_element_length : float;  (** mean element source length in bytes *)
  term_count : int;  (** distinct terms *)
  posting_count : int;  (** total term occurrences *)
}

type t

val build :
  env:Trex_storage.Env.t ->
  summary:Trex_summary.Summary.t ->
  ?analyzer:Trex_text.Analyzer.config ->
  ?compress:bool ->
  (string * string) Seq.t ->
  t
(** [build ~env ~summary docs] parses each [(name, xml)] document,
    assigns docids in sequence order, grows the summary, and bulk-loads
    the tables into [env]. [compress] (default [true]) stores posting
    lists as block-compressed segments instead of v1 fixed-size chunks;
    the choice is recorded in the [meta] table and honoured by
    {!add_document}. Reads always dispatch on the per-value format
    marker, so either layout (or a mix) is served identically.
    @raise Trex_xml.Sax.Malformed on bad input. *)

val attach : Trex_storage.Env.t -> t
(** Re-open an index previously built in this environment (metadata,
    summary and statistics are read back from the [meta] table).
    @raise Failure if the environment holds no index. *)

val add_document :
  ?invalidation:(string list -> Trex_storage.Manifest.action list) ->
  t ->
  name:string ->
  xml:string ->
  int * string list
(** Incrementally index one more document: grows the summary, inserts
    its elements and postings, updates per-term and corpus statistics
    and persists the refreshed metadata. Returns the new docid and the
    document's distinct normalized terms.

    The whole ingest is one redo-logged manifest operation
    ([Env.run_logged_op]): either every table reflects the document or
    none does, across crashes. [invalidation], given the document's
    distinct normalized terms, returns drop actions for redundant
    lists (RPLs/ERPLs) those terms make stale; they execute {e first}
    and atomically with the base-table writes, so a crash can never
    leave a half-indexed document with stale lists still servable (see
    [Trex.add_document], which wires this to the RPL catalogs).
    Existing lists of untouched terms remain consistent at the content
    level; relevance scores keep using the statistics of the index
    they were computed against until their lists are rebuilt.
    @raise Trex_xml.Sax.Malformed on bad input. *)

val env : t -> Trex_storage.Env.t
val summary : t -> Trex_summary.Summary.t
val analyzer : t -> Trex_text.Analyzer.config

val compressed : t -> bool
(** Whether new posting chunks are written block-compressed. *)

val stats : t -> stats

val term_stats : t -> string -> Tables.Terms.row option
(** Lookup by {e normalized} term. *)

(** {1 Scoring statistics}

    Relevance scoring must use corpus-wide statistics even when this
    index holds only one shard of a partitioned corpus. A coordinator
    installs overrides at open time; all scoring flows through
    {!scoring_corpus} and {!term_df}, so overridden statistics cover
    every strategy and RPL build uniformly. The overrides are in-memory
    only — they never touch {!stats} (whose [doc_count] also allocates
    the next local docid in {!add_document}). *)

type scoring_overrides = {
  corpus_doc_count : int;
  corpus_avg_element_length : float;
  global_df : string -> int option;
      (** corpus-wide document frequency of a normalized term; [None]
          falls back to this index's own Terms row *)
}

val set_scoring_overrides : t -> scoring_overrides -> unit
val clear_scoring_overrides : t -> unit

val scoring_corpus : t -> int * float
(** (doc_count, avg_element_length) to score against: the overrides
    when installed, this index's {!stats} otherwise. *)

val term_df : t -> string -> int
(** Document frequency to score with (overridden or local; 0 for an
    unknown term). *)

val iter_terms : t -> (string -> df:int -> cf:int -> unit) -> unit
(** Enumerate the Terms table in token order (for a coordinator
    summing per-shard document frequencies). *)

val normalize_term : t -> string -> string option
(** Push a raw query token through the index's analyzer. *)

val document : t -> int -> Tables.Documents.row option
val documents : t -> Tables.Documents.row list

val source : t -> int -> string option
(** The stored XML source of a document (for snippets and re-display);
    kept in a [sources] table at build time. *)

val element_text : t -> Types.element -> string option
(** Raw source bytes of the element's span, tags included; [None] when
    the document is unknown or the span is out of range. *)

val elements_bytes : t -> int
val postings_bytes : t -> int

(** Iterator over the posting list of one term, in position order —
    the paper's [I_t]. *)
module Posting_iter : sig
  type iter

  val create : t -> string -> iter
  (** The term must be normalized. An unknown term yields an iterator
      that is immediately exhausted. *)

  val next_position : iter -> Types.pos
  (** Returns {!Types.m_pos} once exhausted (and forever after). *)
end

(** Iterator over the elements of one extent, in (docid, endpos) order —
    the paper's [I_s]. *)
module Element_iter : sig
  type iter

  val create : t -> int -> iter

  val first_element : iter -> Types.element
  (** {!Types.dummy_element} when the extent is empty. *)

  val next_element_after : iter -> Types.pos -> Types.element
  (** First extent element whose (docid, endpos) exceeds the position;
      {!Types.dummy_element} when none remains. Implemented as a B+tree
      seek, as in the paper. *)
end

val extent_elements : t -> int -> Types.element list
(** All elements of an extent, in position order (for tests/examples). *)
