module Codec = Trex_util.Codec
module Env = Trex_storage.Env
module Bptree = Trex_storage.Bptree
module Summary = Trex_summary.Summary
module Analyzer = Trex_text.Analyzer
module Dom = Trex_xml.Dom

type stats = {
  doc_count : int;
  total_bytes : int;
  element_count : int;
  avg_element_length : float;
  term_count : int;
  posting_count : int;
}

type scoring_overrides = {
  corpus_doc_count : int;
  corpus_avg_element_length : float;
  global_df : string -> int option;
}

type t = {
  env : Env.t;
  summary : Summary.t;
  analyzer : Analyzer.config;
  compress : bool;
  mutable stats : stats;
  mutable overrides : scoring_overrides option;
}

let env t = t.env
let summary t = t.summary
let analyzer t = t.analyzer
let compressed t = t.compress
let stats t = t.stats
let set_scoring_overrides t o = t.overrides <- Some o
let clear_scoring_overrides t = t.overrides <- None

(* ---- metadata (de)serialization ---- *)

let meta_key name = Codec.key_of_string name

let encode_analyzer (a : Analyzer.config) =
  let b = Codec.Buf.create ~capacity:8 () in
  let flag v = Codec.Buf.add_varint b (if v then 1 else 0) in
  flag a.fold_case;
  flag a.strip_stopwords;
  flag a.stem;
  Codec.Buf.add_varint b a.min_token_length;
  Codec.Buf.contents b

let decode_analyzer s : Analyzer.config =
  let r = Codec.Reader.of_string s in
  let flag () = Codec.Reader.varint r = 1 in
  let fold_case = flag () in
  let strip_stopwords = flag () in
  let stem = flag () in
  let min_token_length = Codec.Reader.varint r in
  { fold_case; strip_stopwords; stem; min_token_length }

let encode_stats s =
  let b = Codec.Buf.create ~capacity:32 () in
  Codec.Buf.add_varint b s.doc_count;
  Codec.Buf.add_varint b s.total_bytes;
  Codec.Buf.add_varint b s.element_count;
  Codec.Buf.add_float b s.avg_element_length;
  Codec.Buf.add_varint b s.term_count;
  Codec.Buf.add_varint b s.posting_count;
  Codec.Buf.contents b

let decode_stats s =
  let r = Codec.Reader.of_string s in
  let doc_count = Codec.Reader.varint r in
  let total_bytes = Codec.Reader.varint r in
  let element_count = Codec.Reader.varint r in
  let avg_element_length = Codec.Reader.float r in
  let term_count = Codec.Reader.varint r in
  let posting_count = Codec.Reader.varint r in
  { doc_count; total_bytes; element_count; avg_element_length; term_count; posting_count }

(* ---- building ---- *)

let chunk_size = 64

(* Collect the text nodes of a parsed document with their source
   offsets, tokenized through the analyzer. *)
let doc_postings analyzer (doc : Dom.doc) =
  let acc = ref [] in
  let rec walk (el : Dom.element) =
    List.iter
      (function
        | Dom.Text { content; start_pos } ->
            acc := Analyzer.tokenize analyzer ~base_offset:start_pos content :: !acc
        | Dom.Element child -> walk child)
      el.children
  in
  walk doc.root;
  List.concat (List.rev !acc)

let build ~env ~summary ?(analyzer = Analyzer.default) ?(compress = true) docs =
  let element_rows = ref [] in
  let postings : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 4096 in
  let doc_rows = ref [] in
  let doc_count = ref 0 and total_bytes = ref 0 in
  let element_count = ref 0 and element_length_sum = ref 0 in
  let posting_count = ref 0 in
  let df : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let sources = ref [] in
  Seq.iter
    (fun (name, xml) ->
      let docid = !doc_count in
      incr doc_count;
      total_bytes := !total_bytes + String.length xml;
      let doc = Dom.parse xml in
      let observed = Summary.observe_document summary doc in
      List.iter
        (fun (sid, (el : Dom.element)) ->
          incr element_count;
          element_length_sum := !element_length_sum + Dom.length el;
          element_rows :=
            { Types.sid; docid; endpos = el.end_pos; length = Dom.length el }
            :: !element_rows)
        observed;
      let seen_in_doc = Hashtbl.create 64 in
      List.iter
        (fun (term, offset) ->
          incr posting_count;
          if not (Hashtbl.mem seen_in_doc term) then begin
            Hashtbl.add seen_in_doc term ();
            Hashtbl.replace df term (1 + Option.value ~default:0 (Hashtbl.find_opt df term))
          end;
          let cell =
            match Hashtbl.find_opt postings term with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add postings term l;
                l
          in
          cell := (docid, offset) :: !cell)
        (doc_postings analyzer doc);
      doc_rows :=
        {
          Tables.Documents.docid;
          name;
          bytes = String.length xml;
          elements = List.length observed;
        }
        :: !doc_rows;
      sources := (docid, xml) :: !sources)
    docs;
  (* Elements: sort rows by (sid, docid, endpos) and bulk load. Keys are
     strictly ascending: two extent-mates can share an endpos only by
     nesting, which nesting-free summaries exclude. *)
  let elements_tbl = Env.table env Tables.Elements.name in
  let sorted_elements =
    List.sort
      (fun (a : Types.element) b ->
        match compare a.sid b.sid with
        | 0 -> Types.compare_element a b
        | c -> c)
      !element_rows
  in
  ignore
    (Bptree.bulk_load (Bptree.pager elements_tbl)
       (List.to_seq sorted_elements |> Seq.map Tables.Elements.encode));
  Bptree.refresh elements_tbl;
  (* PostingLists: per-term position-sorted chunks, bulk-loaded in key
     order. Tokens are produced in document order per term, so the
     accumulated (reversed) lists just need reversing. *)
  let tokens =
    Hashtbl.fold (fun tok _ acc -> tok :: acc) postings []
    |> List.sort String.compare
  in
  let chunk_rows ~token positions =
    if compress then Tables.Posting_lists.segment_rows ~token positions
    else begin
      let rec chunks acc = function
        | [] -> List.rev acc
        | l ->
            let rec take n acc rest =
              match (n, rest) with
              | 0, _ | _, [] -> (List.rev acc, rest)
              | n, x :: tl -> take (n - 1) (x :: acc) tl
            in
            let chunk, rest = take chunk_size [] l in
            chunks (Tables.Posting_lists.encode_chunk ~token chunk :: acc) rest
      in
      chunks [] positions
    end
  in
  let posting_rows token =
    let cell = Hashtbl.find postings token in
    let positions =
      List.rev_map (fun (docid, offset) -> { Types.docid; offset }) !cell
    in
    chunk_rows ~token positions
  in
  let postings_tbl = Env.table env Tables.Posting_lists.name in
  let posting_seq =
    List.to_seq tokens |> Seq.concat_map (fun tok -> List.to_seq (posting_rows tok))
  in
  ignore (Bptree.bulk_load (Bptree.pager postings_tbl) posting_seq);
  Bptree.refresh postings_tbl;
  let documents_tbl = Env.table env Tables.Documents.name in
  List.iter
    (fun row ->
      let k, v = Tables.Documents.encode row in
      Bptree.insert documents_tbl ~key:k ~value:v)
    (List.rev !doc_rows);
  (* Sources: raw XML chunked under (docid, chunk_no) so documents of
     any size fit the B+tree entry budget. *)
  let sources_tbl = Env.table env "sources" in
  let source_chunk = 1024 in
  List.iter
    (fun (docid, xml) ->
      let len = String.length xml in
      let n_chunks = (len + source_chunk - 1) / source_chunk in
      for c = 0 to max 0 (n_chunks - 1) do
        let piece = String.sub xml (c * source_chunk) (min source_chunk (len - (c * source_chunk))) in
        Bptree.insert sources_tbl
          ~key:(Codec.concat_keys [ Codec.key_of_int docid; Codec.key_of_int c ])
          ~value:piece
      done)
    (List.rev !sources);
  let terms_tbl = Env.table env Tables.Terms.name in
  List.iter
    (fun token ->
      let cf = List.length !(Hashtbl.find postings token) in
      let dfv = Option.value ~default:0 (Hashtbl.find_opt df token) in
      let k, v = Tables.Terms.encode { Tables.Terms.token; df = dfv; cf } in
      Bptree.insert terms_tbl ~key:k ~value:v)
    tokens;
  let stats =
    {
      doc_count = !doc_count;
      total_bytes = !total_bytes;
      element_count = !element_count;
      avg_element_length =
        (if !element_count = 0 then 0.0
         else float_of_int !element_length_sum /. float_of_int !element_count);
      term_count = List.length tokens;
      posting_count = !posting_count;
    }
  in
  let meta = Env.table env Tables.meta_table in
  Bptree.insert meta ~key:(meta_key "summary") ~value:(Summary.to_string summary);
  Bptree.insert meta ~key:(meta_key "analyzer") ~value:(encode_analyzer analyzer);
  Bptree.insert meta ~key:(meta_key "stats") ~value:(encode_stats stats);
  Bptree.insert meta
    ~key:(meta_key "postings_layout")
    ~value:(if compress then "blocked" else "raw");
  Env.flush env;
  { env; summary; analyzer; compress; stats; overrides = None }

let attach env =
  let meta = Env.table env Tables.meta_table in
  let get name =
    match Bptree.find meta (meta_key name) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Index.attach: missing meta key %s" name)
  in
  (* Environments predating the layout key hold v1 chunks only; keep
     appending v1 there so a pure-raw env stays pure-raw. Reads always
     dispatch per value, so either way is safe. *)
  let compress =
    match Bptree.find meta (meta_key "postings_layout") with
    | Some "blocked" -> true
    | Some _ | None -> false
  in
  {
    env;
    summary = Summary.of_string (get "summary");
    analyzer = decode_analyzer (get "analyzer");
    compress;
    stats = decode_stats (get "stats");
    overrides = None;
  }

(* ---- lookups ---- *)

let term_stats t token =
  match Bptree.find (Env.table t.env Tables.Terms.name) (Codec.key_of_string token) with
  | Some v -> Some (Tables.Terms.decode (Codec.key_of_string token) v)
  | None -> None

(* Override-aware scoring statistics: a sharded coordinator installs
   corpus-wide doc_count / avg_element_length / df so every shard
   scores exactly as the single-env index would; standalone indexes
   fall through to their own tables. *)
let scoring_corpus t =
  match t.overrides with
  | Some o -> (o.corpus_doc_count, o.corpus_avg_element_length)
  | None -> (t.stats.doc_count, t.stats.avg_element_length)

let term_df t token =
  let local () =
    match term_stats t token with
    | Some row -> row.Tables.Terms.df
    | None -> 0
  in
  match t.overrides with
  | Some o -> ( match o.global_df token with Some df -> df | None -> local ())
  | None -> local ()

let iter_terms t f =
  Bptree.iter (Env.table t.env Tables.Terms.name) (fun k v ->
      let row = Tables.Terms.decode k v in
      f row.Tables.Terms.token ~df:row.Tables.Terms.df ~cf:row.Tables.Terms.cf)

let normalize_term t raw = Analyzer.normalize t.analyzer raw

let document t docid =
  let key = Codec.key_of_int docid in
  match Bptree.find (Env.table t.env Tables.Documents.name) key with
  | Some v -> Some (Tables.Documents.decode key v)
  | None -> None

let documents t =
  let out = ref [] in
  Bptree.iter (Env.table t.env Tables.Documents.name) (fun k v ->
      out := Tables.Documents.decode k v :: !out);
  List.rev !out

let source t docid =
  let tbl = Env.table t.env "sources" in
  let b = Buffer.create 4096 in
  let found = ref false in
  Bptree.iter_prefix tbl ~prefix:(Codec.key_of_int docid) (fun _ v ->
      found := true;
      Buffer.add_string b v);
  if !found then Some (Buffer.contents b) else None

let element_text t (e : Types.element) =
  match source t e.docid with
  | None -> None
  | Some xml ->
      let start = Types.start_pos e in
      if start < 0 || e.endpos > String.length xml || e.length <= 0 then None
      else Some (String.sub xml start e.length)

let elements_bytes t = Env.table_bytes t.env Tables.Elements.name
let postings_bytes t = Env.table_bytes t.env Tables.Posting_lists.name

(* ---- iterators ---- *)

module Posting_iter = struct
  type iter = {
    cursor : Bptree.Cursor.cursor;
    prefix : string;
    mutable chunk : Types.pos list;
    mutable segment : (Codec.Block.t * int) option;
        (* current v2 segment and next undecoded block index: blocks
           are decoded one at a time as the chunk drains *)
    mutable exhausted : bool;
  }

  let create t token =
    let tbl = Env.table t.env Tables.Posting_lists.name in
    let prefix = Tables.Posting_lists.token_prefix token in
    {
      cursor = Bptree.Cursor.seek tbl prefix;
      prefix;
      chunk = [];
      segment = None;
      exhausted = false;
    }

  let rec next_position it =
    match it.chunk with
    | p :: rest ->
        it.chunk <- rest;
        p
    | [] -> (
        match it.segment with
        | Some (seg, i) when i < Codec.Block.block_count seg ->
            let info =
              Tables.Posting_lists.decode_block_header (Codec.Block.header seg i)
            in
            it.chunk <-
              Tables.Posting_lists.decode_block info (Codec.Block.payload seg i);
            it.segment <- Some (seg, i + 1);
            next_position it
        | _ ->
            it.segment <- None;
            if it.exhausted then Types.m_pos
            else begin
              match Bptree.Cursor.next it.cursor with
              | Some (k, v)
                when String.length k >= String.length it.prefix
                     && String.sub k 0 (String.length it.prefix) = it.prefix -> (
                  match Codec.Block.of_string v with
                  | Some seg ->
                      it.segment <- Some (seg, 0);
                      next_position it
                  | None ->
                      it.chunk <- Tables.Posting_lists.decode_chunk v;
                      next_position it)
              | Some _ | None ->
                  it.exhausted <- true;
                  Types.m_pos
            end)
end

module Element_iter = struct
  type iter = { tbl : Bptree.t; sid : int; prefix : string }

  let create t sid =
    {
      tbl = Env.table t.env Tables.Elements.name;
      sid;
      prefix = Tables.Elements.sid_prefix sid;
    }

  let decode_if_in_extent it = function
    | Some (k, v)
      when String.length k >= String.length it.prefix
           && String.sub k 0 (String.length it.prefix) = it.prefix ->
        Tables.Elements.decode k v
    | Some _ | None -> Types.dummy_element

  let first_element it =
    let c = Bptree.Cursor.seek it.tbl it.prefix in
    decode_if_in_extent it (Bptree.Cursor.next c)

  let next_element_after it (p : Types.pos) =
    if Types.is_m_pos p then Types.dummy_element
    else begin
      let key =
        Tables.Elements.key ~sid:it.sid ~docid:p.docid ~endpos:(p.offset + 1)
      in
      let c = Bptree.Cursor.seek it.tbl key in
      decode_if_in_extent it (Bptree.Cursor.next c)
    end
end

(* Incremental ingest as one redo-logged manifest operation
   ([Env.run_logged_op]): nothing is written to any table until the
   whole plan — drops of invalidated redundant lists first, then every
   base-table put with absolute post-state values — is durable in the
   manifest together with its Commit record. A crash before the commit
   leaves the index exactly at the pre-document state; after it,
   recovery replays the idempotent steps. This closes the old
   stale-list window where a crash between dropping RPLs and writing
   [Elements]/[PostingLists] could leave a half-indexed document with
   stale lists still servable. *)
let add_document ?invalidation t ~name ~xml =
  let docid = t.stats.doc_count in
  let doc = Dom.parse xml in
  let observed = Summary.observe_document t.summary doc in
  let steps = ref [] in
  let put table (key, value) =
    steps := Trex_storage.Manifest.Put { table; key; value } :: !steps
  in
  (* Elements. *)
  let length_sum = ref 0 in
  List.iter
    (fun (sid, (el : Dom.element)) ->
      length_sum := !length_sum + Dom.length el;
      put Tables.Elements.name
        (Tables.Elements.encode
           { Types.sid; docid; endpos = el.end_pos; length = Dom.length el }))
    observed;
  (* Postings: the new docid exceeds every existing one, so fresh
     chunks sort after each term's existing chunks. *)
  let tokens = doc_postings t.analyzer doc in
  let by_term : (string, Types.pos list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (term, offset) ->
      let cell =
        match Hashtbl.find_opt by_term term with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add by_term term c;
            c
      in
      cell := { Types.docid; offset } :: !cell)
    tokens;
  let terms_tbl = Env.table t.env Tables.Terms.name in
  let new_terms = ref 0 in
  let doc_terms = ref [] in
  Hashtbl.iter
    (fun term cell ->
      doc_terms := term :: !doc_terms;
      let positions = List.rev !cell in
      if t.compress then
        List.iter
          (fun row -> put Tables.Posting_lists.name row)
          (Tables.Posting_lists.segment_rows ~token:term positions)
      else begin
        let rec chunked = function
          | [] -> ()
          | l ->
              let rec take n acc rest =
                match (n, rest) with
                | 0, _ | _, [] -> (List.rev acc, rest)
                | n, x :: tl -> take (n - 1) (x :: acc) tl
              in
              let chunk, rest = take chunk_size [] l in
              put Tables.Posting_lists.name
                (Tables.Posting_lists.encode_chunk ~token:term chunk);
              chunked rest
        in
        chunked positions
      end;
      (* Terms rows are logged as absolute post-state (not +1 deltas)
         so replaying the step is idempotent. *)
      let row =
        match Bptree.find terms_tbl (Codec.key_of_string term) with
        | Some v ->
            let old = Tables.Terms.decode (Codec.key_of_string term) v in
            { old with Tables.Terms.df = old.df + 1; cf = old.cf + List.length positions }
        | None ->
            incr new_terms;
            { Tables.Terms.token = term; df = 1; cf = List.length positions }
      in
      put Tables.Terms.name (Tables.Terms.encode row))
    by_term;
  (* Documents and sources. *)
  put Tables.Documents.name
    (Tables.Documents.encode
       { Tables.Documents.docid; name; bytes = String.length xml; elements = List.length observed });
  let source_chunk = 1024 in
  let len = String.length xml in
  let n_chunks = (len + source_chunk - 1) / source_chunk in
  for c = 0 to n_chunks - 1 do
    let piece = String.sub xml (c * source_chunk) (min source_chunk (len - (c * source_chunk))) in
    put "sources"
      (Codec.concat_keys [ Codec.key_of_int docid; Codec.key_of_int c ], piece)
  done;
  (* Statistics and summary, also absolute post-state. *)
  let old = t.stats in
  let new_element_count = old.element_count + List.length observed in
  let new_stats =
    {
      doc_count = old.doc_count + 1;
      total_bytes = old.total_bytes + String.length xml;
      element_count = new_element_count;
      avg_element_length =
        (if new_element_count = 0 then 0.0
         else
           ((old.avg_element_length *. float_of_int old.element_count)
           +. float_of_int !length_sum)
           /. float_of_int new_element_count);
      term_count = old.term_count + !new_terms;
      posting_count = old.posting_count + List.length tokens;
    }
  in
  put Tables.meta_table (meta_key "summary", Summary.to_string t.summary);
  put Tables.meta_table (meta_key "stats", encode_stats new_stats);
  let doc_terms = List.sort String.compare !doc_terms in
  (* Drops of invalidated redundant lists go first: the stale RPL/ERPL
     lists and their catalog rows disappear before any base table
     changes, and atomically with them. *)
  let drops =
    match invalidation with None -> [] | Some f -> f doc_terms
  in
  Env.run_logged_op t.env ~op:"add_document" ~steps:(drops @ List.rev !steps) ();
  t.stats <- new_stats;
  (docid, doc_terms)

let extent_elements t sid =
  let tbl = Env.table t.env Tables.Elements.name in
  let out = ref [] in
  Bptree.iter_prefix tbl ~prefix:(Tables.Elements.sid_prefix sid) (fun k v ->
      out := Tables.Elements.decode k v :: !out);
  List.rev !out
