module Codec = Trex_util.Codec

module Elements = struct
  let name = "elements"

  let key ~sid ~docid ~endpos =
    Codec.concat_keys
      [ Codec.key_of_int sid; Codec.key_of_int docid; Codec.key_of_int endpos ]

  let sid_prefix sid = Codec.key_of_int sid

  let encode (e : Types.element) =
    let b = Codec.Buf.create ~capacity:8 () in
    Codec.Buf.add_varint b e.length;
    (key ~sid:e.sid ~docid:e.docid ~endpos:e.endpos, Codec.Buf.contents b)

  let decode k v : Types.element =
    let sid, p = Codec.int_of_key k ~pos:0 in
    let docid, p = Codec.int_of_key k ~pos:p in
    let endpos, _ = Codec.int_of_key k ~pos:p in
    let r = Codec.Reader.of_string v in
    let length = Codec.Reader.varint r in
    { sid; docid; endpos; length }
end

module Posting_lists = struct
  let name = "postings"
  let token_prefix token = Codec.key_of_string token

  let key ~token ~(first : Types.pos) =
    Codec.concat_keys
      [
        Codec.key_of_string token;
        Codec.key_of_int first.docid;
        Codec.key_of_int first.offset;
      ]

  let encode_chunk ~token positions =
    match positions with
    | [] -> invalid_arg "Posting_lists.encode_chunk: empty chunk"
    | first :: _ ->
        let b = Codec.Buf.create ~capacity:256 () in
        Codec.Buf.add_varint b (List.length positions);
        (* Delta-encode within the chunk: docid deltas, then offset
           (absolute when the docid changed, delta otherwise). *)
        let prev = ref { Types.docid = 0; offset = 0 } in
        List.iter
          (fun (p : Types.pos) ->
            let ddoc = p.docid - !prev.docid in
            Codec.Buf.add_varint b ddoc;
            if ddoc = 0 then Codec.Buf.add_varint b (p.offset - !prev.offset)
            else Codec.Buf.add_varint b p.offset;
            prev := p)
          positions;
        (key ~token ~first, Codec.Buf.contents b)

  let decode_chunk v =
    let r = Codec.Reader.of_string v in
    let n = Codec.Reader.varint r in
    let prev = ref { Types.docid = 0; offset = 0 } in
    (* Explicit in-order loop: [List.init] applies its function in an
       unspecified order, which scrambles a stateful reader. *)
    let out = ref [] in
    for _ = 1 to n do
      let ddoc = Codec.Reader.varint r in
      let docid = !prev.docid + ddoc in
      let offset =
        if ddoc = 0 then !prev.offset + Codec.Reader.varint r
        else Codec.Reader.varint r
      in
      let p = { Types.docid; offset } in
      prev := p;
      out := p :: !out
    done;
    List.rev !out

  (* ---- v2: block-compressed segments ----

     Several delta-encoded blocks share one table value behind a
     [Codec.Block] skip directory, so a posting list costs one key per
     ~1.5KB instead of one per 64 positions and decodes lazily per
     block. Values are self-describing (segments open with a negative
     marker varint, v1 chunks with a non-negative count), so both
     layouts can coexist in one table. *)

  let block_entries = 128
  let segment_budget = 1536

  type block_info = {
    first : Types.pos;
    last_docid : int;
    count : int;
    w_gap : int;  (** bit width of the docid-gap stream *)
    w_delta : int;  (** bit width of same-doc offset deltas *)
    w_abs : int;  (** bit width of doc-change absolute offsets *)
  }

  (* Frame-of-reference block layout. The first position lives in the
     header; the remaining [count - 1] split into three bit-packed
     streams, each at the narrowest width its block needs:

       gaps    docid deltas (one per entry; 0 = same document)
       deltas  offset - previous offset, for entries whose gap is 0
       abs     absolute offset, for entries whose gap is > 0

     Splitting offsets by gap keeps the common same-doc deltas (a few
     bits) from being widened to absolute-offset width, which a single
     packed stream — or plain varints, which spend 8 bits per value
     minimum — would force. The decoder recovers each stream's length
     from the gap stream alone, so no per-entry tags are stored. *)
  let encode_block positions =
    match positions with
    | [] -> invalid_arg "Posting_lists.encode_block: empty block"
    | (first : Types.pos) :: rest ->
        let last = List.fold_left (fun _ p -> p) first positions in
        let n = List.length positions in
        let gaps = Array.make (n - 1) 0 in
        let deltas = ref [] and abss = ref [] in
        let prev = ref first in
        List.iteri
          (fun i (p : Types.pos) ->
            let g = p.docid - !prev.docid in
            gaps.(i) <- g;
            if g = 0 then deltas := (p.offset - !prev.offset) :: !deltas
            else abss := p.offset :: !abss;
            prev := p)
          rest;
        let deltas = Array.of_list (List.rev !deltas) in
        let abss = Array.of_list (List.rev !abss) in
        let w_gap = Codec.Bitpack.width gaps in
        let w_delta = Codec.Bitpack.width deltas in
        let w_abs = Codec.Bitpack.width abss in
        let h = Codec.Buf.create ~capacity:16 () in
        Codec.Buf.add_uvarint h first.docid;
        Codec.Buf.add_uvarint h first.offset;
        Codec.Buf.add_uvarint h (last.Types.docid - first.docid);
        Codec.Buf.add_uvarint h n;
        Codec.Buf.add_uvarint h w_gap;
        Codec.Buf.add_uvarint h w_delta;
        Codec.Buf.add_uvarint h w_abs;
        let b = Codec.Buf.create ~capacity:256 () in
        Codec.Bitpack.pack b ~width:w_gap gaps;
        Codec.Bitpack.pack b ~width:w_delta deltas;
        Codec.Bitpack.pack b ~width:w_abs abss;
        (Codec.Buf.contents h, Codec.Buf.contents b)

  let decode_block_header r =
    let docid = Codec.Reader.uvarint r in
    let offset = Codec.Reader.uvarint r in
    let last_docid = docid + Codec.Reader.uvarint r in
    let count = Codec.Reader.uvarint r in
    if count < 1 then
      raise (Codec.Reader.Malformed "Posting_lists: empty block");
    let w_gap = Codec.Reader.uvarint r in
    let w_delta = Codec.Reader.uvarint r in
    let w_abs = Codec.Reader.uvarint r in
    { first = { Types.docid; offset }; last_docid; count; w_gap; w_delta; w_abs }

  let decode_block info r =
    let n = info.count in
    let gaps = Codec.Bitpack.unpack r ~width:info.w_gap ~count:(n - 1) in
    let n_abs = Array.fold_left (fun a g -> if g = 0 then a else a + 1) 0 gaps in
    let deltas =
      Codec.Bitpack.unpack r ~width:info.w_delta ~count:(n - 1 - n_abs)
    in
    let abss = Codec.Bitpack.unpack r ~width:info.w_abs ~count:n_abs in
    let prev = ref info.first in
    let di = ref 0 and ai = ref 0 in
    let out = ref [ info.first ] in
    for i = 0 to n - 2 do
      let p =
        if gaps.(i) = 0 then begin
          let p =
            { Types.docid = !prev.docid; offset = !prev.offset + deltas.(!di) }
          in
          incr di;
          p
        end
        else begin
          let p = { Types.docid = !prev.docid + gaps.(i); offset = abss.(!ai) } in
          incr ai;
          p
        end
      in
      prev := p;
      out := p :: !out
    done;
    List.rev !out

  (* Cut a sorted position list into (key, segment-value) rows, packing
     blocks until the byte budget (which keeps every row comfortably
     inside the B+tree entry budget even with long tokens). *)
  let segment_rows ~token positions =
    let rows = ref [] in
    let w = ref (Codec.Block.Writer.create ()) in
    let seg_first = ref None in
    let flush () =
      match !seg_first with
      | None -> ()
      | Some first ->
          rows := (key ~token ~first, Codec.Block.Writer.contents !w) :: !rows;
          w := Codec.Block.Writer.create ();
          seg_first := None
    in
    let rec take n acc rest =
      match (n, rest) with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | n, x :: tl -> take (n - 1) (x :: acc) tl
    in
    let rec loop = function
      | [] -> ()
      | l ->
          let block, rest = take block_entries [] l in
          let header, payload = encode_block block in
          if
            (not (Codec.Block.Writer.is_empty !w))
            && Codec.Block.Writer.byte_estimate !w
               + String.length header + String.length payload
               > segment_budget
          then flush ();
          if !seg_first = None then seg_first := Some (List.hd block);
          Codec.Block.Writer.add !w ~header ~payload;
          loop rest
    in
    loop positions;
    flush ();
    List.rev !rows

  (* Decode any posting value, v1 chunk or v2 segment, eagerly. *)
  let decode_value v =
    match Codec.Block.of_string v with
    | None -> decode_chunk v
    | Some seg ->
        let out = ref [] in
        for i = 0 to Codec.Block.block_count seg - 1 do
          let info = decode_block_header (Codec.Block.header seg i) in
          out := decode_block info (Codec.Block.payload seg i) :: !out
        done;
        List.concat (List.rev !out)
end

module Documents = struct
  type row = { docid : int; name : string; bytes : int; elements : int }

  let name = "documents"

  let encode row =
    let b = Codec.Buf.create () in
    Codec.Buf.add_string b row.name;
    Codec.Buf.add_varint b row.bytes;
    Codec.Buf.add_varint b row.elements;
    (Codec.key_of_int row.docid, Codec.Buf.contents b)

  let decode k v =
    let docid, _ = Codec.int_of_key k ~pos:0 in
    let r = Codec.Reader.of_string v in
    let name = Codec.Reader.string r in
    let bytes = Codec.Reader.varint r in
    let elements = Codec.Reader.varint r in
    { docid; name; bytes; elements }
end

module Terms = struct
  type row = { token : string; df : int; cf : int }

  let name = "terms"

  let encode row =
    let b = Codec.Buf.create ~capacity:8 () in
    Codec.Buf.add_varint b row.df;
    Codec.Buf.add_varint b row.cf;
    (Codec.key_of_string row.token, Codec.Buf.contents b)

  let decode k v =
    let token, _ = Codec.string_of_key k ~pos:0 in
    let r = Codec.Reader.of_string v in
    let df = Codec.Reader.varint r in
    let cf = Codec.Reader.varint r in
    { token; df; cf }
end

let meta_table = "meta"
