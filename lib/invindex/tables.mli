(** Key and row codecs for the TReX tables.

    The paper's schemas, with underlined primary keys, are:

    - [Elements(SID, docid, endpos, length)]
    - [PostingLists(token, docid, offset, postingdataentry)]
    - [Documents(docid, name, bytes, elements)] (ours, for stats)
    - [Terms(token, df, cf)] (ours, for scoring)

    Keys are built with order-preserving codecs so B+tree order equals
    schema order; long posting lists are chunked over several rows keyed
    by their first position, exactly as the paper describes. *)

module Elements : sig
  val name : string
  val key : sid:int -> docid:int -> endpos:int -> string
  val sid_prefix : int -> string
  val encode : Types.element -> string * string
  (** Row (key, value); the value carries the length. *)

  val decode : string -> string -> Types.element
end

module Posting_lists : sig
  val name : string
  val token_prefix : string -> string
  val key : token:string -> first:Types.pos -> string

  val encode_chunk : token:string -> Types.pos list -> string * string
  (** One v1 row holding consecutive positions; the chunk key is the
      first position. The list must be non-empty and position-sorted. *)

  val decode_chunk : string -> Types.pos list

  (** {2 Block-compressed segments (v2)}

      Frame-of-reference bit-packed blocks (see DESIGN.md §7) behind a
      {!Trex_util.Codec.Block} skip directory. Values are
      self-describing, so v1 chunks and v2 segments can coexist in one
      table and {!decode_value} reads either. *)

  type block_info = {
    first : Types.pos;
    last_docid : int;
    count : int;
    w_gap : int;  (** bit width of the docid-gap stream *)
    w_delta : int;  (** bit width of same-doc offset deltas *)
    w_abs : int;  (** bit width of doc-change absolute offsets *)
  }
  (** Skip entry of one block: decode is only needed for blocks whose
      [first.docid .. last_docid] range matters. *)

  val segment_rows : token:string -> Types.pos list -> (string * string) list
  (** Cut a non-empty position-sorted list into segment rows, packing
      ~[block_entries]-position blocks until a byte budget that keeps
      every row inside the B+tree entry budget. *)

  val decode_block_header : Trex_util.Codec.Reader.t -> block_info
  val decode_block : block_info -> Trex_util.Codec.Reader.t -> Types.pos list

  val decode_value : string -> Types.pos list
  (** Eagerly decode a posting value of either format. *)
end

module Documents : sig
  type row = { docid : int; name : string; bytes : int; elements : int }

  val name : string
  val encode : row -> string * string
  val decode : string -> string -> row
end

module Terms : sig
  type row = { token : string; df : int; cf : int }
  (** [df] documents containing the token, [cf] total occurrences. *)

  val name : string
  val encode : row -> string * string
  val decode : string -> string -> row
end

val meta_table : string
(** One-row-per-key table for index metadata (summary blob, analyzer
    configuration, corpus statistics). *)
