(** Query-time resource guard: wall-clock deadline + physical-page-read
    budget.

    A guard is created per query and threaded down into the strategy
    run loops, which call {!tick} every cursor advance. Ticks are
    cheap: the actual deadline/budget check only runs every
    [check_every] ticks. On expiry the guard raises {!Budget_exceeded};
    the strategy catches it where its partial state (candidate heap,
    pending rows, merged prefix) is in scope, salvages a best-effort
    answer, and tags the run degraded — "never wrong, possibly partial,
    always tagged" (DESIGN.md §6).

    The page budget is measured as the delta of the process-wide
    ["pager.physical_reads"] counter since guard creation, so the guard
    observes storage I/O without depending on the storage layer. A
    memory-backed env performs no physical reads; page budgets only
    bind on-disk. *)

type t

type reason = Deadline | Page_budget

exception Budget_exceeded of { reason : reason; detail : string }
(** Raised by {!tick}/{!check} once the deadline or page budget is
    exhausted. Deliberately does not carry partial results: the
    strategy that catches it already holds them. *)

val create : ?deadline_ms:float -> ?page_budget:int -> ?check_every:int -> unit -> t
(** [create ()] with neither limit never expires. [deadline_ms] is
    relative to creation time; [page_budget] caps physical page reads
    performed after creation. [check_every] defaults to 16. *)

val unlimited : t
(** A shared guard with no limits; ticking it is a no-op. *)

val tick : t -> unit
(** Count one unit of work; every [check_every] ticks, {!check}. *)

val check : t -> unit
(** Check both limits now. @raise Budget_exceeded on expiry. *)

val expired : t -> reason option
(** Like {!check} but returns the verdict instead of raising. *)

val pages_used : t -> int
(** Physical page reads since the guard was created. *)

val remaining_ms : t -> float option
(** Milliseconds until the deadline, if one is set. *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
