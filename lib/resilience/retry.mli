(** Capped deterministic exponential-backoff retry.

    Wraps the pager's physical page I/O (and any other operation that
    can fail transiently). The backoff schedule is fully determined by
    the policy — no jitter — so fault-injection tests replay exactly.

    Every retried attempt bumps ["resilience.retries"]; giving up bumps
    ["resilience.retry_exhaustions"] and raises {!Exhausted} carrying
    the last underlying error, which the circuit-breaker layer treats
    as a table-tripping failure. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_ms : float;  (** delay before the first retry *)
  max_delay_ms : float;  (** cap on the doubling schedule *)
  sleep : float -> unit;  (** seconds; injectable so tests don't wait *)
}

val default_policy : policy
(** 4 attempts, 1ms base, 16ms cap, [Unix.sleepf]. *)

val no_sleep : policy -> policy
(** The same schedule with [sleep] replaced by a no-op (for tests). *)

exception Exhausted of { name : string; attempts : int; last : exn }

val backoff_delays_ms : policy -> float list
(** The deterministic delay schedule (length [max_attempts - 1]). *)

val with_retries :
  ?policy:policy -> ?name:string -> retryable:(exn -> bool) -> (unit -> 'a) -> 'a
(** [with_retries ~retryable f] runs [f], retrying on exceptions that
    [retryable] accepts, sleeping the backoff schedule between
    attempts. Non-retryable exceptions propagate untouched.
    @raise Exhausted when [max_attempts] retryable failures occur. *)
