(** Capped exponential-backoff retry, optionally with seeded
    decorrelated jitter.

    Wraps the pager's physical page I/O (and any other operation that
    can fail transiently). The default schedule is fully determined by
    the policy — no jitter — so fault-injection tests replay exactly.
    Peers that can fail {e together} (a fleet of remote shard workers
    reconnecting after a coordinator restart) opt into
    {!Decorrelated} jitter: still deterministic under a fixed seed,
    but spread per-peer by a salt so they cannot thundering-herd.

    Every retried attempt bumps ["resilience.retries"]; giving up bumps
    ["resilience.retry_exhaustions"] and raises {!Exhausted} carrying
    the last underlying error, which the circuit-breaker layer treats
    as a table-tripping failure. *)

type jitter =
  | No_jitter  (** pure capped doubling — bit-replayable *)
  | Decorrelated of { seed : int }
      (** [min(cap, uniform(base, 3 * prev))] per retry, drawn from a
          splitmix PRNG seeded by [(seed, salt)] — deterministic for a
          fixed pair, decorrelated across salts *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_ms : float;  (** delay before the first retry *)
  max_delay_ms : float;  (** cap on the doubling schedule *)
  jitter : jitter;  (** {!No_jitter} unless peers can herd *)
  sleep : float -> unit;  (** seconds; injectable so tests don't wait *)
}

val default_policy : policy
(** 4 attempts, 1ms base, 16ms cap, no jitter, [Unix.sleepf]. *)

val no_sleep : policy -> policy
(** The same schedule with [sleep] replaced by a no-op (for tests). *)

exception Exhausted of { name : string; attempts : int; last : exn }

val backoff_delays_ms : ?salt:int -> policy -> float list
(** The delay schedule (length [max_attempts - 1]). Deterministic for
    a fixed policy and [salt]; [salt] (default 0) only matters under
    {!Decorrelated} jitter, where each peer should pass its own (e.g.
    a hash of its name). Every delay lies in
    [[base_delay_ms, max_delay_ms]] either way. *)

val with_retries :
  ?policy:policy -> ?name:string -> retryable:(exn -> bool) -> (unit -> 'a) -> 'a
(** [with_retries ~retryable f] runs [f], retrying on exceptions that
    [retryable] accepts, sleeping the backoff schedule between
    attempts. Non-retryable exceptions propagate untouched.
    @raise Exhausted when [max_attempts] retryable failures occur. *)
