module Metrics = Trex_obs.Metrics

let m_trips = Metrics.counter "resilience.breaker_trips"
let m_closes = Metrics.counter "resilience.breaker_closes"

type state = Closed | Open | Half_open

type t = {
  name : string;
  failure_threshold : int;
  mutable cooldown_s : float;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable last_reason : string option;
}

let create ?(failure_threshold = 3) ?(cooldown_s = 30.0) name =
  {
    name;
    failure_threshold = max 1 failure_threshold;
    cooldown_s;
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    last_reason = None;
  }

let name t = t.name
let state t = t.state
let last_reason t = t.last_reason
let set_cooldown t s = t.cooldown_s <- s
let cooldown_s t = t.cooldown_s

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let trip t ~reason =
  if t.state <> Open then Metrics.incr m_trips;
  t.state <- Open;
  t.opened_at <- Unix.gettimeofday ();
  t.last_reason <- Some reason

let record_failure t ~reason =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open -> trip t ~reason
  | Closed when t.consecutive_failures >= t.failure_threshold ->
      trip t ~reason
  | Closed | Open -> ()

let record_success t =
  if t.state <> Closed then Metrics.incr m_closes;
  t.state <- Closed;
  t.consecutive_failures <- 0

let allow t =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if Unix.gettimeofday () -. t.opened_at >= t.cooldown_s then begin
        t.state <- Half_open;
        true
      end
      else false
