module Metrics = Trex_obs.Metrics
module Stopclock = Trex_util.Stopclock

let m_trips = Metrics.counter "resilience.breaker_trips"
let m_closes = Metrics.counter "resilience.breaker_closes"

type state = Closed | Open | Half_open

type t = {
  name : string;
  failure_threshold : int;
  mutable cooldown_s : float;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable last_reason : string option;
  mutable probe_inflight : bool;
      (* Half_open has admitted a probe whose outcome is unresolved;
         further callers are rejected until record_success/record_failure
         (or trip) settles it, so an abandoned probe cannot leak the
         half-open slot. *)
}

let create ?(failure_threshold = 3) ?(cooldown_s = 30.0) name =
  {
    name;
    failure_threshold = max 1 failure_threshold;
    cooldown_s;
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    last_reason = None;
    probe_inflight = false;
  }

let name t = t.name
let state t = t.state
let last_reason t = t.last_reason
let set_cooldown t s = t.cooldown_s <- s
let cooldown_s t = t.cooldown_s

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let trip t ~reason =
  if t.state <> Open then Metrics.incr m_trips;
  t.state <- Open;
  t.opened_at <- Stopclock.now ();
  t.last_reason <- Some reason;
  t.probe_inflight <- false

let record_failure t ~reason =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open -> trip t ~reason
  | Closed when t.consecutive_failures >= t.failure_threshold ->
      trip t ~reason
  | Closed | Open -> ()

let record_success t =
  if t.state <> Closed then Metrics.incr m_closes;
  t.state <- Closed;
  t.consecutive_failures <- 0;
  t.probe_inflight <- false

let allow t =
  match t.state with
  | Closed -> true
  | Half_open ->
      if t.probe_inflight then false
      else begin
        t.probe_inflight <- true;
        true
      end
  | Open ->
      if Stopclock.now () -. t.opened_at >= t.cooldown_s then begin
        t.state <- Half_open;
        t.probe_inflight <- true;
        true
      end
      else false

let probing t = t.state = Half_open && t.probe_inflight

let ready t =
  match t.state with
  | Closed -> true
  | Half_open -> not t.probe_inflight
  | Open -> Stopclock.now () -. t.opened_at >= t.cooldown_s
