module Metrics = Trex_obs.Metrics
module Prng = Trex_util.Prng

let m_retries = Metrics.counter "resilience.retries"
let m_exhaustions = Metrics.counter "resilience.retry_exhaustions"

type jitter = No_jitter | Decorrelated of { seed : int }

type policy = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  jitter : jitter;
  sleep : float -> unit;
}

let default_policy =
  {
    max_attempts = 4;
    base_delay_ms = 1.0;
    max_delay_ms = 16.0;
    jitter = No_jitter;
    sleep = Unix.sleepf;
  }

let no_sleep policy = { policy with sleep = (fun _ -> ()) }

exception Exhausted of { name : string; attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Exhausted { name; attempts; last } ->
        Some
          (Printf.sprintf "Retry.Exhausted(%s after %d attempts: %s)" name
             attempts (Printexc.to_string last))
    | _ -> None)

let delay_ms policy ~retry_index =
  Float.min policy.max_delay_ms
    (policy.base_delay_ms *. Float.pow 2.0 (float_of_int retry_index))

let backoff_delays_ms ?(salt = 0) policy =
  let n = max 0 (policy.max_attempts - 1) in
  match policy.jitter with
  | No_jitter -> List.init n (fun i -> delay_ms policy ~retry_index:i)
  | Decorrelated { seed } ->
      (* Decorrelated jitter (the "sleep = min(cap, uniform(base,
         prev*3))" recurrence): each delay is drawn from a window that
         grows with the previous *realized* delay, so a fleet of peers
         that failed at the same instant spreads out instead of
         re-converging on the doubling schedule's fixed points. Seeded
         through a splitmix PRNG — same (seed, salt) replays the same
         schedule, different salts (one per peer) decorrelate. *)
      let rng = Prng.create (seed lxor (salt * 0x9e3779b9)) in
      let prev = ref policy.base_delay_ms in
      List.init n (fun _ ->
          let hi = Float.max policy.base_delay_ms (!prev *. 3.0) in
          let d =
            Float.min policy.max_delay_ms
              (policy.base_delay_ms
              +. Prng.float rng (hi -. policy.base_delay_ms))
          in
          prev := d;
          d)

let with_retries ?(policy = default_policy) ?(name = "io") ~retryable f =
  let max_attempts = max 1 policy.max_attempts in
  (* One schedule per call, salted by the call-site name so concurrent
     retriers of different operations don't share a jitter stream. *)
  let delays = Array.of_list (backoff_delays_ms ~salt:(Hashtbl.hash name) policy) in
  let rec go attempt =
    try f ()
    with e when retryable e ->
      if attempt >= max_attempts then begin
        Metrics.incr m_exhaustions;
        raise (Exhausted { name; attempts = attempt; last = e })
      end
      else begin
        Metrics.incr m_retries;
        let d =
          if attempt - 1 < Array.length delays then delays.(attempt - 1)
          else delay_ms policy ~retry_index:(attempt - 1)
        in
        policy.sleep (d /. 1000.);
        go (attempt + 1)
      end
  in
  go 1
