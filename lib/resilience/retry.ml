module Metrics = Trex_obs.Metrics

let m_retries = Metrics.counter "resilience.retries"
let m_exhaustions = Metrics.counter "resilience.retry_exhaustions"

type policy = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  sleep : float -> unit;
}

let default_policy =
  {
    max_attempts = 4;
    base_delay_ms = 1.0;
    max_delay_ms = 16.0;
    sleep = Unix.sleepf;
  }

let no_sleep policy = { policy with sleep = (fun _ -> ()) }

exception Exhausted of { name : string; attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Exhausted { name; attempts; last } ->
        Some
          (Printf.sprintf "Retry.Exhausted(%s after %d attempts: %s)" name
             attempts (Printexc.to_string last))
    | _ -> None)

let delay_ms policy ~retry_index =
  Float.min policy.max_delay_ms
    (policy.base_delay_ms *. Float.pow 2.0 (float_of_int retry_index))

let backoff_delays_ms policy =
  List.init
    (max 0 (policy.max_attempts - 1))
    (fun i -> delay_ms policy ~retry_index:i)

let with_retries ?(policy = default_policy) ?(name = "io") ~retryable f =
  let max_attempts = max 1 policy.max_attempts in
  let rec go attempt =
    try f ()
    with e when retryable e ->
      if attempt >= max_attempts then begin
        Metrics.incr m_exhaustions;
        raise (Exhausted { name; attempts = attempt; last = e })
      end
      else begin
        Metrics.incr m_retries;
        policy.sleep (delay_ms policy ~retry_index:(attempt - 1) /. 1000.);
        go (attempt + 1)
      end
  in
  go 1
