(** Per-resource circuit breaker.

    [Env] keeps one breaker per table. A {!trip} (corruption, retry
    exhaustion) opens the circuit; {!allow} rejects callers while open,
    then lets a single probe through once the cooldown elapses
    (half-open); {!record_success} closes the circuit again,
    {!record_failure} re-opens it. [Strategy.available] consults
    breaker state so query planning routes around quarantined tables,
    and [Autopilot.maybe_heal] drives rebuild + probing.

    State transitions bump ["resilience.breaker_trips"] and
    ["resilience.breaker_closes"]. Time is the monotonic
    {!Trex_util.Stopclock.now} clock, so a wall-clock step can neither
    end a cooldown early nor extend it; the cooldown is mutable so
    tests (and the autopilot) can force immediate probes. *)

type state = Closed | Open | Half_open
type t

val create : ?failure_threshold:int -> ?cooldown_s:float -> string -> t
(** [create name] starts Closed. [failure_threshold] consecutive
    {!record_failure}s open the circuit (default 3; {!trip} opens it
    immediately regardless). [cooldown_s] defaults to 30s. *)

val name : t -> string
val state : t -> state

val allow : t -> bool
(** Whether a caller may use the resource now. Closed: yes. Open: no,
    unless the cooldown has elapsed, in which case the breaker moves to
    Half_open and admits this caller as the single probe. Half_open:
    only if no probe is in flight — the admitted caller owns the probe
    slot until {!record_success} closes the circuit or
    {!record_failure}/{!trip} re-opens it, so a probe that dies without
    reporting (e.g. its guard budget expires and the caller walks away)
    must be failed explicitly or the slot stays taken. *)

val probing : t -> bool
(** A half-open probe has been admitted and not yet resolved. *)

val ready : t -> bool
(** Whether {!allow} would admit a caller right now, {e without} taking
    the probe slot — the planning-time check. Callers that will
    actually touch the resource must still call {!allow}. *)

val trip : t -> reason:string -> unit
(** Open the circuit immediately (corruption, retry exhaustion). *)

val record_failure : t -> reason:string -> unit
(** Count a failure; opens the circuit from Half_open or once the
    consecutive-failure threshold is reached. *)

val record_success : t -> unit
(** Close the circuit (from any state) and clear the failure count. *)

val last_reason : t -> string option
(** Why the circuit last opened, if it ever did. *)

val set_cooldown : t -> float -> unit
val cooldown_s : t -> float

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit
