module Metrics = Trex_obs.Metrics

(* The pager registers this counter; resolving it by name here lets the
   guard watch physical I/O without a dependency on trex_storage. *)
let m_physical_reads = Metrics.counter "pager.physical_reads"
let m_deadline = Metrics.counter "resilience.deadline_exceeded"
let m_page_budget = Metrics.counter "resilience.page_budget_exceeded"

type reason = Deadline | Page_budget

exception Budget_exceeded of { reason : reason; detail : string }

module Stopclock = Trex_util.Stopclock

type t = {
  deadline : float option; (* absolute, Stopclock.now (monotonic) *)
  deadline_ms : float option; (* as requested, for messages *)
  page_budget : int option;
  pages_at_start : int;
  check_every : int;
  mutable ticks : int;
}

let reason_to_string = function
  | Deadline -> "deadline"
  | Page_budget -> "page_budget"

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

let () =
  Printexc.register_printer (function
    | Budget_exceeded { reason; detail } ->
        Some
          (Printf.sprintf "Guard.Budget_exceeded(%s: %s)"
             (reason_to_string reason) detail)
    | _ -> None)

let create ?deadline_ms ?page_budget ?(check_every = 16) () =
  {
    deadline =
      Option.map (fun ms -> Stopclock.now () +. (ms /. 1000.)) deadline_ms;
    deadline_ms;
    page_budget;
    pages_at_start = Metrics.value m_physical_reads;
    check_every = max 1 check_every;
    ticks = 0;
  }

let unlimited = create ()
let pages_used t = Metrics.value m_physical_reads - t.pages_at_start

let remaining_ms t =
  Option.map (fun d -> (d -. Stopclock.now ()) *. 1000.) t.deadline

let expired t =
  (* >= so a zero deadline expires even within the same clock tick *)
  match t.deadline with
  | Some d when Stopclock.now () >= d -> Some Deadline
  | _ -> (
      match t.page_budget with
      | Some budget when pages_used t > budget -> Some Page_budget
      | _ -> None)

let check t =
  match expired t with
  | None -> ()
  | Some Deadline ->
      Metrics.incr m_deadline;
      let ms = match t.deadline_ms with Some ms -> ms | None -> nan in
      raise
        (Budget_exceeded
           { reason = Deadline; detail = Printf.sprintf "%.1fms elapsed" ms })
  | Some Page_budget ->
      Metrics.incr m_page_budget;
      let budget = match t.page_budget with Some b -> b | None -> 0 in
      raise
        (Budget_exceeded
           {
             reason = Page_budget;
             detail =
               Printf.sprintf "%d physical reads > budget %d" (pages_used t)
                 budget;
           })

let tick t =
  if t.deadline <> None || t.page_budget <> None then begin
    t.ticks <- t.ticks + 1;
    if t.ticks >= t.check_every then begin
      t.ticks <- 0;
      check t
    end
  end
