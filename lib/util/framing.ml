type 'a swept = {
  fd : Unix.file_descr;
  records : 'a list;
  corrupt : int;
  torn : bool;
}

(* A length field above this is a corrupt header, not a huge record. *)
let max_payload = 1 lsl 24

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b 8 len;
  b

let scan ~decode contents =
  let n = String.length contents in
  let records = ref [] in
  let corrupt = ref 0 in
  let rec go pos =
    if pos = n then (pos, false)
    else if pos + 8 > n then (pos, true) (* torn header *)
    else
      let len = Int32.to_int (String.get_int32_le contents pos) in
      let crc = String.get_int32_le contents (pos + 4) in
      if len < 0 || len > max_payload then (pos, true) (* corrupt header *)
      else if pos + 8 + len > n then (pos, true) (* torn payload *)
      else begin
        let payload = String.sub contents (pos + 8) len in
        (if Crc32.string payload <> crc then incr corrupt
         else
           match decode payload with
           | Some r -> records := r :: !records
           | None -> incr corrupt);
        go (pos + 8 + len)
      end
  in
  let valid_end, torn = go 0 in
  (List.rev !records, !corrupt, valid_end, torn)

(* ---- EINTR-safe raw I/O ----

   These loops back both the on-disk journals/manifests and the
   supervisor's socketpair wire protocol. On sockets and pipes a
   signal (SIGCHLD from a dying worker, a profiler's SIGPROF) can
   interrupt the call at any byte boundary, and writes are routinely
   short — both must be resumed, not surfaced, or a heartbeat could
   tear a frame mid-payload. *)

let rec intr_read fd b off len =
  match Unix.read fd b off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> intr_read fd b off len

let rec intr_write fd b off len =
  match Unix.write fd b off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> intr_write fd b off len

let read_all fd =
  let size = (Unix.fstat fd).Unix.st_size in
  let b = Bytes.create size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec fill off =
    if off < size then
      match intr_read fd b off (size - off) with
      | 0 -> off
      | n -> fill (off + n)
    else off
  in
  let got = fill 0 in
  Bytes.sub_string b 0 got

let write_all fd b =
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + intr_write fd b off (len - off))
  in
  go 0

let reset ~magic fd =
  Unix.ftruncate fd 0;
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  write_all fd (Bytes.of_string magic)

let append fd payload = write_all fd (frame payload)

let open_file ~magic ~decode path =
  let magic_len = String.length magic in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let contents = read_all fd in
  let swept =
    if contents = "" then begin
      write_all fd (Bytes.of_string magic);
      { fd; records = []; corrupt = 0; torn = false }
    end
    else if
      String.length contents < magic_len
      || String.sub contents 0 magic_len <> magic
    then begin
      (* Not a file we wrote (or a magic torn mid-write): there is no
         valid prefix to preserve, so start the file over. *)
      reset ~magic fd;
      { fd; records = []; corrupt = 1; torn = false }
    end
    else begin
      let body =
        String.sub contents magic_len (String.length contents - magic_len)
      in
      let records, corrupt, valid_end, torn = scan ~decode body in
      if torn then Unix.ftruncate fd (magic_len + valid_end);
      { fd; records; corrupt; torn }
    end
  in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  swept

(* ---- incremental stream decoder ---- *)

exception Corrupt_frame of string

module Decoder = struct
  type t = { buf : Buffer.t; mutable pos : int }

  let create () = { buf = Buffer.create 256; pos = 0 }
  let feed t b off len = Buffer.add_subbytes t.buf b off len
  let feed_string t s = Buffer.add_string t.buf s
  let buffered t = Buffer.length t.buf - t.pos

  (* Drop consumed bytes once they dominate the buffer, so a long-lived
     connection doesn't grow it without bound. *)
  let compact t =
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let next t =
    let avail = Buffer.length t.buf - t.pos in
    if avail < 8 then None
    else begin
      let header = Buffer.sub t.buf t.pos 8 in
      let len = Int32.to_int (String.get_int32_le header 0) in
      let crc = String.get_int32_le header 4 in
      if len < 0 || len > max_payload then
        raise (Corrupt_frame (Printf.sprintf "absurd frame length %d" len));
      if avail < 8 + len then None
      else begin
        let payload = Buffer.sub t.buf (t.pos + 8) len in
        if Crc32.string payload <> crc then
          raise (Corrupt_frame "frame payload fails its CRC32");
        t.pos <- t.pos + 8 + len;
        compact t;
        Some payload
      end
    end
end

let recv fd decoder =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Decoder.next decoder with
    | Some payload -> Some payload
    | None -> (
        match intr_read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            if Decoder.buffered decoder > 0 then
              raise (Corrupt_frame "EOF inside a frame")
            else None
        | n ->
            Decoder.feed decoder chunk 0 n;
            go ())
  in
  go ()

(* ---- deadline-bounded frame read ----

   The deadlines are {e absolute} points on the monotonic clock,
   computed once and re-checked around every select/read: a peer that
   dribbles one byte at a time resets nothing, so it can never extend
   its deadline (the slowloris defense — see the qcheck property in
   test_util.ml). EINTR on the select or read resumes with whatever
   time remains. *)

type deadline_outcome =
  | Frame of string
  | Eof  (** clean EOF at a frame boundary *)
  | Idle_timeout  (** no frame started within [idle_timeout_s] *)
  | Frame_timeout
      (** a frame started (bytes buffered) but did not complete within
          [frame_timeout_s] of its first byte *)

let rec select_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* The caller recomputes the remaining time from the absolute
         deadline, so treating EINTR as "nothing readable yet" can only
         shorten the wait, never extend it. *)
      if timeout = 0.0 then false else select_readable fd 0.0

let recv_deadline ?idle_timeout_s ?frame_timeout_s fd decoder =
  let now () = Stopclock.now () in
  let idle_deadline = Option.map (fun t -> now () +. t) idle_timeout_s in
  (* Anchored when the first byte of an incomplete frame is seen —
     including bytes already buffered by a previous read. *)
  let frame_deadline =
    ref
      (match frame_timeout_s with
      | Some t when Decoder.buffered decoder > 0 -> Some (now () +. t)
      | _ -> None)
  in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Decoder.next decoder with
    | Some payload -> Frame payload
    | None ->
        let mid_frame = Decoder.buffered decoder > 0 in
        let deadline =
          if mid_frame then begin
            (match (!frame_deadline, frame_timeout_s) with
            | None, Some t -> frame_deadline := Some (now () +. t)
            | _ -> ());
            !frame_deadline
          end
          else begin
            frame_deadline := None;
            idle_deadline
          end
        in
        let remaining =
          match deadline with
          | None -> -1.0 (* wait forever *)
          | Some d -> d -. now ()
        in
        if remaining = -1.0 || remaining > 0.0 then begin
          if select_readable fd remaining then
            match intr_read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
                if Decoder.buffered decoder > 0 then
                  raise (Corrupt_frame "EOF inside a frame")
                else Eof
            | n ->
                Decoder.feed decoder chunk 0 n;
                go ()
          else go ()
        end
        else if mid_frame then Frame_timeout
        else Idle_timeout
  in
  go ()
