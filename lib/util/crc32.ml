(* Standard reflected CRC-32, polynomial 0xEDB88320. The digest is
   computed in native ints (63-bit, unboxed) and only converted to int32
   at the edges: boxed Int32 arithmetic in the inner loop would allocate
   per byte, and this runs over every page the storage layer writes. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF

let bytes ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: range out of bounds";
  let table = Lazy.force table in
  let c = ref (Int32.to_int init land mask lxor mask) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor mask)

let string ?init s =
  bytes ?init (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
