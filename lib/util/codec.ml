let key_of_int n =
  (* Flip the sign bit so that negative ints sort below positive ones
     under unsigned byte comparison. *)
  let u = Int64.logxor (Int64.of_int n) Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 u;
  Bytes.unsafe_to_string b

let int_of_key s ~pos =
  if pos + 8 > String.length s then invalid_arg "Codec.int_of_key";
  let u = String.get_int64_be s pos in
  (Int64.to_int (Int64.logxor u Int64.min_int), pos + 8)

let key_of_float f =
  let bits = Int64.bits_of_float f in
  (* Positive floats: set the sign bit; negative floats: flip all bits.
     Standard order-preserving IEEE-754 transform. *)
  let u =
    if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
    else Int64.lognot bits
  in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 u;
  Bytes.unsafe_to_string b

let float_of_key s ~pos =
  if pos + 8 > String.length s then invalid_arg "Codec.float_of_key";
  let u = String.get_int64_be s pos in
  let bits =
    if Int64.compare u 0L < 0 then Int64.logxor u Int64.min_int
    else Int64.lognot u
  in
  (Int64.float_of_bits bits, pos + 8)

let key_of_string s =
  let n = String.length s in
  let b = Buffer.create (n + 2) in
  for i = 0 to n - 1 do
    match s.[i] with
    | '\x00' ->
        (* Escape NUL as 0x00 0xFF so the 0x00 0x01 terminator stays
           prefix-free. *)
        Buffer.add_char b '\x00';
        Buffer.add_char b '\xff'
    | c -> Buffer.add_char b c
  done;
  Buffer.add_char b '\x00';
  Buffer.add_char b '\x01';
  Buffer.contents b

let string_of_key s ~pos =
  let b = Buffer.create 16 in
  let n = String.length s in
  let rec loop i =
    if i >= n then invalid_arg "Codec.string_of_key: unterminated"
    else
      match s.[i] with
      | '\x00' ->
          if i + 1 >= n then invalid_arg "Codec.string_of_key: truncated"
          else if s.[i + 1] = '\x01' then i + 2
          else if s.[i + 1] = '\xff' then (
            Buffer.add_char b '\x00';
            loop (i + 2))
          else invalid_arg "Codec.string_of_key: bad escape"
      | c ->
          Buffer.add_char b c;
          loop (i + 1)
  in
  let next = loop pos in
  (Buffer.contents b, next)

let concat_keys = String.concat ""

module Buf = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let contents = Buffer.contents

  (* Zig-zag LEB128: small magnitudes of either sign stay short. The
     zig-zagged value is treated as an unsigned 63-bit pattern ([lsr]
     shifts in zeroes), so the full int range round-trips. *)
  let add_varint b n =
    let z = (n lsl 1) lxor (n asr 62) in
    let rec go z =
      let low = z land 0x7f in
      let rest = z lsr 7 in
      if rest = 0 then Buffer.add_char b (Char.chr low)
      else (
        Buffer.add_char b (Char.chr (low lor 0x80));
        go rest)
    in
    go z

  (* Plain LEB128 for quantities that are non-negative by construction
     (counts, lengths, docids): saves the zig-zag bit and documents the
     invariant at the call site. *)
  let add_uvarint b n =
    if n < 0 then invalid_arg "Codec.Buf.add_uvarint: negative";
    let rec go n =
      let low = n land 0x7f in
      let rest = n lsr 7 in
      if rest = 0 then Buffer.add_char b (Char.chr low)
      else (
        Buffer.add_char b (Char.chr (low lor 0x80));
        go rest)
    in
    go n

  let add_int64_le b i =
    let tmp = Bytes.create 8 in
    Bytes.set_int64_le tmp 0 i;
    Buffer.add_bytes b tmp

  let add_int32_le b i =
    let tmp = Bytes.create 4 in
    Bytes.set_int32_le tmp 0 i;
    Buffer.add_bytes b tmp

  let add_float b f = add_int64_le b (Int64.bits_of_float f)

  let add_string b s =
    add_varint b (String.length s);
    Buffer.add_string b s

  let add_raw b s = Buffer.add_string b s
end

module Reader = struct
  type t = { s : string; mutable pos : int }

  exception Truncated
  exception Malformed of string

  let of_string s = { s; pos = 0 }
  let pos r = r.pos
  let at_end r = r.pos >= String.length r.s

  let byte r =
    if r.pos >= String.length r.s then raise Truncated;
    let c = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    c

  (* A 63-bit pattern needs at most 9 LEB128 bytes (shifts 0..56).
     Corrupt pages can contain arbitrarily long runs of continuation
     bytes; without the shift bound those silently wrapped past bit 63
     and decoded to garbage. Overlong encodings (a redundant trailing
     0x00 group) are also rejected so that every value has exactly one
     accepted encoding. *)
  let uvarint r =
    let rec go shift acc =
      let c = byte r in
      if shift > 56 then raise (Malformed "Codec.Reader: varint too long");
      if c = 0 && shift > 0 then
        raise (Malformed "Codec.Reader: overlong varint");
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let varint r =
    let z = uvarint r in
    (z lsr 1) lxor (-(z land 1))

  let int64_le r =
    if r.pos + 8 > String.length r.s then raise Truncated;
    let v = String.get_int64_le r.s r.pos in
    r.pos <- r.pos + 8;
    v

  let float r = Int64.float_of_bits (int64_le r)

  let raw r n =
    if r.pos + n > String.length r.s then raise Truncated;
    let v = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    v

  let int32_le r =
    if r.pos + 4 > String.length r.s then raise Truncated;
    let v = String.get_int32_le r.s r.pos in
    r.pos <- r.pos + 4;
    v

  let string r =
    let n = varint r in
    if n < 0 then raise Truncated;
    raw r n
end

module Bitpack = struct
  (* Fixed-width bit packing (frame-of-reference style): [count] values
     of [width] bits each, LSB-first within and across bytes. The
     encoder keeps fewer than 8 pending bits and the decoder fewer than
     [width + 8 <= 64] loaded bits, so with [max_width = 56] no shift
     ever pushes a live bit past OCaml's 63-bit int. *)
  let max_width = 56

  let width values =
    let m = Array.fold_left max 0 values in
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits m 0

  let pack b ~width values =
    if width < 0 || width > max_width then
      invalid_arg "Codec.Bitpack.pack: width out of range";
    if width > 0 then begin
      let acc = ref 0 and nbits = ref 0 in
      Array.iter
        (fun v ->
          if v < 0 || v lsr width <> 0 then
            invalid_arg "Codec.Bitpack.pack: value exceeds width";
          acc := !acc lor (v lsl !nbits);
          nbits := !nbits + width;
          while !nbits >= 8 do
            Buffer.add_char b (Char.unsafe_chr (!acc land 0xff));
            acc := !acc lsr 8;
            nbits := !nbits - 8
          done)
        values;
      if !nbits > 0 then Buffer.add_char b (Char.chr (!acc land 0xff))
    end

  let unpack r ~width ~count =
    if width < 0 || width > max_width then
      raise (Reader.Malformed "Codec.Bitpack: width out of range");
    if count < 0 then raise (Reader.Malformed "Codec.Bitpack: negative count");
    let out = Array.make (max count 0) 0 in
    if width > 0 then begin
      let acc = ref 0 and nbits = ref 0 in
      let mask = (1 lsl width) - 1 in
      for i = 0 to count - 1 do
        while !nbits < width do
          acc := !acc lor (Reader.byte r lsl !nbits);
          nbits := !nbits + 8
        done;
        out.(i) <- !acc land mask;
        acc := !acc lsr width;
        nbits := !nbits - width
      done
    end;
    out
end

module Block = struct
  (* A {e segment} packs several delta-encoded blocks into one table
     value behind a skip directory: per-block caller-defined headers
     (first/last docid, quantized max score, ...) come first, payloads
     are concatenated after, so a cursor can inspect every block's
     bounds and decode only the blocks it actually needs.

     Layout:  varint -2 | crc32 (4B LE, over everything after itself)
              | extra (length-prefixed segment header)
              | uvarint n_blocks | n x (header, uvarint payload_len)
              | concatenated payloads

     The leading varint is the format discriminant: every v1 row/chunk
     codec in this repo starts with a non-negative count, so a negative
     marker makes each value self-describing and lets old and new
     formats coexist in one table without a rebuild. *)

  let marker = -2

  (* Skip-entry score bounds are quantized {e up} to 1/1024 steps: the
     stored bound is >= every score in the block, so pruning on it is
     rank-safe, while exact scores travel separately (dictionary-coded
     by the RPL layer) and are returned unchanged. *)
  let scale = 1024.0
  let quantize_up x = if x <= 0.0 then 0 else int_of_float (ceil (x *. scale))
  let dequantize q = float_of_int q /. scale

  module Writer = struct
    type t = {
      mutable rev_blocks : (string * string) list; (* header, payload *)
      mutable bytes : int;
    }

    let create () = { rev_blocks = []; bytes = 0 }
    let block_count w = List.length w.rev_blocks
    let is_empty w = w.rev_blocks = []

    let add w ~header ~payload =
      w.rev_blocks <- (header, payload) :: w.rev_blocks;
      w.bytes <- w.bytes + String.length header + String.length payload + 4

    let byte_estimate w = w.bytes + 16

    let contents ?(extra = "") w =
      let blocks = List.rev w.rev_blocks in
      let body = Buf.create ~capacity:(w.bytes + String.length extra + 16) () in
      Buf.add_string body extra;
      Buf.add_uvarint body (List.length blocks);
      List.iter
        (fun (h, p) ->
          Buf.add_string body h;
          Buf.add_uvarint body (String.length p))
        blocks;
      List.iter (fun (_, p) -> Buf.add_raw body p) blocks;
      let body = Buf.contents body in
      let out = Buf.create ~capacity:(String.length body + 12) () in
      Buf.add_varint out marker;
      Buf.add_int32_le out (Crc32.string body);
      Buf.add_raw out body;
      Buf.contents out
  end

  type t = {
    extra : string;
    headers : string array;
    offsets : int array; (* absolute offsets of each payload in [raw] *)
    lengths : int array;
    raw : string;
  }

  let of_string s =
    let r = Reader.of_string s in
    match Reader.varint r with
    | v when v >= 0 -> None (* v1 value: leading non-negative count *)
    | v when v <> marker ->
        raise (Reader.Malformed "Codec.Block: unknown segment version")
    | _ ->
        let crc_stored = Reader.int32_le r in
        let body_pos = Reader.pos r in
        let body_len = String.length s - body_pos in
        let crc =
          Crc32.bytes (Bytes.unsafe_of_string s) ~pos:body_pos ~len:body_len
        in
        if not (Int32.equal crc crc_stored) then
          raise (Reader.Malformed "Codec.Block: checksum mismatch");
        let extra = Reader.string r in
        let n = Reader.uvarint r in
        if n > body_len then
          raise (Reader.Malformed "Codec.Block: implausible block count");
        let headers = Array.make n "" in
        let lengths = Array.make n 0 in
        (* Explicit in-order loop: the reader is stateful, so
           Array.init/List.init (unspecified application order) would
           be exactly the bug this module exists to avoid. *)
        for i = 0 to n - 1 do
          headers.(i) <- Reader.string r;
          lengths.(i) <- Reader.uvarint r
        done;
        let offsets = Array.make n 0 in
        let off = ref (Reader.pos r) in
        for i = 0 to n - 1 do
          offsets.(i) <- !off;
          off := !off + lengths.(i)
        done;
        if !off <> String.length s then
          raise (Reader.Malformed "Codec.Block: directory does not cover payload");
        Some { extra; headers; offsets; lengths; raw = s }

  let is_segment s =
    String.length s > 0
    &&
    match Reader.varint (Reader.of_string s) with
    | v -> v < 0
    | exception (Reader.Truncated | Reader.Malformed _) -> false

  let extra t = t.extra
  let block_count t = Array.length t.headers
  let header t i = Reader.of_string t.headers.(i)
  let payload_bytes t i = t.lengths.(i)
  let payload t i = Reader.of_string (String.sub t.raw t.offsets.(i) t.lengths.(i))
end
