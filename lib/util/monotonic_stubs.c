/* Monotonic clock source for Stopclock.now.

   Guard deadlines, breaker cooldowns and supervisor heartbeat timeouts
   must not fire spuriously (or hang) when the wall clock steps — NTP
   slews, manual resets, suspend/resume. CLOCK_MONOTONIC ticks at a
   steady rate from an arbitrary origin and never goes backwards; the
   gettimeofday fallback only exists for platforms without it (the
   OCaml side additionally clamps to be non-decreasing). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value trex_monotonic_seconds(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec / 1e6);
  }
}
