(** Monotonic time source and pausable timer.

    {!now} is the engine's one clock for measuring {e durations}: guard
    deadlines, breaker cooldowns, supervisor heartbeat timeouts and all
    timers read it. It is backed by [CLOCK_MONOTONIC] (C stub), so a
    wall-clock step — NTP slew, manual reset, suspend — can neither
    fire a deadline spuriously nor stall one forever. {!wall} remains
    for the only legitimate wall-clock uses: journal record timestamps
    and other human-facing absolute times.

    The timer type realizes the paper's ITA ("ideal heap management")
    measurement: TA is run normally but the clock is paused around heap
    operations, so their cost is excluded from the reported time. *)

val now : unit -> float
(** Monotonic seconds from an arbitrary origin; never decreases.
    Differences are durations; absolute values are meaningless across
    processes or reboots. *)

val wall : unit -> float
(** [Unix.gettimeofday] — wall-clock seconds since the epoch, for
    record timestamps only. Subject to clock steps: never use it to
    arm or check a deadline. *)

type t

val create : unit -> t
(** A fresh, running timer started at zero elapsed time. *)

val pause : t -> unit
(** Stop accumulating. Idempotent. *)

val resume : t -> unit
(** Restart accumulating. Idempotent. *)

val is_running : t -> bool
(** Whether the timer is currently accumulating. *)

val with_paused : t -> (unit -> 'a) -> 'a
(** [with_paused t f] runs [f] with the clock paused and resumes it on
    the way out even when [f] raises, so an abort mid-measurement
    cannot leave the clock stuck paused. *)

val elapsed : t -> float
(** Seconds accumulated while running. *)

val paused_time : t -> float
(** Seconds spent paused (useful to report heap-management overhead). *)
