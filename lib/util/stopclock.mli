(** Pausable wall-clock timer.

    Realizes the paper's ITA ("ideal heap management") measurement: TA
    is run normally but the clock is paused around heap operations, so
    their cost is excluded from the reported time. *)

type t

val create : unit -> t
(** A fresh, running timer started at zero elapsed time. *)

val pause : t -> unit
(** Stop accumulating. Idempotent. *)

val resume : t -> unit
(** Restart accumulating. Idempotent. *)

val is_running : t -> bool
(** Whether the timer is currently accumulating. *)

val with_paused : t -> (unit -> 'a) -> 'a
(** [with_paused t f] runs [f] with the clock paused and resumes it on
    the way out even when [f] raises, so an abort mid-measurement
    cannot leave the clock stuck paused. *)

val elapsed : t -> float
(** Seconds accumulated while running. *)

val paused_time : t -> float
(** Seconds spent paused (useful to report heap-management overhead). *)
