external monotonic_seconds : unit -> float = "trex_monotonic_seconds"

(* The stub falls back to gettimeofday on platforms without
   CLOCK_MONOTONIC; clamping makes [now] non-decreasing even there, so
   deadline arithmetic never sees time run backwards. *)
let last_now = ref (monotonic_seconds ())

let now () =
  let t = monotonic_seconds () in
  if t > !last_now then last_now := t;
  !last_now

let wall () = Unix.gettimeofday ()

type t = {
  mutable acc : float; (* seconds accumulated while running *)
  mutable paused_acc : float; (* seconds accumulated while paused *)
  mutable mark : float; (* time of the last state change *)
  mutable running : bool;
}

let create () = { acc = 0.0; paused_acc = 0.0; mark = now (); running = true }

let pause t =
  if t.running then begin
    let n = now () in
    t.acc <- t.acc +. (n -. t.mark);
    t.mark <- n;
    t.running <- false
  end

let resume t =
  if not t.running then begin
    let n = now () in
    t.paused_acc <- t.paused_acc +. (n -. t.mark);
    t.mark <- n;
    t.running <- true
  end

let is_running t = t.running

let with_paused t f =
  pause t;
  Fun.protect ~finally:(fun () -> resume t) f

let elapsed t = if t.running then t.acc +. (now () -. t.mark) else t.acc

let paused_time t =
  if t.running then t.paused_acc else t.paused_acc +. (now () -. t.mark)
