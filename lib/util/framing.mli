(** CRC32-framed records — the shared frame discipline of the on-disk
    journal/manifest files {e and} the shard supervisor's socketpair
    wire protocol.

    Layout: frames of
    [u32 payload-length LE | u32 CRC32(payload) LE | payload]; on-disk
    files prefix a fixed magic string. The file reader skips frames
    whose CRC rejects the payload (corrupt) and truncates the file at
    the first frame that runs past EOF (torn tail), so a crash
    mid-append never poisons later appends. The stream {!Decoder}
    treats the same failures as connection-fatal ({!Corrupt_frame}) —
    a socket has no "later frames" worth salvaging past a corrupt one.

    All raw I/O here is EINTR-safe and resumes short reads/writes, so
    the discipline holds on sockets and pipes (where signals and
    partial transfers are routine), not just regular files.

    The module is payload-agnostic: callers supply a [decode] that
    parses one payload (returning [None] for undecodable ones, which
    count as corrupt) and keep their own metric counters. *)

type 'a swept = {
  fd : Unix.file_descr;  (** positioned at EOF, ready to append *)
  records : 'a list;  (** decoded records, oldest first *)
  corrupt : int;  (** frames dropped: bad magic, bad CRC, undecodable *)
  torn : bool;  (** a torn tail was truncated away *)
}

val open_file :
  magic:string -> decode:(string -> 'a option) -> string -> 'a swept
(** Open (creating if absent) and sweep a framed file. An empty file
    gains the magic; a file with a foreign or torn magic is restarted
    from scratch (counted as one corrupt record); a torn tail is
    truncated to the last whole frame. *)

val frame : string -> bytes
(** One encoded frame: 8-byte header then the payload. *)

val append : Unix.file_descr -> string -> unit
(** Append one framed payload at the current offset (not synced). *)

val reset : magic:string -> Unix.file_descr -> unit
(** Truncate to zero and rewrite the magic (for compaction). *)

val scan :
  decode:(string -> 'a option) -> string -> 'a list * int * int * bool
(** [scan ~decode body] sweeps frames in [body] (already past the
    magic): decoded records oldest first, corrupt-frame count, byte
    offset where the valid region ends, and whether the tail was
    torn. *)

val read_all : Unix.file_descr -> string
(** Whole file contents from offset 0. *)

val write_all : Unix.file_descr -> bytes -> unit
(** Write every byte, resuming short writes and EINTR — safe on
    sockets and pipes as well as regular files. *)

val max_payload : int
(** Frames claiming a longer payload are treated as corrupt headers. *)

exception Corrupt_frame of string
(** A stream frame that can never complete: absurd length header, CRC
    mismatch, or EOF landing inside a frame. Unlike the file sweep
    (which skips and continues), stream corruption is fatal to the
    connection — the supervisor treats it as a worker failure. *)

(** Incremental decoder for framed byte streams (sockets), where
    frames arrive in arbitrary chunks: feed whatever [read] returned,
    take out every complete frame. The chunking of the input never
    changes the decoded sequence (see the qcheck property in
    [test_util.ml]). *)
module Decoder : sig
  type t

  val create : unit -> t
  val feed : t -> bytes -> int -> int -> unit
  val feed_string : t -> string -> unit

  val next : t -> string option
  (** The next complete payload, or [None] when more bytes are needed.
      @raise Corrupt_frame on a frame that can never decode. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by {!next}. *)
end

val recv : Unix.file_descr -> Decoder.t -> string option
(** Blocking read of the next frame from a stream fd through [decoder]
    (EINTR-safe). [None] on a clean EOF at a frame boundary.
    @raise Corrupt_frame on corruption or EOF inside a frame. *)

type deadline_outcome =
  | Frame of string  (** a complete frame arrived in time *)
  | Eof  (** clean EOF at a frame boundary *)
  | Idle_timeout  (** no frame started within [idle_timeout_s] *)
  | Frame_timeout
      (** a frame started (bytes buffered) but did not complete within
          [frame_timeout_s] of its first byte *)

val recv_deadline :
  ?idle_timeout_s:float ->
  ?frame_timeout_s:float ->
  Unix.file_descr ->
  Decoder.t ->
  deadline_outcome
(** [recv fd decoder] with monotonic-clock deadlines. Both deadlines
    are {e absolute} (anchored once, via {!Stopclock.now}): the idle
    deadline when the call starts with no partial frame buffered, the
    frame deadline at the first byte of an incomplete frame. Because
    nothing re-arms on subsequent bytes, a peer dribbling one byte at
    a time can never extend either deadline — this is the slowloris
    defense used for the serve front door's connection read deadline
    and the shard worker's request/heartbeat wait. Omitted timeouts
    wait forever (degenerating to {!recv}).
    @raise Corrupt_frame on corruption or EOF inside a frame. *)
