(** Append-only CRC32-framed record files — the shared on-disk
    discipline of the query journal and the operation manifest.

    Layout: a fixed magic string, then frames of
    [u32 payload-length LE | u32 CRC32(payload) LE | payload]. The
    reader skips frames whose CRC rejects the payload (corrupt) and
    truncates the file at the first frame that runs past EOF (torn
    tail), so a crash mid-append never poisons later appends.

    The module is payload-agnostic: callers supply a [decode] that
    parses one payload (returning [None] for undecodable ones, which
    count as corrupt) and keep their own metric counters. *)

type 'a swept = {
  fd : Unix.file_descr;  (** positioned at EOF, ready to append *)
  records : 'a list;  (** decoded records, oldest first *)
  corrupt : int;  (** frames dropped: bad magic, bad CRC, undecodable *)
  torn : bool;  (** a torn tail was truncated away *)
}

val open_file :
  magic:string -> decode:(string -> 'a option) -> string -> 'a swept
(** Open (creating if absent) and sweep a framed file. An empty file
    gains the magic; a file with a foreign or torn magic is restarted
    from scratch (counted as one corrupt record); a torn tail is
    truncated to the last whole frame. *)

val frame : string -> bytes
(** One encoded frame: 8-byte header then the payload. *)

val append : Unix.file_descr -> string -> unit
(** Append one framed payload at the current offset (not synced). *)

val reset : magic:string -> Unix.file_descr -> unit
(** Truncate to zero and rewrite the magic (for compaction). *)

val scan :
  decode:(string -> 'a option) -> string -> 'a list * int * int * bool
(** [scan ~decode body] sweeps frames in [body] (already past the
    magic): decoded records oldest first, corrupt-frame count, byte
    offset where the valid region ends, and whether the tail was
    torn. *)

val read_all : Unix.file_descr -> string
(** Whole file contents from offset 0. *)

val write_all : Unix.file_descr -> bytes -> unit

val max_payload : int
(** Frames claiming a longer payload are treated as corrupt headers. *)
