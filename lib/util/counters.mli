(** Named monotonic counters.

    Algorithms record machine-independent work measures (tuples read,
    iterator advances, heap operations, pages touched) so experiments
    can report stable shape data alongside wall-clock times. *)

type t

val create : unit -> t

val cell : t -> string -> int ref
(** The counter's cell, created at zero on first use. The same ref is
    returned on every call — including across {!reset}, which zeroes
    cells in place — so hot loops can hoist the lookup and increment
    directly. *)

val bump : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when the counter was never bumped. *)

val reset : t -> unit
val to_list : t -> (string * int) list
(** Sorted by counter name. *)

val pp : Format.formatter -> t -> unit
