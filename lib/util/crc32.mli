(** CRC-32 (IEEE 802.3 polynomial, the zlib/gzip checksum).

    The storage layer stamps every on-disk page and header slot with a
    CRC so that torn writes and bit rot are detected on read instead of
    propagating garbage into the B+trees. Table-driven, processes a few
    hundred MB/s — negligible next to the write syscall it guards. *)

val bytes : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** Checksum of [len] bytes of [b] starting at [pos]. [init] chains
    partial digests (pass a previous result to continue it); the default
    starts a fresh digest.
    @raise Invalid_argument if the range is out of bounds. *)

val string : ?init:int32 -> string -> int32
(** Checksum of a whole string. *)
