(** Binary codecs.

    Two families are provided:

    - {e order-preserving} key encodings, used by the storage layer so
      that lexicographic comparison of encoded keys matches the natural
      ordering of the decoded values (composite keys compare
      field-by-field);
    - plain {e value} encodings (varints, length-prefixed strings) used
      for row payloads where ordering does not matter. *)

(** {1 Order-preserving key encoding} *)

val key_of_int : int -> string
(** [key_of_int n] is an 8-byte big-endian encoding of [n] with the sign
    bit flipped, so that [compare (key_of_int a) (key_of_int b)] equals
    [compare a b] for all ints. *)

val int_of_key : string -> pos:int -> int * int
(** [int_of_key s ~pos] decodes an int written by {!key_of_int} at
    offset [pos] and returns it with the offset past the field.
    @raise Invalid_argument if fewer than 8 bytes remain. *)

val key_of_float : float -> string
(** Order-preserving encoding of a finite float (IEEE bits, sign
    massaged so that numeric order matches byte order). *)

val float_of_key : string -> pos:int -> float * int

val key_of_string : string -> string
(** [key_of_string s] escapes NUL bytes and appends a [0x00 0x01]
    terminator so that concatenated composite keys never compare a field
    against the next field's bytes. Prefix-free and order-preserving. *)

val string_of_key : string -> pos:int -> string * int

val concat_keys : string list -> string
(** Concatenate already-encoded key fields into one composite key. *)

(** {1 Value (payload) encoding} *)

module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val contents : t -> string
  val add_varint : t -> int -> unit

  val add_uvarint : t -> int -> unit
  (** Plain (non-zig-zag) LEB128 for values that are non-negative by
      construction. @raise Invalid_argument on a negative argument. *)

  val add_int64_le : t -> int64 -> unit
  val add_int32_le : t -> int32 -> unit
  val add_float : t -> float -> unit
  val add_string : t -> string -> unit

  (** Length-prefixed. *)

  val add_raw : t -> string -> unit
  (** No length prefix. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val at_end : t -> bool

  val varint : t -> int
  (** @raise Malformed on an encoding longer than 9 bytes (which would
      silently wrap past 63 bits) or with a redundant trailing zero
      group, so corrupt input fails instead of decoding to garbage. *)

  val uvarint : t -> int
  (** Decodes {!Buf.add_uvarint}. Same malformed-input guarantees as
      {!varint}. *)

  val int64_le : t -> int64
  val int32_le : t -> int32
  val float : t -> float
  val string : t -> string
  val raw : t -> int -> string

  exception Truncated
  (** Input ended mid-value. *)

  exception Malformed of string
  (** Input is structurally invalid (overlong varint, bad checksum,
      unknown format marker); retrying with more bytes cannot help. *)
end

(** Fixed-width bit packing for frame-of-reference block compression:
    [count] values of [width] bits each, LSB-first within and across
    bytes, no per-value terminator. Callers pick [width] per block (see
    {!Bitpack.width}) so narrow local ranges cost narrow fields even
    when the global range is wide. *)
module Bitpack : sig
  val max_width : int
  (** 56 — keeps every intermediate shift below OCaml's 63-bit int. *)

  val width : int array -> int
  (** Bits needed for the largest value ([0] for an all-zero or empty
      array). Values must be non-negative. *)

  val pack : Buf.t -> width:int -> int array -> unit
  (** @raise Invalid_argument if [width] is outside
      [0..max_width] or any value needs more than [width] bits. *)

  val unpack : Reader.t -> width:int -> count:int -> int array
  (** Inverse of {!pack}; consumes exactly the packed bytes.
      @raise Reader.Malformed if [width] or [count] is out of range
      (corrupt input, not a programming error). *)
end

(** Block-compressed segments: several delta-encoded blocks packed into
    one table value behind a skip directory of caller-defined per-block
    headers, CRC-protected, with lazy per-block decoding. The leading
    varint of a segment is negative, while every v1 row codec starts
    with a non-negative count — so values are self-describing and both
    formats can coexist in one table. *)
module Block : sig
  val scale : float
  (** Quantization step denominator for skip-entry score bounds. *)

  val quantize_up : float -> int
  (** Smallest quantized value [>=] the score — sound as an upper
      bound for rank-safe pruning. *)

  val dequantize : int -> float

  module Writer : sig
    type t

    val create : unit -> t
    val is_empty : t -> bool
    val block_count : t -> int

    val add : t -> header:string -> payload:string -> unit
    (** Append one block. [header] is the caller's skip entry (decoded
        back via {!header}); [payload] its encoded entries. *)

    val byte_estimate : t -> int
    (** Upper-ish bound on [contents] size, for byte-budgeted flushing. *)

    val contents : ?extra:string -> t -> string
    (** Serialize; [extra] is an optional segment-level header (e.g. a
        score dictionary) available before any block is decoded. *)
  end

  type t

  val of_string : string -> t option
  (** [None] if the value is a v1 (non-segment) encoding; the parsed
      directory otherwise. Payloads are not decoded here.
      @raise Reader.Malformed on checksum mismatch, unknown marker or
      an inconsistent directory. *)

  val is_segment : string -> bool

  val extra : t -> string
  val block_count : t -> int

  val header : t -> int -> Reader.t
  (** Reader over block [i]'s skip-entry header. *)

  val payload : t -> int -> Reader.t
  (** Reader over block [i]'s payload — the only per-block decode cost
      paid for skipped blocks is never paid at all. *)

  val payload_bytes : t -> int -> int
end
