type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name n =
  let r = cell t name in
  r := !r + n

let bump t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
(* Zero cells in place rather than clearing the table: refs handed out
   by [cell] must stay the ones [get]/[to_list] read after a reset. *)
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@," k v) (to_list t);
  Format.fprintf fmt "@]"
