module Codec = Trex_util.Codec
module Dom = Trex_xml.Dom

type criterion = Tag | Incoming | A_k of int

type node = {
  n_label : string;
  n_parent : int;
  n_children : (string, int) Hashtbl.t;
  mutable n_extent : int;
  mutable n_self_nesting : bool;
      (* an element of this extent was observed nested inside another
         element of the same extent *)
}

type t = {
  criterion : criterion;
  alias : Alias.t;
  nodes : (int, node) Hashtbl.t; (* sid 0 = virtual root *)
  mutable next_sid : int;
}

let new_node t ~label ~parent =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let node =
    {
      n_label = label;
      n_parent = parent;
      n_children = Hashtbl.create 4;
      n_extent = 0;
      n_self_nesting = false;
    }
  in
  Hashtbl.add t.nodes sid node;
  sid

let create ?(alias = Alias.identity) criterion =
  (match criterion with
  | A_k k when k < 1 -> invalid_arg "Summary.create: A(k) requires k >= 1"
  | A_k _ | Tag | Incoming -> ());
  let t = { criterion; alias; nodes = Hashtbl.create 64; next_sid = 0 } in
  ignore (new_node t ~label:"" ~parent:(-1));
  t

let criterion t = t.criterion
let alias t = t.alias
let node t sid =
  match Hashtbl.find_opt t.nodes sid with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Summary: unknown sid %d" sid)

let child_of t sid label = Hashtbl.find_opt (node t sid).n_children label

let ensure_child t sid label =
  match child_of t sid label with
  | Some c -> c
  | None ->
      let c = new_node t ~label ~parent:sid in
      Hashtbl.add (node t sid).n_children label c;
      c

let aliased_path t path = List.map (Alias.apply t.alias) path

(* For a Tag summary, an element's sid depends only on its own tag; the
   element is self-nested iff its tag occurs earlier on its own path. *)
let has_dup_last path =
  match List.rev path with [] -> false | last :: ancestors -> List.mem last ancestors

(* The last [k] labels of [path], element tag last. *)
let suffix_of k path =
  let n = List.length path in
  if n <= k then path else List.filteri (fun i _ -> i >= n - k) path

(* For A(k): is the element nested inside an ancestor with the same
   k-suffix? Ancestors are the proper prefixes of the path. *)
let ak_self_nesting k apath =
  let own = suffix_of k apath in
  let n = List.length apath in
  let rec check m =
    if m >= n then false
    else
      let prefix = List.filteri (fun i _ -> i < m) apath in
      if suffix_of k prefix = own then true else check (m + 1)
  in
  check 1

(* A(k) tries are keyed by the reversed suffix: trie depth 1 is the
   element's own tag, depth 2 its parent's, and so on up to k. *)
let ak_walk_existing t k apath =
  let rev_suffix = List.rev (suffix_of k apath) in
  List.fold_left
    (fun cur label ->
      match cur with None -> None | Some sid -> child_of t sid label)
    (Some 0) rev_suffix

let observe t path =
  if path = [] then invalid_arg "Summary.observe: empty path";
  let apath = aliased_path t path in
  match t.criterion with
  | Tag ->
      let tag = List.nth apath (List.length apath - 1) in
      let sid = ensure_child t 0 tag in
      let n = node t sid in
      n.n_extent <- n.n_extent + 1;
      if has_dup_last apath then n.n_self_nesting <- true;
      sid
  | Incoming ->
      let sid = List.fold_left (fun cur label -> ensure_child t cur label) 0 apath in
      let n = node t sid in
      n.n_extent <- n.n_extent + 1;
      sid
  | A_k k ->
      let rev_suffix = List.rev (suffix_of k apath) in
      let sid =
        List.fold_left (fun cur label -> ensure_child t cur label) 0 rev_suffix
      in
      let n = node t sid in
      n.n_extent <- n.n_extent + 1;
      if ak_self_nesting k apath then n.n_self_nesting <- true;
      sid

let sid_of_path t path =
  if path = [] then None
  else
    let apath = aliased_path t path in
    match t.criterion with
    | Tag -> child_of t 0 (List.nth apath (List.length apath - 1))
    | Incoming ->
        List.fold_left
          (fun cur label ->
            match cur with None -> None | Some sid -> child_of t sid label)
          (Some 0) apath
    | A_k k -> ak_walk_existing t k apath

let node_count t = Hashtbl.length t.nodes - 1
let extent_size t sid =
  match Hashtbl.find_opt t.nodes sid with Some n -> n.n_extent | None -> 0

let rec up_labels t sid acc =
  if sid <= 0 then acc
  else
    let n = node t sid in
    up_labels t n.n_parent (n.n_label :: acc)

(* Trie depth of a node (root = 0). *)
let rec node_depth t sid = if sid <= 0 then 0 else 1 + node_depth t (node t sid).n_parent

let label_path t sid =
  if sid <= 0 then invalid_arg "Summary.label_path: not a real sid";
  match t.criterion with
  | Tag | Incoming -> up_labels t sid []
  | A_k _ ->
      (* The trie stores the suffix reversed; present it root-most
         label first, like the other criteria. *)
      List.rev (up_labels t sid [])

let label t sid =
  if sid <= 0 then invalid_arg "Summary.label: not a real sid";
  match t.criterion with
  | Tag | Incoming -> (node t sid).n_label
  | A_k _ -> (
      match List.rev (label_path t sid) with
      | tag :: _ -> tag
      | [] -> assert false)

let xpath_of_sid t sid =
  match t.criterion with
  | Tag -> "//" ^ label t sid
  | Incoming -> "/" ^ String.concat "/" (label_path t sid)
  | A_k k ->
      let suffix = label_path t sid in
      (* A short suffix pins the whole path; a full-length one only the
         tail. *)
      if List.length suffix < k then "/" ^ String.concat "/" suffix
      else "//" ^ String.concat "/" suffix

let test_matches test lbl =
  match test with None -> true | Some tag -> tag = lbl

let children_sids t sid =
  Hashtbl.fold (fun _ c acc -> c :: acc) (node t sid).n_children []

let rec descendant_sids t sid acc =
  List.fold_left
    (fun acc c -> descendant_sids t c (c :: acc))
    acc (children_sids t sid)

module Int_set = Set.Make (Int)

let match_pattern t pattern =
  let pattern = Pattern.apply_alias t.alias pattern in
  match t.criterion with
  | Tag -> (
      (* No ancestry: only the final node test can be honoured. *)
      match List.rev pattern with
      | [] -> []
      | { Pattern.test; _ } :: _ ->
          children_sids t 0
          |> List.filter (fun sid -> test_matches test (label t sid))
          |> List.sort compare)
  | Incoming ->
      let step frontier { Pattern.axis; test } =
        Int_set.fold
          (fun sid acc ->
            let candidates =
              match axis with
              | Pattern.Child -> children_sids t sid
              | Pattern.Descendant -> descendant_sids t sid []
            in
            List.fold_left
              (fun acc c ->
                if test_matches test (label t c) then Int_set.add c acc else acc)
              acc candidates)
          frontier Int_set.empty
      in
      List.fold_left step (Int_set.singleton 0) pattern
      |> Int_set.elements
  | A_k k ->
      (* A node at trie depth < k pins the full path (shallow
         elements); at depth k only the tail is known, so the match is
         the sound over-approximation of {!Pattern.matches_suffix}. *)
      List.filter
        (fun sid ->
          let n = node t sid in
          if n.n_extent = 0 then false
          else
            let suffix = label_path t sid in
            if node_depth t sid < k then Pattern.matches_path pattern suffix
            else Pattern.matches_suffix pattern suffix)
        (Hashtbl.fold
           (fun sid _ acc -> if sid = 0 then acc else sid :: acc)
           t.nodes [])
      |> List.sort compare

let sids t =
  Hashtbl.fold (fun sid _ acc -> if sid = 0 then acc else sid :: acc) t.nodes []
  |> List.sort compare

let nesting_free t =
  Hashtbl.fold (fun _ n acc -> acc && not n.n_self_nesting) t.nodes true

let observe_document t doc =
  let out = ref [] in
  Dom.iter_elements doc (fun path el -> out := (observe t path, el) :: !out);
  List.rev !out

let criterion_byte = function Tag -> 'T' | Incoming -> 'I' | A_k _ -> 'K'

let to_string t =
  let b = Codec.Buf.create ~capacity:4096 () in
  Codec.Buf.add_raw b "TRExSM01";
  Codec.Buf.add_raw b (String.make 1 (criterion_byte t.criterion));
  (match t.criterion with
  | A_k k -> Codec.Buf.add_varint b k
  | Tag | Incoming -> ());
  let alias_bindings = Alias.bindings t.alias in
  Codec.Buf.add_varint b (List.length alias_bindings);
  List.iter
    (fun (s, c) ->
      Codec.Buf.add_string b s;
      Codec.Buf.add_string b c)
    alias_bindings;
  Codec.Buf.add_varint b (t.next_sid - 1);
  (* Nodes were assigned sids in creation order, so parents always have
     smaller sids; serializing in sid order lets of_string rebuild the
     child maps directly. *)
  for sid = 1 to t.next_sid - 1 do
    let n = node t sid in
    Codec.Buf.add_string b n.n_label;
    Codec.Buf.add_varint b n.n_parent;
    Codec.Buf.add_varint b n.n_extent;
    Codec.Buf.add_varint b (if n.n_self_nesting then 1 else 0)
  done;
  Codec.Buf.contents b

let of_string s =
  let r = Codec.Reader.of_string s in
  (try
     if Codec.Reader.raw r 8 <> "TRExSM01" then
       failwith "Summary.of_string: bad magic"
   with Codec.Reader.Truncated -> failwith "Summary.of_string: truncated");
  try
    let criterion =
      match Codec.Reader.raw r 1 with
      | "T" -> Tag
      | "I" -> Incoming
      | "K" -> A_k (Codec.Reader.varint r)
      | c -> failwith ("Summary.of_string: bad criterion " ^ c)
    in
    let n_alias = Codec.Reader.varint r in
    (* explicit in-order loop: List.init's evaluation order is
       unspecified, which would scramble a stateful reader *)
    let alias_bindings = ref [] in
    for _ = 1 to n_alias do
      let s = Codec.Reader.string r in
      let c = Codec.Reader.string r in
      alias_bindings := (s, c) :: !alias_bindings
    done;
    let alias_bindings = List.rev !alias_bindings in
    let t = create ~alias:(Alias.of_list alias_bindings) criterion in
    let n_nodes = Codec.Reader.varint r in
    for _ = 1 to n_nodes do
      let label = Codec.Reader.string r in
      let parent = Codec.Reader.varint r in
      let extent = Codec.Reader.varint r in
      let self_nesting = Codec.Reader.varint r = 1 in
      let sid = new_node t ~label ~parent in
      Hashtbl.add (node t parent).n_children label sid;
      let n = node t sid in
      n.n_extent <- extent;
      n.n_self_nesting <- self_nesting
    done;
    t
  with Codec.Reader.Truncated -> failwith "Summary.of_string: truncated"
