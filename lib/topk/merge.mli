(** The Merge algorithm over ERPLs (paper Figure 3).

    One position-ordered cursor per query term; elements arriving at the
    same document position have their per-term scores summed; the merged
    vector is then sorted by score. Computes {e all} answers in one
    sequential pass — no per-entry heap bookkeeping, which is exactly
    why it beats TA once TA must read most of its lists anyway.
    Requires the ERPLs of every (term, sid) pair of the query. *)

type stats = {
  entries_read : int;  (** ERPL entries consumed across all terms *)
  elements_merged : int;  (** distinct elements in the merged vector *)
  blocks_decoded : int;
      (** compressed ERPL blocks decoded; 0 over raw-layout lists *)
  elapsed_seconds : float;
  degraded : bool;
      (** the guard expired and the answers are a position-prefix of
          the full merge (scores of returned elements are exact) *)
}

val run :
  ?guard:Trex_resilience.Guard.t ->
  Trex_invindex.Index.t ->
  sids:int list ->
  terms:string list ->
  Answer.t * stats
(** All answers, descending score. [guard] is ticked once per merged
    element, between element drains, so a degraded run still reports
    exact scores for every element it returns.
    @raise Rpl.Cursor.Missing_list when a required ERPL is absent.
    @raise Invalid_argument when [terms] is empty. *)
