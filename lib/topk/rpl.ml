module Codec = Trex_util.Codec
module Env = Trex_storage.Env
module Bptree = Trex_storage.Bptree
module Pager = Trex_storage.Pager
module Manifest = Trex_storage.Manifest
module Types = Trex_invindex.Types
module Index = Trex_invindex.Index
module Metrics = Trex_obs.Metrics

(* Process-wide cursor traffic, split by layout; the per-cursor
   [entries_read]/[entries_skipped] accessors stay the per-run view. *)
let m_full_read = Metrics.counter "rpl.full.entries_read"
let m_full_skipped = Metrics.counter "rpl.full.entries_skipped"
let m_merged_read = Metrics.counter "rpl.merged.entries_read"

type entry = { element : Types.element; score : float }
type kind = Rpl | Erpl
type layout = Raw | Compressed

let kind_to_string = function Rpl -> "RPL" | Erpl -> "ERPL"
let layout_to_string = function Raw -> "raw" | Compressed -> "compressed"
let table_name = function Rpl -> "rpls" | Erpl -> "erpls"
let catalog_name = function Rpl -> "rpl_catalog" | Erpl -> "erpl_catalog"

exception Stale_generation of { table : string; generation : int }

(* Generation check (paper's "never serve an uncommitted index"): a
   table still belonging to an unresolved manifest operation may hold
   lists from an uncommitted generation and must not back a cursor. *)
let check_generation index name =
  let env = Index.env index in
  if Env.table_blocked env name then
    raise (Stale_generation { table = name; generation = Env.generation env })

let chunk_size = 32

(* ---- keys ---- *)

let pair_prefix ~term ~sid =
  Codec.concat_keys [ Codec.key_of_string term; Codec.key_of_int sid ]

(* Chunk keys embed the first entry so chunks sort correctly within the
   (term, sid) prefix: by descending score for RPLs, by position for
   ERPLs. *)
let chunk_key kind ~term ~sid (first : entry) =
  let e = first.element in
  let tail =
    match kind with
    | Rpl ->
        [ Codec.key_of_float (-.first.score); Codec.key_of_int e.docid; Codec.key_of_int e.endpos ]
    | Erpl -> [ Codec.key_of_int e.docid; Codec.key_of_int e.endpos ]
  in
  Codec.concat_keys (pair_prefix ~term ~sid :: tail)

(* ---- entry chunk codec ---- *)

let encode_chunk ~sid entries =
  let b = Codec.Buf.create ~capacity:256 () in
  Codec.Buf.add_varint b (List.length entries);
  List.iter
    (fun { element = e; score } ->
      assert (e.Types.sid = sid);
      Codec.Buf.add_float b score;
      Codec.Buf.add_varint b e.docid;
      Codec.Buf.add_varint b e.endpos;
      Codec.Buf.add_varint b e.length)
    entries;
  Codec.Buf.contents b

let decode_chunk ~sid v =
  let r = Codec.Reader.of_string v in
  let n = Codec.Reader.varint r in
  (* Explicit in-order loop: [List.init] applies its function in an
     unspecified order, which would scramble the stateful reader. *)
  let out = ref [] in
  for _ = 1 to n do
    let score = Codec.Reader.float r in
    let docid = Codec.Reader.varint r in
    let endpos = Codec.Reader.varint r in
    let length = Codec.Reader.varint r in
    out := { element = { Types.sid; docid; endpos; length }; score } :: !out
  done;
  List.rev !out

(* ---- block-compressed segments (v2) ----

   Several delta-encoded blocks share one table value behind a
   [Codec.Block] skip directory. Exact scores are dictionary-coded per
   segment (each distinct float stored once, entries carry indices), so
   returned scores are bit-identical to the raw layout — the skip
   directory's per-block score maxima are quantized {e up} separately
   and used only as rank-safe pruning bounds. Block headers carry the
   docid range and last position so a cursor can skip whole blocks by
   score bound (TA's floor) or by position (Merge-style seeks) without
   decoding them, plus — for full-term lists — a 63-bit sid-hash bitmap
   so foreign-extent blocks are never decoded at all. *)

let block_entries = 64
let segment_budget = 1536

(* Incremental per-segment score dictionary. *)
module Dict = struct
  type t = {
    tbl : (float, int) Hashtbl.t;
    mutable rev : float list;
    mutable n : int;
  }

  let create () = { tbl = Hashtbl.create 64; rev = []; n = 0 }

  let index d s =
    match Hashtbl.find_opt d.tbl s with
    | Some i -> i
    | None ->
        let i = d.n in
        Hashtbl.add d.tbl s i;
        d.rev <- s :: d.rev;
        d.n <- d.n + 1;
        i

  let news d entries =
    (* Distinct scores of [entries] not yet in the dictionary. *)
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun { score; _ } ->
        if Hashtbl.mem d.tbl score || Hashtbl.mem seen score then None
        else begin
          Hashtbl.add seen score ();
          Some score
        end)
      entries

  let encode d =
    let b = Codec.Buf.create ~capacity:((8 * d.n) + 4) () in
    Codec.Buf.add_uvarint b d.n;
    List.iter (fun s -> Codec.Buf.add_float b s) (List.rev d.rev);
    Codec.Buf.contents b
end

let decode_dict extra =
  let r = Codec.Reader.of_string extra in
  let n = Codec.Reader.uvarint r in
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    a.(i) <- Codec.Reader.float r
  done;
  a

type block_info = {
  blk_count : int;
  blk_qmax : int; (* quantized-up max score: sound pruning bound *)
  blk_min_docid : int;
  blk_max_docid : int;
  blk_last_endpos : int; (* endpos of the last entry (position order) *)
  blk_sids : int; (* 63-bit sid-hash bitmap; 0 in per-(term,sid) lists *)
}

let sid_bit sid = 1 lsl (sid mod 63)

let encode_block ~with_sid dict entries =
  match entries with
  | [] -> invalid_arg "Rpl.encode_block: empty block"
  | _ ->
      let qmax = ref 0 and min_doc = ref max_int and max_doc = ref 0 in
      let bitmap = ref 0 in
      let last = ref (List.hd entries) in
      List.iter
        (fun ({ element = e; score } as entry) ->
          qmax := max !qmax (Codec.Block.quantize_up score);
          min_doc := min !min_doc e.Types.docid;
          max_doc := max !max_doc e.Types.docid;
          bitmap := !bitmap lor sid_bit e.Types.sid;
          last := entry)
        entries;
      let h = Codec.Buf.create ~capacity:24 () in
      Codec.Buf.add_uvarint h (List.length entries);
      Codec.Buf.add_uvarint h !qmax;
      Codec.Buf.add_uvarint h !min_doc;
      Codec.Buf.add_uvarint h (!max_doc - !min_doc);
      Codec.Buf.add_uvarint h !last.element.Types.endpos;
      if with_sid then Codec.Buf.add_uvarint h !bitmap;
      (* Payload: parallel bit-packed streams (score index, [sid],
         zig-zag docid delta, zig-zag endpos delta, length), each
         preceded by its uvarint width. Frame-of-reference per stream:
         a block's score indexes or deltas rarely need more than a few
         bits, where per-entry varints spend at least eight. Widths
         live in the payload, not the skip-entry header, so skipped
         blocks never read them. *)
      let n = List.length entries in
      let idxs = Array.make n 0
      and sids = Array.make (if with_sid then n else 0) 0
      and zdocs = Array.make n 0
      and zends = Array.make n 0
      and lens = Array.make n 0 in
      let zz v = (v lsl 1) lxor (v asr 62) in
      let prev_doc = ref !min_doc and prev_end = ref 0 in
      List.iteri
        (fun i { element = e; score } ->
          idxs.(i) <- Dict.index dict score;
          if with_sid then sids.(i) <- e.Types.sid;
          zdocs.(i) <- zz (e.docid - !prev_doc);
          zends.(i) <- zz (e.endpos - !prev_end);
          lens.(i) <- e.length;
          prev_doc := e.docid;
          prev_end := e.endpos)
        entries;
      let b = Codec.Buf.create ~capacity:256 () in
      let put a =
        let w = Codec.Bitpack.width a in
        Codec.Buf.add_uvarint b w;
        Codec.Bitpack.pack b ~width:w a
      in
      put idxs;
      if with_sid then put sids;
      put zdocs;
      put zends;
      put lens;
      (Codec.Buf.contents h, Codec.Buf.contents b)

let decode_block_header ~with_sid r =
  let blk_count = Codec.Reader.uvarint r in
  let blk_qmax = Codec.Reader.uvarint r in
  let blk_min_docid = Codec.Reader.uvarint r in
  let blk_max_docid = blk_min_docid + Codec.Reader.uvarint r in
  let blk_last_endpos = Codec.Reader.uvarint r in
  let blk_sids = if with_sid then Codec.Reader.uvarint r else 0 in
  { blk_count; blk_qmax; blk_min_docid; blk_max_docid; blk_last_endpos; blk_sids }

let decode_block ~with_sid ~sid dict info r =
  let n = info.blk_count in
  let stream () =
    let w = Codec.Reader.uvarint r in
    Codec.Bitpack.unpack r ~width:w ~count:n
  in
  let idxs = stream () in
  let sids = if with_sid then stream () else [||] in
  let zdocs = stream () in
  let zends = stream () in
  let lens = stream () in
  let unzz z = (z lsr 1) lxor (-(z land 1)) in
  let prev_doc = ref info.blk_min_docid and prev_end = ref 0 in
  let out = ref [] in
  for i = 0 to n - 1 do
    let idx = idxs.(i) in
    if idx >= Array.length dict then
      raise (Codec.Reader.Malformed "Rpl.decode_block: score index out of range");
    let score = dict.(idx) in
    let sid = if with_sid then sids.(i) else sid in
    let docid = !prev_doc + unzz zdocs.(i) in
    let endpos = !prev_end + unzz zends.(i) in
    let length = lens.(i) in
    prev_doc := docid;
    prev_end := endpos;
    out := { element = { Types.sid; docid; endpos; length }; score } :: !out
  done;
  List.rev !out

(* Cut a sorted entry list into (key, segment) rows: blocks of
   [block_entries] entries, segments flushed just before the byte
   budget so every row stays inside the B+tree entry budget. The
   dictionary grows per segment; a block whose addition would overflow
   is re-encoded against the next segment's fresh dictionary. *)
let segment_rows ~with_sid ~key_of_first entries =
  let rec chunk_blocks acc = function
    | [] -> List.rev acc
    | l ->
        let rec take n acc rest =
          match (n, rest) with
          | 0, _ | _, [] -> (List.rev acc, rest)
          | n, x :: tl -> take (n - 1) (x :: acc) tl
        in
        let block, rest = take block_entries [] l in
        chunk_blocks (block :: acc) rest
  in
  let rows = ref [] in
  let w = ref (Codec.Block.Writer.create ()) in
  let dict = ref (Dict.create ()) in
  let seg_first = ref None in
  let flush () =
    match !seg_first with
    | None -> ()
    | Some first ->
        rows :=
          (key_of_first first, Codec.Block.Writer.contents ~extra:(Dict.encode !dict) !w)
          :: !rows;
        w := Codec.Block.Writer.create ();
        dict := Dict.create ();
        seg_first := None
  in
  List.iter
    (fun block ->
      let news = Dict.news !dict block in
      let header, payload = encode_block ~with_sid !dict block in
      let projected =
        Codec.Block.Writer.byte_estimate !w
        + String.length header + String.length payload
        + (8 * (!dict).Dict.n) + 16
      in
      if (not (Codec.Block.Writer.is_empty !w)) && projected > segment_budget then begin
        (* The dictionary already holds this block's new scores; they
           must not leak into the flushed segment's dictionary, so roll
           them back before flushing and re-encode against the fresh
           one. *)
        let d = !dict in
        List.iter (fun s -> Hashtbl.remove d.Dict.tbl s) news;
        d.Dict.n <- d.Dict.n - List.length news;
        d.Dict.rev <-
          (let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
           drop (List.length news) d.Dict.rev);
        flush ();
        let header, payload = encode_block ~with_sid !dict block in
        seg_first := Some (List.hd block);
        Codec.Block.Writer.add !w ~header ~payload
      end
      else begin
        if !seg_first = None then seg_first := Some (List.hd block);
        Codec.Block.Writer.add !w ~header ~payload
      end)
    (chunk_blocks [] entries);
  flush ();
  List.rev !rows

(* ---- catalog ---- *)

let catalog_key ~term ~sid = pair_prefix ~term ~sid

(* Catalog rows: entry count, stored bytes, what the list would cost
   raw (for the advisor's layout pricing), the layout, and — for
   truncated RPL prefixes — an {e explicit} truncated flag plus the
   score bound below which entries were dropped.

   v1 rows encoded the truncation flag as [bound > 0.0], so a truncated
   list whose bound happened to be 0.0 round-tripped as untruncated and
   TA would never learn it had to certify. v2 rows store the flag
   explicitly and open with a negative version marker (v1 rows start
   with a non-negative entry count), so both row versions are read
   transparently. *)
type catalog_row = {
  cat_entries : int;
  cat_bytes : int;
  cat_raw_bytes : int;
  cat_bound : float;
  cat_truncated : bool;
  cat_layout : layout;
}

let catalog_row_marker = -2

let decode_catalog_row v =
  let r = Codec.Reader.of_string v in
  let first = Codec.Reader.varint r in
  if first >= 0 then begin
    (* v1: entries, bytes, bound-present flag doubling as truncation. *)
    let cat_bytes = Codec.Reader.varint r in
    let cat_truncated = Codec.Reader.varint r = 1 in
    let cat_bound = if cat_truncated then Codec.Reader.float r else 0.0 in
    {
      cat_entries = first;
      cat_bytes;
      cat_raw_bytes = cat_bytes;
      cat_bound;
      cat_truncated;
      cat_layout = Raw;
    }
  end
  else if first = catalog_row_marker then begin
    let cat_entries = Codec.Reader.uvarint r in
    let cat_bytes = Codec.Reader.uvarint r in
    let cat_raw_bytes = Codec.Reader.uvarint r in
    let flags = Codec.Reader.uvarint r in
    let cat_truncated = flags land 1 <> 0 in
    let cat_layout = if flags land 2 <> 0 then Compressed else Raw in
    let cat_bound = if cat_truncated then Codec.Reader.float r else 0.0 in
    { cat_entries; cat_bytes; cat_raw_bytes; cat_bound; cat_truncated; cat_layout }
  end
  else raise (Codec.Reader.Malformed "Rpl: unknown catalog row version")

let catalog_find index kind ~term ~sid =
  let tbl = Env.table (Index.env index) (catalog_name kind) in
  match Bptree.find tbl (catalog_key ~term ~sid) with
  | None -> None
  | Some v -> Some (decode_catalog_row v)

let catalog_put index kind ~term ~sid ~entries ~bytes ~raw_bytes ~truncated
    ~bound ~layout =
  let tbl = Env.table (Index.env index) (catalog_name kind) in
  let b = Codec.Buf.create ~capacity:24 () in
  Codec.Buf.add_varint b catalog_row_marker;
  Codec.Buf.add_uvarint b entries;
  Codec.Buf.add_uvarint b bytes;
  Codec.Buf.add_uvarint b raw_bytes;
  let flags =
    (if truncated then 1 else 0)
    lor (match layout with Compressed -> 2 | Raw -> 0)
  in
  Codec.Buf.add_uvarint b flags;
  if truncated then Codec.Buf.add_float b bound;
  Bptree.insert tbl ~key:(catalog_key ~term ~sid) ~value:(Codec.Buf.contents b)

let is_materialized index kind ~term ~sid =
  catalog_find index kind ~term ~sid <> None

let covers index kind ~sids ~terms =
  List.for_all
    (fun term -> List.for_all (fun sid -> is_materialized index kind ~term ~sid) sids)
    terms

let list_bytes index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with Some c -> c.cat_bytes | None -> 0

let list_entries index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with Some c -> c.cat_entries | None -> 0

let list_bound index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with Some c -> c.cat_bound | None -> 0.0

let list_truncated index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with
  | Some c -> c.cat_truncated
  | None -> false

let list_layout index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with
  | Some c -> Some c.cat_layout
  | None -> None

let list_raw_bytes index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with
  | Some c -> c.cat_raw_bytes
  | None -> 0

let catalog index kind =
  let tbl = Env.table (Index.env index) (catalog_name kind) in
  let out = ref [] in
  Bptree.iter tbl (fun k v ->
      let term, p = Codec.string_of_key k ~pos:0 in
      let sid, _ = Codec.int_of_key k ~pos:p in
      let row = decode_catalog_row v in
      out := (term, sid, row.cat_entries, row.cat_bytes) :: !out);
  List.rev !out

let total_bytes index kind =
  List.fold_left (fun acc (_, _, _, b) -> acc + b) 0 (catalog index kind)

(* ---- building ---- *)

type build_report = {
  pairs_built : (string * int) list;
  pairs_reused : int;
  entries_written : int;
  bytes_estimate : int;
}

let rec chunks_of n l =
  match l with
  | [] -> []
  | _ ->
      let rec take k acc rest =
        match (k, rest) with
        | 0, _ | _, [] -> (List.rev acc, rest)
        | k, x :: tl -> take (k - 1) (x :: acc) tl
      in
      let chunk, rest = take n [] l in
      chunk :: chunks_of n rest

let compare_rpl_order a b =
  match compare b.score a.score with
  | 0 -> Types.compare_element a.element b.element
  | c -> c

let compare_erpl_order a b = Types.compare_element a.element b.element

let rec list_take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: list_take (n - 1) rest

let raw_rows kind ~term ~sid sorted =
  List.filter_map
    (fun chunk ->
      match chunk with
      | [] -> None
      | first :: _ ->
          Some (chunk_key kind ~term ~sid first, encode_chunk ~sid chunk))
    (chunks_of chunk_size sorted)

let compressed_rows kind ~term ~sid sorted =
  segment_rows ~with_sid:false
    ~key_of_first:(fun first -> chunk_key kind ~term ~sid first)
    sorted

let rows_bytes rows =
  List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v) 0 rows

let write_list index kind ~term ~sid ?prefix ?(layout = Compressed) entries =
  let tbl = Env.table (Index.env index) (table_name kind) in
  (* Clear any chunks left under this pair (e.g. from a list whose drop
     removed the catalog row but crashed before the chunks, or a list
     being rebuilt in the other layout) so the new list never
     interleaves with stale entries. *)
  let stale = ref [] in
  Bptree.iter_prefix tbl ~prefix:(pair_prefix ~term ~sid) (fun k _ ->
      stale := k :: !stale);
  List.iter (fun k -> ignore (Bptree.remove tbl k)) !stale;
  let sorted =
    List.sort
      (match kind with Rpl -> compare_rpl_order | Erpl -> compare_erpl_order)
      entries
  in
  (* RPL prefixes (paper §4): keep only the best [n] entries and record
     the bound every dropped entry is below, with an explicit truncated
     flag (a bound of 0.0 must still certify). *)
  let sorted, bound, truncated =
    match (kind, prefix) with
    | Rpl, Some n when List.length sorted > n ->
        let kept = list_take n sorted in
        let bound =
          match List.rev kept with last :: _ -> last.score | [] -> 0.0
        in
        (kept, bound, true)
    | (Rpl | Erpl), _ -> (sorted, 0.0, false)
  in
  (* Both encodings are priced so the advisor can weigh compressed
     against raw materialization; only the chosen one is stored. *)
  let raw = raw_rows kind ~term ~sid sorted in
  let raw_bytes = rows_bytes raw in
  let rows =
    match layout with Raw -> raw | Compressed -> compressed_rows kind ~term ~sid sorted
  in
  let bytes = rows_bytes rows in
  List.iter (fun (key, value) -> Bptree.insert tbl ~key ~value) rows;
  catalog_put index kind ~term ~sid ~entries:(List.length sorted) ~bytes
    ~raw_bytes ~truncated ~bound ~layout;
  (List.length sorted, bytes)

let build index ~scoring ~sids ~terms ~kinds ?rpl_prefix ?(layout = Compressed) () =
  let sids = List.sort_uniq compare sids in
  (* A list materialized in the other layout counts as missing: asking
     for a layout rebuilds it through the same manifest-guarded path,
     which is also how pre-existing raw environments migrate. *)
  let missing kind term sid =
    match catalog_find index kind ~term ~sid with
    | None -> true
    | Some row -> row.cat_layout <> layout
  in
  let work =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun term ->
            List.filter_map
              (fun sid -> if missing kind term sid then Some (kind, term, sid) else None)
              sids)
          terms)
      kinds
  in
  let pairs_total = List.length kinds * List.length terms * List.length sids in
  if work = [] then
    {
      pairs_built = [];
      pairs_reused = pairs_total;
      entries_written = 0;
      bytes_estimate = 0;
    }
  else begin
    let results, _stats = Era.run index ~sids ~terms in
    let per_term = Era.per_term_scores index ~scoring ~terms results in
    (* Group each term's entries by sid for per-(term, sid) lists. *)
    let by_pair : (string * int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (term, entries) ->
        List.iter
          (fun (element, score) ->
            let key = (term, element.Types.sid) in
            let cell =
              match Hashtbl.find_opt by_pair key with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.add by_pair key c;
                  c
            in
            cell := { element; score } :: !cell)
          entries)
      per_term;
    let built = ref [] and entries_written = ref 0 and bytes = ref 0 in
    (* Build op: lists are written directly between Begin and Commit;
       if the commit record never lands, recovery quarantines the
       rollback tables (they are redundant — rebuildable from ERA). *)
    let env = Index.env index in
    let op_tables =
      List.map (fun (k, _, _) -> k) work
      |> List.sort_uniq compare
      |> List.concat_map (fun k -> [ table_name k; catalog_name k ])
    in
    let o = Env.begin_op env ~op:"rpl_build" ~tables:op_tables ~rollback:op_tables () in
    (try
       List.iter
         (fun (kind, term, sid) ->
           let entries =
             match Hashtbl.find_opt by_pair (term, sid) with
             | Some c -> !c
             | None -> []
           in
           let n, sz =
             write_list index kind ~term ~sid ?prefix:rpl_prefix ~layout entries
           in
           built := (term, sid) :: !built;
           entries_written := !entries_written + n;
           bytes := !bytes + sz)
         work;
       Env.commit_op env o
     with
    | Pager.Injected_crash _ as e ->
        (* Simulated process death: leave the op pending for recovery. *)
        raise e
    | e ->
        Env.abort_op env o ~note:(Printexc.to_string e);
        raise e);
    {
      pairs_built = List.rev !built;
      pairs_reused = pairs_total - List.length work;
      entries_written = !entries_written;
      bytes_estimate = !bytes;
    }
  end

(* Catalog row first: once it is gone the list is not servable
   (planning and cursors go through the catalog), so a crash mid-drop
   can orphan unreferenced chunks but never leave a half-deleted list
   visible. [write_list] clears orphans when the pair is rebuilt. *)
let drop index kind ~term ~sid =
  let cat = Env.table (Index.env index) (catalog_name kind) in
  ignore (Bptree.remove cat (catalog_key ~term ~sid));
  let tbl = Env.table (Index.env index) (table_name kind) in
  let prefix = pair_prefix ~term ~sid in
  let keys = ref [] in
  Bptree.iter_prefix tbl ~prefix (fun k _ -> keys := k :: !keys);
  List.iter (fun k -> ignore (Bptree.remove tbl k)) !keys

(* The same drop as physical manifest actions, for redo-logged
   operations (catalog removal ordered first, as in {!drop}). *)
let drop_actions kind ~term ~sid =
  [
    Manifest.Remove { table = catalog_name kind; key = catalog_key ~term ~sid };
    Manifest.Remove_prefix
      { table = table_name kind; prefix = pair_prefix ~term ~sid };
  ]

let drop_all index kind =
  List.iter (fun (term, sid, _, _) -> drop index kind ~term ~sid) (catalog index kind)

module Full = struct
  let table_name = "rpls_full"
  let catalog_name = "rpl_full_catalog"

  (* Paper schema: key (token, ir, SID, docid, endpos); the value chunk
     carries the 5-tuples (score, sid, docid, endpos, length). *)
  let chunk_key ~term (first : entry) =
    let e = first.element in
    Codec.concat_keys
      [
        Codec.key_of_string term;
        Codec.key_of_float (-.first.score);
        Codec.key_of_int e.Types.sid;
        Codec.key_of_int e.docid;
        Codec.key_of_int e.endpos;
      ]

  let encode_chunk entries =
    let b = Codec.Buf.create ~capacity:256 () in
    Codec.Buf.add_varint b (List.length entries);
    List.iter
      (fun { element = e; score } ->
        Codec.Buf.add_float b score;
        Codec.Buf.add_varint b e.Types.sid;
        Codec.Buf.add_varint b e.docid;
        Codec.Buf.add_varint b e.endpos;
        Codec.Buf.add_varint b e.length)
      entries;
    Codec.Buf.contents b

  let decode_chunk v =
    let r = Codec.Reader.of_string v in
    let n = Codec.Reader.varint r in
    (* In-order loop, not [List.init]: the reader is stateful. *)
    let out = ref [] in
    for _ = 1 to n do
      let score = Codec.Reader.float r in
      let sid = Codec.Reader.varint r in
      let docid = Codec.Reader.varint r in
      let endpos = Codec.Reader.varint r in
      let length = Codec.Reader.varint r in
      out := { element = { Types.sid; docid; endpos; length }; score } :: !out
    done;
    List.rev !out

  let catalog_find index ~term =
    let tbl = Env.table (Index.env index) catalog_name in
    match Bptree.find tbl (Codec.key_of_string term) with
    | None -> None
    | Some v ->
        let r = Codec.Reader.of_string v in
        let entries = Codec.Reader.varint r in
        let bytes = Codec.Reader.varint r in
        Some (entries, bytes)

  let is_materialized index ~term = catalog_find index ~term <> None
  let list_entries index ~term =
    match catalog_find index ~term with Some (n, _) -> n | None -> 0

  let list_bytes index ~term =
    match catalog_find index ~term with Some (_, b) -> b | None -> 0

  let build index ~scoring ?(layout = Compressed) ~terms () =
    let missing = List.filter (fun t -> not (is_materialized index ~term:t)) terms in
    if missing = [] then
      {
        pairs_built = [];
        pairs_reused = List.length terms;
        entries_written = 0;
        bytes_estimate = 0;
      }
    else begin
      let all_sids = Trex_summary.Summary.sids (Index.summary index) in
      let results, _ = Era.run index ~sids:all_sids ~terms:missing in
      let per_term = Era.per_term_scores index ~scoring ~terms:missing results in
      let env = Index.env index in
      let tbl = Env.table env table_name in
      let cat = Env.table env catalog_name in
      let entries_written = ref 0 and bytes = ref 0 and built = ref [] in
      let op_tables = [ table_name; catalog_name ] in
      let o =
        Env.begin_op env ~op:"rpl_full_build" ~tables:op_tables
          ~rollback:op_tables ()
      in
      (try
         List.iter
           (fun (term, scored) ->
             let sorted =
               List.map (fun (element, score) -> { element; score }) scored
               |> List.sort compare_rpl_order
             in
             let rows =
               match layout with
               | Raw ->
                   List.filter_map
                     (fun chunk ->
                       match chunk with
                       | [] -> None
                       | first :: _ -> Some (chunk_key ~term first, encode_chunk chunk))
                     (chunks_of chunk_size sorted)
               | Compressed ->
                   (* Full-term segments carry the sid both per entry
                      and as a per-block bitmap, so a cursor can skip
                      whole foreign-extent blocks undecoded. *)
                   segment_rows ~with_sid:true
                     ~key_of_first:(fun first -> chunk_key ~term first)
                     sorted
             in
             let list_bytes = ref 0 in
             List.iter
               (fun (key, value) ->
                 list_bytes := !list_bytes + String.length key + String.length value;
                 Bptree.insert tbl ~key ~value)
               rows;
             let b = Codec.Buf.create ~capacity:8 () in
             Codec.Buf.add_varint b (List.length sorted);
             Codec.Buf.add_varint b !list_bytes;
             Bptree.insert cat ~key:(Codec.key_of_string term)
               ~value:(Codec.Buf.contents b);
             entries_written := !entries_written + List.length sorted;
             bytes := !bytes + !list_bytes;
             built := (term, -1) :: !built)
           per_term;
         Env.commit_op env o
       with
      | Pager.Injected_crash _ as e -> raise e
      | e ->
          Env.abort_op env o ~note:(Printexc.to_string e);
          raise e);
      {
        pairs_built = List.rev !built;
        pairs_reused = List.length terms - List.length missing;
        entries_written = !entries_written;
        bytes_estimate = !bytes;
      }
    end

  let drop index ~term =
    let prefix = Codec.key_of_string term in
    (* Catalog first, as in the pair-list {!drop}. *)
    ignore (Bptree.remove (Env.table (Index.env index) catalog_name) prefix);
    let tbl = Env.table (Index.env index) table_name in
    let keys = ref [] in
    Bptree.iter_prefix tbl ~prefix (fun k _ -> keys := k :: !keys);
    List.iter (fun k -> ignore (Bptree.remove tbl k)) !keys

  let drop_actions ~term =
    let prefix = Codec.key_of_string term in
    [
      Manifest.Remove { table = catalog_name; key = prefix };
      Manifest.Remove_prefix { table = table_name; prefix };
    ]

  type seg_state = {
    fs_seg : Codec.Block.t;
    fs_dict : float array;
    mutable fs_next : int;
  }

  type cursor = {
    f_cursor : Bptree.Cursor.cursor;
    f_prefix : string;
    f_sids : (int, unit) Hashtbl.t;
    f_bitmap : int; (* union of the query sids' hash bits *)
    mutable f_chunk : entry list;
    mutable f_seg : seg_state option;
    mutable f_done : bool;
    mutable f_read : int;
    mutable f_skipped : int;
    mutable f_blocks_decoded : int;
    mutable f_blocks_skipped : int;
  }

  exception Missing of string

  let cursor index ~term ~sids =
    check_generation index table_name;
    check_generation index catalog_name;
    if not (is_materialized index ~term) then raise (Missing term);
    let tbl = Env.table (Index.env index) table_name in
    let prefix = Codec.key_of_string term in
    let f_sids = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace f_sids s ()) sids;
    {
      f_cursor = Bptree.Cursor.seek tbl prefix;
      f_prefix = prefix;
      f_sids;
      f_bitmap = List.fold_left (fun acc s -> acc lor sid_bit s) 0 sids;
      f_chunk = [];
      f_seg = None;
      f_done = false;
      f_read = 0;
      f_skipped = 0;
      f_blocks_decoded = 0;
      f_blocks_skipped = 0;
    }

  let rec next c =
    match c.f_chunk with
    | e :: rest ->
        c.f_chunk <- rest;
        c.f_read <- c.f_read + 1;
        Metrics.incr m_full_read;
        if Hashtbl.mem c.f_sids e.element.Types.sid then Some e
        else begin
          c.f_skipped <- c.f_skipped + 1;
          Metrics.incr m_full_skipped;
          next c
        end
    | [] -> (
        match c.f_seg with
        | Some st when st.fs_next < Codec.Block.block_count st.fs_seg ->
            let i = st.fs_next in
            st.fs_next <- i + 1;
            let info =
              decode_block_header ~with_sid:true (Codec.Block.header st.fs_seg i)
            in
            (* The bitmap can collide (sid mod 63), so a hit may still
               hold only foreign sids — decoded entries are re-checked
               above. A miss is definitive: skip the block undecoded.
               These entries are counted skipped but not read: never
               touching them is exactly the access the paper's skip
               pattern pays for. *)
            if info.blk_sids land c.f_bitmap = 0 then begin
              c.f_blocks_skipped <- c.f_blocks_skipped + 1;
              c.f_skipped <- c.f_skipped + info.blk_count;
              Metrics.add m_full_skipped info.blk_count;
              next c
            end
            else begin
              c.f_blocks_decoded <- c.f_blocks_decoded + 1;
              c.f_chunk <-
                decode_block ~with_sid:true ~sid:0 st.fs_dict info
                  (Codec.Block.payload st.fs_seg i);
              next c
            end
        | _ ->
            c.f_seg <- None;
            if c.f_done then None
            else begin
              match Bptree.Cursor.next c.f_cursor with
              | Some (k, v)
                when String.length k >= String.length c.f_prefix
                     && String.sub k 0 (String.length c.f_prefix) = c.f_prefix -> (
                  match Codec.Block.of_string v with
                  | Some seg ->
                      c.f_seg <-
                        Some
                          {
                            fs_seg = seg;
                            fs_dict = decode_dict (Codec.Block.extra seg);
                            fs_next = 0;
                          };
                      next c
                  | None ->
                      c.f_chunk <- decode_chunk v;
                      next c)
              | Some _ | None ->
                  c.f_done <- true;
                  None
            end)

  let entries_read c = c.f_read
  let entries_skipped c = c.f_skipped
  let blocks_decoded c = c.f_blocks_decoded
  let blocks_skipped c = c.f_blocks_skipped
end

(* ---- cursors ---- *)

module Cursor = struct
  exception Missing_list of { kind : kind; term : string; sid : int }

  type seg_state = {
    ss_seg : Codec.Block.t;
    ss_dict : float array;
    mutable ss_next : int;
  }

  (* One (term, sid) stream: lazily decoded blocks behind a B+tree
     cursor constrained to the pair prefix. Blocks whose skip entry
     proves them irrelevant — everything at or below the score bound
     (RPLs, descending) or strictly before the position target (ERPLs,
     ascending) — are never decoded. *)
  type stream = {
    s_cursor : Bptree.Cursor.cursor;
    s_prefix : string;
    s_sid : int;
    s_kind : kind;
    mutable s_bound : float;
        (* score floor: entries at or below it cannot matter to the
           caller, so RPL blocks with qmax <= bound end the stream *)
    mutable s_skip : (int * int) option; (* (docid, endpos) target *)
    mutable s_chunk : entry list;
    mutable s_seg : seg_state option;
    mutable s_done : bool;
    mutable s_skipped_by_bound : bool;
    mutable s_dyn_bound : float;
    mutable s_blocks_decoded : int;
    mutable s_blocks_skipped : int;
    mutable s_entries_skipped : int;
  }

  let pos_of (e : entry) = (e.element.Types.docid, e.element.Types.endpos)

  (* Drop decoded entries before the position target, then clear it. *)
  let apply_skip s chunk =
    match s.s_skip with
    | None -> chunk
    | Some target ->
        let rec drop = function
          | e :: rest when pos_of e < target ->
              s.s_entries_skipped <- s.s_entries_skipped + 1;
              drop rest
          | l -> l
        in
        let l = drop chunk in
        if l <> [] then s.s_skip <- None;
        l

  let rec stream_next s =
    match s.s_chunk with
    | e :: rest ->
        s.s_chunk <- rest;
        Some e
    | [] -> (
        match s.s_seg with
        | Some st when st.ss_next < Codec.Block.block_count st.ss_seg ->
            let i = st.ss_next in
            let info =
              decode_block_header ~with_sid:false (Codec.Block.header st.ss_seg i)
            in
            if
              s.s_kind = Rpl && s.s_bound > 0.0
              && Codec.Block.dequantize info.blk_qmax <= s.s_bound
            then begin
              (* Descending score order: every entry from this block on
                 is at or below the bound. The quantized max is >= the
                 true max, so stopping here is rank-safe. *)
              s.s_skipped_by_bound <- true;
              s.s_dyn_bound <-
                Float.max s.s_dyn_bound (Codec.Block.dequantize info.blk_qmax);
              s.s_blocks_skipped <-
                s.s_blocks_skipped + (Codec.Block.block_count st.ss_seg - i);
              s.s_seg <- None;
              s.s_done <- true;
              None
            end
            else if
              s.s_kind = Erpl
              && (match s.s_skip with
                 | Some target -> (info.blk_max_docid, info.blk_last_endpos) < target
                 | None -> false)
            then begin
              (* Position order: the whole block lies before the seek
                 target. *)
              st.ss_next <- i + 1;
              s.s_blocks_skipped <- s.s_blocks_skipped + 1;
              s.s_entries_skipped <- s.s_entries_skipped + info.blk_count;
              stream_next s
            end
            else begin
              st.ss_next <- i + 1;
              s.s_blocks_decoded <- s.s_blocks_decoded + 1;
              s.s_chunk <-
                apply_skip s
                  (decode_block ~with_sid:false ~sid:s.s_sid st.ss_dict info
                     (Codec.Block.payload st.ss_seg i));
              stream_next s
            end
        | _ ->
            s.s_seg <- None;
            if s.s_done then None
            else begin
              match Bptree.Cursor.next s.s_cursor with
              | Some (k, v)
                when String.length k >= String.length s.s_prefix
                     && String.sub k 0 (String.length s.s_prefix) = s.s_prefix -> (
                  match Codec.Block.of_string v with
                  | Some seg ->
                      s.s_seg <-
                        Some
                          {
                            ss_seg = seg;
                            ss_dict = decode_dict (Codec.Block.extra seg);
                            ss_next = 0;
                          };
                      stream_next s
                  | None ->
                      s.s_chunk <- apply_skip s (decode_chunk ~sid:s.s_sid v);
                      stream_next s)
              | Some _ | None ->
                  s.s_done <- true;
                  None
            end)

  (* K-way merge of the streams with a heap ordered by the kind's entry
     order. *)
  module Merge_heap = Trex_util.Heap.Make (struct
    type t = int * entry * (kind[@warning "-69"])

    let compare (_, a, ka) (_, b, _) =
      match ka with
      | Rpl -> compare_rpl_order a b
      | Erpl -> compare_erpl_order a b
  end)

  type t = {
    kind : kind;
    streams : stream array;
    heap : Merge_heap.t;
    mutable read : int;
    static_bound : float;
        (* max truncation bound among the merged lists: every entry the
           stored prefixes dropped scores at most this *)
    static_truncated : bool;
  }

  let create index kind ~term ~sids =
    check_generation index (table_name kind);
    check_generation index (catalog_name kind);
    let tbl = Env.table (Index.env index) (table_name kind) in
    let sids = List.sort_uniq compare sids in
    let static_bound = ref 0.0 and static_truncated = ref false in
    let streams =
      sids
      |> List.map (fun sid ->
             match catalog_find index kind ~term ~sid with
             | None -> raise (Missing_list { kind; term; sid })
             | Some row ->
                 static_bound := Float.max !static_bound row.cat_bound;
                 if row.cat_truncated then static_truncated := true;
                 let prefix = pair_prefix ~term ~sid in
                 {
                   s_cursor = Bptree.Cursor.seek tbl prefix;
                   s_prefix = prefix;
                   s_sid = sid;
                   s_kind = kind;
                   s_bound = 0.0;
                   s_skip = None;
                   s_chunk = [];
                   s_seg = None;
                   s_done = false;
                   s_skipped_by_bound = false;
                   s_dyn_bound = 0.0;
                   s_blocks_decoded = 0;
                   s_blocks_skipped = 0;
                   s_entries_skipped = 0;
                 })
      |> Array.of_list
    in
    let heap = Merge_heap.create () in
    Array.iteri
      (fun i s ->
        match stream_next s with
        | Some e -> Merge_heap.push heap (i, e, kind)
        | None -> ())
      streams;
    {
      kind;
      streams;
      heap;
      read = 0;
      static_bound = !static_bound;
      static_truncated = !static_truncated;
    }

  (* Install a score floor after creation (RPL cursors): the heads
     already buffered stay — only yet-undecoded blocks are pruned,
     which keeps the returned stream a prefix of the unbounded one. *)
  let set_bound t bound =
    if t.kind <> Rpl then invalid_arg "Rpl.Cursor.set_bound: RPL cursors only";
    Array.iter (fun s -> s.s_bound <- bound) t.streams

  let next t =
    match Merge_heap.pop t.heap with
    | None -> None
    | Some (i, e, _) ->
        (match stream_next t.streams.(i) with
        | Some e' -> Merge_heap.push t.heap (i, e', t.kind)
        | None -> ());
        t.read <- t.read + 1;
        Metrics.incr m_merged_read;
        Some e

  (* Advance every ERPL stream past entries positioned before
     (docid, endpos): blocks entirely before the target are dropped by
     their skip entry without being decoded. Already-buffered heap
     heads before the target are discarded. *)
  let skip_to t ~docid ~endpos =
    if t.kind <> Erpl then invalid_arg "Rpl.Cursor.skip_to: ERPL cursors only";
    let target = (docid, endpos) in
    let rec drain acc =
      match Merge_heap.pop t.heap with
      | None -> acc
      | Some x -> drain (x :: acc)
    in
    List.iter
      (fun (i, e, k) ->
        if pos_of e >= target then Merge_heap.push t.heap (i, e, k)
        else begin
          let s = t.streams.(i) in
          s.s_entries_skipped <- s.s_entries_skipped + 1;
          s.s_skip <- Some target;
          s.s_chunk <- apply_skip s s.s_chunk;
          match stream_next s with
          | Some e' -> Merge_heap.push t.heap (i, e', k)
          | None -> ()
        end)
      (drain [])

  let entries_read t = t.read

  let entries_skipped t =
    Array.fold_left (fun acc s -> acc + s.s_entries_skipped) 0 t.streams

  let blocks_decoded t =
    Array.fold_left (fun acc s -> acc + s.s_blocks_decoded) 0 t.streams

  let blocks_skipped t =
    Array.fold_left (fun acc s -> acc + s.s_blocks_skipped) 0 t.streams

  let truncation_bound t =
    Array.fold_left
      (fun acc s -> Float.max acc s.s_dyn_bound)
      t.static_bound t.streams

  let truncated t =
    t.static_truncated
    || Array.exists (fun s -> s.s_skipped_by_bound) t.streams
end
