module Codec = Trex_util.Codec
module Env = Trex_storage.Env
module Bptree = Trex_storage.Bptree
module Pager = Trex_storage.Pager
module Manifest = Trex_storage.Manifest
module Types = Trex_invindex.Types
module Index = Trex_invindex.Index
module Metrics = Trex_obs.Metrics

(* Process-wide cursor traffic, split by layout; the per-cursor
   [entries_read]/[entries_skipped] accessors stay the per-run view. *)
let m_full_read = Metrics.counter "rpl.full.entries_read"
let m_full_skipped = Metrics.counter "rpl.full.entries_skipped"
let m_merged_read = Metrics.counter "rpl.merged.entries_read"

type entry = { element : Types.element; score : float }
type kind = Rpl | Erpl

let kind_to_string = function Rpl -> "RPL" | Erpl -> "ERPL"
let table_name = function Rpl -> "rpls" | Erpl -> "erpls"
let catalog_name = function Rpl -> "rpl_catalog" | Erpl -> "erpl_catalog"

exception Stale_generation of { table : string; generation : int }

(* Generation check (paper's "never serve an uncommitted index"): a
   table still belonging to an unresolved manifest operation may hold
   lists from an uncommitted generation and must not back a cursor. *)
let check_generation index name =
  let env = Index.env index in
  if Env.table_blocked env name then
    raise (Stale_generation { table = name; generation = Env.generation env })

let chunk_size = 32

(* ---- keys ---- *)

let pair_prefix ~term ~sid =
  Codec.concat_keys [ Codec.key_of_string term; Codec.key_of_int sid ]

(* Chunk keys embed the first entry so chunks sort correctly within the
   (term, sid) prefix: by descending score for RPLs, by position for
   ERPLs. *)
let chunk_key kind ~term ~sid (first : entry) =
  let e = first.element in
  let tail =
    match kind with
    | Rpl ->
        [ Codec.key_of_float (-.first.score); Codec.key_of_int e.docid; Codec.key_of_int e.endpos ]
    | Erpl -> [ Codec.key_of_int e.docid; Codec.key_of_int e.endpos ]
  in
  Codec.concat_keys (pair_prefix ~term ~sid :: tail)

(* ---- entry chunk codec ---- *)

let encode_chunk ~sid entries =
  let b = Codec.Buf.create ~capacity:256 () in
  Codec.Buf.add_varint b (List.length entries);
  List.iter
    (fun { element = e; score } ->
      assert (e.Types.sid = sid);
      Codec.Buf.add_float b score;
      Codec.Buf.add_varint b e.docid;
      Codec.Buf.add_varint b e.endpos;
      Codec.Buf.add_varint b e.length)
    entries;
  Codec.Buf.contents b

let decode_chunk ~sid v =
  let r = Codec.Reader.of_string v in
  let n = Codec.Reader.varint r in
  List.init n (fun _ ->
      let score = Codec.Reader.float r in
      let docid = Codec.Reader.varint r in
      let endpos = Codec.Reader.varint r in
      let length = Codec.Reader.varint r in
      { element = { Types.sid; docid; endpos; length }; score })

(* ---- catalog ---- *)

let catalog_key ~term ~sid = pair_prefix ~term ~sid

(* Catalog rows: entry count, encoded bytes, and — for truncated RPL
   prefixes — the score bound below which entries were dropped. *)
type catalog_row = { cat_entries : int; cat_bytes : int; cat_bound : float }

let catalog_find index kind ~term ~sid =
  let tbl = Env.table (Index.env index) (catalog_name kind) in
  match Bptree.find tbl (catalog_key ~term ~sid) with
  | None -> None
  | Some v ->
      let r = Codec.Reader.of_string v in
      let cat_entries = Codec.Reader.varint r in
      let cat_bytes = Codec.Reader.varint r in
      let truncated = Codec.Reader.varint r = 1 in
      let cat_bound = if truncated then Codec.Reader.float r else 0.0 in
      Some { cat_entries; cat_bytes; cat_bound }

let catalog_put index kind ~term ~sid ~entries ~bytes ~bound =
  let tbl = Env.table (Index.env index) (catalog_name kind) in
  let b = Codec.Buf.create ~capacity:16 () in
  Codec.Buf.add_varint b entries;
  Codec.Buf.add_varint b bytes;
  if bound > 0.0 then begin
    Codec.Buf.add_varint b 1;
    Codec.Buf.add_float b bound
  end
  else Codec.Buf.add_varint b 0;
  Bptree.insert tbl ~key:(catalog_key ~term ~sid) ~value:(Codec.Buf.contents b)

let is_materialized index kind ~term ~sid =
  catalog_find index kind ~term ~sid <> None

let covers index kind ~sids ~terms =
  List.for_all
    (fun term -> List.for_all (fun sid -> is_materialized index kind ~term ~sid) sids)
    terms

let list_bytes index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with Some c -> c.cat_bytes | None -> 0

let list_entries index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with Some c -> c.cat_entries | None -> 0

let list_bound index kind ~term ~sid =
  match catalog_find index kind ~term ~sid with Some c -> c.cat_bound | None -> 0.0

let catalog index kind =
  let tbl = Env.table (Index.env index) (catalog_name kind) in
  let out = ref [] in
  Bptree.iter tbl (fun k v ->
      let term, p = Codec.string_of_key k ~pos:0 in
      let sid, _ = Codec.int_of_key k ~pos:p in
      let r = Codec.Reader.of_string v in
      let entries = Codec.Reader.varint r in
      let bytes = Codec.Reader.varint r in
      out := (term, sid, entries, bytes) :: !out);
  List.rev !out

let total_bytes index kind =
  List.fold_left (fun acc (_, _, _, b) -> acc + b) 0 (catalog index kind)

(* ---- building ---- *)

type build_report = {
  pairs_built : (string * int) list;
  pairs_reused : int;
  entries_written : int;
  bytes_estimate : int;
}

let rec chunks_of n l =
  match l with
  | [] -> []
  | _ ->
      let rec take k acc rest =
        match (k, rest) with
        | 0, _ | _, [] -> (List.rev acc, rest)
        | k, x :: tl -> take (k - 1) (x :: acc) tl
      in
      let chunk, rest = take n [] l in
      chunk :: chunks_of n rest

let compare_rpl_order a b =
  match compare b.score a.score with
  | 0 -> Types.compare_element a.element b.element
  | c -> c

let compare_erpl_order a b = Types.compare_element a.element b.element

let rec list_take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: list_take (n - 1) rest

let write_list index kind ~term ~sid ?prefix entries =
  let tbl = Env.table (Index.env index) (table_name kind) in
  (* Clear any chunks left under this pair (e.g. from a list whose drop
     removed the catalog row but crashed before the chunks) so the new
     list never interleaves with stale entries. *)
  let stale = ref [] in
  Bptree.iter_prefix tbl ~prefix:(pair_prefix ~term ~sid) (fun k _ ->
      stale := k :: !stale);
  List.iter (fun k -> ignore (Bptree.remove tbl k)) !stale;
  let sorted =
    List.sort
      (match kind with Rpl -> compare_rpl_order | Erpl -> compare_erpl_order)
      entries
  in
  (* RPL prefixes (paper §4): keep only the best [n] entries and record
     the bound every dropped entry is below. *)
  let sorted, bound =
    match (kind, prefix) with
    | Rpl, Some n when List.length sorted > n ->
        let kept = list_take n sorted in
        let bound =
          match List.rev kept with last :: _ -> last.score | [] -> 0.0
        in
        (kept, bound)
    | (Rpl | Erpl), _ -> (sorted, 0.0)
  in
  let bytes = ref 0 in
  List.iter
    (fun chunk ->
      match chunk with
      | [] -> ()
      | first :: _ ->
          let key = chunk_key kind ~term ~sid first in
          let value = encode_chunk ~sid chunk in
          bytes := !bytes + String.length key + String.length value;
          Bptree.insert tbl ~key ~value)
    (chunks_of chunk_size sorted);
  catalog_put index kind ~term ~sid ~entries:(List.length sorted) ~bytes:!bytes
    ~bound;
  (List.length sorted, !bytes)

let build index ~scoring ~sids ~terms ~kinds ?rpl_prefix () =
  let sids = List.sort_uniq compare sids in
  let missing kind term sid = not (is_materialized index kind ~term ~sid) in
  let work =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun term ->
            List.filter_map
              (fun sid -> if missing kind term sid then Some (kind, term, sid) else None)
              sids)
          terms)
      kinds
  in
  let pairs_total = List.length kinds * List.length terms * List.length sids in
  if work = [] then
    {
      pairs_built = [];
      pairs_reused = pairs_total;
      entries_written = 0;
      bytes_estimate = 0;
    }
  else begin
    let results, _stats = Era.run index ~sids ~terms in
    let per_term = Era.per_term_scores index ~scoring ~terms results in
    (* Group each term's entries by sid for per-(term, sid) lists. *)
    let by_pair : (string * int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (term, entries) ->
        List.iter
          (fun (element, score) ->
            let key = (term, element.Types.sid) in
            let cell =
              match Hashtbl.find_opt by_pair key with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.add by_pair key c;
                  c
            in
            cell := { element; score } :: !cell)
          entries)
      per_term;
    let built = ref [] and entries_written = ref 0 and bytes = ref 0 in
    (* Build op: lists are written directly between Begin and Commit;
       if the commit record never lands, recovery quarantines the
       rollback tables (they are redundant — rebuildable from ERA). *)
    let env = Index.env index in
    let op_tables =
      List.map (fun (k, _, _) -> k) work
      |> List.sort_uniq compare
      |> List.concat_map (fun k -> [ table_name k; catalog_name k ])
    in
    let o = Env.begin_op env ~op:"rpl_build" ~tables:op_tables ~rollback:op_tables () in
    (try
       List.iter
         (fun (kind, term, sid) ->
           let entries =
             match Hashtbl.find_opt by_pair (term, sid) with
             | Some c -> !c
             | None -> []
           in
           let n, sz = write_list index kind ~term ~sid ?prefix:rpl_prefix entries in
           built := (term, sid) :: !built;
           entries_written := !entries_written + n;
           bytes := !bytes + sz)
         work;
       Env.commit_op env o
     with
    | Pager.Injected_crash _ as e ->
        (* Simulated process death: leave the op pending for recovery. *)
        raise e
    | e ->
        Env.abort_op env o ~note:(Printexc.to_string e);
        raise e);
    {
      pairs_built = List.rev !built;
      pairs_reused = pairs_total - List.length work;
      entries_written = !entries_written;
      bytes_estimate = !bytes;
    }
  end

(* Catalog row first: once it is gone the list is not servable
   (planning and cursors go through the catalog), so a crash mid-drop
   can orphan unreferenced chunks but never leave a half-deleted list
   visible. [write_list] clears orphans when the pair is rebuilt. *)
let drop index kind ~term ~sid =
  let cat = Env.table (Index.env index) (catalog_name kind) in
  ignore (Bptree.remove cat (catalog_key ~term ~sid));
  let tbl = Env.table (Index.env index) (table_name kind) in
  let prefix = pair_prefix ~term ~sid in
  let keys = ref [] in
  Bptree.iter_prefix tbl ~prefix (fun k _ -> keys := k :: !keys);
  List.iter (fun k -> ignore (Bptree.remove tbl k)) !keys

(* The same drop as physical manifest actions, for redo-logged
   operations (catalog removal ordered first, as in {!drop}). *)
let drop_actions kind ~term ~sid =
  [
    Manifest.Remove { table = catalog_name kind; key = catalog_key ~term ~sid };
    Manifest.Remove_prefix
      { table = table_name kind; prefix = pair_prefix ~term ~sid };
  ]

let drop_all index kind =
  List.iter (fun (term, sid, _, _) -> drop index kind ~term ~sid) (catalog index kind)

module Full = struct
  let table_name = "rpls_full"
  let catalog_name = "rpl_full_catalog"

  (* Paper schema: key (token, ir, SID, docid, endpos); the value chunk
     carries the 5-tuples (score, sid, docid, endpos, length). *)
  let chunk_key ~term (first : entry) =
    let e = first.element in
    Codec.concat_keys
      [
        Codec.key_of_string term;
        Codec.key_of_float (-.first.score);
        Codec.key_of_int e.Types.sid;
        Codec.key_of_int e.docid;
        Codec.key_of_int e.endpos;
      ]

  let encode_chunk entries =
    let b = Codec.Buf.create ~capacity:256 () in
    Codec.Buf.add_varint b (List.length entries);
    List.iter
      (fun { element = e; score } ->
        Codec.Buf.add_float b score;
        Codec.Buf.add_varint b e.Types.sid;
        Codec.Buf.add_varint b e.docid;
        Codec.Buf.add_varint b e.endpos;
        Codec.Buf.add_varint b e.length)
      entries;
    Codec.Buf.contents b

  let decode_chunk v =
    let r = Codec.Reader.of_string v in
    let n = Codec.Reader.varint r in
    List.init n (fun _ ->
        let score = Codec.Reader.float r in
        let sid = Codec.Reader.varint r in
        let docid = Codec.Reader.varint r in
        let endpos = Codec.Reader.varint r in
        let length = Codec.Reader.varint r in
        { element = { Types.sid; docid; endpos; length }; score })

  let catalog_find index ~term =
    let tbl = Env.table (Index.env index) catalog_name in
    match Bptree.find tbl (Codec.key_of_string term) with
    | None -> None
    | Some v ->
        let r = Codec.Reader.of_string v in
        let entries = Codec.Reader.varint r in
        let bytes = Codec.Reader.varint r in
        Some (entries, bytes)

  let is_materialized index ~term = catalog_find index ~term <> None
  let list_entries index ~term =
    match catalog_find index ~term with Some (n, _) -> n | None -> 0

  let list_bytes index ~term =
    match catalog_find index ~term with Some (_, b) -> b | None -> 0

  let build index ~scoring ~terms =
    let missing = List.filter (fun t -> not (is_materialized index ~term:t)) terms in
    if missing = [] then
      {
        pairs_built = [];
        pairs_reused = List.length terms;
        entries_written = 0;
        bytes_estimate = 0;
      }
    else begin
      let all_sids = Trex_summary.Summary.sids (Index.summary index) in
      let results, _ = Era.run index ~sids:all_sids ~terms:missing in
      let per_term = Era.per_term_scores index ~scoring ~terms:missing results in
      let env = Index.env index in
      let tbl = Env.table env table_name in
      let cat = Env.table env catalog_name in
      let entries_written = ref 0 and bytes = ref 0 and built = ref [] in
      let op_tables = [ table_name; catalog_name ] in
      let o =
        Env.begin_op env ~op:"rpl_full_build" ~tables:op_tables
          ~rollback:op_tables ()
      in
      (try
         List.iter
           (fun (term, scored) ->
             let sorted =
               List.map (fun (element, score) -> { element; score }) scored
               |> List.sort compare_rpl_order
             in
             let list_bytes = ref 0 in
             List.iter
               (fun chunk ->
                 match chunk with
                 | [] -> ()
                 | first :: _ ->
                     let key = chunk_key ~term first in
                     let value = encode_chunk chunk in
                     list_bytes := !list_bytes + String.length key + String.length value;
                     Bptree.insert tbl ~key ~value)
               (chunks_of chunk_size sorted);
             let b = Codec.Buf.create ~capacity:8 () in
             Codec.Buf.add_varint b (List.length sorted);
             Codec.Buf.add_varint b !list_bytes;
             Bptree.insert cat ~key:(Codec.key_of_string term)
               ~value:(Codec.Buf.contents b);
             entries_written := !entries_written + List.length sorted;
             bytes := !bytes + !list_bytes;
             built := (term, -1) :: !built)
           per_term;
         Env.commit_op env o
       with
      | Pager.Injected_crash _ as e -> raise e
      | e ->
          Env.abort_op env o ~note:(Printexc.to_string e);
          raise e);
      {
        pairs_built = List.rev !built;
        pairs_reused = List.length terms - List.length missing;
        entries_written = !entries_written;
        bytes_estimate = !bytes;
      }
    end

  let drop index ~term =
    let prefix = Codec.key_of_string term in
    (* Catalog first, as in the pair-list {!drop}. *)
    ignore (Bptree.remove (Env.table (Index.env index) catalog_name) prefix);
    let tbl = Env.table (Index.env index) table_name in
    let keys = ref [] in
    Bptree.iter_prefix tbl ~prefix (fun k _ -> keys := k :: !keys);
    List.iter (fun k -> ignore (Bptree.remove tbl k)) !keys

  let drop_actions ~term =
    let prefix = Codec.key_of_string term in
    [
      Manifest.Remove { table = catalog_name; key = prefix };
      Manifest.Remove_prefix { table = table_name; prefix };
    ]

  type cursor = {
    f_cursor : Bptree.Cursor.cursor;
    f_prefix : string;
    f_sids : (int, unit) Hashtbl.t;
    mutable f_chunk : entry list;
    mutable f_done : bool;
    mutable f_read : int;
    mutable f_skipped : int;
  }

  exception Missing of string

  let cursor index ~term ~sids =
    check_generation index table_name;
    check_generation index catalog_name;
    if not (is_materialized index ~term) then raise (Missing term);
    let tbl = Env.table (Index.env index) table_name in
    let prefix = Codec.key_of_string term in
    let f_sids = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace f_sids s ()) sids;
    {
      f_cursor = Bptree.Cursor.seek tbl prefix;
      f_prefix = prefix;
      f_sids;
      f_chunk = [];
      f_done = false;
      f_read = 0;
      f_skipped = 0;
    }

  let rec next c =
    match c.f_chunk with
    | e :: rest ->
        c.f_chunk <- rest;
        c.f_read <- c.f_read + 1;
        Metrics.incr m_full_read;
        if Hashtbl.mem c.f_sids e.element.Types.sid then Some e
        else begin
          c.f_skipped <- c.f_skipped + 1;
          Metrics.incr m_full_skipped;
          next c
        end
    | [] ->
        if c.f_done then None
        else begin
          match Bptree.Cursor.next c.f_cursor with
          | Some (k, v)
            when String.length k >= String.length c.f_prefix
                 && String.sub k 0 (String.length c.f_prefix) = c.f_prefix ->
              c.f_chunk <- decode_chunk v;
              next c
          | Some _ | None ->
              c.f_done <- true;
              None
        end

  let entries_read c = c.f_read
  let entries_skipped c = c.f_skipped
end

(* ---- cursors ---- *)

module Cursor = struct
  exception Missing_list of { kind : kind; term : string; sid : int }

  (* One (term, sid) stream: lazily decoded chunks behind a B+tree
     cursor constrained to the pair prefix. *)
  type stream = {
    s_cursor : Bptree.Cursor.cursor;
    s_prefix : string;
    s_sid : int;
    mutable s_chunk : entry list;
    mutable s_done : bool;
  }

  let stream_next s =
    match s.s_chunk with
    | e :: rest ->
        s.s_chunk <- rest;
        Some e
    | [] ->
        if s.s_done then None
        else begin
          match Bptree.Cursor.next s.s_cursor with
          | Some (k, v)
            when String.length k >= String.length s.s_prefix
                 && String.sub k 0 (String.length s.s_prefix) = s.s_prefix -> (
              match decode_chunk ~sid:s.s_sid v with
              | e :: rest ->
                  s.s_chunk <- rest;
                  Some e
              | [] ->
                  s.s_done <- true;
                  None)
          | Some _ | None ->
              s.s_done <- true;
              None
        end

  (* K-way merge of the streams with a heap ordered by the kind's entry
     order. *)
  module Merge_heap = Trex_util.Heap.Make (struct
    type t = int * entry * (kind[@warning "-69"])

    let compare (_, a, ka) (_, b, _) =
      match ka with
      | Rpl -> compare_rpl_order a b
      | Erpl -> compare_erpl_order a b
  end)

  type t = {
    kind : kind;
    streams : stream array;
    heap : Merge_heap.t;
    mutable read : int;
    bound : float;
        (* max truncation bound among the merged lists: every entry the
           stored prefixes dropped scores at most this *)
  }

  let create index kind ~term ~sids =
    check_generation index (table_name kind);
    check_generation index (catalog_name kind);
    let tbl = Env.table (Index.env index) (table_name kind) in
    let sids = List.sort_uniq compare sids in
    let bound =
      List.fold_left
        (fun acc sid -> Float.max acc (list_bound index kind ~term ~sid))
        0.0 sids
    in
    let streams =
      sids
      |> List.map (fun sid ->
             if not (is_materialized index kind ~term ~sid) then
               raise (Missing_list { kind; term; sid });
             let prefix = pair_prefix ~term ~sid in
             {
               s_cursor = Bptree.Cursor.seek tbl prefix;
               s_prefix = prefix;
               s_sid = sid;
               s_chunk = [];
               s_done = false;
             })
      |> Array.of_list
    in
    let heap = Merge_heap.create () in
    Array.iteri
      (fun i s ->
        match stream_next s with
        | Some e -> Merge_heap.push heap (i, e, kind)
        | None -> ())
      streams;
    { kind; streams; heap; read = 0; bound }

  let next t =
    match Merge_heap.pop t.heap with
    | None -> None
    | Some (i, e, _) ->
        (match stream_next t.streams.(i) with
        | Some e' -> Merge_heap.push t.heap (i, e', t.kind)
        | None -> ());
        t.read <- t.read + 1;
        Metrics.incr m_merged_read;
        Some e

  let entries_read t = t.read
  let truncation_bound t = t.bound
end
