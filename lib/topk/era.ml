module Types = Trex_invindex.Types
module Index = Trex_invindex.Index
module Scorer = Trex_scoring.Scorer
module Metrics = Trex_obs.Metrics

(* Registry totals across every run; [run_stats] is the per-run delta. *)
let m_runs = Metrics.counter "era.runs"
let m_positions = Metrics.counter "era.positions_scanned"
let m_seeks = Metrics.counter "era.iterator_seeks"
let m_emitted = Metrics.counter "era.elements_emitted"

type result = { element : Types.element; tf : int array }

type run_stats = {
  positions_scanned : int;
  iterator_seeks : int;
  elements_emitted : int;
  degraded : bool;
}

let run ?guard index ~sids ~terms =
  let sids = List.sort_uniq compare sids in
  let m = List.length sids and n = List.length terms in
  Metrics.incr m_runs;
  if m = 0 || n = 0 then
    ( [],
      {
        positions_scanned = 0;
        iterator_seeks = 0;
        elements_emitted = 0;
        degraded = false;
      } )
  else begin
    let sid_iters =
      Array.of_list (List.map (fun sid -> Index.Element_iter.create index sid) sids)
    in
    let term_iters =
      Array.of_list (List.map (fun t -> Index.Posting_iter.create index t) terms)
    in
    (* e.(i): current element of extent i; c.(i): its tf row. *)
    let e = Array.map Index.Element_iter.first_element sid_iters in
    let c = Array.make_matrix m n 0 in
    let pos = Array.map Index.Posting_iter.next_position term_iters in
    let results = ref [] in
    let positions0 = Metrics.value m_positions
    and seeks0 = Metrics.value m_seeks
    and emitted0 = Metrics.value m_emitted in
    let flush i =
      if Array.exists (fun v -> v > 0) c.(i) then begin
        Metrics.incr m_emitted;
        results := { element = e.(i); tf = Array.copy c.(i) } :: !results;
        Array.fill c.(i) 0 n 0
      end
    in
    let min_term () =
      let x = ref 0 in
      for j = 1 to n - 1 do
        if Types.compare_pos pos.(j) pos.(!x) < 0 then x := j
      done;
      !x
    in
    let degraded = ref false in
    (* Main scan: handle the smallest unconsumed position, advance its
       term iterator; stop when every term is exhausted (m-pos). On
       guard expiry the scan stops where it is; every element flushed
       below carries the term frequencies accumulated so far, so the
       partial answer set is sound, just incomplete. *)
    (try
       while not (Array.for_all Types.is_m_pos pos) do
         (match guard with
         | Some g -> Trex_resilience.Guard.tick g
         | None -> ());
         let x = min_term () in
         let p = pos.(x) in
         Metrics.incr m_positions;
         for i = 0 to m - 1 do
           let ei = e.(i) in
           if Types.is_dummy ei then ()
           else begin
             let cmp_start =
               Types.compare_pos p { docid = ei.docid; offset = Types.start_pos ei }
             in
             if cmp_start <= 0 then (* before the element: do nothing *) ()
             else if Types.contains ei p then c.(i).(x) <- c.(i).(x) + 1
             else begin
               (* p lies beyond the element's interior: emit and move on. *)
               flush i;
               e.(i) <- Index.Element_iter.next_element_after sid_iters.(i) p;
               Metrics.incr m_seeks;
               if Types.contains e.(i) p then c.(i).(x) <- c.(i).(x) + 1
             end
           end
         done;
         pos.(x) <- Index.Posting_iter.next_position term_iters.(x)
       done
     with Trex_resilience.Guard.Budget_exceeded _ -> degraded := true);
    (* m-pos exceeds every end position: flush the pending rows. *)
    for i = 0 to m - 1 do
      flush i
    done;
    ( List.rev !results,
      {
        positions_scanned = Metrics.value m_positions - positions0;
        iterator_seeks = Metrics.value m_seeks - seeks0;
        elements_emitted = Metrics.value m_emitted - emitted0;
        degraded = !degraded;
      } )
  end

let term_weight index ~scoring ~corpus term element_length tf =
  let df = Index.term_df index term in
  Scorer.score scoring ~corpus ~df ~tf ~element_length

let corpus_of index =
  let doc_count, avg_element_length = Index.scoring_corpus index in
  { Scorer.doc_count; avg_element_length }

let score_results index ~scoring ~terms results =
  let corpus = corpus_of index in
  let terms = Array.of_list terms in
  results
  |> List.map (fun { element; tf } ->
         let scores =
           List.init (Array.length terms) (fun x ->
               if tf.(x) = 0 then 0.0
               else
                 term_weight index ~scoring ~corpus terms.(x) element.Types.length
                   tf.(x))
         in
         (element, Scorer.combine scores))
  |> Answer.of_unsorted

let per_term_scores index ~scoring ~terms results =
  let corpus = corpus_of index in
  let terms_arr = Array.of_list terms in
  List.mapi
    (fun x term ->
      let entries =
        List.filter_map
          (fun { element; tf } ->
            if tf.(x) = 0 then None
            else
              Some
                ( element,
                  term_weight index ~scoring ~corpus terms_arr.(x)
                    element.Types.length tf.(x) ))
          results
      in
      (term, entries))
    terms
