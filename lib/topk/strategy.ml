module Stopclock = Trex_util.Stopclock
module Metrics = Trex_obs.Metrics
module Span = Trex_obs.Span
module Journal = Trex_obs.Journal
module Env = Trex_storage.Env
module Pager = Trex_storage.Pager
module Guard = Trex_resilience.Guard
module Retry = Trex_resilience.Retry

let m_degraded_runs = Metrics.counter "resilience.degraded_runs"
let m_fallbacks = Metrics.counter "resilience.fallbacks"

type method_ = Era_method | Ta_method | Ita_method | Merge_method

let method_to_string = function
  | Era_method -> "ERA"
  | Ta_method -> "TA"
  | Ita_method -> "ITA"
  | Merge_method -> "Merge"

let all_methods = [ Era_method; Ta_method; Ita_method; Merge_method ]

(* Register every strategy's run counter at load time so `trex_cli
   stats` lists them all, including the ones still at zero. *)
let () =
  List.iter
    (fun m -> ignore (Metrics.counter ("strategy.runs." ^ method_to_string m)))
    all_methods

(* The Env tables a method reads beyond the base index; an open breaker
   on any of them takes the method out of planning, and a failure
   inside the method trips exactly these. ERA reads only the base
   tables, which have no redundant substitute — it maps to []. *)
let tables_of_method = function
  | Era_method -> []
  | Ta_method | Ita_method -> [ Rpl.table_name Rpl.Rpl; Rpl.catalog_name Rpl.Rpl ]
  | Merge_method -> [ Rpl.table_name Rpl.Erpl; Rpl.catalog_name Rpl.Erpl ]

type outcome = {
  method_used : method_;
  answers : Answer.t;
  elapsed_seconds : float;
  entries_read : int;
  degraded : bool;
  detail : string;
}

let evaluate_inner index ~scoring ~sids ~terms ~k ?guard ?floor method_ =
  match method_ with
  | Era_method ->
      let clock = Stopclock.create () in
      let results, stats = Era.run ?guard index ~sids ~terms in
      let answers = Era.score_results index ~scoring ~terms results in
      {
        method_used = Era_method;
        answers;
        elapsed_seconds = Stopclock.elapsed clock;
        entries_read = stats.positions_scanned;
        degraded = stats.degraded;
        detail =
          Printf.sprintf "positions=%d seeks=%d emitted=%d" stats.positions_scanned
            stats.iterator_seeks stats.elements_emitted;
      }
  | Ta_method | Ita_method ->
      let ideal_heap = method_ = Ita_method in
      let answers, stats =
        Ta.run index ~sids ~terms ~k ~ideal_heap ?floor ?guard ()
      in
      {
        method_used = method_;
        answers;
        elapsed_seconds = stats.elapsed_seconds;
        entries_read = stats.sorted_accesses;
        degraded = stats.degraded;
        detail =
          Printf.sprintf
            "accesses=%d heap_ops=%d pushes=%d evictions=%d candidates=%d early=%b"
            stats.sorted_accesses stats.heap_operations stats.heap_pushes
            stats.heap_evictions stats.candidates stats.stopped_early;
      }
  | Merge_method ->
      let answers, stats = Merge.run ?guard index ~sids ~terms in
      {
        method_used = Merge_method;
        answers;
        elapsed_seconds = stats.elapsed_seconds;
        entries_read = stats.entries_read;
        degraded = stats.degraded;
        detail =
          Printf.sprintf "entries=%d merged=%d" stats.entries_read
            stats.elements_merged;
      }

(* One journal record per *top-level* evaluation. [evaluate], [race]
   and [evaluate_resilient] all funnel through [with_journal]; the
   scope flag keeps the inner [evaluate] calls (race legs, resilient
   failover attempts) from writing their own records, because each
   journal record is one observed query — [Workload.of_journal] turns
   record counts into frequencies, so double-counting would skew the
   advisor. An evaluation that escapes by exception writes nothing;
   [evaluate_resilient]'s salvaged fallbacks record the method that
   finally answered plus the failover count. *)
let journal_scope = ref false

let with_journal index ~sids ~terms ~k ~summary run =
  if (not (Journal.enabled ())) || !journal_scope then run ()
  else begin
    journal_scope := true;
    Fun.protect
      ~finally:(fun () -> journal_scope := false)
      (fun () ->
        let started = Journal.start_query () in
        let result = run () in
        let outcome, fallbacks = summary result in
        let spans =
          if Span.enabled () then
            match Span.last () with
            | Some s -> Span.summarize s
            | None -> []
          else []
        in
        let j = Env.journal (Trex_invindex.Index.env index) in
        ignore
          (Journal.finish_query j started
             ~strategy:(method_to_string outcome.method_used)
             ~sids ~terms ~k ~degraded:outcome.degraded ~fallbacks ~spans ());
        result)
  end

let evaluate index ~scoring ~sids ~terms ~k ?guard ?floor method_ =
  let name = method_to_string method_ in
  with_journal index ~sids ~terms ~k
    ~summary:(fun o -> (o, 0))
    (fun () ->
      let outcome =
        Span.with_ ~name:("eval." ^ name)
          ~attrs:[ ("strategy", name); ("k", string_of_int k) ]
          (fun () ->
            evaluate_inner index ~scoring ~sids ~terms ~k ?guard ?floor method_)
      in
      Metrics.incr (Metrics.counter ("strategy.runs." ^ name));
      if outcome.degraded then Metrics.incr m_degraded_runs;
      Metrics.observe
        (Metrics.histogram ("strategy.seconds." ^ name))
        outcome.elapsed_seconds;
      outcome)

let breakers_permit index method_ =
  let env = Trex_invindex.Index.env index in
  List.for_all (Env.table_available env) (tables_of_method method_)

let available index ~sids ~terms =
  let rpl_ok = Rpl.covers index Rpl.Rpl ~sids ~terms in
  let erpl_ok = Rpl.covers index Rpl.Erpl ~sids ~terms in
  List.filter
    (function
      | Era_method -> true
      | Ta_method | Ita_method -> rpl_ok && breakers_permit index Ta_method
      | Merge_method -> erpl_ok && breakers_permit index Merge_method)
    all_methods

let materialized_entries index kind ~sids ~terms =
  List.fold_left
    (fun acc term ->
      List.fold_left
        (fun acc sid -> acc + Rpl.list_entries index kind ~term ~sid)
        acc sids)
    0 terms

let race ?guard index ~scoring ~sids ~terms ~k =
  with_journal index ~sids ~terms ~k ~summary:(fun o -> (o, 0)) @@ fun () ->
  let methods = available index ~sids ~terms in
  let has m = List.mem m methods in
  if has Ta_method && has Merge_method then begin
    let ta = evaluate index ~scoring ~sids ~terms ~k ?guard Ta_method in
    let merge = evaluate index ~scoring ~sids ~terms ~k ?guard Merge_method in
    let winner, loser = if ta.elapsed_seconds <= merge.elapsed_seconds then (ta, merge) else (merge, ta) in
    {
      winner with
      detail =
        Printf.sprintf "race winner=%s (%.3fms) loser=%s (%.3fms)"
          (method_to_string winner.method_used)
          (winner.elapsed_seconds *. 1e3)
          (method_to_string loser.method_used)
          (loser.elapsed_seconds *. 1e3);
    }
  end
  else if has Merge_method then evaluate index ~scoring ~sids ~terms ~k ?guard Merge_method
  else if has Ta_method then evaluate index ~scoring ~sids ~terms ~k ?guard Ta_method
  else evaluate index ~scoring ~sids ~terms ~k ?guard Era_method

let choose index ~sids ~terms ~k =
  let methods = available index ~sids ~terms in
  let has m = List.mem m methods in
  let total_rpl = materialized_entries index Rpl.Rpl ~sids ~terms in
  (* TA wins when it can stop after a small prefix; once k approaches
     the list sizes it reads everything and pays heap management on
     top, where Merge's single pass wins (paper §5.2). *)
  if has Ta_method && k * 20 <= max 1 total_rpl then Ta_method
  else if has Merge_method then Merge_method
  else if has Ta_method then Ta_method
  else Era_method

type failover = { failed : method_; error : string }

let evaluate_resilient index ~scoring ~sids ~terms ~k ?guard ?floor ?method_ ()
    =
  let env = Trex_invindex.Index.env index in
  (* A failure inside a redundant-index method trips that method's
     tables and re-plans over the survivors, so TA falls back to Merge
     falls back to ERA. ERA has no substitute: its failures (and any
     non-storage exception, e.g. Truncated_rpl on a forced method)
     propagate typed. Termination: every fallback trips at least one
     table, shrinking [available] until only ERA is left. *)
  let rec go forced failovers =
    let m =
      match forced with Some m -> m | None -> choose index ~sids ~terms ~k
    in
    let tables = tables_of_method m in
    (* Consuming admission: a half-open table hands this evaluation its
       single probe slot. Remember which tables are probing so every
       exit path resolves the slot — a degraded run or an escaped guard
       abort fails the probe (re-opening the breaker) instead of
       leaking it half-open forever. *)
    List.iter (fun tbl -> ignore (Env.admit_table env tbl)) tables;
    let probes = List.filter (Env.table_probing env) tables in
    let fail_probes reason =
      List.iter (fun tbl -> Env.fail_table env tbl ~reason) probes
    in
    match evaluate index ~scoring ~sids ~terms ~k ?guard ?floor m with
    | outcome ->
        if outcome.degraded && probes <> [] then begin
          (* The probe proved nothing: the budget expired before the
             table served a complete run. Re-open rather than close on
             an unverified table. *)
          fail_probes "half-open probe expired its budget (degraded run)";
          List.iter
            (fun tbl ->
              if not (List.mem tbl probes) then Env.note_table_success env tbl)
            tables
        end
        else List.iter (Env.note_table_success env) tables;
        (outcome, List.rev failovers)
    | exception ((Pager.Corruption _ | Retry.Exhausted _ | Rpl.Stale_generation _) as e)
      when tables <> [] ->
        let error = Printexc.to_string e in
        List.iter (fun tbl -> Env.trip_table env tbl ~reason:error) tables;
        Metrics.incr m_fallbacks;
        go None ({ failed = m; error } :: failovers)
    | exception (Guard.Budget_exceeded _ as e) ->
        fail_probes "half-open probe aborted by guard budget";
        raise e
  in
  with_journal index ~sids ~terms ~k
    ~summary:(fun (o, fos) -> (o, List.length fos))
    (fun () -> go method_ [])
