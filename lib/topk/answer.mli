(** Ranked answer lists. *)

type entry = { element : Trex_invindex.Types.element; score : float }

type t = entry list
(** Descending score; ties broken by document order so every strategy
    returns the same ranking. *)

val of_unsorted : (Trex_invindex.Types.element * float) list -> t

val merge : t list -> t
(** Merge already-sorted answer lists into one ranking (descending
    score, document-order tie-break) — the scatter-gather combine. *)

val top_k : t -> int -> t
val size : t -> int

val equal : ?eps:float -> t -> t -> bool
(** Same elements in the same order with scores within [eps]
    (default 1e-9). *)

val agree_on_top_k : ?eps:float -> int -> t -> t -> bool
(** The first [k] entries agree as sets with matching scores — the
    right notion for comparing strategies, which may order equal-score
    ties differently beyond the guarantee. *)

val pp : Format.formatter -> t -> unit
