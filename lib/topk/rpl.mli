(** Relevance posting lists (RPLs) and element-relevance posting lists
    (ERPLs) — the redundant (term, sid, score) indexes of paper §2.2.

    Both store, per (term, sid), the scored elements of the extent that
    contain the term; an RPL keeps them in {e descending score} order
    (TA's sorted access), an ERPL in {e document position} order
    (Merge's sequential scan). Lists are chunked over several B+tree
    rows keyed by their first entry, and a catalog table records which
    (term, sid) lists are materialized — the unit of the
    self-management decisions.

    A deliberate deviation from the paper: the paper keys full-term
    RPLs as [(token, ir, SID, ...)] and lets TA {e skip} entries with
    foreign sids, while we key by [(token, SID, ir, ...)] and merge the
    requested sid lists. Skipping would make TA read entries partial
    materialization can avoid; with per-(term, sid) lists the
    self-manager's space accounting is exact, and TA's access pattern
    (global descending score over the query's sids) is unchanged. *)

type entry = { element : Trex_invindex.Types.element; score : float }

type kind = Rpl | Erpl

type layout = Raw | Compressed
(** How a list's chunks are stored. [Raw] is the v1 fixed-width chunk
    codec; [Compressed] packs delta+varint blocks with
    dictionary-coded exact scores into {!Trex_util.Codec.Block}
    segments whose skip directory lets cursors skip whole blocks by
    score bound or position without decoding them. Values are
    self-describing, so cursors read either layout (or a mix)
    transparently; returned entries — scores included — are identical.
    See DESIGN.md §7. *)

val kind_to_string : kind -> string
val layout_to_string : layout -> string

val table_name : kind -> string
(** Env table holding the lists ("rpls" / "erpls"); exposed so the
    resilience layer can map a strategy to the tables it relies on. *)

val catalog_name : kind -> string
(** Env table holding the catalog ("rpl_catalog" / "erpl_catalog"). *)

exception Stale_generation of { table : string; generation : int }
(** Raised by cursor creation when the table belongs to a manifest
    operation recovery could not resolve ([Env.table_blocked]) — its
    lists may be from an uncommitted generation. [generation] is the
    environment's highest {e committed} generation. The resilient
    evaluator treats this like corruption: fail over to a strategy that
    does not need the table. *)

type build_report = {
  pairs_built : (string * int) list;  (** (term, sid) lists created *)
  pairs_reused : int;  (** lists that already existed *)
  entries_written : int;
  bytes_estimate : int;  (** encoded bytes of the new lists *)
}

val build :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  sids:int list ->
  terms:string list ->
  kinds:kind list ->
  ?rpl_prefix:int ->
  ?layout:layout ->
  unit ->
  build_report
(** Run ERA once over (sids, terms) and materialize the missing lists
    of the requested kinds. Idempotent per (kind, term, sid, layout): a
    list already stored in [layout] (default [Compressed]) is reused, a
    list stored in the {e other} layout is rebuilt — which is also how
    environments written before compression migrate.

    [rpl_prefix] stores only the [n] highest-scoring entries of each
    RPL — the paper's observation (§4) that "only the part of the RPLs
    that is needed for computing the top-k elements must be stored".
    Truncated lists record the score of their last stored entry; TA
    remains {e correct}: past a truncated prefix the unseen scores are
    bounded by that score, and if the threshold cannot prove the top-k
    complete, TA reports it (see {!Ta.Truncated_rpl}). ERPLs are never
    truncated (Merge needs full lists). *)

val is_materialized : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> bool

val covers :
  Trex_invindex.Index.t -> kind -> sids:int list -> terms:string list -> bool
(** All (term, sid) lists needed to evaluate the query exist. *)

val list_bytes : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> int
(** Encoded size estimate recorded in the catalog; 0 when absent. *)

val list_entries : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> int

val list_bound : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> float
(** Truncation bound of a prefix-materialized RPL: entries that were
    dropped all score at most this. [0.] for complete lists or absent
    catalogs. *)

val list_truncated : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> bool
(** Whether the stored list is a truncated prefix. Carried explicitly
    in the catalog row — a bound of 0.0 does not mean complete. *)

val list_layout : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> layout option
(** Stored layout of a materialized list; [None] when absent. *)

val list_raw_bytes : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> int
(** What the list costs (or would cost) stored raw — recorded at write
    time so the advisor can price compressed against raw
    materialization. Equals {!list_bytes} for raw lists. *)

val drop : Trex_invindex.Index.t -> kind -> term:string -> sid:int -> unit
(** Remove one list and its catalog entry (catalog row first, so a
    crash mid-drop never leaves a servable half-deleted list). *)

val drop_actions :
  kind -> term:string -> sid:int -> Trex_storage.Manifest.action list
(** {!drop} expressed as physical manifest actions, for redo-logged
    operations ([Env.run_logged_op]) that must drop stale lists
    atomically with base-table writes (e.g. [add_document]). *)

val drop_all : Trex_invindex.Index.t -> kind -> unit
(** Remove every materialized list of the kind (e.g. to reclaim the
    space used by a measurement pass before applying an advisor plan). *)

val catalog : Trex_invindex.Index.t -> kind -> (string * int * int * int) list
(** All materialized lists as (term, sid, entries, bytes). *)

val total_bytes : Trex_invindex.Index.t -> kind -> int

(** Full-term RPLs keyed exactly as the paper's
    [RPLs(token, ir, SID, docid, endpos, rpldataentry)]: one
    descending-score list per term covering {e every} extent, which TA
    consumes while {e skipping} entries whose sid is not in the query —
    the paper's original access pattern, kept alongside the
    per-(term, sid) layout for comparison (see the ablation bench). *)
module Full : sig
  val table_name : string
  val catalog_name : string

  val build :
    Trex_invindex.Index.t ->
    scoring:Trex_scoring.Scorer.config ->
    ?layout:layout ->
    terms:string list ->
    unit ->
    build_report
  (** Materialize the full RPL of each term not yet built (one ERA pass
      over all summary extents). Compressed full-term segments carry a
      per-block sid bitmap, so the skip-scanning cursor drops whole
      foreign-extent blocks without decoding them. *)

  val is_materialized : Trex_invindex.Index.t -> term:string -> bool
  val list_entries : Trex_invindex.Index.t -> term:string -> int
  val list_bytes : Trex_invindex.Index.t -> term:string -> int
  val drop : Trex_invindex.Index.t -> term:string -> unit

  val drop_actions : term:string -> Trex_storage.Manifest.action list
  (** {!drop} as physical manifest actions (see the pair-list
      {!Rpl.drop_actions}). *)

  type cursor

  exception Missing of string

  val cursor : Trex_invindex.Index.t -> term:string -> sids:int list -> cursor
  (** @raise Missing when the term's full RPL is absent.
      @raise Stale_generation when the table is blocked pending
        manifest resolution. *)

  val next : cursor -> entry option
  (** Next entry whose sid belongs to the query, descending score. *)

  val entries_read : cursor -> int
  (** Entries decoded and consumed. Entries inside bitmap-skipped
      blocks are counted by {!entries_skipped} but never read — the
      access the skip directory avoids. *)

  val entries_skipped : cursor -> int

  val blocks_decoded : cursor -> int
  val blocks_skipped : cursor -> int
  (** Blocks dropped by the per-block sid bitmap, undecoded. *)
end

(** Merged read cursors over the materialized lists of one term,
    restricted to a sid set. *)
module Cursor : sig
  type t

  exception Missing_list of { kind : kind; term : string; sid : int }

  val create :
    Trex_invindex.Index.t ->
    kind ->
    term:string ->
    sids:int list ->
    t
  (** @raise Missing_list if any required (term, sid) list is absent.
      @raise Stale_generation when the kind's tables are blocked
        pending manifest resolution. *)

  val set_bound : t -> float -> unit
  (** RPL cursors only: install a score floor the caller has already
      achieved (e.g. the scatter-gather global k-th score). Entries at
      or below it cannot matter, so compressed blocks whose quantized
      max is within the bound are skipped undecoded and the stream ends
      there — the skip is recorded as a dynamic truncation
      ({!truncation_bound}/{!truncated}), keeping TA's certification
      obligation explicit. Entries already buffered when the bound is
      installed are still returned, so the stream stays a prefix of the
      unbounded one. [0.0] disables the skip.
      @raise Invalid_argument on an ERPL cursor. *)

  val next : t -> entry option
  (** Descending score for {!Rpl}; document position order for
      {!Erpl}. *)

  val skip_to : t -> docid:int -> endpos:int -> unit
  (** ERPL cursors only: discard every entry positioned before
      (docid, endpos). Blocks entirely before the target are dropped by
      their skip entry without being decoded ({!blocks_skipped}).
      @raise Invalid_argument on an RPL cursor. *)

  val entries_read : t -> int

  val entries_skipped : t -> int
  (** Entries dropped by {!skip_to} (decoded or not). *)

  val blocks_decoded : t -> int
  val blocks_skipped : t -> int

  val truncation_bound : t -> float
  (** Upper bound on the score of any entry the materialized prefixes
      dropped {e or} bound-skipping left undecoded; [0.] when every
      merged list is complete and unskipped. *)

  val truncated : t -> bool
  (** Whether any merged list is incomplete — stored truncated flag or
      a bound-skip this cursor performed. Unlike [truncation_bound > 0.]
      this is exact even when the bound is 0.0. *)
end
