(** Threshold algorithm over RPLs (paper §3.3, TopX-style).

    One descending-score cursor per query term (restricted to the query
    sids) is consumed round-robin; partial sums accumulate per element,
    a min-heap maintains the current top-k, and the run stops when the
    threshold — the sum of the last score seen in each list — proves no
    unseen or partially-seen element can enter the top-k. Requires the
    RPLs of every (term, sid) pair of the query.

    With [ideal_heap] the paper's ITA variant is measured: the
    stop-clock is paused around top-k-heap operations so their cost is
    excluded from the reported time. *)

type stats = {
  sorted_accesses : int;  (** RPL entries consumed (skipped included) *)
  skipped_accesses : int;
      (** foreign-sid entries read and discarded; always 0 with the
          per-(term, sid) layout, positive with full-term RPLs *)
  heap_operations : int;  (** sift operations on the top-k heap *)
  heap_pushes : int;
  heap_evictions : int;
  candidates : int;  (** distinct elements touched *)
  blocks_skipped : int;
      (** compressed blocks dropped undecoded — the full layout's sid
          bitmap and the single-term floor skip (see DESIGN.md §7) *)
  stopped_early : bool;  (** threshold fired before exhausting lists *)
  elapsed_seconds : float;  (** heap time excluded when [ideal_heap] *)
  heap_seconds : float;  (** measured only when [ideal_heap] *)
  degraded : bool;
      (** the guard expired and [answers] is a best-effort partial
          top-k (partial sums are lower bounds, so the prefix is sound
          but uncertified) *)
}

exception Truncated_rpl
(** Raised when prefix-materialized RPLs (see [Rpl.build ~rpl_prefix])
    were too shallow to certify the requested top-k: the threshold over
    the truncation bounds could not prove that no dropped entry belongs
    in the answer. Rebuild with a deeper prefix (or full lists) and
    retry. *)

val run :
  Trex_invindex.Index.t ->
  sids:int list ->
  terms:string list ->
  k:int ->
  ?ideal_heap:bool ->
  ?use_full_rpls:bool ->
  ?floor:float ->
  ?guard:Trex_resilience.Guard.t ->
  unit ->
  Answer.t * stats
(** Top-k answers (descending score, document-order tie-break).

    By default TA merges the query's per-(term, sid) RPLs. With
    [use_full_rpls] it consumes each term's full RPL and {e skips}
    foreign-sid entries — the paper's original access pattern (§3.3),
    materialized by {!Rpl.Full.build}.

    [floor] (default 0) is a score known to be achieved by k answers
    elsewhere — the sharded coordinator's current global k-th score.
    The run may stop as soon as neither the threshold nor any partial
    candidate can exceed [floor]: every returned entry scoring
    {e strictly above} [floor] is exact and complete, while entries at
    or below it may be partial sums (their true rank is outside the
    global top-k, so scatter-gather filters them out).

    [guard] is ticked on every cursor advance and heap operation; on
    expiry the run returns the current candidates' partial-sum top-k
    with [degraded = true] instead of raising. With [ideal_heap] the
    pause/resume around heap operations is exception-safe, so an abort
    mid-heap-op cannot corrupt the paused-time measurement.

    @raise Rpl.Cursor.Missing_list (default layout) or {!Rpl.Full.Missing}
    (full layout) when a required list is absent.
    @raise Invalid_argument when [k <= 0] or [terms] is empty. *)
