module Types = Trex_invindex.Types

type entry = { element : Types.element; score : float }
type t = entry list

let compare_entry a b =
  match compare b.score a.score with
  | 0 -> Types.compare_element a.element b.element
  | c -> c

let of_unsorted items =
  items
  |> List.map (fun (element, score) -> { element; score })
  |> List.sort compare_entry

let merge lists = List.sort compare_entry (List.concat lists)

let rec top_k t k =
  if k <= 0 then []
  else match t with [] -> [] | e :: rest -> e :: top_k rest (k - 1)

let size = List.length

let equal ?(eps = 1e-9) a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         Types.compare_element x.element y.element = 0
         && Float.abs (x.score -. y.score) <= eps)
       a b

let agree_on_top_k ?(eps = 1e-9) k a b =
  let key e = (e.element.Types.docid, e.element.Types.endpos) in
  let to_map l =
    List.fold_left
      (fun m e -> (key e, e.score) :: m)
      []
      (top_k l k)
  in
  let ma = List.sort compare (to_map a) and mb = List.sort compare (to_map b) in
  List.length ma = List.length mb
  && List.for_all2
       (fun (ka, sa) (kb, sb) -> ka = kb && Float.abs (sa -. sb) <= eps)
       ma mb

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i e ->
      Format.fprintf fmt "%2d. %a score=%.4f@," (i + 1) Types.pp_element e.element
        e.score)
    t;
  Format.fprintf fmt "@]"
