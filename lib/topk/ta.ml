module Types = Trex_invindex.Types
module Stopclock = Trex_util.Stopclock
module Metrics = Trex_obs.Metrics
module Guard = Trex_resilience.Guard

(* Registry totals accumulate across every run in the process; the
   [stats] record returned by [run] is the per-run view, computed as the
   delta of these counters over the run (single-threaded). *)
let m_runs = Metrics.counter "ta.runs"
let m_ita_runs = Metrics.counter "ita.runs"
let m_early_stops = Metrics.counter "ta.early_stops"
let m_sorted = Metrics.counter "ta.sorted_accesses"
let m_skipped = Metrics.counter "ta.skipped_accesses"
let m_heap_ops = Metrics.counter "ta.heap_operations"
let m_heap_pushes = Metrics.counter "ta.heap_pushes"
let m_heap_evictions = Metrics.counter "ta.heap_evictions"
let m_candidates = Metrics.counter "ta.candidates"
let m_blocks_skipped = Metrics.counter "ta.blocks_skipped"

type stats = {
  sorted_accesses : int;
  skipped_accesses : int;
  heap_operations : int;
  heap_pushes : int;
  heap_evictions : int;
  candidates : int;
  blocks_skipped : int;
  stopped_early : bool;
  elapsed_seconds : float;
  heap_seconds : float;
  degraded : bool;
}

type candidate = {
  c_element : Types.element;
  mutable c_worst : float; (* sum of the scores seen so far *)
  c_seen : bool array;
  mutable c_nseen : int;
  mutable c_version : int; (* version of the live heap entry *)
  mutable c_live : bool; (* member of the current top-k heap *)
}

(* Top-k min-heap entries carry a version for lazy deletion: updating a
   candidate pushes a fresh entry and strands the old one. *)
module Topk_heap = Trex_util.Heap.Make (struct
  type t = float * (int * int) * int (* score, element key, version *)

  let compare (s1, k1, _) (s2, k2, _) =
    match compare s1 s2 with 0 -> compare k1 k2 | c -> c
end)

exception Truncated_rpl

(* A term stream abstracts over the two RPL layouts: per-(term, sid)
   merged cursors or the paper's full-term skip-scanned lists. *)
type term_stream = {
  pull : unit -> Rpl.entry option;
  reads : unit -> int; (* entries consumed, skipped included *)
  skipped : unit -> int;
  blocks_skipped : unit -> int; (* compressed blocks dropped undecoded *)
  bound : unit -> float;
      (* scores past what the stream served are at most this; dynamic
         because bound-skipping a compressed block truncates the stream
         at run time *)
  truncated : unit -> bool;
      (* the stream is an incomplete prefix — stored truncated flag or
         a bound skip; exact even when [bound () = 0.0] *)
}

let run index ~sids ~terms ~k ?(ideal_heap = false) ?(use_full_rpls = false)
    ?(floor = 0.0) ?guard () =
  if k <= 0 then invalid_arg "Ta.run: k must be positive";
  if terms = [] then invalid_arg "Ta.run: no terms";
  let clock = Stopclock.create () in
  let tick_guard () = match guard with Some g -> Guard.tick g | None -> () in
  (* [with_paused] resumes on the way out even when the guard aborts
     mid-heap-op, keeping the ITA paused-time invariant. *)
  let with_heap_op f =
    if ideal_heap then
      Stopclock.with_paused clock (fun () ->
          tick_guard ();
          f ())
    else begin
      tick_guard ();
      f ()
    end
  in
  let n = List.length terms in
  let stream_of term =
    if use_full_rpls then begin
      let c = Rpl.Full.cursor index ~term ~sids in
      {
        pull = (fun () -> Rpl.Full.next c);
        reads = (fun () -> Rpl.Full.entries_read c);
        skipped = (fun () -> Rpl.Full.entries_skipped c);
        blocks_skipped = (fun () -> Rpl.Full.blocks_skipped c);
        bound = (fun () -> 0.0) (* full lists are never truncated *);
        truncated = (fun () -> false);
      }
    end
    else begin
      let c = Rpl.Cursor.create index Rpl.Rpl ~term ~sids in
      (* A single-term query can end its stream at the floor: dropped
         entries score at most the floor, so the exhaustion threshold
         stays within [w] and certification below always succeeds. With
         several terms the per-stream bounds sum past the floor, so the
         skip could forfeit a certifiable answer — leave it off and let
         the threshold test stop the run instead. *)
      if floor > 0.0 && n = 1 then Rpl.Cursor.set_bound c floor;
      {
        pull = (fun () -> Rpl.Cursor.next c);
        reads = (fun () -> Rpl.Cursor.entries_read c);
        skipped = (fun () -> Rpl.Cursor.entries_skipped c);
        blocks_skipped = (fun () -> Rpl.Cursor.blocks_skipped c);
        bound = (fun () -> Rpl.Cursor.truncation_bound c);
        truncated = (fun () -> Rpl.Cursor.truncated c);
      }
    end
  in
  let cursors = Array.of_list (List.map stream_of terms) in
  let last_seen = Array.make n infinity in
  let exhausted = Array.make n false in
  let candidates : (int * int, candidate) Hashtbl.t = Hashtbl.create 256 in
  let heap = Topk_heap.create () in
  let live_count = ref 0 in
  let pushes0 = Metrics.value m_heap_pushes
  and evictions0 = Metrics.value m_heap_evictions in
  let version = ref 0 in
  let stopped_early = ref false in
  (* Pop stale entries off the heap top so its minimum is live. *)
  let rec settle_top () =
    match Topk_heap.peek heap with
    | None -> ()
    | Some (score, key, v) -> (
        match Hashtbl.find_opt candidates key with
        | Some c when c.c_live && c.c_version = v ->
            ignore score (* live minimum found *)
        | Some _ | None ->
            ignore (with_heap_op (fun () -> Topk_heap.pop heap));
            settle_top ())
  in
  let current_w () =
    if !live_count < k then 0.0
    else begin
      settle_top ();
      match Topk_heap.peek heap with Some (s, _, _) -> s | None -> 0.0
    end
  in
  let threshold () =
    Array.fold_left (fun acc s -> acc +. if s = infinity then infinity else s) 0.0 last_seen
  in
  (* Would any candidate with unseen terms still be able to beat w?
     [last_seen] already holds the truncation bound once a stream is
     exhausted, so it bounds the unseen contribution either way. *)
  let some_candidate_can_beat w =
    let result = ref false in
    (try
       Hashtbl.iter
         (fun _ c ->
           if c.c_nseen < n then begin
             let best = ref c.c_worst in
             for t = 0 to n - 1 do
               if not c.c_seen.(t) then best := !best +. last_seen.(t)
             done;
             if !best > w then begin
               result := true;
               raise Exit
             end
           end)
         candidates
     with Exit -> ());
    !result
  in
  let accept_entry t (entry : Rpl.entry) =
    last_seen.(t) <- entry.score;
    let key = (entry.element.Types.docid, entry.element.Types.endpos) in
    let c =
      match Hashtbl.find_opt candidates key with
      | Some c -> c
      | None ->
          let c =
            {
              c_element = entry.element;
              c_worst = 0.0;
              c_seen = Array.make n false;
              c_nseen = 0;
              c_version = -1;
              c_live = false;
            }
          in
          Hashtbl.add candidates key c;
          c
    in
    if not c.c_seen.(t) then begin
      c.c_seen.(t) <- true;
      c.c_nseen <- c.c_nseen + 1;
      c.c_worst <- c.c_worst +. entry.score;
      incr version;
      c.c_version <- !version;
      Metrics.incr m_heap_pushes;
      with_heap_op (fun () -> Topk_heap.push heap (c.c_worst, key, !version));
      if not c.c_live then begin
        c.c_live <- true;
        incr live_count;
        (* Evict the live minimum while the top-k set is over-full. *)
        while !live_count > k do
          settle_top ();
          match with_heap_op (fun () -> Topk_heap.pop heap) with
          | None -> live_count := 0 (* unreachable: live_count > 0 *)
          | Some (_, ekey, ev) -> (
              match Hashtbl.find_opt candidates ekey with
              | Some ec when ec.c_live && ec.c_version = ev ->
                  ec.c_live <- false;
                  decr live_count;
                  Metrics.incr m_heap_evictions
              | Some _ | None -> ())
        done
      end
    end
  in
  let check_interval = 16 in
  let until_next_check = ref check_interval in
  let running = ref true in
  let degraded = ref false in
  (* On guard expiry the partial sums accumulated so far are salvaged
     as a best-effort (degraded) answer: every partial sum is a lower
     bound of the true score, so the prefix is sound, just possibly
     incomplete. Certification is skipped — degraded answers are not
     certified, they are tagged. *)
  (try
     while !running do
       let progressed = ref false in
       for t = 0 to n - 1 do
         if not exhausted.(t) then begin
           tick_guard ();
           match cursors.(t).pull () with
           | Some entry ->
               progressed := true;
               accept_entry t entry
           | None ->
               exhausted.(t) <- true;
               (* Entries past a truncated prefix (stored or
                  bound-skipped) score at most the recorded bound. *)
               last_seen.(t) <- cursors.(t).bound ()
         end
       done;
       if not !progressed then running := false
       else begin
         decr until_next_check;
         if !until_next_check <= 0 then begin
           until_next_check := check_interval;
           let tau = threshold () in
           (* The floor acts as a k-th score already achieved elsewhere
              (scatter-gather): entries at or below it cannot enter the
              global top-k, so stopping is sound as soon as neither the
              threshold nor any partial candidate can exceed
              [max w floor] — even before k candidates are live. *)
           let w = Float.max (current_w ()) floor in
           if
             (!live_count >= k || floor > 0.0)
             && w >= tau
             && not (some_candidate_can_beat w)
           then begin
             stopped_early := true;
             running := false
           end
         end
       end
     done;
     (* With truncated prefixes an exhausted run must still certify the
        top-k before answering: unseen (dropped) entries are bounded by
        the truncation bounds, so the usual threshold test applies. The
        explicit truncated flag — not [bound > 0.0] — decides whether
        certification is owed: a truncated list whose dropped entries
        all scored 0.0 is still incomplete. *)
     if (not !stopped_early) && Array.exists (fun c -> c.truncated ()) cursors
     then begin
       let tau = threshold () in
       let w = Float.max (current_w ()) floor in
       if
         not
           ((!live_count >= k || floor > 0.0)
           && w >= tau
           && not (some_candidate_can_beat w))
       then raise Truncated_rpl
     end
   with Guard.Budget_exceeded _ -> degraded := true);
  let answers =
    Hashtbl.fold (fun _ c acc -> (c.c_element, c.c_worst) :: acc) candidates []
    |> Answer.of_unsorted
  in
  let top = Answer.top_k answers k in
  let elapsed = Stopclock.elapsed clock in
  let total_reads = Array.fold_left (fun acc c -> acc + c.reads ()) 0 cursors in
  let total_skipped = Array.fold_left (fun acc c -> acc + c.skipped ()) 0 cursors in
  let total_blocks_skipped =
    Array.fold_left (fun acc c -> acc + c.blocks_skipped ()) 0 cursors
  in
  Metrics.incr (if ideal_heap then m_ita_runs else m_runs);
  if !stopped_early then Metrics.incr m_early_stops;
  Metrics.add m_sorted total_reads;
  Metrics.add m_skipped total_skipped;
  Metrics.add m_heap_ops (Topk_heap.operations heap);
  Metrics.add m_candidates (Hashtbl.length candidates);
  Metrics.add m_blocks_skipped total_blocks_skipped;
  ( top,
    {
      sorted_accesses = total_reads;
      skipped_accesses = total_skipped;
      heap_operations = Topk_heap.operations heap;
      heap_pushes = Metrics.value m_heap_pushes - pushes0;
      heap_evictions = Metrics.value m_heap_evictions - evictions0;
      candidates = Hashtbl.length candidates;
      blocks_skipped = total_blocks_skipped;
      stopped_early = !stopped_early;
      elapsed_seconds = elapsed;
      heap_seconds = Stopclock.paused_time clock;
      degraded = !degraded;
    } )
