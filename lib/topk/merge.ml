module Types = Trex_invindex.Types
module Stopclock = Trex_util.Stopclock
module Metrics = Trex_obs.Metrics

(* Registry totals across every run; [stats] is the per-run view. *)
let m_runs = Metrics.counter "merge.runs"
let m_entries_read = Metrics.counter "merge.entries_read"
let m_elements_merged = Metrics.counter "merge.elements_merged"

type stats = {
  entries_read : int;
  elements_merged : int;
  blocks_decoded : int;
  elapsed_seconds : float;
  degraded : bool;
}

(* The merge frontier: one heap element per non-exhausted term stream,
   keyed by the head entry's document position so the pop order is the
   global position order. Ties on position (the same element reached
   from several terms) break on the stream index only to make the order
   total; equal positions are drained together below. *)
module Pos_heap = Trex_util.Heap.Make (struct
  type t = (int * int) * int (* position, stream index *)

  let compare ((p1, i1) : t) ((p2, i2) : t) =
    match compare p1 p2 with 0 -> compare i1 i2 | c -> c
end)

let run ?guard index ~sids ~terms =
  if terms = [] then invalid_arg "Merge.run: no terms";
  let clock = Stopclock.create () in
  let cursors =
    Array.of_list
      (List.map (fun term -> Rpl.Cursor.create index Rpl.Erpl ~term ~sids) terms)
  in
  let position (e : Rpl.entry) = (e.element.Types.docid, e.element.Types.endpos) in
  (* heads.(i) is the entry behind the heap element carrying stream i. *)
  let heads = Array.map Rpl.Cursor.next cursors in
  let heap = Pos_heap.create () in
  let advance i =
    match heads.(i) with
    | Some e -> Pos_heap.push heap (position e, i)
    | None -> ()
  in
  Array.iteri (fun i _ -> advance i) heads;
  let merged = ref [] in
  let merged_count = ref 0 in
  let running = ref true in
  let degraded = ref false in
  (* The guard is checked between elements, never mid-drain, so every
     merged element carries its exact summed score; a degraded run is a
     position-prefix of the full merge with exact scores. *)
  (try
  while !running do
    (match guard with
    | Some g -> Trex_resilience.Guard.tick g
    | None -> ());
    match Pos_heap.pop heap with
    | None -> running := false
    | Some (p, i) ->
        (* Sum the scores of every stream head sitting at position p:
           keep popping while the heap minimum matches. Each stream is
           advanced exactly once per element it contributes, so the whole
           run is O(entries * log terms) instead of the previous
           O(terms * answers) rescan of all heads per output element. *)
        let e = match heads.(i) with Some e -> e | None -> assert false in
        let score = ref e.score in
        let element = ref e.element in
        heads.(i) <- Rpl.Cursor.next cursors.(i);
        advance i;
        let same_pos = ref true in
        while !same_pos do
          match Pos_heap.peek heap with
          | Some (q, j) when q = p ->
              ignore (Pos_heap.pop heap);
              let e' = match heads.(j) with Some e -> e | None -> assert false in
              score := !score +. e'.score;
              element := e'.element;
              heads.(j) <- Rpl.Cursor.next cursors.(j);
              advance j
          | Some _ | None -> same_pos := false
        done;
        incr merged_count;
        merged := (!element, !score) :: !merged
  done
   with Trex_resilience.Guard.Budget_exceeded _ -> degraded := true);
  (* The paper sorts V with QuickSort; Answer.of_unsorted is our
     equivalent (List.sort, descending score). *)
  let answers = Answer.of_unsorted !merged in
  let entries_read =
    Array.fold_left (fun acc c -> acc + Rpl.Cursor.entries_read c) 0 cursors
  in
  let blocks_decoded =
    Array.fold_left (fun acc c -> acc + Rpl.Cursor.blocks_decoded c) 0 cursors
  in
  Metrics.incr m_runs;
  Metrics.add m_entries_read entries_read;
  Metrics.add m_elements_merged !merged_count;
  ( answers,
    {
      entries_read;
      elements_merged = !merged_count;
      blocks_decoded;
      elapsed_seconds = Stopclock.elapsed clock;
      degraded = !degraded;
    } )
