(** The Exhaustive Retrieval Algorithm (paper Figure 2).

    ERA scans the posting lists of the query terms in global position
    order while tracking, for every query sid, the current candidate
    element of that extent; term occurrences falling inside the current
    element accumulate in a term-frequency matrix whose rows are flushed
    when the scan passes the element's end. It needs only the base
    [Elements] / [PostingLists] tables, computes {e all} answers, and is
    also how RPLs and ERPLs get built. *)

type result = {
  element : Trex_invindex.Types.element;
  tf : int array;  (** term frequencies, indexed like the query terms *)
}

type run_stats = {
  positions_scanned : int;  (** posting occurrences consumed *)
  iterator_seeks : int;  (** [nextElementAfter] B+tree searches *)
  elements_emitted : int;
  degraded : bool;
      (** the guard expired mid-scan and [result list] covers only a
          prefix of the position space *)
}

val run :
  ?guard:Trex_resilience.Guard.t ->
  Trex_invindex.Index.t ->
  sids:int list ->
  terms:string list ->
  result list * run_stats
(** Elements (in flush order) of the given extents containing at least
    one of the given (normalized) terms, with their term frequencies.
    Duplicate sids are ignored; empty [sids] or [terms] give [].
    [guard] is ticked once per posting position; on expiry the scan
    stops and returns the elements emitted so far, [degraded]. *)

val score_results :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  terms:string list ->
  result list ->
  Answer.t
(** Turn tf vectors into combined relevance scores (sum over terms) and
    sort into a ranked answer list. *)

val per_term_scores :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  terms:string list ->
  result list ->
  (string * (Trex_invindex.Types.element * float) list) list
(** Per-term scored entries — the raw material of RPLs/ERPLs; entries
    with [tf = 0] for a term are omitted from that term's list. *)
