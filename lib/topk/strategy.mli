(** Strategy selection and uniform evaluation (paper §3).

    TReX evaluates each (sids, terms) retrieval with one of three
    methods — ERA, TA, or Merge (plus the ITA measurement variant) —
    whichever the available indexes permit and the query profile
    favours.

    When {!Trex_obs.Journal.set_enabled} is on, every top-level entry
    point here ({!evaluate}, {!race}, {!evaluate_resilient}) appends
    exactly one record per evaluation to the index environment's query
    journal ({!Trex_storage.Env.journal}) — one record per observed
    query, never one per internal attempt, so journaled counts are the
    workload frequencies [Workload.of_journal] reconstructs. *)

type method_ = Era_method | Ta_method | Ita_method | Merge_method

val method_to_string : method_ -> string
val all_methods : method_ list

type outcome = {
  method_used : method_;
  answers : Answer.t;  (** top-k for TA/ITA; all answers otherwise *)
  elapsed_seconds : float;
  entries_read : int;  (** index entries consumed (postings or lists) *)
  degraded : bool;
      (** the run's guard expired and [answers] is a sound but
          possibly-partial prefix (see the per-method stats docs) *)
  detail : string;  (** human-readable per-method statistics *)
}

val tables_of_method : method_ -> string list
(** The Env tables the method reads beyond the base index ([[]] for
    ERA) — the unit at which circuit breakers trip. *)

val evaluate :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  sids:int list ->
  terms:string list ->
  k:int ->
  ?guard:Trex_resilience.Guard.t ->
  ?floor:float ->
  method_ ->
  outcome
(** [floor] is a score k answers are already known to achieve elsewhere
    (the sharded coordinator's global k-th score); only TA/ITA consume
    it — see {!Ta.run} — the other methods compute complete answers
    that the caller filters.
    @raise Rpl.Cursor.Missing_list when the method's indexes are not
    materialized. *)

val available : Trex_invindex.Index.t -> sids:int list -> terms:string list -> method_ list
(** Methods whose required indexes exist (ERA always qualifies) {e and}
    whose tables' circuit breakers admit callers — a tripped RPL table
    takes TA/ITA out of planning until its breaker closes. *)

type failover = { failed : method_; error : string }

val evaluate_resilient :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  sids:int list ->
  terms:string list ->
  k:int ->
  ?guard:Trex_resilience.Guard.t ->
  ?floor:float ->
  ?method_:method_ ->
  unit ->
  outcome * failover list
(** Like {!evaluate} ([method_] forces the first attempt; otherwise
    {!choose}), but a [Pager.Corruption], retry exhaustion, or
    {!Rpl.Stale_generation} (table blocked pending manifest resolution)
    inside a redundant-index method trips that method's tables' breakers and
    re-plans over the surviving methods — TA falls back to Merge falls
    back to ERA — recording one {!failover} per abandoned method and
    bumping ["resilience.fallbacks"]. A complete success records itself
    with the method's breakers (closing a half-open probe); when the
    evaluation was a half-open table's probe and it either came back
    degraded or was aborted by {!Trex_resilience.Guard.Budget_exceeded},
    the probe is {e failed} — the breaker re-opens instead of leaking
    the probe slot. ERA failures propagate: the base tables have no
    redundant substitute. *)

val choose :
  Trex_invindex.Index.t -> sids:int list -> terms:string list -> k:int -> method_
(** Heuristic choice among {!available}: TA when the RPLs exist and [k]
    is small relative to the materialized list sizes, otherwise Merge
    when the ERPLs exist, otherwise ERA — the paper's observation that
    no method dominates, operationalized. *)

val race :
  ?guard:Trex_resilience.Guard.t ->
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  sids:int list ->
  terms:string list ->
  k:int ->
  outcome
(** The paper's §4 idea: when both RPLs and ERPLs exist, run TA and
    Merge "in parallel" and answer from whichever finishes first. The
    storage layer is single-threaded, so the race is simulated: both
    run and the faster outcome is returned, with both times in
    [detail]. Falls back to whatever single method is available. *)
