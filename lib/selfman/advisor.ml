module Rpl = Trex_topk.Rpl

type choice =
  | No_index
  | Use_erpl
  | Use_rpl
  | Use_erpl_raw
  | Use_rpl_raw

type plan = {
  decisions : (string * choice) list;
  bytes_used : int;
  expected_saving : float;
}

let choice_to_string = function
  | No_index -> "none"
  | Use_erpl -> "ERPL (Merge)"
  | Use_rpl -> "RPL (TA)"
  | Use_erpl_raw -> "ERPL raw (Merge)"
  | Use_rpl_raw -> "RPL raw (TA)"

let layout_of_choice = function
  | No_index -> None
  | Use_erpl | Use_rpl -> Some Rpl.Compressed
  | Use_erpl_raw | Use_rpl_raw -> Some Rpl.Raw

(* The solvers weigh every choice, raw layouts included. Both layouts
   serve identical answers, so a raw option carries the same saving at
   (usually) a higher price — it wins only when the catalogs say raw is
   no larger (tiny lists where block headers outweigh the gaps). *)
let all_choices = [ Use_erpl; Use_rpl; Use_erpl_raw; Use_rpl_raw ]

(* A materializable list, identified across queries so sharing is
   accounted once. *)
module List_key = struct
  type t = Rpl.kind * string * int

  let compare = compare
end

module List_set = Set.Make (List_key)

let dedup_lists lists =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (key, _) ->
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    lists

let lists_of_choice (p : Cost.profile) choice =
  let conv kind lists =
    dedup_lists
      (List.map
         (fun ((l : Cost.list_id), bytes) -> ((kind, l.term, l.sid), bytes))
         lists)
  in
  match choice with
  | No_index -> []
  | Use_erpl -> conv Rpl.Erpl p.erpl_lists
  | Use_rpl -> conv Rpl.Rpl p.rpl_lists
  | Use_erpl_raw -> conv Rpl.Erpl p.erpl_lists_raw
  | Use_rpl_raw -> conv Rpl.Rpl p.rpl_lists_raw

let saving_of_choice p = function
  | No_index -> 0.0
  | Use_erpl | Use_erpl_raw -> Cost.saving_merge p
  | Use_rpl | Use_rpl_raw -> Cost.saving_ta p

let add_lists set lists =
  List.fold_left
    (fun (set, added) (key, bytes) ->
      if List_set.mem key set then (set, added)
      else (List_set.add key set, added + bytes))
    (set, 0) lists

let incremental_bytes set lists =
  List.fold_left
    (fun acc (key, bytes) -> if List_set.mem key set then acc else acc + bytes)
    0 lists

let decisions_of profiles table =
  List.map
    (fun (p : Cost.profile) ->
      (p.id, match Hashtbl.find_opt table p.id with Some c -> c | None -> No_index))
    profiles

let plan_of profiles table =
  let decisions = decisions_of profiles table in
  let set, bytes, saving =
    List.fold_left2
      (fun (set, bytes, saving) (p : Cost.profile) (_, choice) ->
        let set, added = add_lists set (lists_of_choice p choice) in
        (set, bytes + added, saving +. saving_of_choice p choice))
      (List_set.empty, 0, 0.0) profiles decisions
  in
  ignore set;
  { decisions; bytes_used = bytes; expected_saving = saving }

let plan_bytes profiles decisions =
  let table = Hashtbl.create 8 in
  List.iter (fun (id, c) -> Hashtbl.replace table id c) decisions;
  (plan_of profiles table).bytes_used

let plan_saving profiles decisions =
  let table = Hashtbl.create 8 in
  List.iter (fun (id, c) -> Hashtbl.replace table id c) decisions;
  (plan_of profiles table).expected_saving

(* Ratio-greedy alone can be arbitrarily far from optimal (a cheap
   high-ratio option can block a huge near-budget one), so the classic
   knapsack fallback applies: also consider every single option alone
   and return the better plan. This is what makes Theorem 4.2's
   2-approximation hold. *)
let best_single ~budget profiles =
  let best = ref None in
  List.iter
    (fun (p : Cost.profile) ->
      List.iter
        (fun choice ->
          let saving = saving_of_choice p choice in
          let _, bytes = add_lists List_set.empty (lists_of_choice p choice) in
          if saving > 0.0 && bytes <= budget then
            match !best with
            | Some (_, _, s) when s >= saving -> ()
            | Some _ | None -> best := Some (p.id, choice, saving))
        all_choices)
    profiles;
  let table = Hashtbl.create 1 in
  (match !best with
  | Some (id, choice, _) -> Hashtbl.replace table id choice
  | None -> ());
  plan_of profiles table

let greedy ~budget profiles =
  let chosen = Hashtbl.create 8 in
  let set = ref List_set.empty in
  let used = ref 0 in
  let finished = ref false in
  while not !finished do
    (* Best (query, choice) by saving / incremental-bytes among those
       that still fit; zero-cost positive-saving options dominate. *)
    let best = ref None in
    List.iter
      (fun (p : Cost.profile) ->
        if not (Hashtbl.mem chosen p.id) then
          List.iter
            (fun choice ->
              let saving = saving_of_choice p choice in
              if saving > 0.0 then begin
                let cost = incremental_bytes !set (lists_of_choice p choice) in
                if !used + cost <= budget then begin
                  let ratio =
                    if cost = 0 then infinity else saving /. float_of_int cost
                  in
                  match !best with
                  | Some (_, _, best_ratio) when best_ratio >= ratio -> ()
                  | Some _ | None -> best := Some (p, choice, ratio)
                end
              end)
            all_choices)
      profiles;
    match !best with
    | None -> finished := true
    | Some (p, choice, _) ->
        let set', added = add_lists !set (lists_of_choice p choice) in
        set := set';
        used := !used + added;
        Hashtbl.replace chosen p.id choice
  done;
  let ratio_plan = plan_of profiles chosen in
  let single_plan = best_single ~budget profiles in
  if single_plan.expected_saving > ratio_plan.expected_saving then single_plan
  else ratio_plan

let branch_and_bound ~budget profiles =
  let arr = Array.of_list profiles in
  let l = Array.length arr in
  (* Optimistic completion: take every remaining query's best option for
     free. *)
  let tail_bound = Array.make (l + 1) 0.0 in
  for i = l - 1 downto 0 do
    tail_bound.(i) <-
      tail_bound.(i + 1)
      +. Float.max (Cost.saving_merge arr.(i)) (Cost.saving_ta arr.(i))
  done;
  let best_saving = ref (-1.0) in
  let best_assignment = ref [||] in
  let current = Array.make l No_index in
  let rec explore i set used saving =
    if saving +. tail_bound.(i) <= !best_saving then ()
    else if i = l then begin
      if saving > !best_saving then begin
        best_saving := saving;
        best_assignment := Array.copy current
      end
    end
    else
      List.iter
        (fun choice ->
          let cost = incremental_bytes set (lists_of_choice arr.(i) choice) in
          if used + cost <= budget then begin
            let set', _ = add_lists set (lists_of_choice arr.(i) choice) in
            current.(i) <- choice;
            explore (i + 1) set' (used + cost) (saving +. saving_of_choice arr.(i) choice);
            current.(i) <- No_index
          end)
        [ Use_rpl; Use_erpl; Use_rpl_raw; Use_erpl_raw; No_index ]
  in
  explore 0 List_set.empty 0 0.0;
  let table = Hashtbl.create 8 in
  Array.iteri (fun i (p : Cost.profile) -> Hashtbl.replace table p.id !best_assignment.(i)) arr;
  plan_of profiles table

let apply index ~scoring ~workload ?(profiles = []) plan =
  (* One outer manifest op brackets the whole plan; each [Rpl.build]
     inside is its own (nested, rollback-carrying) op, so a crash
     mid-apply quarantines only the build in flight while the outer
     Begin..Commit records whether the plan as a whole finished. *)
  let env = Trex_invindex.Index.env index in
  let op_tables =
    [ Rpl.table_name Rpl.Rpl; Rpl.catalog_name Rpl.Rpl;
      Rpl.table_name Rpl.Erpl; Rpl.catalog_name Rpl.Erpl ]
  in
  let o = Trex_storage.Env.begin_op env ~op:"advisor_apply" ~tables:op_tables () in
  try
    List.iter
      (fun (id, choice) ->
        match choice with
        | No_index -> ()
        | Use_erpl | Use_rpl | Use_erpl_raw | Use_rpl_raw -> (
            match Workload.find workload id with
            | None -> invalid_arg (Printf.sprintf "Advisor.apply: unknown query %s" id)
            | Some q ->
                let kinds =
                  [ (match choice with
                    | Use_erpl | Use_erpl_raw -> Rpl.Erpl
                    | _ -> Rpl.Rpl) ]
                in
                let rpl_prefix =
                  if choice = Use_rpl || choice = Use_rpl_raw then
                    List.find_opt (fun (p : Cost.profile) -> p.id = id) profiles
                    |> Fun.flip Option.bind (fun (p : Cost.profile) -> p.rpl_prefix)
                  else None
                in
                let layout =
                  match layout_of_choice choice with
                  | Some l -> l
                  | None -> Rpl.Compressed
                in
                ignore
                  (Rpl.build index ~scoring ~sids:q.sids ~terms:q.terms ~kinds
                     ?rpl_prefix ~layout ())))
      plan.decisions;
    Trex_storage.Env.commit_op env o
  with
  | Trex_storage.Pager.Injected_crash _ as e -> raise e
  | e ->
      Trex_storage.Env.abort_op env o ~note:(Printexc.to_string e);
      raise e
