(** Per-query cost/benefit profiles for index selection.

    The paper's formulas need, per workload query: evaluation time under
    ERA, Merge and TA; and the disk space of the RPLs/ERPLs the query
    needs (per (term, sid) list, because queries share lists). Profiles
    are either {e measured} against a live index — the paper's "the
    actual time savings and disk space... should be measured
    experimentally" — or constructed synthetically for solver tests. *)

type list_id = { term : string; sid : int }

type profile = {
  id : string;
  frequency : float;
  time_era : float;  (** seconds *)
  time_merge : float;
  time_ta : float;
  rpl_lists : (list_id * int) list;  (** (list, bytes) needed by TA *)
  erpl_lists : (list_id * int) list;  (** (list, bytes) needed by Merge *)
  rpl_lists_raw : (list_id * int) list;
      (** the same lists priced in the raw (v1) layout — recorded at
          write time (see [Rpl.list_raw_bytes]) so the advisor can
          weigh compressed against raw materialization per query *)
  erpl_lists_raw : (list_id * int) list;
  rpl_prefix : int option;
      (** when set, [rpl_lists] sizes are for prefix-truncated RPLs of
          this depth — the paper's S_RPL, "the part that TA reads till
          reaching the stopping condition" — and applying the plan must
          materialize with the same prefix *)
}

val saving_merge : profile -> float
(** [max (time_era - time_merge) 0 * frequency] — the paper's
    [f_i * delta_m(Q_i)]. *)

val saving_ta : profile -> float

val measure :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  ?runs:int ->
  ?prefix_rpls:bool ->
  Workload.query ->
  profile
(** Materialize the query's RPLs and ERPLs (if missing), time the three
    methods ([runs] repetitions, keeping the median — default 3), and
    read list sizes from the catalogs.

    With [prefix_rpls] (default false) the RPLs are then re-materialized
    truncated to the shallowest prefix that still certifies the query's
    top-[k] (found by doubling from TA's observed read count), and the
    profile charges TA only those bytes — the paper's S_RPL. *)

val make :
  id:string ->
  frequency:float ->
  time_era:float ->
  time_merge:float ->
  time_ta:float ->
  rpl_lists:(string * int * int) list ->
  erpl_lists:(string * int * int) list ->
  profile
(** Synthetic profile; lists given as (term, sid, bytes). *)
