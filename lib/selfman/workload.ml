type query = {
  id : string;
  sids : int list;
  terms : string list;
  k : int;
  frequency : float;
}

type t = query list

let create queries =
  if queries = [] then invalid_arg "Workload.create: empty workload";
  let ids = List.map (fun q -> q.id) queries in
  if List.length (List.sort_uniq String.compare ids) <> List.length ids then
    invalid_arg "Workload.create: duplicate query ids";
  List.iter
    (fun q ->
      if q.frequency <= 0.0 then
        invalid_arg (Printf.sprintf "Workload.create: frequency of %s not positive" q.id);
      if q.k <= 0 then
        invalid_arg (Printf.sprintf "Workload.create: k of %s not positive" q.id))
    queries;
  let total = List.fold_left (fun acc q -> acc +. q.frequency) 0.0 queries in
  if Float.abs (total -. 1.0) > 1e-6 then
    invalid_arg (Printf.sprintf "Workload.create: frequencies sum to %f, not 1" total);
  queries

let of_unweighted specs =
  let n = List.length specs in
  if n = 0 then invalid_arg "Workload.of_unweighted: empty workload";
  let f = 1.0 /. float_of_int n in
  create
    (List.map (fun (id, sids, terms, k) -> { id; sids; terms; k; frequency = f }) specs)

let of_journal records =
  if records = [] then invalid_arg "Workload.of_journal: no journal records";
  let module J = Trex_obs.Journal in
  let total = float_of_int (List.length records) in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let latest : (string, J.record) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : J.record) ->
      (match Hashtbl.find_opt counts r.J.digest with
      | Some c -> incr c
      | None ->
          Hashtbl.add counts r.J.digest (ref 1);
          order := r.J.digest :: !order);
      (* Last write wins: the shape fields (sids/terms/k) come from the
         most recent sighting of the digest. *)
      Hashtbl.replace latest r.J.digest r)
    records;
  create
    (List.rev_map
       (fun digest ->
         let r = Hashtbl.find latest digest in
         {
           id = digest;
           sids = r.J.sids;
           terms = r.J.terms;
           k = max 1 r.J.k;
           frequency = float_of_int !(Hashtbl.find counts digest) /. total;
         })
       !order)

let queries t = t
let find t id = List.find_opt (fun q -> q.id = id) t

(* Sharded coordinators label each per-shard evaluation
   "shard:NAME|nexi", so the per-shard traffic is recoverable from one
   journal stream. Records without the prefix group under "". *)
let by_shard records =
  let module J = Trex_obs.Journal in
  let shard_of (r : J.record) =
    let label = r.J.label in
    if String.length label > 6 && String.sub label 0 6 = "shard:" then
      match String.index_opt label '|' with
      | Some bar -> String.sub label 6 (bar - 6)
      | None -> String.sub label 6 (String.length label - 6)
    else ""
  in
  let groups : (string, J.record list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let s = shard_of r in
      match Hashtbl.find_opt groups s with
      | Some cell -> cell := r :: !cell
      | None ->
          Hashtbl.add groups s (ref [ r ]);
          order := s :: !order)
    records;
  List.rev_map
    (fun s -> (s, of_journal (List.rev !(Hashtbl.find groups s))))
    !order
