module Index = Trex_invindex.Index
module Rpl = Trex_topk.Rpl
module Strategy = Trex_topk.Strategy

type list_id = { term : string; sid : int }

type profile = {
  id : string;
  frequency : float;
  time_era : float;
  time_merge : float;
  time_ta : float;
  rpl_lists : (list_id * int) list;
  erpl_lists : (list_id * int) list;
  rpl_lists_raw : (list_id * int) list;
  erpl_lists_raw : (list_id * int) list;
  rpl_prefix : int option;
}

let saving_merge p = p.frequency *. Float.max (p.time_era -. p.time_merge) 0.0
let saving_ta p = p.frequency *. Float.max (p.time_era -. p.time_ta) 0.0

let median times =
  match List.sort compare times with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

let time_method index ~scoring ~sids ~terms ~k ~runs method_ =
  median
    (List.init runs (fun _ ->
         (Strategy.evaluate index ~scoring ~sids ~terms ~k method_).elapsed_seconds))

(* Shallowest per-list prefix depth that still lets TA certify the
   query's top-k, found by doubling from TA's observed read count.
   Returns None when only complete lists work (or nothing is saved). *)
let certified_prefix index ~scoring ~sids ~terms ~k ~reads =
  let n_lists = max 1 (List.length sids * List.length terms) in
  let full_entries =
    List.fold_left
      (fun acc term ->
        List.fold_left
          (fun acc sid -> acc + Rpl.list_entries index Rpl.Rpl ~term ~sid)
          acc sids)
      0 terms
  in
  let rebuild prefix =
    List.iter
      (fun term -> List.iter (fun sid -> Rpl.drop index Rpl.Rpl ~term ~sid) sids)
      terms;
    ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ?rpl_prefix:prefix ())
  in
  let rec search depth =
    if depth * n_lists >= full_entries then begin
      (* No saving possible: keep complete lists. *)
      rebuild None;
      None
    end
    else begin
      rebuild (Some depth);
      match Trex_topk.Ta.run index ~sids ~terms ~k () with
      | _ -> Some depth
      | exception Trex_topk.Ta.Truncated_rpl -> search (depth * 2)
    end
  in
  search (max 4 (reads / n_lists))

let measure index ~scoring ?(runs = 3) ?(prefix_rpls = false) (q : Workload.query) =
  ignore
    (Rpl.build index ~scoring ~sids:q.sids ~terms:q.terms
       ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ());
  let time = time_method index ~scoring ~sids:q.sids ~terms:q.terms ~k:q.k ~runs in
  let time_era = time Strategy.Era_method in
  let time_merge = time Strategy.Merge_method in
  let time_ta = time Strategy.Ta_method in
  let rpl_prefix =
    if not prefix_rpls then None
    else begin
      let _, stats = Trex_topk.Ta.run index ~sids:q.sids ~terms:q.terms ~k:q.k () in
      certified_prefix index ~scoring ~sids:q.sids ~terms:q.terms ~k:q.k
        ~reads:stats.Trex_topk.Ta.sorted_accesses
    end
  in
  (* Zero-byte (empty) lists stay in the profile: coverage checks need
     their catalog entries to exist. *)
  let lists bytes_of kind =
    List.concat_map
      (fun term ->
        List.map (fun sid -> ({ term; sid }, bytes_of index kind ~term ~sid)) q.sids)
      q.terms
  in
  {
    id = q.id;
    frequency = q.frequency;
    time_era;
    time_merge;
    time_ta;
    rpl_lists = lists Rpl.list_bytes Rpl.Rpl;
    erpl_lists = lists Rpl.list_bytes Rpl.Erpl;
    (* the raw prices recorded at write time, so the advisor can offer
       raw materialization as an alternative without rebuilding *)
    rpl_lists_raw = lists Rpl.list_raw_bytes Rpl.Rpl;
    erpl_lists_raw = lists Rpl.list_raw_bytes Rpl.Erpl;
    rpl_prefix;
  }

let make ~id ~frequency ~time_era ~time_merge ~time_ta ~rpl_lists ~erpl_lists =
  let conv = List.map (fun (term, sid, bytes) -> ({ term; sid }, bytes)) in
  {
    id;
    frequency;
    time_era;
    time_merge;
    time_ta;
    rpl_lists = conv rpl_lists;
    erpl_lists = conv erpl_lists;
    (* synthetic profiles price both layouts identically *)
    rpl_lists_raw = conv rpl_lists;
    erpl_lists_raw = conv erpl_lists;
    rpl_prefix = None;
  }
