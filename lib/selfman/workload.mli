(** Workloads (paper Definition 4.1): top-k retrieval queries with
    frequencies summing to one. *)

type query = {
  id : string;
  sids : int list;
  terms : string list;
  k : int;
  frequency : float;
}

type t = private query list

val create : query list -> t
(** Validates: non-empty, distinct ids, positive frequencies summing to
    1 (within 1e-6), positive [k]. @raise Invalid_argument otherwise. *)

val of_unweighted : (string * int list * string list * int) list -> t
(** Uniform frequencies. *)

val of_journal : Trex_obs.Journal.record list -> t
(** The {e observed} workload: one query per distinct journal digest,
    its frequency the share of records carrying that digest, its
    (sids, terms, k) taken from the digest's most recent record (with
    [k] clamped to at least 1). This is how the advisor consumes real
    traffic instead of a hand-assembled workload.
    @raise Invalid_argument on an empty record list. *)

val by_shard : Trex_obs.Journal.record list -> (string * t) list
(** Partition journal records by the shard that served them — the
    coordinator labels each per-shard evaluation ["shard:NAME|nexi"] —
    and build one observed workload per shard ({!of_journal} per
    group; frequencies are within-shard). Records without the prefix
    (single-env traffic) group under [""]. Groups appear in
    first-sighting order. *)

val queries : t -> query list
val find : t -> string -> query option
