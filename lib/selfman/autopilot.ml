module Index = Trex_invindex.Index
module Rpl = Trex_topk.Rpl
module Env = Trex_storage.Env
module Breaker = Trex_resilience.Breaker
module Metrics = Trex_obs.Metrics

let m_rebuilds = Metrics.counter "resilience.rebuilds"

type observed = {
  mutable count : int;
  mutable sids : int list;
  mutable terms : string list;
  mutable k : int;
}

type t = {
  index : Index.t;
  scoring : Trex_scoring.Scorer.config;
  budget : int;
  min_observations : int;
  drift_threshold : float;
  seen : (string, observed) Hashtbl.t;
  mutable total : int;
  mutable plan : Advisor.plan option;
  mutable planned_freqs : (string * float) list; (* mix the plan was built for *)
}

let create index ~scoring ~budget ?(min_observations = 20) ?(drift_threshold = 0.25)
    () =
  if budget < 0 then invalid_arg "Autopilot.create: negative budget";
  {
    index;
    scoring;
    budget;
    min_observations;
    drift_threshold;
    seen = Hashtbl.create 16;
    total = 0;
    plan = None;
    planned_freqs = [];
  }

let record t ~id ~sids ~terms ~k =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.seen id with
  | Some o ->
      o.count <- o.count + 1;
      o.sids <- sids;
      o.terms <- terms;
      o.k <- k
  | None -> Hashtbl.add t.seen id { count = 1; sids; terms; k }

let absorb_journal t records =
  List.iter
    (fun (r : Trex_obs.Journal.record) ->
      record t ~id:r.Trex_obs.Journal.digest ~sids:r.Trex_obs.Journal.sids
        ~terms:r.Trex_obs.Journal.terms
        ~k:(max 1 r.Trex_obs.Journal.k))
    records;
  List.length records

let observations t = t.total

let observed_frequencies t =
  if t.total = 0 then []
  else
    Hashtbl.fold
      (fun id o acc -> (id, float_of_int o.count /. float_of_int t.total) :: acc)
      t.seen []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let current_plan t = t.plan

(* Total-variation distance between two frequency maps. *)
let drift old_freqs new_freqs =
  let ids =
    List.sort_uniq String.compare (List.map fst old_freqs @ List.map fst new_freqs)
  in
  let get l id = Option.value ~default:0.0 (List.assoc_opt id l) in
  List.fold_left
    (fun acc id -> acc +. Float.abs (get old_freqs id -. get new_freqs id))
    0.0 ids
  /. 2.0

type verdict =
  | Too_few_observations of int
  | No_drift of float
  | Replanned of { plan : Advisor.plan; drift : float }

let observed_workload t =
  Workload.create
    (List.map
       (fun (id, frequency) ->
         let o = Hashtbl.find t.seen id in
         { Workload.id; sids = o.sids; terms = o.terms; k = o.k; frequency })
       (observed_frequencies t))

let maybe_replan t =
  if t.total < t.min_observations then Too_few_observations t.total
  else begin
    let freqs = observed_frequencies t in
    let d = drift t.planned_freqs freqs in
    if t.plan <> None && d < t.drift_threshold then No_drift d
    else begin
      let workload = observed_workload t in
      let profiles =
        List.map
          (fun q -> Cost.measure t.index ~scoring:t.scoring ~runs:1 q)
          (Workload.queries workload)
      in
      let plan = Advisor.greedy ~budget:t.budget profiles in
      (* Start from a clean slate so the budget holds over successive
         replans, then materialize only what the plan selected. The
         drop + rebuild spans all four pair tables, so it runs as one
         manifest op with the pair tables as rollback: a crash anywhere
         inside quarantines them (they are rebuildable) rather than
         leaving half the old plan interleaved with half the new. *)
      let env = Index.env t.index in
      let op_tables =
        [ Rpl.table_name Rpl.Rpl; Rpl.catalog_name Rpl.Rpl;
          Rpl.table_name Rpl.Erpl; Rpl.catalog_name Rpl.Erpl ]
      in
      let o =
        Env.begin_op env ~op:"autopilot_replan" ~tables:op_tables
          ~rollback:op_tables ()
      in
      (try
         Rpl.drop_all t.index Rpl.Rpl;
         Rpl.drop_all t.index Rpl.Erpl;
         Advisor.apply t.index ~scoring:t.scoring ~workload ~profiles plan;
         Env.commit_op env o
       with
      | Trex_storage.Pager.Injected_crash _ as e -> raise e
      | e ->
          Env.abort_op env o ~note:(Printexc.to_string e);
          raise e);
      t.plan <- Some plan;
      t.planned_freqs <- freqs;
      Replanned { plan; drift = d }
    end
  end

(* {2 Healing}

   The redundant tables come in (lists, catalog) pairs; quarantining one
   without the other would leave a catalog advertising lists that no
   longer exist — cursors would silently serve empty results, which is
   wrong, not degraded. So a trip on either member condemns the pair. *)
let quarantine_group name =
  let pair kind = [ Rpl.table_name kind; Rpl.catalog_name kind ] in
  let full_pair = [ Rpl.Full.table_name; Rpl.Full.catalog_name ] in
  if List.mem name (pair Rpl.Rpl) then Some (pair Rpl.Rpl, Some Rpl.Rpl)
  else if List.mem name (pair Rpl.Erpl) then Some (pair Rpl.Erpl, Some Rpl.Erpl)
  else if List.mem name full_pair then Some (full_pair, None)
  else None

type heal_action =
  | Cooling_down  (** breaker open, cooldown not yet elapsed *)
  | Rebuilt of { tables : string list; entries_written : int }
  | Probe_ok  (** non-redundant table verified clean; breaker closed *)
  | Still_failing of string

type heal = { table : string; action : heal_action }

let rebuild_from_workload t kind =
  Hashtbl.fold
    (fun _ (o : observed) acc ->
      let report =
        Rpl.build t.index ~scoring:t.scoring ~sids:o.sids ~terms:o.terms
          ~kinds:[ kind ] ()
      in
      acc + report.Rpl.entries_written)
    t.seen 0

let heal_one t env name b =
  if not (Breaker.allow b) then { table = name; action = Cooling_down }
  else
    (* [allow] admitted us as the half-open probe for this table. *)
    match quarantine_group name with
    | Some (tables, rebuild_kind) -> (
        (* The quarantine + rebuild is one manifest op with the pair as
           rollback: an interruption (including an injected crash during
           the rebuild) either stays pending for recovery to quarantine,
           or — on an in-process failure — is aborted here, leaving the
           pair empty-quarantined rather than half-rebuilt. Either way
           the breakers stay open and the next [maybe_heal] retries. *)
        let o = Env.begin_op env ~op:"heal" ~tables ~rollback:tables () in
        match
          List.iter (Env.quarantine_table env) tables;
          let entries_written =
            match rebuild_kind with
            | Some kind -> rebuild_from_workload t kind
            | None -> 0 (* full-term RPLs rebuild on the next materialize *)
          in
          let probes = List.map (Env.verify_table env) tables in
          (entries_written, List.filter (fun r -> not r.Env.ok) probes)
        with
        | entries_written, [] ->
            Env.commit_op env o;
            Metrics.incr m_rebuilds;
            List.iter (fun tbl -> Breaker.record_success (Env.breaker env tbl)) tables;
            { table = name; action = Rebuilt { tables; entries_written } }
        | _, bad :: _ ->
            let reason = String.concat "; " bad.Env.problems in
            Env.abort_op env o ~note:reason;
            List.iter
              (fun tbl -> Breaker.record_failure (Env.breaker env tbl) ~reason)
              tables;
            { table = name; action = Still_failing reason }
        | exception e ->
            let reason = Printexc.to_string e in
            Env.abort_op env o ~note:reason;
            List.iter
              (fun tbl -> Breaker.record_failure (Env.breaker env tbl) ~reason)
              tables;
            { table = name; action = Still_failing reason })
    | None -> (
        (* Base tables have no redundant substitute: probe in place. *)
        match Env.verify_table env name with
        | { Env.ok = true; _ } ->
            Breaker.record_success b;
            { table = name; action = Probe_ok }
        | report ->
            let reason = String.concat "; " report.Env.problems in
            Breaker.record_failure b ~reason;
            { table = name; action = Still_failing reason }
        | exception e ->
            let reason = Printexc.to_string e in
            Breaker.record_failure b ~reason;
            { table = name; action = Still_failing reason })

let maybe_heal t =
  let env = Index.env t.index in
  let tripped =
    List.filter_map
      (fun (name, state) ->
        if state = Breaker.Closed then None else Some name)
      (Env.breaker_states env)
  in
  (* A pair member healed earlier in the pass closes its partner's
     breaker too; re-check state so we don't heal the same pair twice. *)
  List.filter_map
    (fun name ->
      let b = Env.breaker env name in
      if Breaker.state b = Breaker.Closed then None
      else Some (heal_one t env name b))
    tripped

let pp_heal fmt { table; action } =
  match action with
  | Cooling_down -> Format.fprintf fmt "%s: cooling down" table
  | Rebuilt { tables; entries_written } ->
      Format.fprintf fmt "%s: quarantined and rebuilt [%s], %d entries" table
        (String.concat " " tables) entries_written
  | Probe_ok -> Format.fprintf fmt "%s: probe verified clean, breaker closed" table
  | Still_failing reason -> Format.fprintf fmt "%s: still failing (%s)" table reason

let pp_verdict fmt = function
  | Too_few_observations n -> Format.fprintf fmt "too few observations (%d)" n
  | No_drift d -> Format.fprintf fmt "no drift (%.3f)" d
  | Replanned { plan; drift } ->
      Format.fprintf fmt "replanned at drift %.3f: %d bytes, %.2f ms saving" drift
        plan.Advisor.bytes_used
        (plan.Advisor.expected_saving *. 1e3)
