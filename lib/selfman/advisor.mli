(** Index-selection under a disk budget (paper §4).

    For each workload query, decide whether to materialize the ERPLs it
    needs (so Merge can run), the RPLs (so TA can run), or neither —
    maximizing the frequency-weighted time saving over ERA subject to
    the total bytes of the {e union} of chosen lists (queries share
    lists) staying within the budget.

    Two solvers, as in the paper: an exact 0/1 branch-and-bound (the
    boolean linear program of §4.1) and the greedy gain-cost-ratio
    2-approximation of §4.2. *)

type choice =
  | No_index
  | Use_erpl  (** materialize the query's ERPLs, block-compressed *)
  | Use_rpl  (** materialize the query's RPLs, block-compressed *)
  | Use_erpl_raw  (** same lists in the raw (v1) layout *)
  | Use_rpl_raw
      (** Storage layout is one more 0/1 decision: both layouts serve
          identical answers, so raw variants carry the same saving at
          the raw price ([Cost.profile.rpl_lists_raw]) and win only
          when raw is genuinely no larger. A list shared between
          queries keeps the layout of whichever query materialized it
          first (as with [rpl_prefix]). *)

type plan = {
  decisions : (string * choice) list;  (** per query id, workload order *)
  bytes_used : int;  (** size of the union of selected lists *)
  expected_saving : float;  (** Σ f_i · Δ(Q_i) over supported queries *)
}

val choice_to_string : choice -> string

val layout_of_choice : choice -> Trex_topk.Rpl.layout option
(** The storage layout a choice materializes with; [None] for
    {!No_index}. *)

val greedy : budget:int -> Cost.profile list -> plan
(** Iteratively add the query option with the best ratio of
    frequency-weighted saving to {e incremental} bytes (lists already
    chosen are free), until nothing fits. 2-approximation
    (Theorem 4.2). *)

val branch_and_bound : budget:int -> Cost.profile list -> plan
(** Exact optimum. Exponential in the number of queries — intended for
    small workloads, as the paper prescribes for the LP route. *)

val plan_bytes : Cost.profile list -> (string * choice) list -> int
(** Bytes of the union of the lists implied by the decisions. *)

val plan_saving : Cost.profile list -> (string * choice) list -> float

val apply :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  workload:Workload.t ->
  ?profiles:Cost.profile list ->
  plan ->
  unit
(** Materialize the lists the plan selects (building via ERA), leaving
    everything else untouched. When [profiles] are supplied, RPL
    choices honour each profile's [rpl_prefix] (prefix-truncated lists,
    the paper's S_RPL); note that a list shared between queries keeps
    the depth of whichever query materialized it first. *)
