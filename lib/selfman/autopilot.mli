(** Closed-loop self-management.

    The paper assumes "a set of typical queries that are frequently
    being posed to the system" is given as a workload; this module
    closes the loop: it {e observes} executed queries, derives the
    workload from their empirical frequencies, and re-plans (and
    re-materializes) the redundant indexes when the observed mix has
    drifted from the one the current plan was built for.

    Replanning measures query costs, which temporarily materializes the
    workload's lists; the applied plan then respects the budget (old
    lists are dropped first). *)

type t

val create :
  Trex_invindex.Index.t ->
  scoring:Trex_scoring.Scorer.config ->
  budget:int ->
  ?min_observations:int ->
  ?drift_threshold:float ->
  unit ->
  t
(** [min_observations] (default 20): executions to collect before the
    first plan. [drift_threshold] (default 0.25): half the L1 distance
    between the frequency vector the current plan was built for and the
    current one (total-variation distance, in [0,1]) that triggers
    replanning. *)

val record :
  t -> id:string -> sids:int list -> terms:string list -> k:int -> unit
(** Note one executed query. [id] identifies the query template (e.g.
    the NEXI text); [sids]/[terms]/[k] are remembered from the latest
    execution. *)

val absorb_journal : t -> Trex_obs.Journal.record list -> int
(** {!record} every journal entry (id = digest, shape from the entry,
    [k] clamped to at least 1) and return how many were absorbed — the
    bridge from persisted telemetry to drift detection: replay the
    env's journal into a fresh autopilot and {!maybe_replan} plans for
    the workload the system {e actually} served. *)

val observations : t -> int
val observed_frequencies : t -> (string * float) list
(** Sorted by id; empty before any {!record}. *)

val current_plan : t -> Advisor.plan option

type verdict =
  | Too_few_observations of int  (** have, need [min_observations] *)
  | No_drift of float  (** measured distance below the threshold *)
  | Replanned of { plan : Advisor.plan; drift : float }

val maybe_replan : t -> verdict
(** Check drift and, when warranted, measure the observed workload,
    solve (greedy) under the budget, drop every previously materialized
    RPL/ERPL list and apply the new plan. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Healing}

    The other half of the closed loop: when a query trips a table's
    circuit breaker (corruption, retry exhaustion — see
    [Trex_storage.Env]), the autopilot schedules the repair. Redundant
    tables (RPL/ERPL lists and their catalogs) are quarantined as
    (lists, catalog) pairs — dropping one without the other would leave
    a catalog advertising lists that don't exist, i.e. silent wrong
    answers — then rebuilt from the observed workload. Base tables have
    no substitute, so they are only probed in place. *)

type heal_action =
  | Cooling_down  (** breaker open, cooldown not yet elapsed *)
  | Rebuilt of { tables : string list; entries_written : int }
      (** pair quarantined, lists rebuilt from the observed workload,
          probe verified clean; breakers closed. Bumps
          ["resilience.rebuilds"]. *)
  | Probe_ok  (** non-redundant table verified clean; breaker closed *)
  | Still_failing of string  (** probe or rebuild failed; breaker re-opened *)

type heal = { table : string; action : heal_action }

val maybe_heal : t -> heal list
(** Visit every non-Closed breaker in the engine's environment. A
    breaker still inside its cooldown reports {!Cooling_down}; once
    [Breaker.allow] admits the probe, redundant pairs are quarantined,
    rebuilt and re-verified, base tables just re-verified, and the
    breakers closed or re-opened accordingly. Idempotent when all
    breakers are closed (returns [[]]). *)

val pp_heal : Format.formatter -> heal -> unit
