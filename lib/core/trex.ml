module Env = Trex_storage.Env
module Summary = Trex_summary.Summary
module Alias = Trex_summary.Alias
module Pattern = Trex_summary.Pattern
module Index = Trex_invindex.Index
module Types = Trex_invindex.Types
module Scorer = Trex_scoring.Scorer
module Ast = Trex_nexi.Ast
module Nexi_parser = Trex_nexi.Parser
module Translate = Trex_nexi.Translate
module Answer = Trex_topk.Answer
module Era = Trex_topk.Era
module Ta = Trex_topk.Ta
module Merge = Trex_topk.Merge
module Rpl = Trex_topk.Rpl
module Strategy = Trex_topk.Strategy
module Workload = Trex_selfman.Workload
module Cost = Trex_selfman.Cost
module Advisor = Trex_selfman.Advisor
module Autopilot = Trex_selfman.Autopilot
module Obs = Trex_obs
module Guard = Trex_resilience.Guard
module Retry = Trex_resilience.Retry
module Breaker = Trex_resilience.Breaker

type t = { index : Index.t; scoring : Scorer.config }

let build ~env ?(summary_criterion = Summary.Incoming) ?(alias = Alias.identity)
    ?analyzer ?compress ?(scoring = Scorer.default) docs =
  let summary = Summary.create ~alias summary_criterion in
  let index = Index.build ~env ~summary ?analyzer ?compress docs in
  { index; scoring }

let attach ~env ?(verify = false) ?(scoring = Scorer.default) () =
  if verify then begin
    let bad = List.filter (fun (r : Env.table_report) -> not r.ok) (Env.verify env) in
    match bad with
    | [] -> ()
    | r :: _ ->
        raise
          (Trex_storage.Pager.Corruption
             {
               path = r.table;
               page = -1;
               detail =
                 Printf.sprintf "table %s failed verification: %s" r.table
                   (String.concat "; " r.problems);
             })
  end;
  { index = Index.attach env; scoring }

let verify_storage ~env = Env.verify env

let index t = t.index
let summary t = Index.summary t.index
let scoring t = t.scoring

(* ---- evaluation ---- *)

let parse _t nexi = Nexi_parser.parse nexi

let translate t query =
  Translate.translate ~summary:(summary t)
    ~normalize:(Index.normalize_term t.index)
    query

type outcome = {
  translation : Translate.t;
  strategy : Strategy.outcome;
  k : int;
  degraded : bool;
  fallbacks : Strategy.failover list;
}

let mk_guard ?deadline_ms ?page_budget () =
  match (deadline_ms, page_budget) with
  | None, None -> None
  | _ -> Some (Guard.create ?deadline_ms ?page_budget ())

let query t ?(k = 10) ?method_ ?(strict = false) ?deadline_ms ?page_budget nexi =
  Obs.Span.with_ ~name:"query" @@ fun () ->
  (* The journal label makes records carry the NEXI text the caller
     actually posed (and digest by it), not just the translated
     (sids, terms) shape. *)
  Obs.Journal.set_label (Some nexi);
  Fun.protect ~finally:(fun () -> Obs.Journal.set_label None) @@ fun () ->
  let translation =
    Obs.Span.with_ ~name:"parse+translate" (fun () -> translate t (parse t nexi))
  in
  let sids = Translate.all_sids translation in
  let terms = Translate.all_terms translation in
  let guard = mk_guard ?deadline_ms ?page_budget () in
  let strategy, fallbacks =
    Strategy.evaluate_resilient t.index ~scoring:t.scoring ~sids ~terms ~k
      ?guard ?method_ ()
  in
  let strategy =
    if not strict then strategy
    else begin
      let target = translation.Translate.target_sids in
      let answers =
        List.filter
          (fun (e : Answer.entry) -> List.mem e.element.Types.sid target)
          strategy.Strategy.answers
      in
      { strategy with Strategy.answers }
    end
  in
  (* ERA and Merge compute all answers; present a consistent top-k. *)
  let strategy = { strategy with Strategy.answers = Answer.top_k strategy.Strategy.answers k } in
  { translation; strategy; k; degraded = strategy.Strategy.degraded; fallbacks }

(* Unique extent element of [sid] containing [inner], if any: extents
   are nesting-free, so at most one candidate exists and a single B+tree
   seek finds it. *)
let containing_element index sid (inner : Types.element) =
  let it = Index.Element_iter.create index sid in
  let candidate =
    Index.Element_iter.next_element_after it
      { Types.docid = inner.docid; offset = Types.start_pos inner }
  in
  if
    (not (Types.is_dummy candidate))
    && candidate.Types.docid = inner.docid
    && Types.start_pos candidate <= Types.start_pos inner
    && inner.endpos <= candidate.Types.endpos
  then Some candidate
  else None

(* Does the element's text contain the normalized [phrase] as adjacent
   tokens? The element source span is re-parsed so tag names never count
   as tokens. *)
let element_has_phrase t (e : Types.element) phrase =
  match Index.element_text t.index e with
  | None -> false
  | Some fragment -> (
      match Trex_xml.Dom.parse fragment with
      | exception Trex_xml.Sax.Malformed _ -> false
      | doc ->
          let tokens =
            Trex_text.Analyzer.terms (Index.analyzer t.index)
              (Trex_xml.Dom.text_content doc.root)
          in
          let phrase = Array.of_list phrase in
          let m = Array.length phrase in
          let tokens = Array.of_list tokens in
          let n = Array.length tokens in
          let rec scan i =
            if i + m > n then false
            else begin
              let rec matches j = j >= m || (tokens.(i + j) = phrase.(j) && matches (j + 1)) in
              matches 0 || scan (i + 1)
            end
          in
          m > 0 && scan 0)

let query_structured t ?(k = 10) ?deadline_ms ?page_budget nexi =
  Obs.Span.with_ ~name:"query_structured" @@ fun () ->
  Obs.Journal.set_label (Some nexi);
  Fun.protect ~finally:(fun () -> Obs.Journal.set_label None) @@ fun () ->
  (* The structured evaluator drives ERA directly, bypassing Strategy's
     journaling hook, so it writes its own record under the synthetic
     strategy name "structured". *)
  let journal_started =
    if Obs.Journal.enabled () then Some (Obs.Journal.start_query ()) else None
  in
  let translation = translate t (parse t nexi) in
  let guard = mk_guard ?deadline_ms ?page_budget () in
  let degraded = ref false in
  let target_sids = translation.Translate.target_sids in
  let candidates : (int * int, Types.element * float) Hashtbl.t = Hashtbl.create 64 in
  let add (e : Types.element) score =
    let key = (e.docid, e.endpos) in
    match Hashtbl.find_opt candidates key with
    | Some (e0, s0) -> Hashtbl.replace candidates key (e0, s0 +. score)
    | None -> Hashtbl.add candidates key (e, score)
  in
  let clock = Trex_util.Stopclock.create () in
  let total_entries = ref 0 in
  List.iter
    (fun (u : Translate.unit_) ->
      if u.terms <> [] && u.sids <> [] then begin
        let results, stats = Era.run ?guard t.index ~sids:u.sids ~terms:u.terms in
        total_entries := !total_entries + stats.Era.positions_scanned;
        if stats.Era.degraded then degraded := true;
        (* +keywords are conjunctive: every required term must occur. *)
        let results =
          if u.required_terms = [] then results
          else begin
            let required_idx =
              List.mapi (fun i term -> (term, i)) u.terms
              |> List.filter (fun (term, _) -> List.mem term u.required_terms)
              |> List.map snd
            in
            List.filter
              (fun (r : Era.result) -> List.for_all (fun i -> r.tf.(i) > 0) required_idx)
              results
          end
        in
        let answers = Era.score_results t.index ~scoring:t.scoring ~terms:u.terms results in
        (* -keywords exclude: drop unit hits containing an excluded term. *)
        let answers =
          if u.excluded_terms = [] then answers
          else begin
            (* Exclusion lists must be complete — an abbreviated banned
               set would let excluded elements through, which is wrong,
               not degraded. They run unguarded. *)
            let excluded, _ = Era.run t.index ~sids:u.sids ~terms:u.excluded_terms in
            let banned = Hashtbl.create 16 in
            List.iter
              (fun (r : Era.result) ->
                Hashtbl.replace banned
                  (r.element.Types.docid, r.element.Types.endpos)
                  ())
              excluded;
            List.filter
              (fun (e : Answer.entry) ->
                not (Hashtbl.mem banned (e.element.Types.docid, e.element.Types.endpos)))
              answers
          end
        in
        (* Quoted phrases must occur verbatim (adjacent tokens). *)
        let answers =
          if u.phrases = [] then answers
          else
            List.filter
              (fun (e : Answer.entry) ->
                List.for_all (fun p -> element_has_phrase t e.element p) u.phrases)
              answers
        in
        let on_target = u.pattern = translation.Translate.target_pattern in
        List.iter
          (fun (entry : Answer.entry) ->
            if on_target then add entry.element entry.score
            else
              (* Support path: flow the score up to the enclosing
                 element(s) of the target extent. *)
              List.iter
                (fun sid ->
                  match containing_element t.index sid entry.element with
                  | Some ancestor -> add ancestor entry.score
                  | None ->
                      (* The support element may itself lie in the
                         target extent (e.g. //sec[about(.//sec, ...)]
                         degenerate cases). *)
                      if entry.element.Types.sid = sid then
                        add entry.element entry.score)
                target_sids)
          answers
      end)
    translation.Translate.units;
  let answers =
    Hashtbl.fold (fun _ (e, s) acc -> (e, s) :: acc) candidates []
    |> Answer.of_unsorted
  in
  (if !degraded then
     let m = Obs.Metrics.counter "resilience.degraded_runs" in
     Obs.Metrics.incr m);
  let strategy =
    {
      Strategy.method_used = Strategy.Era_method;
      answers = Answer.top_k answers k;
      elapsed_seconds = Trex_util.Stopclock.elapsed clock;
      entries_read = !total_entries;
      degraded = !degraded;
      detail = Printf.sprintf "structured: %d units" (List.length translation.Translate.units);
    }
  in
  (match journal_started with
  | None -> ()
  | Some started ->
      ignore
        (Obs.Journal.finish_query
           (Env.journal (Index.env t.index))
           started ~strategy:"structured"
           ~sids:(Translate.all_sids translation)
           ~terms:(Translate.all_terms translation)
           ~k ~degraded:!degraded ()));
  { translation; strategy; k; degraded = !degraded; fallbacks = [] }

(* ---- index management ---- *)

let add_document t ~name ~xml =
  (* Invalidate every materialized list whose term occurs in the new
     document; the catalogs make affected (term, sid) pairs cheap to
     find. The drops become the leading steps of the document's
     redo-logged manifest operation, so they land atomically with the
     base-table writes — a crash can never leave the document visible
     with stale lists still servable, or vice versa. *)
  let invalidation terms =
    let term_set = Hashtbl.create 16 in
    List.iter (fun term -> Hashtbl.replace term_set term ()) terms;
    let pair_drops =
      List.concat_map
        (fun kind ->
          List.concat_map
            (fun (term, sid, _, _) ->
              if Hashtbl.mem term_set term then Rpl.drop_actions kind ~term ~sid
              else [])
            (Rpl.catalog t.index kind))
        [ Rpl.Rpl; Rpl.Erpl ]
    in
    let full_drops =
      List.concat_map
        (fun term ->
          if Rpl.Full.is_materialized t.index ~term then
            Rpl.Full.drop_actions ~term
          else [])
        terms
    in
    pair_drops @ full_drops
  in
  let docid, _terms = Index.add_document t.index ~invalidation ~name ~xml in
  docid

let materialize t ?(kinds = [ Rpl.Rpl; Rpl.Erpl ]) ?rpl_prefix nexi =
  Obs.Span.with_ ~name:"materialize" @@ fun () ->
  let translation = translate t (parse t nexi) in
  Rpl.build t.index ~scoring:t.scoring
    ~sids:(Translate.all_sids translation)
    ~terms:(Translate.all_terms translation)
    ~kinds ?rpl_prefix ()

let advise t ~workload ~budget ?(optimal = false) ?(runs = 3) ?(prefix_rpls = false)
    () =
  let profiles =
    List.map
      (fun q -> Cost.measure t.index ~scoring:t.scoring ~runs ~prefix_rpls q)
      (Workload.queries workload)
  in
  let plan =
    if optimal then Advisor.branch_and_bound ~budget profiles
    else Advisor.greedy ~budget profiles
  in
  (plan, profiles)

let vacuum t =
  (* Dropping lists leaves dead pages behind (B+trees never shrink);
     compaction rebuilds the redundant-index tables at their live size
     so the disk budget the advisor reasons about is what the disk
     actually uses. Each compaction is individually atomic (temp file +
     rename); the surrounding manifest op records the multi-table pass
     so an interruption is visible at recovery. Nothing needs rolling
     back — every table is either the old or the new file. *)
  let env = Index.env t.index in
  let present =
    List.filter (Env.has_table env)
      [ "rpls"; "erpls"; "rpl_catalog"; "erpl_catalog"; "rpls_full"; "rpl_full_catalog" ]
  in
  if present <> [] then begin
    let o = Env.begin_op env ~op:"vacuum" ~tables:present () in
    try
      List.iter (Env.compact_table env) present;
      Env.commit_op env o
    with
    | Trex_storage.Pager.Injected_crash _ as e -> raise e
    | e ->
        Env.abort_op env o ~note:(Printexc.to_string e);
        raise e
  end

(* ---- inspection ---- *)

type table_sizes = {
  elements_bytes : int;
  postings_bytes : int;
  rpls_bytes : int;
  erpls_bytes : int;
}

let table_sizes t =
  {
    elements_bytes = Index.elements_bytes t.index;
    postings_bytes = Index.postings_bytes t.index;
    rpls_bytes = Env.table_bytes (Index.env t.index) "rpls";
    erpls_bytes = Env.table_bytes (Index.env t.index) "erpls";
  }

type hit = {
  rank : int;
  score : float;
  element : Types.element;
  doc_name : string;
  xpath : string;
  snippet : string;
}

(* Strip tags and squeeze whitespace out of an XML fragment for a
   one-line snippet. *)
let snippet_of_fragment fragment =
  let b = Buffer.create 120 in
  let in_tag = ref false in
  let last_space = ref true in
  String.iter
    (fun c ->
      if Buffer.length b < 100 then
        match c with
        | '<' -> in_tag := true
        | '>' -> in_tag := false
        | ' ' | '\t' | '\n' | '\r' ->
            if (not !in_tag) && not !last_space then begin
              Buffer.add_char b ' ';
              last_space := true
            end
        | c ->
            if not !in_tag then begin
              Buffer.add_char b c;
              last_space := false
            end)
    fragment;
  let s = Buffer.contents b in
  if String.length s >= 100 then s ^ "..." else s

let hits t ?(limit = max_int) answers =
  let limited = if limit = max_int then answers else Answer.top_k answers limit in
  List.mapi
    (fun i (entry : Answer.entry) ->
      let e = entry.element in
      let doc_name =
        match Index.document t.index e.Types.docid with
        | Some row -> row.Trex_invindex.Tables.Documents.name
        | None -> Printf.sprintf "doc-%d" e.Types.docid
      in
      let xpath =
        if e.Types.sid > 0 then Summary.xpath_of_sid (summary t) e.Types.sid
        else "?"
      in
      let snippet =
        match Index.element_text t.index e with
        | Some fragment -> snippet_of_fragment fragment
        | None -> ""
      in
      { rank = i + 1; score = entry.score; element = e; doc_name; xpath; snippet })
    limited
