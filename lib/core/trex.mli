(** TReX — an XML retrieval engine with self-managing top-k (summary,
    keyword) indexes.

    This is the system façade: build or attach an engine over a storage
    environment, then parse, translate and evaluate NEXI queries with
    any of the retrieval strategies (ERA / TA / ITA / Merge), manage the
    redundant RPL/ERPL indexes by hand or through the workload-driven
    advisor, and inspect sizes and statistics.

    {[
      let coll = Trex_corpus.Gen.ieee ~doc_count:100 () in
      let env = Trex_storage.Env.in_memory () in
      let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
      let outcome = Trex.query engine ~k:10 "//article//sec[about(., information retrieval)]" in
      List.iter
        (fun (h : Trex.hit) -> print_endline h.snippet)
        (Trex.hits engine outcome.strategy.answers)
    ]} *)

module Env = Trex_storage.Env
module Summary = Trex_summary.Summary
module Alias = Trex_summary.Alias
module Pattern = Trex_summary.Pattern
module Index = Trex_invindex.Index
module Types = Trex_invindex.Types
module Scorer = Trex_scoring.Scorer
module Ast = Trex_nexi.Ast
module Nexi_parser = Trex_nexi.Parser
module Translate = Trex_nexi.Translate
module Answer = Trex_topk.Answer
module Era = Trex_topk.Era
module Ta = Trex_topk.Ta
module Merge = Trex_topk.Merge
module Rpl = Trex_topk.Rpl
module Strategy = Trex_topk.Strategy
module Workload = Trex_selfman.Workload
module Cost = Trex_selfman.Cost
module Advisor = Trex_selfman.Advisor
module Autopilot = Trex_selfman.Autopilot

module Obs = Trex_obs
(** Observability: process-wide metrics registry ({!Trex_obs.Metrics})
    and query-span tracing ({!Trex_obs.Span}). [query] /
    [query_structured] / [materialize] run under spans when tracing is
    enabled with [Obs.Span.set_enabled true]. *)

module Guard = Trex_resilience.Guard
module Retry = Trex_resilience.Retry
module Breaker = Trex_resilience.Breaker
(** Resilience: query deadlines/page budgets ({!Guard}), transient-I/O
    retry ({!Retry}) and the per-table circuit breakers ({!Breaker},
    managed by {!Env}) behind {!query}'s degradation and fallback
    behavior. The contract is DESIGN.md §6: never wrong, possibly
    partial, always tagged. *)

type t

val build :
  env:Env.t ->
  ?summary_criterion:Summary.criterion ->
  ?alias:Alias.t ->
  ?analyzer:Trex_text.Analyzer.config ->
  ?compress:bool ->
  ?scoring:Scorer.config ->
  (string * string) Seq.t ->
  t
(** Index a collection of (name, xml) documents. Defaults: alias
    incoming summary, default analyzer, BM25 scoring, block-compressed
    posting storage ([compress], default [true]; pass [false] for the
    v1 fixed-width chunk layout — answers are identical either way, see
    DESIGN.md §8). *)

val attach : env:Env.t -> ?verify:bool -> ?scoring:Scorer.config -> unit -> t
(** Re-open a previously built engine. With [~verify:true] every storage
    table is checksum-swept and structurally verified first.
    @raise Trex_storage.Pager.Corruption if verification finds damage —
    the engine is never attached over corrupt tables silently. *)

val verify_storage : env:Env.t -> Env.table_report list
(** Per-table checksum sweep + B+tree structural verification (see
    {!Env.verify}); read-only, safe on a live engine. *)

val index : t -> Index.t
val summary : t -> Summary.t
val scoring : t -> Scorer.config

(** {1 Query evaluation} *)

val parse : t -> string -> Ast.query
(** @raise Trex_nexi.Parser.Syntax_error *)

val translate : t -> Ast.query -> Translate.t

type outcome = {
  translation : Translate.t;
  strategy : Strategy.outcome;
  k : int;
  degraded : bool;
      (** a guard expired mid-run: [strategy.answers] is a sound but
          possibly-partial best-effort prefix *)
  fallbacks : Strategy.failover list;
      (** methods abandoned after storage failures on this query *)
}

val query :
  t ->
  ?k:int ->
  ?method_:Strategy.method_ ->
  ?strict:bool ->
  ?deadline_ms:float ->
  ?page_budget:int ->
  string ->
  outcome
(** Parse, translate and evaluate a NEXI query over the union of its
    (sids, terms) — the paper's retrieval unit. [k] defaults to 10; the
    method defaults to {!Strategy.choose}'s pick. With [strict:true]
    answers are filtered to the target extent (the structural path must
    hold exactly); the default vague interpretation accepts any sid of
    the translation.

    Resilience: [deadline_ms]/[page_budget] arm a {!Guard}; on expiry
    the run stops where it is and returns best-effort answers with
    [degraded = true] instead of raising. Storage failures
    ([Pager.Corruption], retry exhaustion) inside TA/ITA/Merge trip the
    affected tables' circuit breakers and the query transparently falls
    back to the next surviving method (recorded in [fallbacks]); only
    failures of the base tables — which have no redundant substitute —
    propagate.
    @raise Trex_nexi.Parser.Syntax_error on bad syntax. *)

val query_structured :
  t -> ?k:int -> ?deadline_ms:float -> ?page_budget:int -> string -> outcome
(** Full NEXI semantics: each [about()] path is retrieved separately,
    support paths contribute the score of the enclosing ancestor
    element, [-terms] exclude, and answers come from the target extent.
    Evaluated with ERA (no materialized indexes needed). The guard
    flags apply per [about()] scan; exclusion scans run unguarded (an
    incomplete exclusion list would be wrong, not partial). *)

(** {1 Index management} *)

val add_document : t -> name:string -> xml:string -> int
(** Index one more document and {e self-manage} the redundant indexes:
    every RPL/ERPL (and full-term RPL) list of a term occurring in the
    new document is dropped, so stale lists can never serve queries;
    they rebuild on the next {!materialize}. Returns the docid.
    @raise Trex_xml.Sax.Malformed on invalid XML. *)

val materialize :
  t -> ?kinds:Rpl.kind list -> ?rpl_prefix:int -> string -> Rpl.build_report
(** Build the RPL and/or ERPL lists (default both) needed by the given
    NEXI query, enabling TA and Merge on it. [rpl_prefix] stores only
    each RPL's best-scoring prefix (paper §4's space optimization);
    see [Rpl.build]. *)

val advise :
  t ->
  workload:Workload.t ->
  budget:int ->
  ?optimal:bool ->
  ?runs:int ->
  ?prefix_rpls:bool ->
  unit ->
  Advisor.plan * Cost.profile list
(** Measure every workload query (temporarily materializing its lists),
    then plan index selection under [budget] bytes with the greedy
    2-approximation (or branch-and-bound when [optimal]). With
    [prefix_rpls], TA's space cost is the paper's S_RPL: only the
    certified top-k prefix of each list. The plan is not applied; see
    {!Advisor.apply}. *)

val vacuum : t -> unit
(** Compact the redundant-index tables (RPLs, ERPLs and their
    catalogs), reclaiming the space of dropped lists so
    {!table_sizes} reflects live data — B+trees never shrink in
    place. Safe to call any time no cursors are open. *)

(** {1 Inspection} *)

type table_sizes = {
  elements_bytes : int;
  postings_bytes : int;
  rpls_bytes : int;
  erpls_bytes : int;
}

val table_sizes : t -> table_sizes

type hit = {
  rank : int;
  score : float;
  element : Types.element;
  doc_name : string;
  xpath : string;  (** the extent's label path *)
  snippet : string;
}

val hits : t -> ?limit:int -> Answer.t -> hit list
(** Decorate raw answers for display (doc names from the Documents
    table, extent paths from the summary). *)
