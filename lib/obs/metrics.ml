type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Bucket i (i >= 1) holds values in (base * 2^(i-1), base * 2^i];
   bucket 0 holds everything at or below [base]. 64 buckets span 1e-9
   up past 9e9, covering any duration or size this engine observes. *)
let bucket_count = 64
let bucket_base = 1e-9

type histogram = {
  h_name : string;
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add counters_tbl name c;
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.add gauges_tbl name g;
      g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_n = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make bucket_count 0;
        }
      in
      Hashtbl.add histograms_tbl name h;
      h

let bucket_of v =
  if v <= bucket_base then 0
  else begin
    let i = 1 + int_of_float (Float.log2 (v /. bucket_base)) in
    if i < 1 then 1 else if i >= bucket_count then bucket_count - 1 else i
  end

let observe h v =
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let bucket_hi i = bucket_base *. Float.pow 2.0 (float_of_int i)

(* Representative value of bucket i: the geometric midpoint of its
   bounds, clamped to the observed range so single-bucket histograms
   report exact quantiles. *)
let bucket_mid h i =
  let mid =
    if i = 0 then bucket_base
    else sqrt (bucket_hi (i - 1) *. bucket_hi i)
  in
  Float.max h.h_min (Float.min h.h_max mid)

let quantile h q =
  if h.h_n = 0 then 0.0
  else if h.h_n = 1 then h.h_min (* the sample itself, not a bucket mid *)
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.h_n)) in
      if r < 1 then 1 else if r > h.h_n then h.h_n else r
    in
    let rec walk i seen =
      if i >= bucket_count then h.h_max
      else begin
        let seen = seen + h.h_buckets.(i) in
        if seen >= rank then bucket_mid h i else walk (i + 1) seen
      end
    in
    walk 0 0
  end

type histogram_snapshot = {
  n : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let histogram_snapshot h =
  if h.h_n = 0 then
    { n = 0; sum = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      n = h.h_n;
      sum = h.h_sum;
      min = h.h_min;
      max = h.h_max;
      p50 = quantile h 0.50;
      p95 = quantile h 0.95;
      p99 = quantile h 0.99;
    }

let sorted_fold tbl f =
  Hashtbl.fold (fun name v acc -> f name v :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () = sorted_fold counters_tbl (fun name c -> (name, c.c_value))
let gauges () = sorted_fold gauges_tbl (fun name g -> (name, g.g_value))

let histograms () =
  sorted_fold histograms_tbl (fun name h -> (name, histogram_snapshot h))

let counters_with_prefix prefix =
  List.filter
    (fun (name, _) -> String.starts_with ~prefix name)
    (counters ())

let counters_delta before after =
  let base = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace base name v) before;
  List.filter_map
    (fun (name, v) ->
      let d = v - Option.value ~default:0 (Hashtbl.find_opt base name) in
      if d = 0 then None else Some (name, d))
    after

let absorb_counters ?prefix deltas =
  List.iter
    (fun (name, d) ->
      add (counter name) d;
      match prefix with
      | Some p -> add (counter (p ^ name)) d
      | None -> ())
    deltas

(* Zero in place: handed-out handles must keep pointing at the cells
   the registry reads (the same invariant Counters.reset maintains). *)
let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters_tbl;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.h_n <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      Array.fill h.h_buckets 0 bucket_count 0)
    histograms_tbl

let to_json () =
  let counter_fields = List.map (fun (n, v) -> (n, Json.Int v)) (counters ()) in
  let gauge_fields = List.map (fun (n, v) -> (n, Json.Float v)) (gauges ()) in
  let histogram_fields =
    List.map
      (fun (n, s) ->
        ( n,
          Json.Obj
            [
              ("n", Json.Int s.n);
              ("sum", Json.Float s.sum);
              ("min", Json.Float s.min);
              ("max", Json.Float s.max);
              ("p50", Json.Float s.p50);
              ("p95", Json.Float s.p95);
              ("p99", Json.Float s.p99);
            ] ))
      (histograms ())
  in
  Json.Obj
    [
      ("counters", Json.Obj counter_fields);
      ("gauges", Json.Obj gauge_fields);
      ("histograms", Json.Obj histogram_fields);
    ]

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf fmt "%-36s %d@," n v) (counters ());
  List.iter (fun (n, v) -> Format.fprintf fmt "%-36s %g@," n v) (gauges ());
  List.iter
    (fun (n, s) ->
      Format.fprintf fmt "%-36s n=%d sum=%.6f p50=%.6f p95=%.6f p99=%.6f@," n
        s.n s.sum s.p50 s.p95 s.p99)
    (histograms ());
  Format.fprintf fmt "@]"
