(** Chrome trace-event (catapult) JSON export of span forests.

    The output loads directly in [chrome://tracing] or Perfetto: one
    complete-duration event (["ph": "X"]) per span, timestamps and
    durations in microseconds, span attributes as [args], plus a
    [process_name] metadata event per process. Each {!process} maps to
    a Chrome pid/tid pair; spans whose attributes carry [("pid", n)] —
    the supervisor stamps worker pids when it grafts harvested span
    trees — are re-homed to that pid together with their subtree, so a
    merged coordinator trace renders worker work on the worker's own
    track.

    Timestamps: all [Span.start_s] values come from the system-wide
    monotonic clock, so the minimum across the forest becomes the
    trace's t=0. Spans without a start ([start_s = 0.], e.g. decoded
    from a peer that predates start stamping) are laid out
    sequentially inside their parent — durations stay exact, only
    their placement is synthesized. *)

type process = {
  p_pid : int;
  p_name : string;  (** Display name for the pid's track. *)
  p_spans : Span.t list;
}

val chrome_trace : process list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] *)

val write : string -> process list -> unit
(** Write [chrome_trace] pretty-printed to a file. Raises [Sys_error]
    on I/O failure. *)
