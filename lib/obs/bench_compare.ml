type row_diff = {
  query : string;
  strategy : string;
  k : int;
  occurrence : int;
  base_ms : float;
  cur_ms : float;
  ratio : float;
}

type counter_diff = {
  c_query : string;
  c_strategy : string;
  c_k : int;
  c_occurrence : int;
  c_name : string;
  c_base : int;
  c_cur : int;
  c_ratio : float;
}

type report = {
  section : string;
  matched : int;
  compared : int;
  only_baseline : int;
  only_current : int;
  median_ratio : float;
  regressions : row_diff list;
  counter_regressions : counter_diff list;
  regressed : bool;
}

type row = {
  r_query : string;
  r_strategy : string;
  r_k : int;
  r_ms : float;
  r_counters : (string * int) list;
}

let ( let* ) = Result.bind

let field name doc =
  match Json.member name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing %S field" name)

(* Flatten a trex-bench-v1 document into rows in document order. *)
let rows_of doc =
  let* schema = field "schema" doc in
  let* () =
    match schema with
    | Json.String "trex-bench-v1" -> Ok ()
    | Json.String s -> Error (Printf.sprintf "unsupported schema %S" s)
    | _ -> Error "schema field is not a string"
  in
  let* section =
    match Json.member "section" doc with
    | Some (Json.String s) -> Ok s
    | _ -> Error "missing or non-string \"section\" field"
  in
  let* queries =
    match Json.member "queries" doc with
    | Some (Json.Obj fields) -> Ok fields
    | _ -> Error "missing or non-object \"queries\" field"
  in
  let rows =
    List.concat_map
      (fun (q, v) ->
        match v with
        | Json.List records ->
            List.filter_map
              (fun r ->
                let str k =
                  match Json.member k r with
                  | Some (Json.String s) -> Some s
                  | _ -> None
                in
                let num k =
                  match Json.member k r with
                  | Some (Json.Float f) -> Some f
                  | Some (Json.Int i) -> Some (float_of_int i)
                  | _ -> None
                in
                let counters =
                  match Json.member "counters" r with
                  | Some (Json.Obj fields) ->
                      List.filter_map
                        (fun (name, v) ->
                          match v with
                          | Json.Int i -> Some (name, i)
                          | Json.Float f -> Some (name, int_of_float f)
                          | _ -> None)
                        fields
                  | _ -> []
                in
                match (str "strategy", num "k", num "ms") with
                | Some strategy, Some kf, Some ms ->
                    Some
                      {
                        r_query = q;
                        r_strategy = strategy;
                        r_k = int_of_float kf;
                        r_ms = ms;
                        r_counters = counters;
                      }
                | _ -> None)
              records
        | _ -> [])
      queries
  in
  Ok (section, rows)

(* Key rows by (query, strategy, k, occurrence); occurrence numbers
   repeated identical keys in document order, so e.g. the io section's
   cache sweep (same query/strategy/k at five cache sizes) pairs up
   positionally. *)
let keyed rows =
  let seen = Hashtbl.create 64 in
  List.map
    (fun r ->
      let base = (r.r_query, r.r_strategy, r.r_k) in
      let occ =
        match Hashtbl.find_opt seen base with Some n -> n | None -> 0
      in
      Hashtbl.replace seen base (occ + 1);
      ((r.r_query, r.r_strategy, r.r_k, occ), r))
    rows

let median = function
  | [] -> 1.0
  | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let compare_docs ~threshold ?(min_ms = 0.05) ?(counters = []) base_doc cur_doc
    =
  let* base_section, base_rows = rows_of base_doc in
  let* cur_section, cur_rows = rows_of cur_doc in
  let* () =
    if base_section = cur_section then Ok ()
    else
      Error
        (Printf.sprintf "section mismatch: baseline %S vs current %S"
           base_section cur_section)
  in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (k, r) -> Hashtbl.replace base_tbl k r) (keyed base_rows);
  let matched = ref 0 and only_current = ref 0 in
  let ratios = ref [] and regressions = ref [] in
  let counter_regressions = ref [] in
  List.iter
    (fun ((key, cur) : _ * row) ->
      match Hashtbl.find_opt base_tbl key with
      | None -> incr only_current
      | Some base ->
          incr matched;
          Hashtbl.remove base_tbl key;
          (* Gated counters are exact, not timing noise: any growth past
             the threshold on a matched row regresses, and a gated
             counter present in the baseline but missing from the
             current run is reported too (as shrinking to 0 it passes,
             vanishing it must not go unnoticed — ratio infinity). *)
          List.iter
            (fun name ->
              match List.assoc_opt name base.r_counters with
              | None -> ()
              | Some b ->
                  let c =
                    match List.assoc_opt name cur.r_counters with
                    | Some c -> c
                    | None -> max_int
                  in
                  let ratio =
                    if b = 0 then if c = 0 then 1.0 else infinity
                    else if c = max_int then infinity
                    else float_of_int c /. float_of_int b
                  in
                  if ratio > 1.0 +. threshold then
                    let _, _, _, occ = key in
                    counter_regressions :=
                      {
                        c_query = cur.r_query;
                        c_strategy = cur.r_strategy;
                        c_k = cur.r_k;
                        c_occurrence = occ;
                        c_name = name;
                        c_base = b;
                        c_cur = (if c = max_int then 0 else c);
                        c_ratio = ratio;
                      }
                      :: !counter_regressions)
            counters;
          if base.r_ms >= min_ms then begin
            let ratio = cur.r_ms /. base.r_ms in
            ratios := ratio :: !ratios;
            if ratio > 1.0 +. threshold then
              let _, _, _, occ = key in
              regressions :=
                {
                  query = cur.r_query;
                  strategy = cur.r_strategy;
                  k = cur.r_k;
                  occurrence = occ;
                  base_ms = base.r_ms;
                  cur_ms = cur.r_ms;
                  ratio;
                }
                :: !regressions
          end)
    (keyed cur_rows);
  let median_ratio = median !ratios in
  Ok
    {
      section = base_section;
      matched = !matched;
      compared = List.length !ratios;
      only_baseline = Hashtbl.length base_tbl;
      only_current = !only_current;
      median_ratio;
      regressions =
        List.sort (fun a b -> compare b.ratio a.ratio) !regressions;
      counter_regressions =
        List.sort (fun a b -> compare b.c_ratio a.c_ratio) !counter_regressions;
      regressed =
        median_ratio > 1.0 +. threshold || !counter_regressions <> [];
    }

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compare_files ~threshold ?min_ms ?counters base_path cur_path =
  let load what p =
    match read_file p with
    | exception Sys_error e -> Error (Printf.sprintf "%s: %s" what e)
    | s -> (
        match Json.parse_result s with
        | Ok doc -> Ok doc
        | Error e -> Error (Printf.sprintf "%s %s: %s" what p e))
  in
  let* base = load "baseline" base_path in
  let* cur = load "current" cur_path in
  compare_docs ~threshold ?min_ms ?counters base cur

let pp_report fmt r =
  Format.fprintf fmt "@[<v>section %s: %s (median ratio %.2fx over %d rows)@,"
    r.section
    (if r.regressed then "REGRESSED" else "ok")
    r.median_ratio r.compared;
  Format.fprintf fmt "  matched %d, baseline-only %d, current-only %d@,"
    r.matched r.only_baseline r.only_current;
  List.iter
    (fun d ->
      Format.fprintf fmt "  %s %s k=%d#%d: %.3f ms -> %.3f ms (%.2fx)@,"
        d.query d.strategy d.k d.occurrence d.base_ms d.cur_ms d.ratio)
    r.regressions;
  List.iter
    (fun (d : counter_diff) ->
      Format.fprintf fmt "  %s %s k=%d#%d counter %s: %d -> %d (%.2fx)@,"
        d.c_query d.c_strategy d.c_k d.c_occurrence d.c_name d.c_base d.c_cur
        d.c_ratio)
    r.counter_regressions;
  Format.fprintf fmt "@]"
