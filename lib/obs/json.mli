(** Minimal JSON tree, printer and parser.

    The repository deliberately depends only on the baked-in toolchain,
    so machine-readable observability output (metrics dumps, span
    traces, [BENCH_*.json]) carries its own tiny JSON implementation.
    The printer always emits valid JSON (non-finite floats become
    [null]); the parser accepts exactly the JSON this module prints plus
    standard escapes, enough for tests and CI to validate emitted
    files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) indents objects and lists. *)

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val parse_result : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields or non-objects. *)
