(** Regression diffing between two [trex-bench-v1] documents.

    Rows are matched on (query, strategy, k, occurrence index) — the
    occurrence index disambiguates sections such as [io] that record
    the same (query, strategy, k) several times under different cache
    configurations. Rows whose baseline latency is below [min_ms]
    (default 0.05 ms) are matched but excluded from ratio statistics,
    so the instrumentation-only sections ([sizes], [table1], which
    record [ms = 0]) never divide by noise.

    The verdict is the median of the per-row current/baseline latency
    ratios: [regressed] is true when that median exceeds
    [1 + threshold]. Individual rows beyond the threshold are listed
    regardless of the verdict, so a single pathological query is
    visible even when the median is fine.

    [counters] names record counters gated {e per row} rather than by
    median: counters are exact measurements (bytes on disk, physical
    reads), so any matched row whose gated counter grows past
    [1 + threshold] — or loses the counter entirely — regresses the
    comparison on its own. Ungated counters are ignored, and a gated
    counter absent from the {e baseline} row is skipped (new
    instrumentation is not a regression). *)

type row_diff = {
  query : string;
  strategy : string;
  k : int;
  occurrence : int;
  base_ms : float;
  cur_ms : float;
  ratio : float;
}

type counter_diff = {
  c_query : string;
  c_strategy : string;
  c_k : int;
  c_occurrence : int;
  c_name : string;
  c_base : int;
  c_cur : int;  (** 0 when the counter vanished from the current row *)
  c_ratio : float;
}

type report = {
  section : string;
  matched : int;  (** Rows present in both documents. *)
  compared : int;  (** Matched rows with [base_ms >= min_ms]. *)
  only_baseline : int;
  only_current : int;
  median_ratio : float;  (** 1.0 when nothing was comparable. *)
  regressions : row_diff list;  (** Rows with [ratio > 1 + threshold]. *)
  counter_regressions : counter_diff list;
      (** Gated counters past the threshold on matched rows. *)
  regressed : bool;
}

val compare_docs :
  threshold:float ->
  ?min_ms:float ->
  ?counters:string list ->
  Json.t ->
  Json.t ->
  (report, string) result
(** [compare_docs ~threshold baseline current]. [Error] on schema or
    section mismatch. *)

val compare_files :
  threshold:float ->
  ?min_ms:float ->
  ?counters:string list ->
  string ->
  string ->
  (report, string) result
(** Same, reading both documents from files. *)

val pp_report : Format.formatter -> report -> unit
