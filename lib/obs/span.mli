(** Span-based tracing.

    [with_ ~name f] times [f] with a {!Trex_util.Stopclock} and records
    a span; spans opened inside [f] nest as children, forming a tree per
    top-level call. Each completed span also lands in the registry
    histogram ["span." ^ name], so repeated operations accumulate
    p50/p95/p99 latencies for free.

    Tracing is off by default and [with_] then runs [f] with no
    overhead at all — instrumented code paths need no flag checks of
    their own. *)

type t = { name : string; seconds : float; children : t list }

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : name:string -> (unit -> 'a) -> 'a
(** Exceptions propagate; the span is still recorded. *)

val roots : unit -> t list
(** Completed top-level spans, oldest first. *)

val reset : unit -> unit
(** Drop completed and in-progress spans. Leaves [enabled] unchanged. *)

val to_json : t list -> Json.t
val pp_tree : Format.formatter -> t list -> unit
