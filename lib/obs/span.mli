(** Span-based tracing.

    [with_ ~name f] times [f] with a {!Trex_util.Stopclock} and records
    a span; spans opened inside [f] nest as children, forming a tree per
    top-level call. Each completed span also lands in the registry
    histogram ["span." ^ name ^ ".ms"] (milliseconds), so repeated
    operations accumulate per-phase p50/p95/p99 latencies for free.
    Spans may carry string attributes (e.g. [("strategy", "ta")];
    [("k", "10")]) that show up in [to_json] and [pp_tree].

    Tracing is off by default and [with_] then runs [f] with no
    overhead at all — instrumented code paths need no flag checks of
    their own. *)

type t = {
  name : string;
  seconds : float;
  start_s : float;
      (** Monotonic start timestamp ({!Trex_util.Stopclock.now}), in
          seconds. CLOCK_MONOTONIC is system-wide on Linux, so spans
          harvested from worker processes on the same machine share this
          time base with coordinator spans; [0.] means "unknown" (e.g.
          decoded from a peer that did not send one). *)
  attrs : (string * string) list;
  children : t list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Exceptions propagate; the span is still recorded. *)

val emit :
  name:string ->
  ?attrs:(string * string) list ->
  ?start_s:float ->
  seconds:float ->
  ?children:t list ->
  unit ->
  unit
(** Record a pre-timed, already-completed span — used to graft span
    trees harvested from another process under the currently open frame
    (or as a new root when none is open). Feeds the same
    ["span." ^ name ^ ".ms"] histogram as [with_]. No-op when tracing
    is disabled. *)

val roots : unit -> t list
(** Completed top-level spans, oldest first. *)

val last : unit -> t option
(** The most recently completed span (at any depth), or [None] if no
    span has completed since the last [reset]. Lets a caller that just
    closed a span retrieve its timing tree without threading it out. *)

val summarize : ?max_entries:int -> t -> (string * float) list
(** Depth-first flattening to [("parent/child" path, ms)] pairs.

    The output is capped at [max_entries] (default 32) path entries to
    bound journal-record size; when the tree is larger, a final
    sentinel entry [("…truncated", n)] is appended, where [n] counts
    the spans that were dropped — truncation is visible, never
    silent. *)

val reset : unit -> unit
(** Drop completed and in-progress spans. Leaves [enabled] unchanged. *)

val to_json : t list -> Json.t

val of_json : Json.t -> t list
(** Inverse of [to_json], lenient: nodes missing a [name] or [ms]
    member are skipped (as are their subtrees); a non-list document
    decodes to []. Telemetry decode must degrade, not raise. *)

val pp_tree : Format.formatter -> t list -> unit
