type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* %.17g round-trips every float; non-finite values have no JSON
   representation and degrade to null. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  let indent depth =
    if pretty then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_to b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (name, value) ->
            if i > 0 then Buffer.add_char b ',';
            indent (depth + 1);
            escape_to b name;
            Buffer.add_string b (if pretty then ": " else ":");
            emit (depth + 1) value)
          fields;
        indent depth;
        Buffer.add_char b '}'
  in
  emit 0 t;
  Buffer.contents b

(* ---- parsing ---- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

(* Encode a BMP code point as UTF-8. Surrogate pairs are passed through
   as two 3-byte sequences — tolerable for diagnostics output. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if st.pos >= String.length st.src then fail st "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char b e; loop ()
        | 'n' -> Buffer.add_char b '\n'; loop ()
        | 't' -> Buffer.add_char b '\t'; loop ()
        | 'r' -> Buffer.add_char b '\r'; loop ()
        | 'b' -> Buffer.add_char b '\b'; loop ()
        | 'f' -> Buffer.add_char b '\012'; loop ()
        | 'u' ->
            if st.pos + 4 > String.length st.src then fail st "short \\u escape";
            let cp =
              (hex_digit st st.src.[st.pos] lsl 12)
              lor (hex_digit st st.src.[st.pos + 1] lsl 8)
              lor (hex_digit st st.src.[st.pos + 2] lsl 4)
              lor hex_digit st st.src.[st.pos + 3]
            in
            st.pos <- st.pos + 4;
            add_utf8 b cp;
            loop ()
        | _ -> fail st "bad escape")
    | c when Char.code c < 0x20 -> fail st "control character in string"
    | c -> Buffer.add_char b c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume () = st.pos <- st.pos + 1 in
  (match peek st with Some '-' -> consume () | _ -> ());
  let digits () =
    let n0 = st.pos in
    while (match peek st with Some '0' .. '9' -> true | _ -> false) do consume () done;
    if st.pos = n0 then fail st "expected digit"
  in
  digits ();
  (match peek st with
  | Some '.' ->
      is_float := true;
      consume ();
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek st with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              items (v :: acc)
          | Some ']' ->
              expect st ']';
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let name = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (name, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              fields (f :: acc)
          | Some '}' ->
              expect st '}';
              List.rev (f :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
