type process = { p_pid : int; p_name : string; p_spans : Span.t list }

(* A span whose attrs carry ("pid", n) was harvested from another
   process (the supervisor stamps worker pids when grafting); its whole
   subtree belongs to that pid unless a descendant re-stamps. *)
let pid_of_attrs attrs =
  match List.assoc_opt "pid" attrs with
  | Some s -> int_of_string_opt s
  | None -> None

let label_of_attrs attrs =
  match List.assoc_opt "worker" attrs with
  | Some _ as w -> w
  | None -> List.assoc_opt "shard" attrs

(* Minimum known monotonic start across the forest — the trace's t=0.
   Spans decoded without a start ([start_s = 0.]) are laid out
   sequentially inside their parent instead. *)
let rec min_start acc (s : Span.t) =
  let acc =
    if s.Span.start_s > 0.0 then min acc s.Span.start_s else acc
  in
  List.fold_left min_start acc s.Span.children

let chrome_trace processes =
  let t0 =
    List.fold_left
      (fun acc p -> List.fold_left min_start acc p.p_spans)
      infinity
      processes
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let us s = s *. 1e6 in
  let events = ref [] in
  (* pid -> display name, for process_name metadata events. *)
  let names : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let note_pid pid name =
    if not (Hashtbl.mem names pid) then Hashtbl.add names pid name
  in
  let rec walk ~pid ~cursor (s : Span.t) =
    let pid =
      match pid_of_attrs s.Span.attrs with
      | Some p ->
          note_pid p
            (match label_of_attrs s.Span.attrs with
            | Some w -> "worker " ^ w
            | None -> Printf.sprintf "worker pid %d" p);
          p
      | None -> pid
    in
    let start =
      if s.Span.start_s > 0.0 then s.Span.start_s -. t0 else cursor
    in
    let args =
      List.map (fun (k, v) -> (k, Json.String v)) s.Span.attrs
    in
    events :=
      Json.Obj
        ([
           ("name", Json.String s.Span.name);
           ("cat", Json.String "span");
           ("ph", Json.String "X");
           ("ts", Json.Float (us start));
           ("dur", Json.Float (us s.Span.seconds));
           ("pid", Json.Int pid);
           ("tid", Json.Int pid);
         ]
        @ if args = [] then [] else [ ("args", Json.Obj args) ])
      :: !events;
    ignore
      (List.fold_left
         (fun cursor child ->
           walk ~pid ~cursor child;
           let next =
             if child.Span.start_s > 0.0 then
               child.Span.start_s -. t0 +. child.Span.seconds
             else cursor +. child.Span.seconds
           in
           next)
         start s.Span.children)
  in
  List.iter
    (fun p ->
      note_pid p.p_pid p.p_name;
      ignore
        (List.fold_left
           (fun cursor s ->
             walk ~pid:p.p_pid ~cursor s;
             if s.Span.start_s > 0.0 then
               s.Span.start_s -. t0 +. s.Span.seconds
             else cursor +. s.Span.seconds)
           0.0 p.p_spans))
    processes;
  let metadata =
    Hashtbl.fold
      (fun pid name acc ->
        Json.Obj
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.String name) ]);
          ]
        :: acc)
      names []
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write path processes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (chrome_trace processes));
      output_char oc '\n')
