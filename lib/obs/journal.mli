(** Persistent, crash-tolerant query journal.

    Every top-level strategy evaluation appends one structured record —
    query digest, strategy, k, wall ms, physical reads, cache hit
    ratio, heap ops, degraded/fallback/retry flags, span summary — to
    an append-only file framed for torn-write safety:

    {v
      "TREXQJ1\n"                      8-byte file magic
      repeated frames:
        u32 LE  payload length
        u32 LE  CRC32 of payload
        bytes   payload (one JSON object per record)
    v}

    Records are never rewritten in place, so the only damage a crash
    (or bit rot) can inflict is a torn final frame or a corrupt frame
    body. [open_file] sweeps the file front to back: frames whose CRC
    or JSON does not check out are skipped and counted in
    [journal.corrupt_records]; a frame that runs past end-of-file (or
    whose length field is implausible) marks a torn tail, which is
    truncated away and counted in [journal.torn_tails]. The valid
    prefix is always recovered in full — opening never raises on a
    damaged journal, and appending after recovery continues cleanly.

    The journal is single-writer, like the storage engine it lives
    beside ({!Trex_storage} env directory). Appends are a single
    [write]; [sync]/[close] fsync. *)

type t

(** {1 Records} *)

type record = {
  qid : int;  (** Sequence number, unique within one journal file. *)
  ts : float;  (** Unix timestamp at completion. *)
  digest : string;
      (** 8-hex-digit CRC32 of the NEXI text when a label was set,
          otherwise of the canonical (sids, terms) form — the workload
          identity of the query (k excluded, so re-running a query at a
          different k still counts toward the same frequency). *)
  label : string;  (** NEXI text when known, [""] otherwise. *)
  strategy : string;  (** Method that produced the answer. *)
  k : int;
  wall_ms : float;
  pages_read : int;  (** Physical page reads during the evaluation. *)
  cache_hit_ratio : float;  (** Hits / (hits + misses); 0 when no lookups. *)
  heap_ops : int;  (** TA heap operations during the evaluation. *)
  degraded : bool;
  fallbacks : int;  (** Methods abandoned by [evaluate_resilient]. *)
  retried : bool;  (** Any I/O retry fired during the evaluation. *)
  sids : int list;
  terms : string list;
  spans : (string * float) list;
      (** Flattened span-tree summary, [(path, ms)]; empty unless span
          tracing was enabled during the query. *)
}

val record_to_json : record -> Json.t
val record_of_json : Json.t -> record option
val pp_record : Format.formatter -> record -> unit

val digest_of : string -> string
(** CRC32 of a string as 8 lowercase hex digits. *)

(** {1 Lifecycle} *)

val open_file : string -> t
(** Open (creating if absent) a journal file, sweeping and repairing
    it as described above. Never raises on torn or corrupt contents;
    raises [Sys_error]/[Unix.Unix_error] only on real I/O failure. *)

val in_memory : unit -> t
(** A journal with no backing file (memory-backed envs). *)

val append : t -> record -> record
(** Assigns the next [qid] (the [qid] field of the argument is
    ignored), appends one frame, and returns the stored record. *)

val records : t -> record list
(** All valid records, oldest first. *)

val length : t -> int
val path : t -> string option
val sync : t -> unit
val close : t -> unit

(** {1 Global switches}

    Journaling is off by default, exactly like span tracing: strategy
    entry points check [enabled] and pay nothing when it is off. The
    label is a hint set by the query façade so records can carry the
    NEXI text the user actually typed. *)

val set_enabled : bool -> unit
val enabled : unit -> bool
val set_label : string option -> unit
val label : unit -> string option

(** {1 Measuring one query}

    [start_query] snapshots the wall clock and the registry counters a
    record derives its deltas from ([pager.physical_reads],
    [pager.cache_hits], [pager.cache_misses], [ta.heap_operations],
    [resilience.retries]); [finish_query] computes the deltas, builds
    the record and appends it. *)

type started

val start_query : unit -> started

val build_record :
  started ->
  strategy:string ->
  sids:int list ->
  terms:string list ->
  k:int ->
  degraded:bool ->
  ?fallbacks:int ->
  ?spans:(string * float) list ->
  unit ->
  record
(** Compute the deltas and build a record {e without} appending it
    anywhere ([qid] is left 0 — [append] assigns the real one). Worker
    processes use this to ship a journal record over the wire instead
    of persisting it locally; the coordinator appends the merged
    record to its own journal. *)

val finish_query :
  t ->
  started ->
  strategy:string ->
  sids:int list ->
  terms:string list ->
  k:int ->
  degraded:bool ->
  ?fallbacks:int ->
  ?spans:(string * float) list ->
  unit ->
  record
