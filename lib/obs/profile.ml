type group = {
  g_hist : Metrics.histogram;
  mutable g_label : string;
  mutable g_n : int;
  mutable g_sum_ms : float;
  mutable g_degraded : int;
  mutable g_retried : int;
}

type t = {
  slow_capacity : int;
  digests : (string, group) Hashtbl.t;
  strategies : (string, group) Hashtbl.t;
  mutable digest_order : string list; (* first-seen, newest first *)
  mutable strategy_order : string list;
  mutable slow : Journal.record list; (* slowest first, <= slow_capacity *)
  mutable total : int;
}

let create ?(slow_capacity = 10) () =
  {
    slow_capacity;
    digests = Hashtbl.create 16;
    strategies = Hashtbl.create 8;
    digest_order = [];
    strategy_order = [];
    slow = [];
    total = 0;
  }

let group tbl order hist_name key =
  match Hashtbl.find_opt tbl key with
  | Some g -> g
  | None ->
      let g =
        {
          g_hist = Metrics.histogram hist_name;
          g_label = "";
          g_n = 0;
          g_sum_ms = 0.0;
          g_degraded = 0;
          g_retried = 0;
        }
      in
      Hashtbl.add tbl key g;
      order := key :: !order;
      g

let feed g (r : Journal.record) =
  g.g_n <- g.g_n + 1;
  g.g_sum_ms <- g.g_sum_ms +. r.wall_ms;
  if r.label <> "" then g.g_label <- r.label;
  if r.degraded then g.g_degraded <- g.g_degraded + 1;
  if r.retried then g.g_retried <- g.g_retried + 1;
  Metrics.observe g.g_hist r.wall_ms

let insert_slow t (r : Journal.record) =
  let rec ins = function
    | [] -> [ r ]
    | x :: _ as l when r.Journal.wall_ms > x.Journal.wall_ms -> r :: l
    | x :: rest -> x :: ins rest
  in
  let l = ins t.slow in
  t.slow <-
    (if List.length l > t.slow_capacity then List.filteri (fun i _ -> i < t.slow_capacity) l
     else l)

let observe t (r : Journal.record) =
  t.total <- t.total + 1;
  let order = ref t.digest_order in
  let g =
    group t.digests order ("profile.query." ^ r.digest ^ ".ms") r.digest
  in
  t.digest_order <- !order;
  feed g r;
  let order = ref t.strategy_order in
  let g =
    group t.strategies order
      ("profile.strategy." ^ r.strategy ^ ".ms")
      r.strategy
  in
  t.strategy_order <- !order;
  feed g r;
  insert_slow t r

let of_records ?slow_capacity records =
  let t = create ?slow_capacity () in
  List.iter (observe t) records;
  t

let total t = t.total

type stat = {
  key : string;
  label : string;
  n : int;
  share : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  degraded : int;
  retried : int;
}

let stat_of t key g =
  let s = Metrics.histogram_snapshot g.g_hist in
  {
    key;
    label = g.g_label;
    n = g.g_n;
    share =
      (if t.total = 0 then 0.0 else float_of_int g.g_n /. float_of_int t.total);
    mean_ms = (if g.g_n = 0 then 0.0 else g.g_sum_ms /. float_of_int g.g_n);
    p50_ms = s.Metrics.p50;
    p95_ms = s.Metrics.p95;
    p99_ms = s.Metrics.p99;
    max_ms = s.Metrics.max;
    degraded = g.g_degraded;
    retried = g.g_retried;
  }

let rows tbl order t =
  List.rev order
  |> List.map (fun key -> stat_of t key (Hashtbl.find tbl key))
  |> List.stable_sort (fun a b -> compare b.n a.n)

let by_digest t = rows t.digests t.digest_order t
let by_strategy t = rows t.strategies t.strategy_order t
let slowest t = t.slow

let stat_to_json s =
  Json.Obj
    [
      ("key", Json.String s.key);
      ("label", Json.String s.label);
      ("n", Json.Int s.n);
      ("share", Json.Float s.share);
      ("mean_ms", Json.Float s.mean_ms);
      ("p50_ms", Json.Float s.p50_ms);
      ("p95_ms", Json.Float s.p95_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ("max_ms", Json.Float s.max_ms);
      ("degraded", Json.Int s.degraded);
      ("retried", Json.Int s.retried);
    ]

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.total);
      ("queries", Json.List (List.map stat_to_json (by_digest t)));
      ("strategies", Json.List (List.map stat_to_json (by_strategy t)));
      ("slowest", Json.List (List.map Journal.record_to_json t.slow));
    ]

let pp_stats fmt ~header stats =
  Format.fprintf fmt "@[<v>%s@," header;
  Format.fprintf fmt "  %-10s %5s %6s %9s %9s %9s %4s %4s  %s@," "key" "n"
    "share" "p50 ms" "p95 ms" "max ms" "dgr" "rty" "label";
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-10s %5d %5.1f%% %9.3f %9.3f %9.3f %4d %4d  %s@,"
        s.key s.n (100.0 *. s.share) s.p50_ms s.p95_ms s.max_ms s.degraded
        s.retried s.label)
    stats;
  Format.fprintf fmt "@]"

let pp fmt t =
  Format.fprintf fmt "@[<v>profile: %d queries, %d distinct@," t.total
    (Hashtbl.length t.digests);
  pp_stats fmt ~header:"by query digest:" (by_digest t);
  pp_stats fmt ~header:"by strategy:" (by_strategy t);
  Format.fprintf fmt "slowest:@,";
  List.iter (fun r -> Format.fprintf fmt "  %a@," Journal.pp_record r) t.slow;
  Format.fprintf fmt "@]"
