(** Process-wide metrics registry.

    One global registry holds monotonic counters, gauges and log-bucket
    histograms, each addressed by a dotted name ("pager.cache_hits",
    "ta.heap_pushes", "span.query"). Looking a metric up returns a
    handle with a single mutable field, so hot loops pay one record
    mutation per event — the same cost as the local [int ref]s the
    handles replace. Module-level handles register their names at
    program start, so a metrics dump lists every instrumented site even
    when its count is still zero.

    The registry is not thread-safe; the engine is single-threaded. *)

type counter
type gauge
type histogram

(** {1 Counters} *)

val counter : string -> counter
(** Find or register the named monotonic counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Values land in log-scaled buckets (powers of two above 1e-9, which
    spans nanoseconds to decades for durations in seconds); quantiles
    are estimated from the bucket the requested rank falls into and
    clamped to the observed min/max. *)

val histogram : string -> histogram
val observe : histogram -> float -> unit
val quantile : histogram -> float -> float
(** [quantile h q] for q in [0, 1]. Defined edge cases: an empty
    histogram yields 0.0 and a single-sample histogram yields the
    sample itself (never a bucket artifact). *)

type histogram_snapshot = {
  n : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val histogram_snapshot : histogram -> histogram_snapshot

(** {1 Registry} *)

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val gauges : unit -> (string * float) list
val histograms : unit -> (string * histogram_snapshot) list

val counters_with_prefix : string -> (string * int) list

val counters_delta :
  (string * int) list -> (string * int) list -> (string * int) list
(** [counters_delta before after] — per-counter [after - before],
    dropping zero entries. Counters absent from [before] count from 0.
    Both arguments are [counters ()] snapshots; used to ship a worker
    process's per-query counter movement over the wire. *)

val absorb_counters : ?prefix:string -> (string * int) list -> unit
(** Fold a counter delta (from a peer process) into this registry: each
    [(name, n)] is added to the counter [name], and — when [prefix] is
    given — also to [prefix ^ name], yielding both a merged total and a
    per-source view (e.g. [worker.shard-001.pager.physical_reads]). *)

val reset : unit -> unit
(** Zero every metric in place. Handles stay registered and live —
    holders keep incrementing the same cells the registry reads. *)

val to_json : unit -> Json.t
val pp : Format.formatter -> unit -> unit
