module Crc32 = Trex_util.Crc32
module Framing = Trex_util.Framing

let m_appends = Metrics.counter "journal.appends"
let m_corrupt = Metrics.counter "journal.corrupt_records"
let m_torn = Metrics.counter "journal.torn_tails"
let m_recovered = Metrics.counter "journal.records_recovered"

type record = {
  qid : int;
  ts : float;
  digest : string;
  label : string;
  strategy : string;
  k : int;
  wall_ms : float;
  pages_read : int;
  cache_hit_ratio : float;
  heap_ops : int;
  degraded : bool;
  fallbacks : int;
  retried : bool;
  sids : int list;
  terms : string list;
  spans : (string * float) list;
}

let magic = "TREXQJ1\n"

type backend = Mem | File of { fd : Unix.file_descr; file_path : string }

type t = {
  backend : backend;
  mutable stored : record list; (* newest first *)
  mutable count : int;
  mutable next_qid : int;
  mutable closed : bool;
}

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let record_to_json r =
  Json.Obj
    [
      ("qid", Json.Int r.qid);
      ("ts", Json.Float r.ts);
      ("digest", Json.String r.digest);
      ("label", Json.String r.label);
      ("strategy", Json.String r.strategy);
      ("k", Json.Int r.k);
      ("wall_ms", Json.Float r.wall_ms);
      ("pages_read", Json.Int r.pages_read);
      ("cache_hit_ratio", Json.Float r.cache_hit_ratio);
      ("heap_ops", Json.Int r.heap_ops);
      ("degraded", Json.Bool r.degraded);
      ("fallbacks", Json.Int r.fallbacks);
      ("retried", Json.Bool r.retried);
      ("sids", Json.List (List.map (fun s -> Json.Int s) r.sids));
      ("terms", Json.List (List.map (fun t -> Json.String t) r.terms));
      ("spans", Json.Obj (List.map (fun (p, ms) -> (p, Json.Float ms)) r.spans));
    ]

let jstr j k d = match Json.member k j with Some (Json.String s) -> s | _ -> d

let jint j k d =
  match Json.member k j with
  | Some (Json.Int i) -> i
  | Some (Json.Float f) -> int_of_float f
  | _ -> d

let jflt j k d =
  match Json.member k j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> d

let jbool j k d = match Json.member k j with Some (Json.Bool b) -> b | _ -> d

let record_of_json j =
  match (Json.member "digest" j, Json.member "strategy" j) with
  | Some (Json.String digest), Some (Json.String strategy) ->
      let sids =
        match Json.member "sids" j with
        | Some (Json.List l) ->
            List.filter_map (function Json.Int i -> Some i | _ -> None) l
        | _ -> []
      in
      let terms =
        match Json.member "terms" j with
        | Some (Json.List l) ->
            List.filter_map (function Json.String s -> Some s | _ -> None) l
        | _ -> []
      in
      let spans =
        match Json.member "spans" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (p, v) ->
                match v with
                | Json.Float ms -> Some (p, ms)
                | Json.Int ms -> Some (p, float_of_int ms)
                | _ -> None)
              fields
        | _ -> []
      in
      Some
        {
          qid = jint j "qid" 0;
          ts = jflt j "ts" 0.0;
          digest;
          label = jstr j "label" "";
          strategy;
          k = jint j "k" 0;
          wall_ms = jflt j "wall_ms" 0.0;
          pages_read = jint j "pages_read" 0;
          cache_hit_ratio = jflt j "cache_hit_ratio" 0.0;
          heap_ops = jint j "heap_ops" 0;
          degraded = jbool j "degraded" false;
          fallbacks = jint j "fallbacks" 0;
          retried = jbool j "retried" false;
          sids;
          terms;
          spans;
        }
  | _ -> None

let pp_record fmt r =
  Format.fprintf fmt "#%d %s %-10s k=%-4d %8.3f ms  pages=%-5d hit=%4.0f%%%s%s%s"
    r.qid r.digest r.strategy r.k r.wall_ms r.pages_read
    (100.0 *. r.cache_hit_ratio)
    (if r.degraded then "  DEGRADED" else "")
    (if r.fallbacks > 0 then Printf.sprintf "  fallbacks=%d" r.fallbacks else "")
    (if r.label = "" then "" else "  " ^ r.label)

let digest_of s = Printf.sprintf "%08lx" (Crc32.string s)

(* Framed-payload codec for {!Trex_util.Framing}: undecodable JSON is
   a corrupt frame. *)
let decode payload =
  match record_of_json (Json.parse payload) with
  | r -> r
  | exception Json.Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let next_qid_of records =
  1 + List.fold_left (fun acc r -> max acc r.qid) (-1) records

let make backend records =
  {
    backend;
    stored = List.rev records;
    count = List.length records;
    next_qid = next_qid_of records;
    closed = false;
  }

let in_memory () = make Mem []

let open_file file_path =
  let swept = Framing.open_file ~magic ~decode file_path in
  Metrics.add m_corrupt swept.Framing.corrupt;
  Metrics.add m_recovered (List.length swept.Framing.records);
  if swept.Framing.torn then Metrics.incr m_torn;
  make (File { fd = swept.Framing.fd; file_path }) swept.Framing.records

let records t = List.rev t.stored
let length t = t.count
let path t = match t.backend with Mem -> None | File f -> Some f.file_path

let append t r =
  if t.closed then invalid_arg "Journal.append: journal is closed";
  let r = { r with qid = t.next_qid } in
  t.next_qid <- t.next_qid + 1;
  (match t.backend with
  | Mem -> ()
  | File { fd; _ } ->
      Framing.append fd (Json.to_string (record_to_json r)));
  t.stored <- r :: t.stored;
  t.count <- t.count + 1;
  Metrics.incr m_appends;
  r

let sync t =
  match t.backend with
  | Mem -> ()
  | File { fd; _ } -> if not t.closed then Unix.fsync fd

let close t =
  if not t.closed then begin
    (match t.backend with
    | Mem -> ()
    | File { fd; _ } ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        Unix.close fd);
    t.closed <- true
  end

(* ------------------------------------------------------------------ *)
(* Global switches                                                     *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag
let label_ref : string option ref = ref None
let set_label l = label_ref := l
let label () = !label_ref

(* ------------------------------------------------------------------ *)
(* Measuring one query                                                 *)

let c_reads = Metrics.counter "pager.physical_reads"
let c_hits = Metrics.counter "pager.cache_hits"
let c_misses = Metrics.counter "pager.cache_misses"
let c_heap = Metrics.counter "ta.heap_operations"
let c_retries = Metrics.counter "resilience.retries"

type started = {
  s_t0 : float;
  s_reads : int;
  s_hits : int;
  s_misses : int;
  s_heap : int;
  s_retries : int;
}

let start_query () =
  {
    s_t0 = Trex_util.Stopclock.now ();
    s_reads = Metrics.value c_reads;
    s_hits = Metrics.value c_hits;
    s_misses = Metrics.value c_misses;
    s_heap = Metrics.value c_heap;
    s_retries = Metrics.value c_retries;
  }

let canonical ~sids ~terms =
  String.concat "," (List.map string_of_int (List.sort compare sids))
  ^ "|"
  ^ String.concat "," (List.sort String.compare terms)

let build_record started ~strategy ~sids ~terms ~k ~degraded ?(fallbacks = 0)
    ?(spans = []) () =
  (* The record timestamp is wall time (absolute, human-facing); the
     duration is measured on the monotonic clock so a wall step mid-
     query cannot journal a negative or absurd latency. *)
  let now = Trex_util.Stopclock.wall () in
  let mono = Trex_util.Stopclock.now () in
  let hits = Metrics.value c_hits - started.s_hits in
  let misses = Metrics.value c_misses - started.s_misses in
  let lookups = hits + misses in
  let label = match !label_ref with Some l -> l | None -> "" in
  let digest =
    if label <> "" then digest_of label else digest_of (canonical ~sids ~terms)
  in
  {
      qid = 0;
      ts = now;
      digest;
      label;
      strategy;
      k;
      wall_ms = (mono -. started.s_t0) *. 1e3;
      pages_read = Metrics.value c_reads - started.s_reads;
      cache_hit_ratio =
        (if lookups = 0 then 0.0
         else float_of_int hits /. float_of_int lookups);
      heap_ops = Metrics.value c_heap - started.s_heap;
      degraded;
      fallbacks;
      retried = Metrics.value c_retries > started.s_retries;
      sids;
      terms;
      spans;
    }

let finish_query t started ~strategy ~sids ~terms ~k ~degraded ?(fallbacks = 0)
    ?(spans = []) () =
  append t
    (build_record started ~strategy ~sids ~terms ~k ~degraded ~fallbacks ~spans
       ())
