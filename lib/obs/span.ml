module Stopclock = Trex_util.Stopclock

type t = { name : string; seconds : float; children : t list }

type frame = {
  f_name : string;
  f_clock : Stopclock.t;
  mutable f_children : t list; (* newest first *)
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let stack : frame list ref = ref []
let finished : t list ref = ref [] (* newest first *)

let reset () =
  stack := [];
  finished := []

let with_ ~name f =
  if not !enabled_flag then f ()
  else begin
    let fr = { f_name = name; f_clock = Stopclock.create (); f_children = [] } in
    stack := fr :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let seconds = Stopclock.elapsed fr.f_clock in
        (* Pop down to fr. Fun.protect runs inner finalizers first, so
           anything above fr is a frame whose finalizer was skipped by a
           non-exception escape — discard defensively. *)
        let rec pop () =
          match !stack with
          | [] -> ()
          | top :: rest ->
              stack := rest;
              if top != fr then pop ()
        in
        pop ();
        let span = { name; seconds; children = List.rev fr.f_children } in
        Metrics.observe (Metrics.histogram ("span." ^ name)) seconds;
        match !stack with
        | parent :: _ -> parent.f_children <- span :: parent.f_children
        | [] -> finished := span :: !finished)
      f
  end

let roots () = List.rev !finished

let rec to_json_one span =
  Json.Obj
    [
      ("name", Json.String span.name);
      ("ms", Json.Float (span.seconds *. 1e3));
      ("children", Json.List (List.map to_json_one span.children));
    ]

let to_json spans = Json.List (List.map to_json_one spans)

let pp_tree fmt spans =
  let rec pp depth span =
    Format.fprintf fmt "%s%-*s %10.3f ms@," (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      span.name (span.seconds *. 1e3);
    List.iter (pp (depth + 1)) span.children
  in
  Format.fprintf fmt "@[<v>";
  List.iter (pp 0) spans;
  Format.fprintf fmt "@]"
