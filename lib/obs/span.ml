module Stopclock = Trex_util.Stopclock

type t = {
  name : string;
  seconds : float;
  start_s : float;
  attrs : (string * string) list;
  children : t list;
}

type frame = {
  f_name : string;
  f_attrs : (string * string) list;
  f_clock : Stopclock.t;
  f_start : float;
  mutable f_children : t list; (* newest first *)
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let stack : frame list ref = ref []
let finished : t list ref = ref [] (* newest first *)
let last_completed : t option ref = ref None

let reset () =
  stack := [];
  finished := [];
  last_completed := None

let attach span =
  match !stack with
  | parent :: _ -> parent.f_children <- span :: parent.f_children
  | [] -> finished := span :: !finished

let with_ ~name ?(attrs = []) f =
  if not !enabled_flag then f ()
  else begin
    let fr =
      { f_name = name; f_attrs = attrs; f_clock = Stopclock.create ();
        f_start = Stopclock.now (); f_children = [] }
    in
    stack := fr :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let seconds = Stopclock.elapsed fr.f_clock in
        (* Pop down to fr. Fun.protect runs inner finalizers first, so
           anything above fr is a frame whose finalizer was skipped by a
           non-exception escape — discard defensively. *)
        let rec pop () =
          match !stack with
          | [] -> ()
          | top :: rest ->
              stack := rest;
              if top != fr then pop ()
        in
        pop ();
        let span =
          { name; seconds; start_s = fr.f_start; attrs = fr.f_attrs;
            children = List.rev fr.f_children }
        in
        Metrics.observe
          (Metrics.histogram ("span." ^ name ^ ".ms"))
          (seconds *. 1e3);
        last_completed := Some span;
        attach span)
      f
  end

let emit ~name ?(attrs = []) ?(start_s = 0.0) ~seconds ?(children = []) () =
  if !enabled_flag then begin
    let span = { name; seconds; start_s; attrs; children } in
    Metrics.observe
      (Metrics.histogram ("span." ^ name ^ ".ms"))
      (seconds *. 1e3);
    last_completed := Some span;
    attach span
  end

let roots () = List.rev !finished
let last () = !last_completed

let summarize ?(max_entries = 32) span =
  let acc = ref [] in
  let n = ref 0 in
  let dropped = ref 0 in
  let rec go prefix s =
    if !n < max_entries then begin
      let path = if prefix = "" then s.name else prefix ^ "/" ^ s.name in
      acc := (path, s.seconds *. 1e3) :: !acc;
      incr n;
      List.iter (go path) s.children
    end
    else begin
      incr dropped;
      List.iter (go prefix) s.children
    end
  in
  go "" span;
  let entries = List.rev !acc in
  if !dropped = 0 then entries
  else entries @ [ ("…truncated", float_of_int !dropped) ]

let rec to_json_one span =
  Json.Obj
    (("name", Json.String span.name)
     :: ("ms", Json.Float (span.seconds *. 1e3))
     :: ("start_s", Json.Float span.start_s)
     ::
     (if span.attrs = [] then []
      else
        [
          ( "attrs",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.String v)) span.attrs) );
        ])
    @ [ ("children", Json.List (List.map to_json_one span.children)) ])

let to_json spans = Json.List (List.map to_json_one spans)

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let rec of_json_one j =
  match (Json.member "name" j, num (Json.member "ms" j)) with
  | Some (Json.String name), Some ms ->
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                match v with Json.String s -> Some (k, s) | _ -> None)
              fields
        | _ -> []
      in
      let start_s = Option.value ~default:0.0 (num (Json.member "start_s" j)) in
      let children =
        match Json.member "children" j with
        | Some (Json.List l) -> List.filter_map of_json_one l
        | _ -> []
      in
      Some { name; seconds = ms /. 1e3; start_s; attrs; children }
  | _ -> None

let of_json = function
  | Json.List l -> List.filter_map of_json_one l
  | _ -> []

let pp_tree fmt spans =
  let rec pp depth span =
    let attrs =
      if span.attrs = [] then ""
      else
        " ["
        ^ String.concat ", "
            (List.map (fun (k, v) -> k ^ "=" ^ v) span.attrs)
        ^ "]"
    in
    Format.fprintf fmt "%s%-*s %10.3f ms%s@," (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      span.name (span.seconds *. 1e3) attrs;
    List.iter (pp (depth + 1)) span.children
  in
  Format.fprintf fmt "@[<v>";
  List.iter (pp 0) spans;
  Format.fprintf fmt "@]"
