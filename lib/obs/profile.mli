(** In-memory profile aggregator over journal records.

    Folding a stream of {!Journal.record}s produces the continuous-
    profiling view: per-query-digest latency histograms and per-strategy
    histograms (both registered in the {!Metrics} registry under
    [profile.query.<digest>.ms] / [profile.strategy.<name>.ms], so they
    show up in [stats] dumps and [Metrics.to_json] like every other
    metric), a top-N slow-query list, and degraded/retry tallies. *)

type t

val create : ?slow_capacity:int -> unit -> t
(** [slow_capacity] bounds the slow-query list (default 10). *)

val observe : t -> Journal.record -> unit

val of_records : ?slow_capacity:int -> Journal.record list -> t

val total : t -> int
(** Records observed. *)

type stat = {
  key : string;  (** Digest or strategy name. *)
  label : string;  (** Latest NEXI text seen for the key, or [""]. *)
  n : int;
  share : float;  (** n / total — the observed workload frequency. *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  degraded : int;
  retried : int;
}

val by_digest : t -> stat list
(** One row per distinct query digest, most frequent first. *)

val by_strategy : t -> stat list
(** One row per strategy, most frequent first. *)

val slowest : t -> Journal.record list
(** Top-N slowest records, slowest first. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
