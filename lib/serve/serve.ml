(* The overload-safe network front door. See serve.mli for the
   contract; the shape of the implementation:

   One process, one select loop. The loop owns the listen socket, a
   table of client connections (each with its own frame decoder and
   read-deadline anchors), and a bounded FIFO of admitted requests.
   Requests are evaluated synchronously between select rounds — the
   engine is single-threaded, so "capacity" is exactly one evaluation
   at a time and the queue is the only elasticity there is. Everything
   else is about refusing work honestly: admission sheds before
   queueing, the sweep disconnects peers that stall reads or writes,
   and SIGTERM turns the loop into a drain that finishes or sheds what
   was already admitted and nothing else. *)

module Framing = Trex_util.Framing
module Stopclock = Trex_util.Stopclock
module Metrics = Trex_obs.Metrics
module Journal = Trex_obs.Journal
module Breaker = Trex_resilience.Breaker
module Wire = Trex_shard.Wire
module Shard = Trex_shard.Shard
module Supervisor = Trex_shard.Supervisor
module Strategy = Trex_topk.Strategy
module Answer = Trex_topk.Answer

type policy = {
  queue_limit : int;
  default_deadline_ms : float;
  max_deadline_ms : float;
  max_page_budget : int option;
  max_k : int;
  frame_timeout_s : float;
  idle_timeout_s : float;
  write_timeout_s : float;
  breaker_strikes : int;
  breaker_cooldown_s : float;
  drain_budget_s : float;
}

let default_policy =
  {
    queue_limit = 32;
    default_deadline_ms = 2_000.0;
    max_deadline_ms = 30_000.0;
    max_page_budget = Some 500_000;
    max_k = 1000;
    frame_timeout_s = 10.0;
    idle_timeout_s = 300.0;
    write_timeout_s = 10.0;
    breaker_strikes = 3;
    breaker_cooldown_s = 30.0;
    drain_budget_s = 5.0;
  }

(* ---- counters ---- *)

let c_accepted = Metrics.counter "serve.accepted"
let c_refused = Metrics.counter "serve.refused"
let c_requests = Metrics.counter "serve.requests"
let c_answered = Metrics.counter "serve.answered"
let c_shed = Metrics.counter "serve.shed"
let c_drained = Metrics.counter "serve.drained"
let c_strikes = Metrics.counter "serve.strikes"
let c_disconnects = Metrics.counter "serve.disconnects"
let c_read_timeouts = Metrics.counter "serve.read_timeouts"
let c_write_timeouts = Metrics.counter "serve.write_timeouts"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let h_wait_ms = Metrics.histogram "serve.wait_ms"
let h_service_ms = Metrics.histogram "serve.service_ms"

(* ---- addresses and bounded connects (client side shares these) ---- *)

let sockaddr_of_string addr =
  match String.rindex_opt addr ':' with
  | None -> invalid_arg (Printf.sprintf "address %S is not HOST:PORT" addr)
  | Some i -> (
      let host = String.sub addr 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
      | None -> invalid_arg (Printf.sprintf "address %S has a non-numeric port" addr)
      | Some port ->
          let ip =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              try (Unix.gethostbyname host).Unix.h_addr_list.(0)
              with Not_found | Invalid_argument _ ->
                invalid_arg (Printf.sprintf "address %S: unknown host" addr))
          in
          Unix.ADDR_INET (ip, port))

let connect_with_timeout sa ~timeout_s =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  let finish ok =
    if ok then begin
      Unix.clear_nonblock fd;
      Some fd
    end
    else begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
    end
  in
  match Unix.connect fd sa with
  | () -> finish true
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
      let deadline = Stopclock.now () +. timeout_s in
      let rec wait () =
        let remaining = deadline -. Stopclock.now () in
        if remaining <= 0.0 then finish false
        else
          match Unix.select [] [ fd ] [] remaining with
          | _, [], _ -> wait ()
          | _, _ :: _, _ -> finish (Unix.getsockopt_error fd = None)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ()
  | exception Unix.Unix_error _ -> finish false

(* ---- bounded writes ----

   The server never blocks forever on a peer that stops reading: every
   frame is written under a deadline, and a stall disconnects the
   peer. [Disconnect] is connection-fatal, request-transparent. *)

exception Disconnect of string

let write_with_deadline fd buf ~timeout_s =
  let len = Bytes.length buf in
  let deadline = Stopclock.now () +. timeout_s in
  let rec go pos =
    if pos < len then begin
      let remaining = deadline -. Stopclock.now () in
      if remaining <= 0.0 then raise (Disconnect "write timeout");
      match Unix.select [] [ fd ] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | _, [], _ -> go pos
      | _, _ :: _, _ -> (
          match Unix.write fd buf pos (len - pos) with
          | n -> go (pos + n)
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go pos
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
              raise (Disconnect "peer gone"))
    end
  in
  go 0

(* ---- connections ---- *)

type conn = {
  c_fd : Unix.file_descr;
  c_peer : string;  (* IP only — the breaker key *)
  c_dec : Framing.Decoder.t;
  mutable c_last_activity : float;
  mutable c_frame_start : float option;
      (* monotonic time the current incomplete frame started — the
         slowloris anchor, mirroring Framing.recv_deadline *)
  mutable c_strikes : int;
  mutable c_open : bool;
}

type pending = {
  p_conn : conn;
  p_query : Wire.client_query;
  p_enq : float;
  p_deadline : float;  (* absolute, Stopclock *)
  p_page_budget : int option;
  p_k : int;
}

type backend = Single of Trex.t | Sharded of Supervisor.t

let clamp_page_budget policy requested =
  match (requested, policy.max_page_budget) with
  | Some r, Some m -> Some (min r m)
  | Some r, None -> Some r
  | None, cap -> cap

let evaluate backend (p : pending) ~deadline_ms =
  let cq = p.p_query in
  match backend with
  | Single engine ->
      let o =
        Trex.query engine ~k:p.p_k ?method_:cq.Wire.c_method
          ~strict:cq.Wire.c_strict ~deadline_ms ?page_budget:p.p_page_budget
          cq.Wire.c_nexi
      in
      let tags =
        List.map
          (fun (f : Strategy.failover) ->
            (Strategy.method_to_string f.failed, f.error))
          o.Trex.fallbacks
        @ (if o.Trex.degraded then [ ("guard", "budget expired") ] else [])
      in
      {
        Wire.ca_answers = Answer.top_k o.Trex.strategy.Strategy.answers p.p_k;
        ca_k = p.p_k;
        ca_degraded = o.Trex.degraded;
        ca_tags = tags;
        ca_method =
          Some (Strategy.method_to_string o.Trex.strategy.Strategy.method_used);
        ca_elapsed_s = o.Trex.strategy.Strategy.elapsed_seconds;
      }
  | Sharded s ->
      let t0 = Stopclock.now () in
      let r =
        Supervisor.query s ~k:p.p_k ?method_:cq.Wire.c_method
          ~strict:cq.Wire.c_strict ~deadline_ms ?page_budget:p.p_page_budget
          cq.Wire.c_nexi
      in
      {
        Wire.ca_answers = r.Shard.answers;
        ca_k = r.Shard.k;
        ca_degraded = r.Shard.degraded;
        ca_tags = r.Shard.degraded_shards;
        ca_method = None;
        ca_elapsed_s = Stopclock.now () -. t0;
      }

(* One journal frame per refused-or-abandoned request: the strategy
   field carries the disposition ("shed:<code>" or "drained"), the
   label the NEXI text, wall_ms the time the request spent with us. *)
let journal_refusal journal ~nexi ~k ~disposition ~queued_ms =
  ignore
    (Journal.append journal
       {
         Journal.qid = 0;
         ts = Unix.gettimeofday ();
         digest = Journal.digest_of nexi;
         label = nexi;
         strategy = disposition;
         k;
         wall_ms = queued_ms;
         pages_read = 0;
         cache_hit_ratio = 0.0;
         heap_ops = 0;
         degraded = true;
         fallbacks = 0;
         retried = false;
         sids = [];
         terms = [];
         spans = [];
       })

let run ?(policy = default_policy) ?(remote = []) ?listen_fd ?on_ready ~dir
    ~addr () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let drain_requested = ref false in
  let on_term = Sys.Signal_handle (fun _ -> drain_requested := true) in
  Sys.set_signal Sys.sigterm on_term;
  Sys.set_signal Sys.sigint on_term;
  (* Backend: a coordinator directory is served through a supervisor,
     anything else attaches as a plain index environment. *)
  let sharded = Sys.file_exists (Filename.concat dir "SHARDMAP.json") in
  let backend, docs, close_backend =
    if sharded then begin
      (* Open/close first so rebalance recovery and the stale-artifact
         sweep run; the supervisor itself only reads the map. *)
      Shard.close (Shard.open_ dir);
      let s = Supervisor.create ~remote dir in
      ignore (Supervisor.await_healthy s);
      let docs =
        List.fold_left
          (fun acc (i : Shard.shard_info) -> acc + i.docs)
          0 (Supervisor.shards s)
      in
      (Sharded s, docs, fun () -> Supervisor.close s)
    end
    else begin
      let env = Trex.Env.on_disk dir in
      let engine = Trex.attach ~env () in
      let stats = Trex.Index.stats (Trex.index engine) in
      (Single engine, stats.Trex.Index.doc_count, fun () -> Trex.Env.close env)
    end
  in
  let listen =
    match listen_fd with
    | Some fd -> fd
    | None ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (sockaddr_of_string addr);
        Unix.listen fd 64;
        fd
  in
  let bound =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | _ -> addr
  in
  let journal = Journal.open_file (Filename.concat dir "serve_journal.qj") in
  (match on_ready with Some f -> f bound | None -> ());
  (* ---- mutable serving state ---- *)
  let conns = ref [] in
  let queue : pending Queue.t = Queue.create () in
  let draining = ref false in
  let drain_deadline = ref infinity in
  let ewma_service_s = ref 0.02 in
  let peer_breakers : (string, Breaker.t) Hashtbl.t = Hashtbl.create 8 in
  let peer_breaker peer =
    match Hashtbl.find_opt peer_breakers peer with
    | Some b -> b
    | None ->
        let b =
          Breaker.create ~failure_threshold:policy.breaker_strikes
            ~cooldown_s:policy.breaker_cooldown_s
            ("serve.peer." ^ peer)
        in
        Hashtbl.add peer_breakers peer b;
        b
  in
  let disconnect c =
    if c.c_open then begin
      c.c_open <- false;
      Metrics.incr c_disconnects;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ()
    end
  in
  (* Send one response under the write deadline; a stalled or vanished
     peer is disconnected (and a stall strikes its breaker — not
     reading your answers is abuse too). Returns whether it landed. *)
  let send_resp c resp =
    if not c.c_open then false
    else
      try
        write_with_deadline c.c_fd
          (Framing.frame (Wire.encode_response resp))
          ~timeout_s:policy.write_timeout_s;
        true
      with Disconnect reason ->
        if reason = "write timeout" then begin
          Metrics.incr c_write_timeouts;
          Breaker.record_failure (peer_breaker c.c_peer) ~reason:"write stall"
        end;
        disconnect c;
        false
  in
  let shed c ~nexi ~k ~code ~reason ~retry_after_ms ~queued_ms =
    Metrics.incr c_shed;
    journal_refusal journal ~nexi ~k ~disposition:("shed:" ^ code) ~queued_ms;
    ignore (send_resp c (Wire.Shed { retry_after_ms; reason }))
  in
  let strike c reason =
    Metrics.incr c_strikes;
    c.c_strikes <- c.c_strikes + 1;
    Breaker.record_failure (peer_breaker c.c_peer) ~reason;
    if c.c_strikes >= policy.breaker_strikes then disconnect c
  in
  (* ---- admission: shed before queue ---- *)
  let admit c (cq : Wire.client_query) =
    Metrics.incr c_requests;
    let now = Stopclock.now () in
    let nexi = cq.Wire.c_nexi in
    if cq.Wire.c_k <= 0 || nexi = "" then
      shed c ~nexi ~k:cq.Wire.c_k ~code:"invalid"
        ~reason:"invalid request: k must be positive and nexi non-empty"
        ~retry_after_ms:0.0 ~queued_ms:0.0
    else begin
      let deadline_ms =
        Float.min
          (Option.value cq.Wire.c_deadline_ms
             ~default:policy.default_deadline_ms)
          policy.max_deadline_ms
      in
      let est_wait_ms =
        float_of_int (Queue.length queue) *. !ewma_service_s *. 1000.0
      in
      if !draining then
        shed c ~nexi ~k:cq.Wire.c_k ~code:"draining"
          ~reason:"server is draining"
          ~retry_after_ms:(policy.drain_budget_s *. 1000.0) ~queued_ms:0.0
      else if Queue.length queue >= policy.queue_limit then
        shed c ~nexi ~k:cq.Wire.c_k ~code:"queue-full"
          ~reason:
            (Printf.sprintf "queue full (%d requests ahead)"
               (Queue.length queue))
          ~retry_after_ms:(Float.max 1.0 est_wait_ms) ~queued_ms:0.0
      else if est_wait_ms > deadline_ms then
        shed c ~nexi ~k:cq.Wire.c_k ~code:"backlog"
          ~reason:
            (Printf.sprintf
               "estimated wait %.0f ms exceeds the %.0f ms deadline"
               est_wait_ms deadline_ms)
          ~retry_after_ms:est_wait_ms ~queued_ms:0.0
      else
        Queue.add
          {
            p_conn = c;
            p_query = cq;
            p_enq = now;
            p_deadline = now +. (deadline_ms /. 1000.0);
            p_page_budget = clamp_page_budget policy cq.Wire.c_page_budget;
            p_k = min cq.Wire.c_k policy.max_k;
          }
          queue
    end
  in
  let handle_request c payload =
    match Wire.decode_request payload with
    | Wire.Ping seq -> ignore (send_resp c (Wire.Pong seq))
    | Wire.Client_query cq -> admit c cq
    | Wire.Query _ | Wire.Shutdown ->
        strike c "worker protocol on the client port"
    | exception Wire.Protocol_error msg -> strike c ("undecodable request: " ^ msg)
  in
  let chunk = Bytes.create 65536 in
  let read_conn c =
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        disconnect c
    | 0 -> disconnect c
    | n -> (
        Framing.Decoder.feed c.c_dec chunk 0 n;
        let rec frames () =
          if c.c_open then
            match Framing.Decoder.next c.c_dec with
            | Some payload ->
                c.c_last_activity <- Stopclock.now ();
                handle_request c payload;
                frames ()
            | None ->
                (* re-anchor the read deadlines exactly as
                   recv_deadline would: a part-read frame pins the
                   frame anchor at its first byte; an empty buffer
                   resets to the idle clock *)
                if Framing.Decoder.buffered c.c_dec > 0 then begin
                  if c.c_frame_start = None then
                    c.c_frame_start <- Some (Stopclock.now ())
                end
                else c.c_frame_start <- None
        in
        match frames () with
        | () -> ()
        | exception Framing.Corrupt_frame reason ->
            Breaker.record_failure (peer_breaker c.c_peer)
              ~reason:("corrupt frame: " ^ reason);
            disconnect c)
  in
  let accept_one () =
    match Unix.accept listen with
    | exception
        Unix.Unix_error
          ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
            _,
            _ ) ->
        ()
    | fd, sa ->
        let peer =
          match sa with
          | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
          | _ -> "local"
        in
        if not (Breaker.allow (peer_breaker peer)) then begin
          Metrics.incr c_refused;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.set_nonblock fd;
          Metrics.incr c_accepted;
          let c =
            {
              c_fd = fd;
              c_peer = peer;
              c_dec = Framing.Decoder.create ();
              c_last_activity = Stopclock.now ();
              c_frame_start = None;
              c_strikes = 0;
              c_open = true;
            }
          in
          if
            send_resp c
              (Wire.Hello
                 {
                   h_shard = "serve";
                   h_pid = Unix.getpid ();
                   h_docs = docs;
                   h_wire = Wire.version;
                 })
          then conns := c :: !conns
        end
  in
  let sweep_timeouts () =
    let now = Stopclock.now () in
    List.iter
      (fun c ->
        if c.c_open then
          match c.c_frame_start with
          | Some t0 when now -. t0 > policy.frame_timeout_s ->
              Metrics.incr c_read_timeouts;
              Breaker.record_failure (peer_breaker c.c_peer)
                ~reason:"slowloris frame";
              disconnect c
          | _ ->
              if
                c.c_frame_start = None
                && now -. c.c_last_activity > policy.idle_timeout_s
              then disconnect c)
      !conns
  in
  (* ---- execution: one admitted request between select rounds ---- *)
  let execute_one () =
    match Queue.take_opt queue with
    | None -> ()
    | Some p when not p.p_conn.c_open -> ()
    | Some p -> (
        let now = Stopclock.now () in
        let queued_ms = (now -. p.p_enq) *. 1000.0 in
        Metrics.observe h_wait_ms queued_ms;
        let nexi = p.p_query.Wire.c_nexi in
        if now >= p.p_deadline then
          (* "never queued past its deadline": admission should make
             this rare, but a drain or an EWMA under-estimate can park
             a request past its budget — shed it rather than run a
             guaranteed-degraded evaluation *)
          shed p.p_conn ~nexi ~k:p.p_k ~code:"deadline"
            ~reason:"deadline expired while queued" ~retry_after_ms:0.0
            ~queued_ms
        else begin
          let deadline_ms = (p.p_deadline -. now) *. 1000.0 in
          match evaluate backend p ~deadline_ms with
          | ca ->
              let dt = Stopclock.now () -. now in
              ewma_service_s := (0.8 *. !ewma_service_s) +. (0.2 *. dt);
              Metrics.observe h_service_ms (dt *. 1000.0);
              if send_resp p.p_conn (Wire.Client_answer ca) then begin
                Metrics.incr c_answered;
                Breaker.record_success (peer_breaker p.p_conn.c_peer)
              end
          | exception Trex_nexi.Parser.Syntax_error { message; pos } ->
              shed p.p_conn ~nexi ~k:p.p_k ~code:"invalid"
                ~reason:
                  (Printf.sprintf "syntax error at byte %d: %s" pos message)
                ~retry_after_ms:0.0 ~queued_ms
          | exception e ->
              shed p.p_conn ~nexi ~k:p.p_k ~code:"error"
                ~reason:("evaluation failed: " ^ Printexc.to_string e)
                ~retry_after_ms:0.0 ~queued_ms
        end)
  in
  let maybe_start_drain () =
    if !drain_requested && not !draining then begin
      draining := true;
      drain_deadline := Stopclock.now () +. policy.drain_budget_s;
      (try Unix.close listen with Unix.Unix_error _ -> ());
      List.iter (fun c -> ignore (send_resp c Wire.Drain)) !conns
    end
  in
  (* One last non-blocking read pass at drain time: a query already on
     the wire when the SIGTERM landed is answered with a typed Shed,
     not destroyed by the RST a close-with-unread-data would send. *)
  let drain_read_and_shed c =
    let rec slurp () =
      match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error _ -> ()
      | 0 -> ()
      | n ->
          Framing.Decoder.feed c.c_dec chunk 0 n;
          slurp ()
    in
    let rec frames () =
      if c.c_open then
        match Framing.Decoder.next c.c_dec with
        | Some payload ->
            (match Wire.decode_request payload with
            | Wire.Ping seq -> ignore (send_resp c (Wire.Pong seq))
            | Wire.Client_query cq ->
                Metrics.incr c_requests;
                shed c ~nexi:cq.Wire.c_nexi ~k:cq.Wire.c_k ~code:"draining"
                  ~reason:"server is draining" ~retry_after_ms:0.0
                  ~queued_ms:0.0
            | Wire.Query _ | Wire.Shutdown -> ()
            | exception Wire.Protocol_error _ -> ());
            frames ()
        | None -> ()
        | exception Framing.Corrupt_frame _ -> disconnect c
    in
    if c.c_open then begin
      slurp ();
      frames ()
    end
  in
  let finish () =
    (* Shed whatever the drain budget didn't cover — a typed goodbye,
       never a dropped request. *)
    Queue.iter
      (fun p ->
        Metrics.incr c_drained;
        journal_refusal journal ~nexi:p.p_query.Wire.c_nexi ~k:p.p_k
          ~disposition:"drained"
          ~queued_ms:((Stopclock.now () -. p.p_enq) *. 1000.0);
        ignore
          (send_resp p.p_conn
             (Wire.Shed
                { retry_after_ms = 0.0; reason = "server is draining" })))
      queue;
    Queue.clear queue;
    List.iter drain_read_and_shed !conns;
    Journal.sync journal;
    Journal.close journal;
    List.iter disconnect !conns;
    close_backend ();
    0
  in
  let rec loop () =
    maybe_start_drain ();
    if
      !draining
      && (Queue.is_empty queue || Stopclock.now () >= !drain_deadline)
    then finish ()
    else begin
      conns := List.filter (fun c -> c.c_open) !conns;
      Metrics.set g_queue_depth (float_of_int (Queue.length queue));
      (match backend with Sharded s -> Supervisor.tick s | Single _ -> ());
      let timeout = if Queue.is_empty queue then 0.2 else 0.0 in
      let rd =
        (if !draining then [] else [ listen ])
        @ List.map (fun c -> c.c_fd) !conns
      in
      (match Unix.select rd [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = listen && not !draining then accept_one ()
              else
                match List.find_opt (fun c -> c.c_fd = fd) !conns with
                | Some c when c.c_open -> read_conn c
                | _ -> ())
            readable);
      sweep_timeouts ();
      execute_one ();
      loop ()
    end
  in
  loop ()

(* ---- client ---- *)

module Client = struct
  exception Unreachable of string

  type t = {
    fd : Unix.file_descr;
    dec : Framing.Decoder.t;
    mutable drained : bool;
  }

  type reply =
    | Answer of Wire.client_answer
    | Shed of { retry_after_ms : float; reason : string }
    | Draining

  let recv t ~timeout_s =
    match
      Framing.recv_deadline ~idle_timeout_s:timeout_s
        ~frame_timeout_s:timeout_s t.fd t.dec
    with
    | Framing.Frame p -> Some (Wire.decode_response p)
    | Framing.Eof -> None
    | Framing.Idle_timeout | Framing.Frame_timeout ->
        raise (Unreachable "reply deadline expired")
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        (* a reset after the server hung up reads the same as EOF *)
        None
    | exception Framing.Corrupt_frame reason ->
        raise (Unreachable ("corrupt frame: " ^ reason))
    | exception Wire.Protocol_error reason ->
        raise (Unreachable ("protocol error: " ^ reason))

  let connect ?(timeout_s = 5.0) addr =
    let sa =
      try sockaddr_of_string addr
      with Invalid_argument msg -> raise (Unreachable msg)
    in
    match connect_with_timeout sa ~timeout_s with
    | None ->
        raise
          (Unreachable
             (Printf.sprintf "connect to %s refused or timed out" addr))
    | Some fd -> (
        let t = { fd; dec = Framing.Decoder.create (); drained = false } in
        let fail e =
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
        in
        match recv t ~timeout_s with
        | Some (Wire.Hello _) -> t
        | Some _ -> fail (Unreachable "unexpected greeting")
        | None -> fail (Unreachable "server hung up during the handshake")
        | exception e -> fail e)

  let send t req =
    try Framing.append t.fd (Wire.encode_request req)
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      raise (Unreachable "server hung up")

  let collect_terminal ?(timeout_s = 30.0) t =
    let deadline = Stopclock.now () +. timeout_s in
    let rec wait () =
      let remaining = deadline -. Stopclock.now () in
      if remaining <= 0.0 then raise (Unreachable "reply deadline expired");
      match recv t ~timeout_s:remaining with
      | Some (Wire.Client_answer a) -> Answer a
      | Some (Wire.Shed { retry_after_ms; reason }) ->
          Shed { retry_after_ms; reason }
      | Some Wire.Drain ->
          (* the server is going away but may still answer or shed the
             in-flight request: keep waiting for its terminal frame *)
          t.drained <- true;
          wait ()
      | Some (Wire.Hello _ | Wire.Pong _ | Wire.Answer _) -> wait ()
      | None -> if t.drained then Draining else raise (Unreachable "server hung up")
    in
    wait ()

  let request ?timeout_s t cq =
    send t (Wire.Client_query cq);
    collect_terminal ?timeout_s t

  let ping ?(timeout_s = 5.0) t =
    match send t (Wire.Ping 0x7eaced) with
    | exception Unreachable _ -> false
    | () -> (
        let rec wait () =
          match recv t ~timeout_s with
          | Some (Wire.Pong seq) -> seq = 0x7eaced
          | Some _ -> wait ()
          | None -> false
        in
        try wait () with Unreachable _ -> false)

  let fd t = t.fd
  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
