(** trex_serve: an overload-safe network front door.

    [trex_cli serve --dir D --addr HOST:PORT] runs a single-threaded
    daemon that accepts {!Trex_shard.Wire} client conversations
    ([Client_query] in, [Client_answer]/[Shed]/[Drain] out over the
    same CRC-framed transport the shard workers speak) and evaluates
    them against [D] — through {!Trex.query} when [D] is a plain index
    environment, or through a {!Trex_shard.Supervisor} (process-isolated
    or remote workers) when [D] is a shard-coordinator directory.

    The contract extends "never wrong, possibly partial, always
    tagged" with "never queued past its deadline":

    - {b Shed before queue.} Every request carries (or is assigned) a
      deadline. If the bounded queue is full, or the estimated backlog
      wall time (queue depth x EWMA service time) already exceeds the
      request's deadline, the server answers a typed
      [Shed { retry_after_ms; reason }] {e immediately} — overload
      makes the server fast and honest, never silently slow. A request
      that was admitted but reaches the head of the queue past its
      deadline is shed, not run.
    - {b Guard slices.} An admitted request runs under a
      {!Trex_resilience.Guard} carved from whatever remains of its
      deadline (and its page budget), both clamped by server
      {!policy} — a client cannot ask one query to hold the event loop
      hostage. Degraded evaluations return tagged partials exactly as
      the underlying engine reports them.
    - {b Slowloris defense.} A connection that starts a frame and
      dribbles it is cut off once the frame is [frame_timeout_s] old —
      mirroring {!Trex_util.Framing.recv_deadline}'s anchored-deadline
      semantics inside the select loop; silent connections are closed
      after [idle_timeout_s]. Both disconnect the peer, never stall
      the server.
    - {b Connection breakers.} Protocol violations (worker-protocol
      frames on the client port, undecodable requests) strike the
      peer's per-IP {!Trex_resilience.Breaker}; corrupt frames and
      write stalls disconnect immediately. A tripped peer is refused
      at accept until the cooldown elapses.
    - {b Graceful drain.} SIGTERM/SIGINT stop the accept loop,
      broadcast [Drain], then finish or shed the queued work within
      [drain_budget_s]; the serve journal is fsynced and {!run}
      returns 0. A client never sees a torn frame: every admitted
      request terminates as exactly one of answer, tagged partial, or
      [Shed].

    Observability: [serve.*] counters (accepts, answers, sheds,
    drains, strikes, timeouts) and a dedicated append-only journal
    ([D/serve_journal.qj]) recording every shed or drained request
    with its reason. *)

(** {1 Policy} *)

type policy = {
  queue_limit : int;  (** admitted-but-unstarted requests (default 32) *)
  default_deadline_ms : float;
      (** deadline assigned to requests that carry none (default 2000) *)
  max_deadline_ms : float;
      (** clamp on client-requested deadlines (default 30_000) *)
  max_page_budget : int option;
      (** clamp on client-requested page budgets (default [Some 500_000]) *)
  max_k : int;  (** clamp on requested k (default 1000) *)
  frame_timeout_s : float;
      (** max age of an incomplete request frame (default 10) *)
  idle_timeout_s : float;
      (** close connections silent this long (default 300) *)
  write_timeout_s : float;
      (** a client that won't drain its answer is disconnected
          (default 10) *)
  breaker_strikes : int;
      (** protocol violations before the peer's breaker trips
          (default 3) *)
  breaker_cooldown_s : float;
      (** how long a tripped peer is refused at accept (default 30) *)
  drain_budget_s : float;
      (** SIGTERM: finish or shed queued work within this bound
          (default 5) *)
}

val default_policy : policy

(** {1 Server} *)

val run :
  ?policy:policy ->
  ?remote:(string * string) list ->
  ?listen_fd:Unix.file_descr ->
  ?on_ready:(string -> unit) ->
  dir:string ->
  addr:string ->
  unit ->
  int
(** Serve [dir] on [addr] ("HOST:PORT"; port 0 binds an ephemeral
    port) until a drain completes; returns the process exit code (0 on
    clean drain). [dir] containing [SHARDMAP.json] is served through a
    supervisor ([remote] names shards served by {!
    Trex_shard.Supervisor.worker_listen} processes, as in
    {!Trex_shard.Supervisor.create}); any other [dir] is attached as a
    plain index environment. [on_ready] is called once with the actual
    bound ["HOST:PORT"] before the first accept. [listen_fd] hands the
    server an already-bound, already-listening socket (tests bind port
    0 in the parent, fork, and pass the fd — no port race); [addr] is
    then only documentation. Installs SIGTERM/SIGINT handlers that
    request a drain. *)

(** {1 Client} *)

module Client : sig
  (** The matching front-door client: connect, speak one or more
      requests, interpret the typed replies. Reads run under
      {!Trex_util.Framing.recv_deadline}, so a stalled or vanished
      server surfaces as {!Unreachable}, never a hang. *)

  exception Unreachable of string
  (** Connect refused/timed out, server hung up, or reply deadline
      expired. *)

  type t

  type reply =
    | Answer of Trex_shard.Wire.client_answer
    | Shed of { retry_after_ms : float; reason : string }
    | Draining

  val connect : ?timeout_s:float -> string -> t
  (** Connect to ["HOST:PORT"] and consume the server's [Hello]
      (wire-version checked by decoding). Default timeout 5s, covering
      both the TCP connect and the handshake. *)

  val request :
    ?timeout_s:float -> t -> Trex_shard.Wire.client_query -> reply
  (** Send one query and wait for its terminal reply (default timeout
      30s). A [Drain] broadcast racing ahead of the answer is folded
      into the wait: the reply is whatever terminal frame the server
      sends for {e this} request, [Draining] only if the connection
      drains/closes without one. *)

  val send : t -> Trex_shard.Wire.request -> unit
  (** Fire one raw request frame without waiting — the pipelining
      half of {!collect_terminal}. *)

  val collect_terminal : ?timeout_s:float -> t -> reply
  (** Wait for the next terminal frame ([Client_answer] or [Shed]),
      folding [Drain]/heartbeat frames into the wait as {!request}
      does. With [n] pipelined {!send}s, [n] collects see each
      request's fate exactly once, in order. *)

  val fd : t -> Unix.file_descr
  (** The raw connection — for tests that must misbehave on it. *)

  val ping : ?timeout_s:float -> t -> bool
  (** Liveness probe: [Ping]/[Pong] roundtrip. *)

  val close : t -> unit
end
