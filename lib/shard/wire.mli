(** Coordinator ↔ shard-worker wire messages.

    The supervisor and its worker processes speak JSON payloads inside
    {!Trex_util.Framing} CRC32 frames over a socketpair. JSON keeps the
    protocol debuggable (a captured frame is readable) and the printer's
    [%.17g] floats round-trip [float] exactly, so scores cross the wire
    bit-identical and the coordinator's merged ranking matches the
    single-environment engine answer for answer.

    Docids in {!answer} are {e shard-local}; the coordinator adds the
    shard's base. Decoding a malformed payload raises {!Protocol_error}
    — like a CRC failure, it is connection-fatal (the supervisor treats
    it as a worker failure and restarts the process).

    {b Versioning.} [version] is the wire revision both ends must
    share. A worker announces its version in {!response.Hello}; the
    coordinator's decoder raises {!Protocol_error} on a mismatch (or a
    missing version field, which identifies a v1 worker), and a newer
    worker decoding an older coordinator's query fails on the missing
    telemetry fields — a mid-upgrade mixed fleet fails loud in both
    directions instead of silently dropping telemetry. *)

exception Protocol_error of string

val version : int
(** Current wire revision (2: per-query telemetry harvest). *)

type query = {
  q_nexi : string;
  q_k : int;
  q_method : Trex_topk.Strategy.method_ option;  (** force one method *)
  q_strict : bool;
  q_floor : float;  (** global k-th score at dispatch time *)
  q_deadline_ms : float option;  (** this worker's slice of the deadline *)
  q_page_budget : int option;  (** this worker's slice of the page budget *)
  q_scoring : Trex_scoring.Scorer.config;
  q_fault : string option;
      (** one-shot fault to arm before evaluating, ["action:point"]
          (e.g. ["kill:pre-reply"]) — see {!Supervisor.worker_main} *)
  q_trace : bool;
      (** collect a span tree during evaluation and ship it in the
          answer *)
  q_journal : bool;
      (** build (not persist) a journal record and ship it in the
          answer *)
  q_trace_id : string option;
      (** coordinator-chosen id stamped on the worker's root span so a
          multi-query trace stays attributable *)
}

type request = Ping of int  (** heartbeat, echo the seq *) | Query of query | Shutdown

type answer = {
  a_degraded : bool;  (** the worker's guard expired mid-evaluation *)
  a_method : Trex_topk.Strategy.method_ option;
      (** [None]: no matching structure in this shard (empty success) *)
  a_entries_read : int;
  a_elapsed_s : float;
  a_pages_used : int;  (** physical page reads charged to the budget *)
  a_answers : Trex_topk.Answer.t;  (** shard-local docids *)
  a_spans : Trex_obs.Span.t list;
      (** the worker's span tree for this query ([] unless
          [q_trace]) *)
  a_counters : (string * int) list;
      (** registry counter delta over the evaluation — what the
          coordinator folds into its own registry *)
  a_journal : Trex_obs.Journal.record option;
      (** the worker's journal record ([None] unless [q_journal]);
          built with {!Trex_obs.Journal.build_record}, never persisted
          worker-side *)
}

type response =
  | Hello of { h_shard : string; h_pid : int; h_docs : int; h_wire : int }
      (** readiness handshake, sent once after the worker attaches;
          [h_wire] must equal [version] or decoding fails *)
  | Pong of int
  | Answer of answer

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
