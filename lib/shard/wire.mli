(** Coordinator ↔ shard-worker and client ↔ server wire messages.

    The supervisor and its worker processes — and, since v3, front-door
    clients and the {!Trex_serve} daemon, plus remote (TCP) shard
    workers — speak JSON payloads inside {!Trex_util.Framing} CRC32
    frames over a socketpair or TCP stream. JSON keeps the protocol
    debuggable (a captured frame is readable) and the printer's
    [%.17g] floats round-trip [float] exactly, so scores cross the wire
    bit-identical and the coordinator's merged ranking matches the
    single-environment engine answer for answer.

    Docids in {!answer} are {e shard-local}; the coordinator adds the
    shard's base. Decoding a malformed payload raises {!Protocol_error}
    — like a CRC failure, it is connection-fatal (the supervisor treats
    it as a worker failure and restarts the process).

    {b Versioning.} [version] is the wire revision both ends must
    share. A worker announces its version in {!response.Hello}; the
    coordinator's decoder raises {!Protocol_error} on a mismatch (or a
    missing version field, which identifies a v1 worker), and a newer
    worker decoding an older coordinator's query fails on the missing
    telemetry fields — a mid-upgrade mixed fleet fails loud in both
    directions instead of silently dropping telemetry. *)

exception Protocol_error of string

val version : int
(** Current wire revision (3: client serving messages + remote
    workers; 2 added the per-query telemetry harvest). *)

type query = {
  q_nexi : string;
  q_k : int;
  q_method : Trex_topk.Strategy.method_ option;  (** force one method *)
  q_strict : bool;
  q_floor : float;  (** global k-th score at dispatch time *)
  q_deadline_ms : float option;  (** this worker's slice of the deadline *)
  q_page_budget : int option;  (** this worker's slice of the page budget *)
  q_scoring : Trex_scoring.Scorer.config;
  q_fault : string option;
      (** one-shot fault to arm before evaluating, ["action:point"]
          (e.g. ["kill:pre-reply"]) — see {!Supervisor.worker_main} *)
  q_trace : bool;
      (** collect a span tree during evaluation and ship it in the
          answer *)
  q_journal : bool;
      (** build (not persist) a journal record and ship it in the
          answer *)
  q_trace_id : string option;
      (** coordinator-chosen id stamped on the worker's root span so a
          multi-query trace stays attributable *)
}

(** A front-door client's request. Unlike {!query} it carries no
    floor, scoring, fault, or telemetry knobs — those belong to the
    coordinator↔worker conversation. The deadline and page budget are
    {e requests}: the server clamps them to its own policy before
    carving a {!Trex_resilience.Guard} slice. *)
type client_query = {
  c_nexi : string;
  c_k : int;
  c_method : Trex_topk.Strategy.method_ option;
  c_strict : bool;
  c_deadline_ms : float option;
  c_page_budget : int option;
}

type request =
  | Ping of int  (** heartbeat, echo the seq *)
  | Query of query
  | Client_query of client_query
  | Shutdown

type answer = {
  a_degraded : bool;  (** the worker's guard expired mid-evaluation *)
  a_method : Trex_topk.Strategy.method_ option;
      (** [None]: no matching structure in this shard (empty success) *)
  a_entries_read : int;
  a_elapsed_s : float;
  a_pages_used : int;  (** physical page reads charged to the budget *)
  a_answers : Trex_topk.Answer.t;  (** shard-local docids *)
  a_spans : Trex_obs.Span.t list;
      (** the worker's span tree for this query ([] unless
          [q_trace]) *)
  a_counters : (string * int) list;
      (** registry counter delta over the evaluation — what the
          coordinator folds into its own registry *)
  a_journal : Trex_obs.Journal.record option;
      (** the worker's journal record ([None] unless [q_journal]);
          built with {!Trex_obs.Journal.build_record}, never persisted
          worker-side *)
}

(** What a front-door client gets back: global docids, the "never
    wrong, possibly partial, always tagged" contract on the wire. *)
type client_answer = {
  ca_answers : Trex_topk.Answer.t;  (** global (coordinator) docids *)
  ca_k : int;
  ca_degraded : bool;
  ca_tags : (string * string) list;
      (** (source, reason) for every degradation — shard names under a
          coordinator, table/strategy names under a single env *)
  ca_method : string option;
  ca_elapsed_s : float;  (** server-side evaluation wall time *)
}

type response =
  | Hello of { h_shard : string; h_pid : int; h_docs : int; h_wire : int }
      (** readiness handshake, sent once after the worker attaches (or
          by the serve daemon on accept); [h_wire] must equal [version]
          or decoding fails *)
  | Pong of int
  | Answer of answer
  | Client_answer of client_answer
  | Shed of { retry_after_ms : float; reason : string }
      (** admission control refused the request {e before} queueing it:
          try again after [retry_after_ms]. Terminal for the request,
          not the connection. *)
  | Drain
      (** the server is draining (SIGTERM): it will not accept new
          work; finish reading in-flight replies and reconnect
          elsewhere *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
