module Json = Trex_obs.Json
module Span = Trex_obs.Span
module Journal = Trex_obs.Journal
module Strategy = Trex_topk.Strategy
module Answer = Trex_topk.Answer
module Types = Trex_invindex.Types
module Scorer = Trex_scoring.Scorer

exception Protocol_error of string

(* Bumped whenever a message gains or changes a field. The worker
   announces its version in Hello; the coordinator refuses a mismatch
   (and an old worker that never sends one). A version-2 worker decoding
   a version-1 query fails on the missing telemetry fields — so a mixed
   fleet fails loud in both directions rather than silently dropping
   telemetry. Version 3 adds the client-facing serving messages
   (Client_query / Client_answer / Shed / Drain) and remote worker
   endpoints; the same Hello equality check covers servers and remote
   workers, so a mid-upgrade mixed fleet still fails loud. *)
let version = 3

type query = {
  q_nexi : string;
  q_k : int;
  q_method : Strategy.method_ option;
  q_strict : bool;
  q_floor : float;
  q_deadline_ms : float option;
  q_page_budget : int option;
  q_scoring : Scorer.config;
  q_fault : string option;
  q_trace : bool;
  q_journal : bool;
  q_trace_id : string option;
}

(* What a front-door client asks: no floor/scoring/fault/telemetry
   knobs — those belong to the coordinator↔worker conversation. The
   deadline and page budget are {e requests}; the server clamps them
   to its own policy. *)
type client_query = {
  c_nexi : string;
  c_k : int;
  c_method : Strategy.method_ option;
  c_strict : bool;
  c_deadline_ms : float option;
  c_page_budget : int option;
}

type request = Ping of int | Query of query | Client_query of client_query | Shutdown

type answer = {
  a_degraded : bool;
  a_method : Strategy.method_ option;
  a_entries_read : int;
  a_elapsed_s : float;
  a_pages_used : int;
  a_answers : Answer.t;
  a_spans : Span.t list;
  a_counters : (string * int) list;
  a_journal : Journal.record option;
}

type client_answer = {
  ca_answers : Answer.t;
  ca_k : int;
  ca_degraded : bool;
  ca_tags : (string * string) list;
  ca_method : string option;
  ca_elapsed_s : float;
}

type response =
  | Hello of { h_shard : string; h_pid : int; h_docs : int; h_wire : int }
  | Pong of int
  | Answer of answer
  | Client_answer of client_answer
  | Shed of { retry_after_ms : float; reason : string }
  | Drain

(* ---- field accessors (decode side) ---- *)

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let get field j =
  match Json.member field j with
  | Some v -> v
  | None -> fail "missing field %S" field

let get_int field j =
  match get field j with Json.Int i -> i | _ -> fail "field %S: expected int" field

let get_float field j =
  match get field j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> fail "field %S: expected number" field

let get_bool field j =
  match get field j with
  | Json.Bool b -> b
  | _ -> fail "field %S: expected bool" field

let opt_member field j =
  match Json.member field j with Some Json.Null | None -> None | Some v -> Some v

let method_of_string s =
  match
    List.find_opt (fun m -> Strategy.method_to_string m = s) Strategy.all_methods
  with
  | Some m -> m
  | None -> fail "unknown method %S" s

let opt_field field f = function None -> [] | Some v -> [ (field, f v) ]

(* ---- scoring config ---- *)

let scoring_to_json = function
  | Scorer.Bm25 { k1; b } ->
      Json.Obj [ ("bm25", Json.Obj [ ("k1", Json.Float k1); ("b", Json.Float b) ]) ]
  | Scorer.Tf_idf -> Json.String "tf_idf"

let scoring_of_json = function
  | Json.String "tf_idf" -> Scorer.Tf_idf
  | Json.Obj _ as j -> (
      match Json.member "bm25" j with
      | Some o -> Scorer.Bm25 { k1 = get_float "k1" o; b = get_float "b" o }
      | None -> fail "scoring: unknown config")
  | _ -> fail "scoring: unknown config"

(* ---- answers ---- *)

let entry_to_json (e : Answer.entry) =
  let el = e.Answer.element in
  Json.Obj
    [
      ("sid", Json.Int el.Types.sid);
      ("docid", Json.Int el.Types.docid);
      ("endpos", Json.Int el.Types.endpos);
      ("length", Json.Int el.Types.length);
      ("score", Json.Float e.Answer.score);
    ]

let entry_of_json j =
  {
    Answer.element =
      {
        Types.sid = get_int "sid" j;
        docid = get_int "docid" j;
        endpos = get_int "endpos" j;
        length = get_int "length" j;
      };
    score = get_float "score" j;
  }

(* ---- requests ---- *)

let encode_request r =
  let j =
    match r with
    | Ping seq -> Json.Obj [ ("ping", Json.Int seq) ]
    | Shutdown -> Json.Obj [ ("shutdown", Json.Bool true) ]
    | Client_query c ->
        Json.Obj
          (("client_query", Json.String c.c_nexi)
          :: ("k", Json.Int c.c_k)
          :: ("strict", Json.Bool c.c_strict)
          :: (opt_field "method"
                (fun m -> Json.String (Strategy.method_to_string m))
                c.c_method
             @ opt_field "deadline_ms" (fun f -> Json.Float f) c.c_deadline_ms
             @ opt_field "page_budget" (fun i -> Json.Int i) c.c_page_budget))
    | Query q ->
        Json.Obj
          (("query", Json.String q.q_nexi)
          :: ("k", Json.Int q.q_k)
          :: ("strict", Json.Bool q.q_strict)
          :: ("floor", Json.Float q.q_floor)
          :: ("scoring", scoring_to_json q.q_scoring)
          :: ("trace", Json.Bool q.q_trace)
          :: ("journal", Json.Bool q.q_journal)
          :: (opt_field "method"
                (fun m -> Json.String (Strategy.method_to_string m))
                q.q_method
             @ opt_field "deadline_ms" (fun f -> Json.Float f) q.q_deadline_ms
             @ opt_field "page_budget" (fun i -> Json.Int i) q.q_page_budget
             @ opt_field "fault" (fun s -> Json.String s) q.q_fault
             @ opt_field "trace_id" (fun s -> Json.String s) q.q_trace_id))
  in
  Json.to_string j

let decode_request s =
  let j = try Json.parse s with Json.Parse_error e -> fail "bad request JSON: %s" e in
  match
    ( Json.member "ping" j,
      Json.member "shutdown" j,
      Json.member "client_query" j,
      Json.member "query" j )
  with
  | Some (Json.Int seq), _, _, _ -> Ping seq
  | _, Some _, _, _ -> Shutdown
  | _, _, Some (Json.String nexi), _ ->
      Client_query
        {
          c_nexi = nexi;
          c_k = get_int "k" j;
          c_method =
            Option.map
              (function Json.String s -> method_of_string s | _ -> fail "method")
              (opt_member "method" j);
          c_strict = get_bool "strict" j;
          c_deadline_ms =
            Option.map
              (function
                | Json.Float f -> f
                | Json.Int i -> float_of_int i
                | _ -> fail "deadline_ms")
              (opt_member "deadline_ms" j);
          c_page_budget =
            Option.map
              (function Json.Int i -> i | _ -> fail "page_budget")
              (opt_member "page_budget" j);
        }
  | _, _, _, Some (Json.String nexi) ->
      Query
        {
          q_nexi = nexi;
          q_k = get_int "k" j;
          q_method =
            Option.map
              (function Json.String s -> method_of_string s | _ -> fail "method")
              (opt_member "method" j);
          q_strict = get_bool "strict" j;
          q_floor = get_float "floor" j;
          q_deadline_ms =
            Option.map
              (function
                | Json.Float f -> f
                | Json.Int i -> float_of_int i
                | _ -> fail "deadline_ms")
              (opt_member "deadline_ms" j);
          q_page_budget =
            Option.map
              (function Json.Int i -> i | _ -> fail "page_budget")
              (opt_member "page_budget" j);
          q_scoring = scoring_of_json (get "scoring" j);
          q_fault =
            Option.map
              (function Json.String s -> s | _ -> fail "fault")
              (opt_member "fault" j);
          (* Required since wire v2: a coordinator that omits them is a
             version-1 binary and must fail loud, not run untelemetered. *)
          q_trace = get_bool "trace" j;
          q_journal = get_bool "journal" j;
          q_trace_id =
            Option.map
              (function Json.String s -> s | _ -> fail "trace_id")
              (opt_member "trace_id" j);
        }
  | _ -> fail "unrecognized request"

(* ---- responses ---- *)

let encode_response r =
  let j =
    match r with
    | Hello { h_shard; h_pid; h_docs; h_wire } ->
        Json.Obj
          [
            ("hello", Json.String h_shard);
            ("pid", Json.Int h_pid);
            ("docs", Json.Int h_docs);
            ("wire", Json.Int h_wire);
          ]
    | Pong seq -> Json.Obj [ ("pong", Json.Int seq) ]
    | Shed { retry_after_ms; reason } ->
        Json.Obj
          [ ("shed", Json.Float retry_after_ms); ("reason", Json.String reason) ]
    | Drain -> Json.Obj [ ("drain", Json.Bool true) ]
    | Client_answer ca ->
        Json.Obj
          (("client_answer", Json.Bool true)
          :: ("answers", Json.List (List.map entry_to_json ca.ca_answers))
          :: ("k", Json.Int ca.ca_k)
          :: ("degraded", Json.Bool ca.ca_degraded)
          :: ( "tags",
               Json.List
                 (List.map
                    (fun (n, r) -> Json.List [ Json.String n; Json.String r ])
                    ca.ca_tags) )
          :: ("elapsed_s", Json.Float ca.ca_elapsed_s)
          :: opt_field "method" (fun s -> Json.String s) ca.ca_method)
    | Answer a ->
        Json.Obj
          (("degraded", Json.Bool a.a_degraded)
          :: ("entries_read", Json.Int a.a_entries_read)
          :: ("elapsed_s", Json.Float a.a_elapsed_s)
          :: ("pages_used", Json.Int a.a_pages_used)
          :: ("answers", Json.List (List.map entry_to_json a.a_answers))
          :: ("spans", Span.to_json a.a_spans)
          :: ( "counters",
               Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) a.a_counters)
             )
          :: (opt_field "method"
                (fun m -> Json.String (Strategy.method_to_string m))
                a.a_method
             @ opt_field "journal" Journal.record_to_json a.a_journal))
  in
  Json.to_string j

let decode_tags j =
  match Json.member "tags" j with
  | Some (Json.List l) ->
      List.map
        (function
          | Json.List [ Json.String n; Json.String r ] -> (n, r)
          | _ -> fail "tags")
        l
  | _ -> fail "tags"

let decode_response s =
  let j = try Json.parse s with Json.Parse_error e -> fail "bad response JSON: %s" e in
  match Json.member "shed" j with
  | Some v ->
      let retry_after_ms =
        match v with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> fail "shed: expected number"
      in
      let reason =
        match Json.member "reason" j with
        | Some (Json.String r) -> r
        | _ -> "overloaded"
      in
      Shed { retry_after_ms; reason }
  | None -> (
  match Json.member "drain" j with
  | Some _ -> Drain
  | None -> (
  match Json.member "client_answer" j with
  | Some _ ->
      let entries =
        match Json.member "answers" j with
        | Some (Json.List l) -> List.map entry_of_json l
        | _ -> fail "client_answer: missing answers"
      in
      Client_answer
        {
          ca_answers = entries;
          ca_k = get_int "k" j;
          ca_degraded = get_bool "degraded" j;
          ca_tags = decode_tags j;
          ca_method =
            Option.map
              (function Json.String s -> s | _ -> fail "method")
              (opt_member "method" j);
          ca_elapsed_s = get_float "elapsed_s" j;
        }
  | None -> (
  match (Json.member "hello" j, Json.member "pong" j, Json.member "answers" j) with
  | Some (Json.String shard), _, _ ->
      let h_wire =
        match Json.member "wire" j with
        | Some (Json.Int v) -> v
        | Some _ -> fail "field \"wire\": expected int"
        | None ->
            fail
              "wire version mismatch: worker %S predates versioning (wire v1), \
               coordinator speaks v%d"
              shard version
      in
      if h_wire <> version then
        fail "wire version mismatch: worker %S speaks v%d, coordinator v%d"
          shard h_wire version;
      Hello
        { h_shard = shard; h_pid = get_int "pid" j; h_docs = get_int "docs" j;
          h_wire }
  | _, Some (Json.Int seq), _ -> Pong seq
  | _, _, Some (Json.List entries) ->
      Answer
        {
          a_degraded = get_bool "degraded" j;
          a_method =
            Option.map
              (function Json.String s -> method_of_string s | _ -> fail "method")
              (opt_member "method" j);
          a_entries_read = get_int "entries_read" j;
          a_elapsed_s = get_float "elapsed_s" j;
          a_pages_used = get_int "pages_used" j;
          a_answers = List.map entry_of_json entries;
          (* Telemetry decode is lenient: versioning is enforced at the
             Hello handshake, and a missing payload degrades to "no
             telemetry", never to a poisoned merge. *)
          a_spans =
            (match Json.member "spans" j with
            | Some (Json.List _ as l) -> Span.of_json l
            | _ -> []);
          a_counters =
            (match Json.member "counters" j with
            | Some (Json.Obj fields) ->
                List.filter_map
                  (fun (n, v) ->
                    match v with Json.Int i -> Some (n, i) | _ -> None)
                  fields
            | _ -> []);
          a_journal = Option.bind (opt_member "journal" j) Journal.record_of_json;
        }
  | _ -> fail "unrecognized response")))
