(** Process-isolated shard workers: supervised scatter-gather.

    The in-process coordinator ({!Shard.query}) contains shard faults
    only as far as OCaml exceptions reach — a segfault, a runaway
    allocation or a wedged loop in one shard takes the whole engine
    down. This supervisor moves each shard into its own worker process
    ([trex_cli shard-worker], fork/exec'd from the coordinator) and
    speaks {!Wire} messages over a socketpair, so the blast radius of
    any shard failure is one process:

    - {b Lifecycle.} Each worker is spawned, handshaken (it sends
      [Hello] once its index is attached), heartbeated ([Ping]/[Pong]
      while idle), and on any death — exit, EPIPE, heartbeat timeout,
      deadline kill, protocol corruption — restarted with capped
      exponential backoff from a {!Trex_resilience.Retry.policy}. After
      [max_restarts] consecutive restarts without a successful answer
      the shard's {!Trex_resilience.Breaker} is tripped (escalation):
      queries degrade to tagged partials until the cooldown elapses,
      then one respawn is admitted as the half-open probe.
    - {b Scatter.} {!query} dispatches to all ready workers
      concurrently (waves of [fanout]), threading the global k-th-score
      floor at each wave and carving each worker's deadline/page-budget
      slice from what remains; a worker that blows its deadline slice
      is SIGKILLed and restarted. Results merge exactly as the
      in-process coordinator's — same floor filter, same base offsets —
      so a query over all-healthy workers is answer-identical to
      {!Shard.query} and to the single-environment engine.
    - {b Worker state machine.} [Starting → Ready ⇄ Busy], any death →
      [Stopped(backoff)] → [Starting]; restarts exhausted →
      [Escalated] → (breaker cooldown) → [Starting] as probe. See
      DESIGN.md §6.
    - {b Telemetry harvest.} When span tracing / journaling is enabled
      coordinator-side, each dispatch asks the worker to trace and to
      build (not persist) a journal record; the answer ships the
      worker's span tree, a registry counter delta, and that record.
      The coordinator grafts the span tree under a [supervisor.worker]
      span, folds the counter delta into its own registry (merged
      totals plus per-shard [worker.<shard>.*] views), and appends one
      coordinator-level record per supervised query — with per-shard
      breakdown — to [<dir>/query_journal.qj]. A worker that dies
      mid-query leaves a tagged partial trace and contributes nothing
      to the registry or journal: telemetry degrades, it never lies.

    The supervisor is single-threaded: heartbeats and restarts advance
    inside {!query}, {!tick} and {!await_healthy} — an idle coordinator
    must call {!tick} periodically (the CLI and tests do). *)

type config = {
  heartbeat_interval_s : float;  (** idle ping cadence (default 0.5) *)
  heartbeat_timeout_s : float;
      (** no [Pong]/[Hello] for this long → kill and restart
          (default 2.0); also bounds the readiness handshake *)
  deadline_grace_ms : float;
      (** slack past a worker's deadline slice before it is killed
          (default 250) — covers wire and scheduling latency *)
  max_restarts : int;
      (** consecutive restarts (no successful answer between) before
          escalating to the breaker (default 3) *)
  restart_policy : Trex_resilience.Retry.policy;
      (** backoff schedule between restarts ([sleep] is unused — the
          supervisor schedules respawns on its own clock). The schedule
          is salted per shard, so a {!Trex_resilience.Retry.Decorrelated}
          policy keeps a fleet of reconnecting remote workers from
          thundering-herding; the default [No_jitter] stays
          bit-replayable *)
  connect_timeout_s : float;
      (** bound on a remote (TCP) worker connect (default 1.0); a
          refused or timed-out connect counts as a worker death and
          follows the same backoff/escalation path *)
}

val default_config : config

type worker_state = Starting | Ready | Busy | Stopped | Escalated

type worker_health = {
  w_shard : string;
  w_state : worker_state;
  w_pid : int option;  (** [None] when no process is running *)
  w_restarts : int;  (** consecutive restarts since the last answer *)
  w_total_restarts : int;
      (** lifetime worker deaths (restarts + escalations), never
          reset — the "how flaky has this shard been" number *)
  w_breaker : Trex_resilience.Breaker.state;
  w_beat_age_s : float option;
      (** seconds since the last sign of life (hello/pong/answer) *)
}

type t

val create :
  ?config:config ->
  ?scoring:Trex_scoring.Scorer.config ->
  ?remote:(string * string) list ->
  string ->
  t
(** Open coordinator directory [dir] in process-isolated mode: read the
    shard map, sweep stale worker artifacts, and spawn one worker per
    shard (handshakes complete asynchronously — see {!await_healthy}).
    Ignores [SIGPIPE] process-wide (a dead worker must surface as
    [EPIPE], not kill the coordinator). Rebalance recovery is {e not}
    run; open the directory with {!Shard.open_} first if operations may
    be pending.

    [remote] maps shard names to ["HOST:PORT"] addresses of long-lived
    {!worker_listen} processes. A remote shard's "spawn" is a bounded
    TCP connect; every other part of the state machine — Hello
    handshake, heartbeats, deadline kills (a dropped connection), the
    telemetry harvest, backoff restarts, breaker escalation — is
    identical to a local worker, and reconnects follow the same
    (optionally jittered) restart policy. Unknown names raise
    [Invalid_argument]. *)

val close : t -> unit
(** Politely [Shutdown] every worker, reap stragglers with SIGKILL. *)

val dir : t -> string
val shards : t -> Shard.shard_info list

val breaker : t -> string -> Trex_resilience.Breaker.t
(** The named shard's breaker (escalation target). *)

val worker_pid : t -> string -> int option
(** The live worker process for a shard, if any — this is how the kill
    matrix aims its external [SIGKILL]s (the "pre-scatter" point). *)

val health : t -> worker_health list

val tick : t -> unit
(** Advance supervision: pump worker fds, send due heartbeats, kill
    heartbeat-timeouts, respawn workers whose backoff elapsed, admit
    escalated workers' half-open probes. Non-blocking. *)

val await_healthy : ?timeout_s:float -> t -> bool
(** Drive {!tick} until every worker is [Ready] (true) or the timeout
    elapses (false, default 5s). Escalated workers count as unhealthy:
    callers that expect them to recover must clear or shorten the
    breaker cooldown first. *)

val set_fault : t -> shard:string -> string option -> unit
(** Arm a one-shot ["action:point"] fault to ride along on the next
    query dispatched to [shard] (see {!worker_main}); [None] disarms. *)

val query :
  t ->
  ?k:int ->
  ?method_:Trex_topk.Strategy.method_ ->
  ?strict:bool ->
  ?deadline_ms:float ->
  ?page_budget:int ->
  ?fanout:int ->
  string ->
  Shard.result
(** Scatter a NEXI query across the workers in waves of [fanout]
    (default: all at once), gather and merge. Identical semantics to
    {!Shard.query}: the floor is the global k-th score at each wave's
    dispatch; [deadline_ms]/[page_budget] bound the whole query, each
    wave receiving the remainder (pages split evenly across the wave);
    every shard that could not contribute fully — worker dead,
    restarting, escalated, killed for its deadline, budget exhausted
    before dispatch — is tagged in [degraded_shards] and the answers
    remain a sound ranking of the surviving shards' holdings. *)

val worker_main : dir:string -> shard:string -> unit -> 'a
(** The worker-process entry point ([trex_cli shard-worker --dir D
    --shard S] — and the test/bench executables dispatch here too,
    since workers exec their parent's binary). Attaches the shard with
    corpus-wide scoring overrides, writes [worker.pid], answers
    {!Wire} requests over stdin/stdout (the protocol fds are dup'd
    away and stdout is re-pointed at stderr first, so stray prints
    cannot tear frames), and exits on [Shutdown] or EOF. Never
    returns.

    Fault arming (for the kill matrix): a query's [q_fault] — or the
    [TREX_WORKER_FAULT] environment variable at startup — arms one
    ["action:point"] fault, where action ∈ [kill] (SIGKILL self),
    [exit] (exit 3), [stop] (SIGSTOP self, the heartbeat wedge),
    [wedge] (sleep forever), [stale-pong] (answer the next [Ping] with
    a stale sequence number — a heartbeat-integrity fault, point
    [ping]) and point ∈ [mid-decode] (before evaluating), [pre-reply]
    (after evaluating, before the answer frame), [post-reply] (after
    the answer frame), [ping] (on the next heartbeat). Faults fire
    once and disarm. *)

val worker_listen : dir:string -> shard:string -> addr:string -> unit -> 'a
(** The remote-worker entry point ([trex_cli shard-worker --dir D
    --shard S --listen HOST:PORT]). Binds [addr] (printing the bound
    address to stderr as ["LISTENING HOST:PORT"] — useful with port
    0), attaches the shard once, then serves one coordinator
    conversation per accepted connection: same protocol, same fault
    points, same telemetry harvest as {!worker_main}. A coordinator
    hanging up — or killing the connection to enforce a deadline —
    returns the process to accept; its lifetime is decoupled from any
    coordinator. Exits on [Shutdown]. Never returns. *)
