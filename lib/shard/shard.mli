(** Fault-tolerant sharded scatter-gather top-k.

    A coordinator partitions a corpus by docid into N independent
    storage environments ("shards"), each a complete TReX index over
    its slice, and serves queries by scattering the evaluation across
    shards and gathering a global ranking. Three properties drive the
    design:

    - {b Rank identity.} Each shard scores with corpus-wide statistics
      (installed via [Index.set_scoring_overrides]), and the gather
      passes each shard the coordinator's current global k-th score as
      a {e floor} ([Strategy.evaluate_resilient ~floor]) — Fagin's
      threshold composes across shards, so a shard stops reading pages
      once its local threshold proves it cannot beat the floor, and
      the merged answer is identical to a single-environment engine
      over the same corpus.
    - {b Degraded, never wrong.} Every shard evaluation runs behind
      its own circuit breaker and a guard slice carved from the
      query's remaining deadline / page budget. A tripped, slow,
      crashed or blocked shard contributes nothing; the query still
      answers from the surviving shards, with the missing shards named
      in {!result.degraded_shards} (the CLI exits 3 on such partials).
    - {b Crash-atomic rebalance.} {!split} and {!merge} rebuild
      document slices into fresh shard directories under a manifest
      operation (Begin / Step / Commit / End with the build-op
      discipline): a crash at any point either rolls the shard map
      forward or rolls the half-built shards back at the next
      {!open_} — a document is always in exactly one servable shard,
      never zero or two. An operation recovery cannot resolve (a
      committed map whose new shard directories were destroyed)
      quarantines the affected shards instead of guessing. *)

type shard_info = { name : string; base : int; docs : int }
(** One shard of the map: global docids [base .. base + docs - 1]
    live in environment directory [name] (local docids [0 .. docs-1]). *)

type t

val create :
  dir:string ->
  shards:int ->
  ?summary_criterion:Trex_summary.Summary.criterion ->
  ?alias:Trex_summary.Alias.t ->
  ?analyzer:Trex_text.Analyzer.config ->
  ?scoring:Trex_scoring.Scorer.config ->
  (string * string) list ->
  t
(** [create ~dir ~shards docs] partitions [docs] (in order — position
    is the global docid) into [shards] contiguous slices of near-equal
    document count, builds one index per slice under [dir/shard-NNN/],
    snapshots the full-corpus scoring statistics
    ([CORPUS_STATS.json] — loaded at every {!open_} so a quarantined
    or lost shard never changes the scores the surviving shards
    produce), writes the shard map ([SHARDMAP.json], installed
    atomically) and opens the coordinator. @raise Invalid_argument
    when [shards] is not positive or exceeds the document count. *)

val open_ : ?scoring:Trex_scoring.Scorer.config -> string -> t
(** Open an existing coordinator directory. Pending rebalance
    operations in the coordinator manifest ([SHARDS.mf]) are resolved
    first — committed ones roll forward (shard map reinstalled, source
    directories removed), uncommitted ones roll back (half-built
    directories removed); an unresolvable committed operation leaves
    its shards quarantined (see {!unresolved} and {!health}). *)

val close : t -> unit
val abort : t -> unit
(** Test hook: abandon every shard environment and the coordinator
    manifest as a crashed process would (no flushes, no closing
    appends). *)

val dir : t -> string

val shards : t -> shard_info list
(** The full shard map, ascending [base] — including shards that
    failed to attach (see {!health}). *)

val blocked : t -> (string * string) list
(** Shards excluded from serving, with reasons: attach failures and
    shards of unresolvable rebalance operations. Queries tag these in
    {!result.degraded_shards}. *)

val unresolved : t -> string list
(** Descriptions of pending rebalance operations recovery could not
    resolve (the CLI exits 2 when non-empty). *)

val breaker : t -> string -> Trex_resilience.Breaker.t
(** The named shard's circuit breaker (created on demand; breakers
    survive rebalance by name). *)

val load_map : string -> shard_info list
(** The shard map of a coordinator directory, ascending [base], without
    opening the coordinator — how a {!Supervisor} learns the layout
    before spawning workers (no recovery is run; open the coordinator
    first if rebalance operations may be pending). *)

val attach_shard :
  dir:string -> string -> Trex_storage.Env.t * Trex_invindex.Index.t
(** [attach_shard ~dir name] opens the single shard [dir/name] with the
    coordinator's corpus-wide scoring overrides installed — the
    worker-process side of {!Supervisor}. The caller owns the returned
    environment. *)

val sweep_stale_worker_artifacts : string -> shard_info list -> int
(** Remove orphaned worker droppings ([worker.pid] whose process is
    gone, any [worker.sock]) from the given shard directories,
    returning how many were removed; each removal bumps
    ["supervisor.stale_sweeps"]. {!open_} runs this sweep itself. *)

val index_of : t -> string -> Trex_invindex.Index.t option
(** The attached shard's index, corpus-wide scoring overrides
    installed — for tests and tools that evaluate one shard directly;
    [None] when the shard is unknown or quarantined. *)

type shard_report = {
  r_shard : string;
  r_method : Trex_topk.Strategy.method_ option;
      (** [None] when the shard was skipped or contributed no
          evaluation (no matching structure) *)
  r_entries_read : int;
  r_elapsed_seconds : float;
  r_kept : int;  (** answers surviving the floor filter *)
  r_floor : float;  (** global k-th score when this shard ran *)
}

type result = {
  answers : Trex_topk.Answer.t;  (** global top-k, descending score *)
  k : int;
  degraded : bool;  (** some shard could not contribute fully *)
  degraded_shards : (string * string) list;
      (** (shard, reason) for every shard that was skipped, failed,
          or returned a partial — the answers are a sound ranking of
          what the remaining shards hold *)
  reports : shard_report list;  (** per evaluated shard, scatter order *)
}

val query :
  t ->
  ?k:int ->
  ?method_:Trex_topk.Strategy.method_ ->
  ?strict:bool ->
  ?deadline_ms:float ->
  ?page_budget:int ->
  string ->
  result
(** Evaluate a NEXI query across all shards. Shards are visited in
    ascending [base] order; each runs with [floor] set to the current
    global k-th score, so later shards terminate early once they
    cannot affect the ranking ([shard.early_terminations] counts
    floor-assisted visits). [deadline_ms] / [page_budget] bound the
    {e whole} query: each shard's guard is created with whatever
    remains, and shards reached after exhaustion are skipped (and
    tagged). A shard whose evaluation raises is tagged and its breaker
    records the failure; {!Trex_storage.Pager.Injected_crash}
    propagates (crash simulation). *)

val materialize :
  t -> ?kinds:Trex_topk.Rpl.kind list -> ?rpl_prefix:int -> string -> unit
(** Materialize RPLs/ERPLs for the query's (sids, terms) on every
    shard — list scores use the corpus-wide statistics, so TA over the
    lists stays rank-identical too. *)

type health = {
  h_shard : string;
  h_base : int;
  h_docs : int;
  h_attached : bool;
  h_breaker : Trex_resilience.Breaker.state;
  h_note : string option;  (** block reason when not servable *)
}

val health : t -> health list

val split : t -> string -> shard_info * shard_info
(** [split t name] rebuilds shard [name]'s documents into two fresh
    shards of near-equal size (docid ranges preserved: first half
    keeps [base]). The two builds happen {e before} the map flip: the
    new map is committed through the coordinator manifest, installed
    atomically, and only then is the source directory removed. The
    source shard's summary is cloned so extent classification — and
    therefore scores — are unchanged. @raise Invalid_argument when the
    shard is unknown, quarantined, or holds fewer than two
    documents. *)

val merge : t -> string -> string -> shard_info
(** [merge t a b] rebuilds two docid-adjacent shards ([b.base = a.base
    + a.docs]) into one, same protocol as {!split}. *)

val set_shard_hook : t -> (string -> unit) option -> unit
(** Test hook fired with the shard name just before each per-shard
    evaluation — raise from here to simulate shard loss mid-query, or
    sleep to simulate a straggler. *)

val set_op_hook : t -> (string -> unit) option -> unit
(** Test hook fired at each rebalance sequence point:
    ["rebalance:begin_logged"], ["rebalance:built:<name>"],
    ["rebalance:committed"], ["rebalance:map_installed"],
    ["rebalance:cleaned"]. The crash matrix raises
    {!Trex_storage.Pager.Injected_crash} from here. *)
