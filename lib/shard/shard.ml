module Env = Trex_storage.Env
module Manifest = Trex_storage.Manifest
module Pager = Trex_storage.Pager
module Index = Trex_invindex.Index
module Tables = Trex_invindex.Tables
module Types = Trex_invindex.Types
module Summary = Trex_summary.Summary
module Alias = Trex_summary.Alias
module Scorer = Trex_scoring.Scorer
module Nexi_parser = Trex_nexi.Parser
module Translate = Trex_nexi.Translate
module Answer = Trex_topk.Answer
module Rpl = Trex_topk.Rpl
module Strategy = Trex_topk.Strategy
module Breaker = Trex_resilience.Breaker
module Guard = Trex_resilience.Guard
module Obs = Trex_obs
module Json = Trex_obs.Json
module Metrics = Trex_obs.Metrics

let m_queries = Metrics.counter "shard.queries"
let m_degraded = Metrics.counter "shard.degraded_queries"
let m_skipped = Metrics.counter "shard.shards_skipped"
let m_early = Metrics.counter "shard.early_terminations"
let m_rebalances = Metrics.counter "shard.rebalances"
let m_stale_sweeps = Metrics.counter "supervisor.stale_sweeps"

let map_file = "SHARDMAP.json"
let stats_file = "CORPUS_STATS.json"
let manifest_file = "SHARDS.mf"
let map_table = "shardmap"

type shard_info = { name : string; base : int; docs : int }
type map = { next_id : int; infos : shard_info list }

(* One attached (servable) shard. *)
type attached = { a_info : shard_info; a_env : Env.t; a_index : Index.t }

type t = {
  t_dir : string;
  scoring : Scorer.config;
  manifest : Manifest.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  mutable next_id : int;
  mutable infos : shard_info list;  (** the full map, ascending base *)
  mutable attached : attached list;  (** servable shards, ascending base *)
  mutable blocked : (string * string) list;
  mutable unresolved_ops : string list;
  mutable shard_hook : (string -> unit) option;
  mutable op_hook : (string -> unit) option;
}

let dir t = t.t_dir
let shards t = t.infos
let blocked t = t.blocked
let unresolved t = t.unresolved_ops
let set_shard_hook t h = t.shard_hook <- h
let set_op_hook t h = t.op_hook <- h
let fire t point = match t.op_hook with Some f -> f point | None -> ()

let shard_name id = Printf.sprintf "shard-%03d" id

let breaker t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
      let b = Breaker.create ("shard." ^ name) in
      Hashtbl.add t.breakers name b;
      b

let index_of t name =
  Option.map
    (fun a -> a.a_index)
    (List.find_opt (fun a -> a.a_info.name = name) t.attached)

(* ---- filesystem helpers ---- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* ---- shard map ---- *)

let map_to_json (m : map) =
  Json.Obj
    [
      ("next_id", Json.Int m.next_id);
      ( "shards",
        Json.List
          (List.map
             (fun i ->
               Json.Obj
                 [
                   ("name", Json.String i.name);
                   ("base", Json.Int i.base);
                   ("docs", Json.Int i.docs);
                 ])
             m.infos) );
    ]

let map_of_json j =
  let get_int field o =
    match Json.member field o with
    | Some (Json.Int i) -> i
    | _ -> failwith (Printf.sprintf "shard map: missing field %S" field)
  in
  let get_string field o =
    match Json.member field o with
    | Some (Json.String s) -> s
    | _ -> failwith (Printf.sprintf "shard map: missing field %S" field)
  in
  let infos =
    match Json.member "shards" j with
    | Some (Json.List l) ->
        List.map
          (fun o ->
            { name = get_string "name" o; base = get_int "base" o; docs = get_int "docs" o })
          l
    | _ -> failwith "shard map: missing field \"shards\""
  in
  ({ next_id = get_int "next_id" j; infos } : map)

let sort_infos infos = List.sort (fun a b -> compare a.base b.base) infos

(* The map flip must be atomic: a fully-written, fsynced temp file is
   renamed over the old map and the directory entry is fsynced. *)
let write_file_atomic dir file json_text =
  let path = Filename.concat dir file in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let bytes = Bytes.of_string json_text in
      let n = Unix.write fd bytes 0 (Bytes.length bytes) in
      if n <> Bytes.length bytes then failwith "shard map: short write";
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir dir

let write_map_file dir json_text = write_file_atomic dir map_file json_text

let read_map dir =
  let path = Filename.concat dir map_file in
  if not (Sys.file_exists path) then
    failwith
      (Printf.sprintf "%s: no %s (not a shard coordinator directory?)" dir map_file);
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  map_of_json (Json.parse text)

(* ---- corpus-wide scoring statistics ----

   Rank identity needs every shard to score with statistics of the
   WHOLE corpus, and those statistics must not drift when a shard is
   quarantined or fails to attach — a lost shard may cost answers, but
   it must never change the scores of the answers the surviving shards
   produce. So the statistics are coordinator metadata: computed once
   at {!create} from the full document set, persisted next to the
   shard map, and loaded verbatim at every {!open_}. Rebalances leave
   the file alone (the corpus is unchanged). *)

type stats = {
  s_doc_count : int;
  s_avg_element_length : float;
  s_df : (string, int) Hashtbl.t;
}

let stats_of_indexes indexes =
  let doc_count = ref 0 and element_count = ref 0 and length_sum = ref 0.0 in
  let df : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun index ->
      let s = Index.stats index in
      doc_count := !doc_count + s.Index.doc_count;
      element_count := !element_count + s.Index.element_count;
      length_sum :=
        !length_sum +. (s.Index.avg_element_length *. float_of_int s.Index.element_count);
      Index.iter_terms index (fun token ~df:d ~cf:_ ->
          Hashtbl.replace df token
            (d + Option.value ~default:0 (Hashtbl.find_opt df token))))
    indexes;
  let avg =
    if !element_count = 0 then 0.0 else !length_sum /. float_of_int !element_count
  in
  { s_doc_count = !doc_count; s_avg_element_length = avg; s_df = df }

let write_stats_file dir stats =
  let df =
    Hashtbl.fold (fun token d acc -> (token, Json.Int d) :: acc) stats.s_df []
  in
  let json =
    Json.Obj
      [
        ("doc_count", Json.Int stats.s_doc_count);
        ("avg_element_length", Json.Float stats.s_avg_element_length);
        ("df", Json.Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) df));
      ]
  in
  write_file_atomic dir stats_file (Json.to_string json)

let load_stats dir =
  let path = Filename.concat dir stats_file in
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match
      let j = Json.parse text in
      let doc_count =
        match Json.member "doc_count" j with
        | Some (Json.Int i) -> i
        | _ -> failwith "corpus stats: missing doc_count"
      in
      let avg =
        match Json.member "avg_element_length" j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> failwith "corpus stats: missing avg_element_length"
      in
      let df = Hashtbl.create 4096 in
      (match Json.member "df" j with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (token, v) ->
              match v with
              | Json.Int d -> Hashtbl.replace df token d
              | _ -> failwith "corpus stats: non-integer df")
            fields
      | _ -> failwith "corpus stats: missing df");
      { s_doc_count = doc_count; s_avg_element_length = avg; s_df = df }
    with
    | s -> Some s
    | exception _ -> None

let overrides_of_stats stats =
  {
    Index.corpus_doc_count = stats.s_doc_count;
    corpus_avg_element_length = stats.s_avg_element_length;
    global_df = (fun token -> Hashtbl.find_opt stats.s_df token);
  }

(* Worker-side attach: one shard environment with the corpus-wide
   scoring overrides installed, exactly as [attach_all] does for the
   in-process coordinator — the process boundary must not change a
   single score. Opened through table recovery, not plain [on_disk]: a
   SIGKILLed predecessor is a genuine crash and may have left a table
   (typically a lazily-created RPL catalog) whose creation never
   committed; the recovery path reinitializes it instead of poisoning
   every future worker with [Pager.Corruption] at first touch. *)
let attach_shard ~dir name =
  let env, _reports = Env.open_with_recovery (Filename.concat dir name) in
  match Index.attach env with
  | exception e ->
      Env.close env;
      raise e
  | index ->
      (match load_stats dir with
      | Some stats -> Index.set_scoring_overrides index (overrides_of_stats stats)
      | None -> ());
      (env, index)

(* ---- stale worker artifacts ----

   A crashed coordinator can orphan per-shard worker droppings
   ([worker.pid], and any [worker.sock] from hypothetical
   socket-file transports). Like the stale [.compact-tmp] sweep in the
   storage layer, coordinator open removes the ones whose owning
   process is gone, so shard directories never accumulate dead
   artifacts across crash cycles. A pid file whose process is still
   alive is left alone (pid reuse makes killing it a gamble; the live
   orphan exits on its own when its socketpair closes). *)

let worker_pid_file = "worker.pid"

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true

let sweep_stale_worker_artifacts dir infos =
  let swept = ref 0 in
  let remove path =
    match Sys.remove path with
    | () ->
        incr swept;
        Metrics.incr m_stale_sweeps
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun info ->
      let sdir = Filename.concat dir info.name in
      let pidf = Filename.concat sdir worker_pid_file in
      (if Sys.file_exists pidf then
         let stale =
           match
             let ic = open_in_bin pidf in
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () -> int_of_string (String.trim (input_line ic)))
           with
           | pid -> not (pid_alive pid)
           | exception _ -> true (* unparseable: never a live worker *)
         in
         if stale then remove pidf);
      let sockf = Filename.concat sdir "worker.sock" in
      if Sys.file_exists sockf then remove sockf)
    infos;
  !swept

(* ---- open / recovery ---- *)

(* Resolve pending rebalance operations, oldest first. Uncommitted ops
   roll back (half-built shard directories removed); committed ops roll
   forward (map from the op's Step reinstalled, source directories
   removed) — unless a new shard directory is already gone, in which
   case the op stays pending and its shards are quarantined rather than
   served from a maybe-superseded slice. *)
let recover manifest dir =
  let current = ref (read_map dir) in
  let pre_blocked = ref [] and unresolved_ops = ref [] in
  List.iter
    (fun (p : Manifest.pending) ->
      match p.Manifest.p_status with
      | Manifest.Roll_back ->
          List.iter (fun name -> rm_rf (Filename.concat dir name)) p.Manifest.p_rollback;
          Manifest.append manifest
            (Manifest.Abort
               {
                 op_id = p.Manifest.p_op_id;
                 note = Printf.sprintf "%s rolled back at open" p.Manifest.p_op;
               })
      | Manifest.Roll_forward -> (
          let new_map =
            List.find_map
              (function
                | Manifest.Put { table; value; _ } when table = map_table -> (
                    match Json.parse value with
                    | j -> ( match map_of_json j with m -> Some m | exception _ -> None)
                    | exception Json.Parse_error _ -> None)
                | _ -> None)
              p.Manifest.p_steps
          in
          match new_map with
          | None ->
              unresolved_ops :=
                Printf.sprintf "op#%d %s: committed but carries no shard map"
                  p.Manifest.p_op_id p.Manifest.p_op
                :: !unresolved_ops;
              List.iter
                (fun tbl ->
                  if List.exists (fun i -> i.name = tbl) !current.infos then
                    pre_blocked :=
                      (tbl, Printf.sprintf "unresolvable rebalance op#%d" p.Manifest.p_op_id)
                      :: !pre_blocked)
                p.Manifest.p_tables
          | Some m ->
              let missing =
                List.filter
                  (fun name ->
                    List.exists (fun i -> i.name = name) m.infos
                    && not (Sys.file_exists (Filename.concat dir name)))
                  p.Manifest.p_rollback
              in
              if missing <> [] then begin
                unresolved_ops :=
                  Printf.sprintf "op#%d %s: committed but shard %s is gone"
                    p.Manifest.p_op_id p.Manifest.p_op
                    (String.concat ", " missing)
                  :: !unresolved_ops;
                List.iter
                  (fun tbl ->
                    if List.exists (fun i -> i.name = tbl) !current.infos then
                      pre_blocked :=
                        ( tbl,
                          Printf.sprintf "unresolvable rebalance op#%d" p.Manifest.p_op_id )
                        :: !pre_blocked)
                  p.Manifest.p_tables
              end
              else begin
                write_map_file dir (Json.to_string (map_to_json m));
                List.iter
                  (fun tbl ->
                    if not (List.exists (fun i -> i.name = tbl) m.infos) then
                      rm_rf (Filename.concat dir tbl))
                  p.Manifest.p_tables;
                Manifest.append manifest (Manifest.End { op_id = p.Manifest.p_op_id });
                current := m
              end))
    (Manifest.pending manifest);
  Manifest.sync manifest;
  if Manifest.pending manifest = [] then Manifest.compact manifest;
  (!current, List.rev !pre_blocked, List.rev !unresolved_ops)

(* Corpus-wide scoring statistics, recomputed over the attached shards
   and installed as overrides so every shard scores as the single-env
   engine would (doc count, mean element length, per-term df). *)
let install_overrides t =
  match t.attached with
  | [] -> ()
  | attached ->
      (* Prefer the persisted full-corpus snapshot; recomputing from
         the attached shards is only a fallback for coordinator
         directories predating the stats file, and is wrong whenever a
         shard is quarantined. *)
      let stats =
        match load_stats t.t_dir with
        | Some s -> s
        | None -> stats_of_indexes (List.map (fun a -> a.a_index) attached)
      in
      let overrides = overrides_of_stats stats in
      List.iter (fun a -> Index.set_scoring_overrides a.a_index overrides) attached

(* (Re-)attach every servable shard of the map. Shards that fail to
   attach are quarantined, not fatal — the coordinator serves what it
   can and tags the rest. *)
let attach_all t pre_blocked =
  List.iter (fun a -> Env.close a.a_env) t.attached;
  t.attached <- [];
  let acc = ref [] and blocked = ref pre_blocked in
  List.iter
    (fun info ->
      if not (List.mem_assoc info.name pre_blocked) then begin
        let sdir = Filename.concat t.t_dir info.name in
        match
          if not (Sys.file_exists sdir) then failwith "shard directory missing";
          let env = Env.on_disk sdir in
          match Index.attach env with
          | index -> { a_info = info; a_env = env; a_index = index }
          | exception e ->
              Env.close env;
              raise e
        with
        | a -> acc := a :: !acc
        | exception e -> blocked := !blocked @ [ (info.name, Printexc.to_string e) ]
      end)
    t.infos;
  t.attached <-
    List.sort (fun a b -> compare a.a_info.base b.a_info.base) (List.rev !acc);
  t.blocked <- blocked.contents;
  install_overrides t

let load_map dir = sort_infos (read_map dir).infos

let open_ ?(scoring = Scorer.default) dir =
  let manifest = Manifest.open_file (Filename.concat dir manifest_file) in
  let map, pre_blocked, unresolved_ops = recover manifest dir in
  ignore (sweep_stale_worker_artifacts dir (sort_infos map.infos));
  let t =
    {
      t_dir = dir;
      scoring;
      manifest;
      breakers = Hashtbl.create 8;
      next_id = map.next_id;
      infos = sort_infos map.infos;
      attached = [];
      blocked = [];
      unresolved_ops;
      shard_hook = None;
      op_hook = None;
    }
  in
  attach_all t pre_blocked;
  t

let close t =
  List.iter (fun a -> Env.close a.a_env) t.attached;
  t.attached <- [];
  Manifest.close t.manifest

let abort t =
  List.iter (fun a -> Env.abort a.a_env) t.attached;
  t.attached <- [];
  Manifest.abort t.manifest

(* ---- create ---- *)

let rec split_at n l =
  if n <= 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)

let create ~dir ~shards:n ?(summary_criterion = Summary.Incoming)
    ?(alias = Alias.identity) ?analyzer ?(scoring = Scorer.default) docs =
  if n <= 0 then invalid_arg "Shard.create: shard count must be positive";
  let total = List.length docs in
  if total < n then
    invalid_arg
      (Printf.sprintf "Shard.create: %d documents cannot fill %d shards" total n);
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  (* Contiguous slices of near-equal size: global docid = position in
     [docs], shard i holds [base_i .. base_i + docs_i - 1]. *)
  let rec build_slices i base remaining acc =
    if i = n then List.rev acc
    else begin
      let size = (total / n) + if i < total mod n then 1 else 0 in
      let part, rest = split_at size remaining in
      let info = { name = shard_name i; base; docs = size } in
      build_slices (i + 1) (base + size) rest ((info, part) :: acc)
    end
  in
  let slices = build_slices 0 0 docs [] in
  (* Build every slice, then snapshot the full-corpus scoring
     statistics while all freshly built indexes are still open — they
     are persisted once, here, and never recomputed from a
     possibly-partial set of shards. *)
  let built =
    List.map
      (fun (info, part) ->
        let env = Env.on_disk (Filename.concat dir info.name) in
        let summary = Summary.create ~alias summary_criterion in
        let index = Index.build ~env ~summary ?analyzer (List.to_seq part) in
        (env, index))
      slices
  in
  write_stats_file dir (stats_of_indexes (List.map snd built));
  List.iter (fun (env, _) -> Env.close env) built;
  let map = { next_id = n; infos = List.map fst slices } in
  write_map_file dir (Json.to_string (map_to_json map));
  open_ ~scoring dir

(* ---- query ---- *)

type shard_report = {
  r_shard : string;
  r_method : Strategy.method_ option;
  r_entries_read : int;
  r_elapsed_seconds : float;
  r_kept : int;
  r_floor : float;
}

type result = {
  answers : Answer.t;
  k : int;
  degraded : bool;
  degraded_shards : (string * string) list;
  reports : shard_report list;
}

let query t ?(k = 10) ?method_ ?(strict = false) ?deadline_ms ?page_budget nexi =
  Metrics.incr m_queries;
  Obs.Span.with_ ~name:"shard.query" @@ fun () ->
  let ast = Nexi_parser.parse nexi in
  let started = Trex_util.Stopclock.now () in
  let pages_spent = ref 0 in
  let merged = ref ([] : Answer.t) in
  let tags = ref [] in
  let reports = ref [] in
  let tag name reason = tags := (name, reason) :: !tags in
  List.iter
    (fun a ->
      let name = a.a_info.name in
      let base = a.a_info.base in
      let b = breaker t name in
      (* The global k-th score achieved so far: any answer a later
         shard could contribute must beat it, so the shard's TA may
         stop the moment its local threshold falls below it. *)
      let floor =
        if List.length !merged >= k then
          (List.nth !merged (k - 1)).Answer.score
        else 0.0
      in
      let remaining_ms =
        Option.map
          (fun d -> d -. ((Trex_util.Stopclock.now () -. started) *. 1000.0))
          deadline_ms
      in
      let remaining_pages = Option.map (fun p -> p - !pages_spent) page_budget in
      let exhausted =
        (match remaining_ms with Some ms -> ms <= 0.0 | None -> false)
        || match remaining_pages with Some p -> p <= 0 | None -> false
      in
      if exhausted then begin
        Metrics.incr m_skipped;
        tag name "query budget exhausted before this shard"
      end
      else if not (Breaker.allow b) then begin
        Metrics.incr m_skipped;
        tag name "circuit open (cooling down)"
      end
      else begin
        if floor > 0.0 then Metrics.incr m_early;
        let guard =
          match (remaining_ms, remaining_pages) with
          | None, None -> None
          | _ -> Some (Guard.create ?deadline_ms:remaining_ms ?page_budget:remaining_pages ())
        in
        let add_pages () =
          match guard with
          | Some g -> pages_spent := !pages_spent + Guard.pages_used g
          | None -> ()
        in
        Obs.Span.with_ ~name:("shard.query." ^ name) @@ fun () ->
        Obs.Journal.set_label (Some ("shard:" ^ name ^ "|" ^ nexi));
        Fun.protect ~finally:(fun () -> Obs.Journal.set_label None) @@ fun () ->
        match
          Fun.protect ~finally:add_pages @@ fun () ->
          (match t.shard_hook with Some f -> f name | None -> ());
          let translation =
            Translate.translate
              ~summary:(Index.summary a.a_index)
              ~normalize:(Index.normalize_term a.a_index)
              ast
          in
          let sids = Translate.all_sids translation in
          let terms = Translate.all_terms translation in
          if sids = [] || terms = [] then None
          else
            let outcome, _fallbacks =
              Strategy.evaluate_resilient a.a_index ~scoring:t.scoring ~sids ~terms
                ~k ?guard ~floor ?method_ ()
            in
            Some (translation, outcome)
        with
        | None ->
            (* Nothing in this shard matches the query's structure:
               a successful (empty) contribution. *)
            Breaker.record_success b;
            reports :=
              {
                r_shard = name;
                r_method = None;
                r_entries_read = 0;
                r_elapsed_seconds = 0.0;
                r_kept = 0;
                r_floor = floor;
              }
              :: !reports
        | Some (translation, outcome) ->
            if outcome.Strategy.degraded then begin
              tag name "budget expired mid-shard (partial shard answers)";
              if Breaker.probing b then
                Breaker.record_failure b ~reason:"half-open probe came back degraded"
            end
            else Breaker.record_success b;
            let target = translation.Translate.target_sids in
            let kept =
              List.filter_map
                (fun (e : Answer.entry) ->
                  if e.Answer.score > floor
                     && ((not strict) || List.mem e.Answer.element.Types.sid target)
                  then
                    Some
                      {
                        e with
                        Answer.element =
                          { e.Answer.element with Types.docid = e.Answer.element.Types.docid + base };
                      }
                  else None)
                outcome.Strategy.answers
            in
            merged := Answer.top_k (Answer.merge [ !merged; kept ]) k;
            reports :=
              {
                r_shard = name;
                r_method = Some outcome.Strategy.method_used;
                r_entries_read = outcome.Strategy.entries_read;
                r_elapsed_seconds = outcome.Strategy.elapsed_seconds;
                r_kept = List.length kept;
                r_floor = floor;
              }
              :: !reports
        | exception (Pager.Injected_crash _ as e) -> raise e
        | exception e ->
            Metrics.incr m_skipped;
            Breaker.record_failure b ~reason:(Printexc.to_string e);
            tag name (Printexc.to_string e)
      end)
    t.attached;
  List.iter (fun (name, reason) -> tag name reason) t.blocked;
  let degraded_shards = List.rev !tags in
  if degraded_shards <> [] then Metrics.incr m_degraded;
  {
    answers = !merged;
    k;
    degraded = degraded_shards <> [];
    degraded_shards;
    reports = List.rev !reports;
  }

let materialize t ?(kinds = [ Rpl.Rpl; Rpl.Erpl ]) ?rpl_prefix nexi =
  let ast = Nexi_parser.parse nexi in
  List.iter
    (fun a ->
      let translation =
        Translate.translate
          ~summary:(Index.summary a.a_index)
          ~normalize:(Index.normalize_term a.a_index)
          ast
      in
      let sids = Translate.all_sids translation in
      let terms = Translate.all_terms translation in
      if sids <> [] && terms <> [] then
        ignore (Rpl.build a.a_index ~scoring:t.scoring ~sids ~terms ~kinds ?rpl_prefix ()))
    t.attached

(* ---- health ---- *)

type health = {
  h_shard : string;
  h_base : int;
  h_docs : int;
  h_attached : bool;
  h_breaker : Breaker.state;
  h_note : string option;
}

let health t =
  List.map
    (fun info ->
      {
        h_shard = info.name;
        h_base = info.base;
        h_docs = info.docs;
        h_attached = List.exists (fun a -> a.a_info.name = info.name) t.attached;
        h_breaker = Breaker.state (breaker t info.name);
        h_note = List.assoc_opt info.name t.blocked;
      })
    t.infos

(* ---- rebalance ---- *)

let find_attached t name =
  match List.find_opt (fun a -> a.a_info.name = name) t.attached with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Shard.rebalance: %s is not an attached shard" name)

(* Documents of one shard in local docid order, with their stored XML
   source — the rebuild input. *)
let read_docs a =
  List.filter_map
    (fun (row : Tables.Documents.row) ->
      Option.map
        (fun xml -> (row.Tables.Documents.name, xml))
        (Index.source a.a_index row.Tables.Documents.docid))
    (Index.documents a.a_index)

(* Extent classification must not change across a rebuild, or scores
   would: new shards start from a clone of the source summary. *)
let summary_clone a = Summary.of_string (Summary.to_string (Index.summary a.a_index))

(* The rebalance protocol (build-op discipline, §DESIGN 6):
     Begin(tables = sources + new, rollback = new)   [fsynced]
     ... build each new shard directory ...
     Step(Put shardmap <new map>); Commit            [fsynced]
     install new map file (atomic rename)
     remove source directories
     End
   A crash before Commit rolls the half-built directories back; after
   Commit the map reinstalls idempotently and sources are re-removed.
   Every document is in exactly its pre- or post-rebalance shard at
   every hook point. *)
let do_rebalance t ~op ~sources ~added ~new_infos ~new_next_id =
  Metrics.incr m_rebalances;
  let source_names = List.map (fun a -> a.a_info.name) sources in
  let added_names = List.map (fun (name, _, _, _) -> name) added in
  (* Detach the sources now: their directories are about to become
     removable, and their docs are already materialized in [added]. *)
  List.iter (fun a -> Env.close a.a_env) sources;
  t.attached <-
    List.filter (fun a -> not (List.mem a.a_info.name source_names)) t.attached;
  let op_id = Manifest.fresh_op_id t.manifest in
  Manifest.append t.manifest
    (Manifest.Begin
       {
         op_id;
         op;
         tables = source_names @ added_names;
         rollback = added_names;
         generation = Manifest.next_generation t.manifest;
       });
  Manifest.sync t.manifest;
  fire t "rebalance:begin_logged";
  (try
     List.iter
       (fun (name, docs, summary, analyzer) ->
         let sdir = Filename.concat t.t_dir name in
         rm_rf sdir;
         let env = Env.on_disk sdir in
         ignore (Index.build ~env ~summary ~analyzer (List.to_seq docs));
         Env.close env;
         fire t ("rebalance:built:" ^ name))
       added
   with
  | Pager.Injected_crash _ as e -> raise e
  | e ->
      (* In-process failure before commit: resolve the op now rather
         than leaving it for recovery. *)
      List.iter (fun name -> rm_rf (Filename.concat t.t_dir name)) added_names;
      Manifest.append t.manifest
        (Manifest.Abort { op_id; note = Printexc.to_string e });
      Manifest.sync t.manifest;
      raise e);
  let map_json = Json.to_string (map_to_json { next_id = new_next_id; infos = new_infos }) in
  Manifest.append t.manifest
    (Manifest.Step { op_id; action = Manifest.Put { table = map_table; key = ""; value = map_json } });
  Manifest.append t.manifest (Manifest.Commit { op_id });
  Manifest.sync t.manifest;
  fire t "rebalance:committed";
  write_map_file t.t_dir map_json;
  fire t "rebalance:map_installed";
  List.iter (fun name -> rm_rf (Filename.concat t.t_dir name)) source_names;
  fire t "rebalance:cleaned";
  Manifest.append t.manifest (Manifest.End { op_id });
  Manifest.sync t.manifest;
  Manifest.compact t.manifest;
  t.infos <- sort_infos new_infos;
  t.next_id <- new_next_id;
  let still_blocked =
    List.filter (fun (name, _) -> List.exists (fun i -> i.name = name) t.infos) t.blocked
  in
  attach_all t still_blocked

let split t name =
  let src = find_attached t name in
  let info = src.a_info in
  if info.docs < 2 then
    invalid_arg (Printf.sprintf "Shard.split: %s holds fewer than two documents" name);
  let docs = read_docs src in
  let half = (List.length docs + 1) / 2 in
  let part1, part2 = split_at half docs in
  let n1 = shard_name t.next_id and n2 = shard_name (t.next_id + 1) in
  let i1 = { name = n1; base = info.base; docs = List.length part1 } in
  let i2 = { name = n2; base = info.base + List.length part1; docs = List.length part2 } in
  let analyzer = Index.analyzer src.a_index in
  let added =
    [ (n1, part1, summary_clone src, analyzer); (n2, part2, summary_clone src, analyzer) ]
  in
  let new_infos = i1 :: i2 :: List.filter (fun i -> i.name <> name) t.infos in
  do_rebalance t ~op:"shard_split" ~sources:[ src ] ~added ~new_infos
    ~new_next_id:(t.next_id + 2);
  (i1, i2)

let merge t name_a name_b =
  let a = find_attached t name_a and b = find_attached t name_b in
  if b.a_info.base <> a.a_info.base + a.a_info.docs then
    invalid_arg
      (Printf.sprintf "Shard.merge: %s and %s are not docid-adjacent" name_a name_b);
  let docs = read_docs a @ read_docs b in
  let name = shard_name t.next_id in
  let info = { name; base = a.a_info.base; docs = List.length docs } in
  (* One clone of the first source's summary; observing the second
     source's documents grows it exactly as a combined build would. *)
  let added = [ (name, docs, summary_clone a, Index.analyzer a.a_index) ] in
  let new_infos =
    info :: List.filter (fun i -> i.name <> name_a && i.name <> name_b) t.infos
  in
  do_rebalance t ~op:"shard_merge" ~sources:[ a; b ] ~added ~new_infos
    ~new_next_id:(t.next_id + 1);
  info
