module Env = Trex_storage.Env
module Index = Trex_invindex.Index
module Nexi_parser = Trex_nexi.Parser
module Translate = Trex_nexi.Translate
module Answer = Trex_topk.Answer
module Strategy = Trex_topk.Strategy
module Breaker = Trex_resilience.Breaker
module Guard = Trex_resilience.Guard
module Retry = Trex_resilience.Retry
module Scorer = Trex_scoring.Scorer
module Framing = Trex_util.Framing
module Stopclock = Trex_util.Stopclock
module Obs = Trex_obs
module Metrics = Trex_obs.Metrics

let m_spawns = Metrics.counter "supervisor.spawns"
let m_restarts = Metrics.counter "supervisor.restarts"
let m_hb_timeouts = Metrics.counter "supervisor.heartbeat_timeouts"
let m_kills = Metrics.counter "supervisor.kills"
let m_escalations = Metrics.counter "supervisor.escalations"
let m_queries = Metrics.counter "shard.queries"
let m_degraded = Metrics.counter "shard.degraded_queries"
let m_skipped = Metrics.counter "shard.shards_skipped"
let m_early = Metrics.counter "shard.early_terminations"

type config = {
  heartbeat_interval_s : float;
  heartbeat_timeout_s : float;
  deadline_grace_ms : float;
  max_restarts : int;
  restart_policy : Retry.policy;
  connect_timeout_s : float;
}

let default_config =
  {
    heartbeat_interval_s = 0.5;
    heartbeat_timeout_s = 2.0;
    deadline_grace_ms = 250.0;
    max_restarts = 3;
    restart_policy = { Retry.default_policy with base_delay_ms = 10.0 };
    connect_timeout_s = 1.0;
  }

(* Where a shard's worker lives: a fork/exec'd child on a socketpair,
   or a long-lived remote process reached over TCP. *)
type endpoint = Local | Tcp of string

type worker_state = Starting | Ready | Busy | Stopped | Escalated

type worker_health = {
  w_shard : string;
  w_state : worker_state;
  w_pid : int option;
  w_restarts : int;
  w_total_restarts : int;
  w_breaker : Breaker.state;
  w_beat_age_s : float option;
}

(* One live worker conversation: the coordinator's end of the
   socketpair (or TCP connection — then [p_pid = None]) and the
   incremental frame decoder for its byte stream. *)
type proc = {
  p_pid : int option;
  p_fd : Unix.file_descr;
  p_decoder : Framing.Decoder.t;
}

type phase =
  | P_starting of float  (** spawn time, awaiting Hello *)
  | P_ready
  | P_busy  (** a query dispatch is outstanding *)
  | P_stopped of float  (** dead; respawn not before this time *)
  | P_escalated  (** restarts exhausted; breaker owns recovery *)

type worker = {
  info : Shard.shard_info;
  endpoint : endpoint;
  breaker : Breaker.t;
  mutable proc : proc option;
  mutable phase : phase;
  mutable restarts : int;  (* consecutive, reset by a successful answer *)
  mutable total_restarts : int;  (* lifetime deaths, never reset *)
  mutable last_beat : float;  (* Stopclock.now of last hello/pong/answer *)
  mutable ping_seq : int;
  mutable ping_outstanding : (int * float) option;
  mutable pending_fault : string option;
}

type t = {
  t_dir : string;
  config : config;
  scoring : Scorer.config;
  workers : worker list;  (* ascending base *)
  mutable closed : bool;
  mutable qseq : int;  (* trace-id sequence for supervised queries *)
  mutable journal : Obs.Journal.t option;  (* coordinator journal, lazy *)
}

(* The shard coordinator directory is not an [Env] directory, so the
   supervised-query journal lives directly beside SHARDMAP.json under
   the same file name envs use. *)
let journal_of t =
  match t.journal with
  | Some j -> j
  | None ->
      let j =
        Obs.Journal.open_file (Filename.concat t.t_dir "query_journal.qj")
      in
      t.journal <- Some j;
      j

let dir t = t.t_dir
let shards t = List.map (fun w -> w.info) t.workers

let find_worker t name =
  match List.find_opt (fun w -> w.info.Shard.name = name) t.workers with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Supervisor: unknown shard %S" name)

let breaker t name = (find_worker t name).breaker

let worker_pid t name =
  Option.bind (find_worker t name).proc (fun p -> p.p_pid)

let set_fault t ~shard spec = (find_worker t shard).pending_fault <- spec

(* ---- spawning ---- *)

(* "HOST:PORT" → sockaddr. Raises [Invalid_argument] on junk — a bad
   address is a configuration error, not a transient fault. *)
let sockaddr_of_string addr =
  match String.rindex_opt addr ':' with
  | None -> invalid_arg (Printf.sprintf "bad worker address %S (want HOST:PORT)" addr)
  | Some i -> (
      let host = String.sub addr 0 i in
      let port =
        match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
        | Some p when p >= 0 && p < 65536 -> p
        | _ -> invalid_arg (Printf.sprintf "bad port in worker address %S" addr)
      in
      let host = if host = "" then "127.0.0.1" else host in
      match Unix.inet_addr_of_string host with
      | ip -> Unix.ADDR_INET (ip, port)
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              invalid_arg (Printf.sprintf "cannot resolve worker host %S" host)
          | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port)))

(* Bounded non-blocking connect: None on refusal or timeout (the
   caller schedules a jittered reconnect), Some fd — blocking again —
   on success. *)
let connect_with_timeout sockaddr ~timeout_s =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.set_nonblock fd;
  let fail () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None
  in
  let finish () =
    match Unix.getsockopt_error fd with
    | None ->
        Unix.clear_nonblock fd;
        Some fd
    | Some _ -> fail ()
  in
  match Unix.connect fd sockaddr with
  | () -> finish ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      let deadline = Stopclock.now () +. timeout_s in
      let rec wait () =
        let remaining = deadline -. Stopclock.now () in
        if remaining <= 0.0 then fail ()
        else
          match Unix.select [] [ fd ] [] remaining with
          | _, [], _ -> wait ()
          | _, _ :: _, _ -> finish ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
  | exception Unix.Unix_error _ -> fail ()

let spawn_local t w =
  let coord_fd, worker_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Later spawns' execs must not inherit this worker's coordinator
     end, or a dead worker's EOF would never arrive. *)
  Unix.set_close_on_exec coord_fd;
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* Child: the socketpair becomes stdin/stdout, then exec the
         coordinator's own binary in worker mode. *)
      Unix.dup2 worker_fd Unix.stdin;
      Unix.dup2 worker_fd Unix.stdout;
      if worker_fd <> Unix.stdin && worker_fd <> Unix.stdout then
        Unix.close worker_fd;
      let prog = Sys.executable_name in
      let argv =
        [| prog; "shard-worker"; "--dir"; t.t_dir; "--shard"; w.info.Shard.name |]
      in
      (try Unix.execv prog argv with _ -> ());
      exit 127
  | pid ->
      Unix.close worker_fd;
      w.proc <-
        Some
          { p_pid = Some pid; p_fd = coord_fd; p_decoder = Framing.Decoder.create () };
      w.phase <- P_starting (Stopclock.now ());
      w.ping_outstanding <- None

(* Forward-declared: remote connect failures reuse the death/backoff
   path, which is defined below. *)
let on_connect_failure = ref (fun _t _w _reason -> ())

let spawn_remote t w addr =
  match connect_with_timeout (sockaddr_of_string addr) ~timeout_s:t.config.connect_timeout_s with
  | Some fd ->
      w.proc <-
        Some { p_pid = None; p_fd = fd; p_decoder = Framing.Decoder.create () };
      w.phase <- P_starting (Stopclock.now ());
      w.ping_outstanding <- None
  | None ->
      !on_connect_failure t w
        (Printf.sprintf "connect to %s refused or timed out" addr)

let spawn t w =
  Metrics.incr m_spawns;
  match w.endpoint with
  | Local -> spawn_local t w
  | Tcp addr -> spawn_remote t w addr

(* ---- death and restart ---- *)

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_proc p =
  (* A remote worker has no pid to kill: dropping the connection is the
     kill — the worker notices EOF/EPIPE and returns to accept. *)
  (match p.p_pid with
  | Some pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap pid
  | None -> ());
  try Unix.close p.p_fd with Unix.Unix_error _ -> ()

(* The worker is gone (exit, EPIPE, corrupt stream, heartbeat timeout,
   deadline kill). Schedule the restart — capped exponential backoff
   from the retry policy — or escalate to the breaker once the restart
   budget is spent. A death while the breaker was half-open fails the
   probe explicitly so the slot is not leaked. *)
let on_death t w reason =
  (match w.proc with Some p -> kill_proc p | None -> ());
  w.proc <- None;
  w.ping_outstanding <- None;
  w.total_restarts <- w.total_restarts + 1;
  if Breaker.probing w.breaker then
    Breaker.record_failure w.breaker ~reason:("probe worker died: " ^ reason);
  if w.restarts >= t.config.max_restarts then begin
    w.phase <- P_escalated;
    Metrics.incr m_escalations;
    if Breaker.state w.breaker <> Breaker.Open then
      Breaker.trip w.breaker
        ~reason:
          (Printf.sprintf "%d consecutive worker restarts; last: %s" w.restarts
             reason)
  end
  else begin
    (* Salted per shard: under a Decorrelated restart policy a fleet of
       remote workers cut off together reconnects spread out, not as a
       thundering herd. With the default No_jitter policy the salt is
       inert and the schedule replays exactly. *)
    let delays =
      Retry.backoff_delays_ms
        ~salt:(Hashtbl.hash w.info.Shard.name)
        t.config.restart_policy
    in
    let delay_ms =
      match delays with
      | [] -> 0.0
      | l -> List.nth l (min w.restarts (List.length l - 1))
    in
    w.restarts <- w.restarts + 1;
    w.phase <- P_stopped (Stopclock.now () +. (delay_ms /. 1000.0));
    Metrics.incr m_restarts
  end

let () = on_connect_failure := fun t w reason -> on_death t w reason

(* ---- frame I/O ---- *)

let rec eintr_read fd b =
  match Unix.read fd b 0 (Bytes.length b) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> eintr_read fd b
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0

let send t w msg =
  match w.proc with
  | None -> false
  | Some p -> (
      match Framing.append p.p_fd (Wire.encode_request msg) with
      | () -> true
      | exception Unix.Unix_error _ ->
          on_death t w "write to worker failed (EPIPE)";
          false)

let readable fds timeout =
  match Unix.select fds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(* Pump one worker's fd without blocking: read whatever is buffered,
   hand every complete frame to [handle]. Returns [false] when the
   worker died (EOF / corrupt stream) — [on_death] has already run. *)
let pump t w ~handle =
  match w.proc with
  | None -> false
  | Some p -> (
      let rec frames () =
        match Framing.Decoder.next p.p_decoder with
        | Some payload ->
            handle (Wire.decode_response payload);
            frames ()
        | None -> true
      in
      let chunk = Bytes.create 65536 in
      let rec drain () =
        if readable [ p.p_fd ] 0.0 = [] then true
        else
          match eintr_read p.p_fd chunk with
          | 0 ->
              on_death t w "worker exited (EOF)";
              false
          | n ->
              Framing.Decoder.feed p.p_decoder chunk 0 n;
              if frames () then drain () else false
      in
      match drain () with
      | alive -> alive
      | exception (Framing.Corrupt_frame e | Wire.Protocol_error e) ->
          on_death t w ("protocol corruption: " ^ e);
          false)

(* Frames that can arrive outside a query gather. *)
let idle_handle w = function
  | Wire.Hello _ ->
      w.last_beat <- Stopclock.now ();
      w.phase <- P_ready;
      if Breaker.probing w.breaker then Breaker.record_success w.breaker
  | Wire.Pong seq -> (
      (* Only a Pong matching the outstanding Ping counts as a beat: a
         stale seq (e.g. from a pre-restart worker incarnation, or a
         worker echoing garbage) must neither clear the outstanding
         ping nor refresh liveness — otherwise a wedged worker could
         dodge the heartbeat timeout forever on replayed Pongs. *)
      match w.ping_outstanding with
      | Some (s, _) when s = seq ->
          w.last_beat <- Stopclock.now ();
          w.ping_outstanding <- None
      | _ -> ())
  | Wire.Answer _ -> () (* stale answer from an abandoned query: drop *)
  | Wire.Client_answer _ | Wire.Shed _ | Wire.Drain ->
      () (* client-facing messages have no business on a worker stream *)

(* ---- supervision tick ---- *)

let tick t =
  if not t.closed then
    let now = Stopclock.now () in
    List.iter
      (fun w ->
        match w.phase with
        | P_stopped until -> if now >= until then spawn t w
        | P_escalated ->
            (* The breaker owns recovery: once the cooldown admits a
               half-open probe, the probe is a fresh worker process. *)
            if Breaker.allow w.breaker then spawn t w
        | P_starting since ->
            if pump t w ~handle:(idle_handle w) then
              if
                (match w.phase with P_starting _ -> true | _ -> false)
                && now -. since > t.config.heartbeat_timeout_s
              then begin
                Metrics.incr m_kills;
                on_death t w "readiness handshake timed out"
              end
        | P_ready ->
            if pump t w ~handle:(idle_handle w) then (
              match w.ping_outstanding with
              | Some (_, sent) when now -. sent > t.config.heartbeat_timeout_s ->
                  Metrics.incr m_hb_timeouts;
                  Metrics.incr m_kills;
                  on_death t w "heartbeat timeout"
              | Some _ -> ()
              | None ->
                  if now -. w.last_beat >= t.config.heartbeat_interval_s then begin
                    w.ping_seq <- w.ping_seq + 1;
                    if send t w (Wire.Ping w.ping_seq) then
                      w.ping_outstanding <- Some (w.ping_seq, now)
                  end)
        | P_busy -> () (* the query gather owns this fd right now *))
      t.workers

let await_healthy ?(timeout_s = 5.0) t =
  let deadline = Stopclock.now () +. timeout_s in
  let rec go () =
    tick t;
    if List.for_all (fun w -> w.phase = P_ready) t.workers then true
    else if Stopclock.now () >= deadline then false
    else begin
      (* Sleep on the starting workers' fds so hellos wake us early. *)
      let fds =
        List.filter_map
          (fun w ->
            match (w.phase, w.proc) with
            | (P_starting _ | P_ready), Some p -> Some p.p_fd
            | _ -> None)
          t.workers
      in
      ignore (readable fds 0.01);
      go ()
    end
  in
  go ()

(* ---- lifecycle ---- *)

let create ?(config = default_config) ?(scoring = Scorer.default) ?(remote = [])
    dir =
  (* A worker death between our write and the kernel's delivery must
     surface as EPIPE on the write, not SIGPIPE to the coordinator. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let infos = Shard.load_map dir in
  ignore (Shard.sweep_stale_worker_artifacts dir infos);
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun i -> i.Shard.name = name) infos) then
        invalid_arg (Printf.sprintf "Supervisor: remote endpoint for unknown shard %S" name))
    remote;
  let t =
    {
      t_dir = dir;
      config;
      scoring;
      workers =
        List.map
          (fun info ->
            {
              info;
              endpoint =
                (match List.assoc_opt info.Shard.name remote with
                | Some addr -> Tcp addr
                | None -> Local);
              breaker = Breaker.create ("shard." ^ info.Shard.name);
              proc = None;
              phase = P_stopped 0.0;
              restarts = 0;
              total_restarts = 0;
              last_beat = 0.0;
              ping_seq = 0;
              ping_outstanding = None;
              pending_fault = None;
            })
          infos;
      closed = false;
      qseq = 0;
      journal = None;
    }
  in
  List.iter (fun w -> spawn t w) t.workers;
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun w ->
        match w.proc with
        | None -> ()
        | Some p ->
            (match p.p_pid with
            | Some pid ->
                (try Framing.append p.p_fd (Wire.encode_request Wire.Shutdown)
                 with Unix.Unix_error _ -> ());
                (* Give the worker a moment to exit cleanly, then insist. *)
                let rec wait tries =
                  match Unix.waitpid [ Unix.WNOHANG ] pid with
                  | 0, _ ->
                      if tries > 0 then begin
                        ignore (Unix.select [] [] [] 0.02);
                        wait (tries - 1)
                      end
                      else begin
                        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                        reap pid
                      end
                  | _ -> ()
                  | exception Unix.Unix_error _ -> ()
                in
                wait 25
            | None ->
                (* A remote worker outlives this coordinator by design:
                   no Shutdown — just hang up, it returns to accept. *)
                ());
            (try Unix.close p.p_fd with Unix.Unix_error _ -> ());
            w.proc <- None)
      t.workers;
    match t.journal with
    | Some j ->
        Obs.Journal.close j;
        t.journal <- None
    | None -> ()
  end

let health t =
  let now = Stopclock.now () in
  List.map
    (fun w ->
      {
        w_shard = w.info.Shard.name;
        w_state =
          (match w.phase with
          | P_starting _ -> Starting
          | P_ready -> Ready
          | P_busy -> Busy
          | P_stopped _ -> Stopped
          | P_escalated -> Escalated);
        w_pid = Option.bind w.proc (fun p -> p.p_pid);
        w_restarts = w.restarts;
        w_total_restarts = w.total_restarts;
        w_breaker = Breaker.state w.breaker;
        w_beat_age_s = (if w.last_beat = 0.0 then None else Some (now -. w.last_beat));
      })
    t.workers

(* ---- query: concurrent scatter, supervised gather ---- *)

type dispatch = {
  d_worker : worker;
  d_floor : float;
  d_sent_at : float;
  d_kill_at : float option;  (* deadline slice + grace; None = no deadline *)
  mutable d_done : bool;
}

(* A worker that never delivered its answer (death, deadline kill)
   leaves a tagged, child-less [supervisor.worker] span: the merged
   trace shows the partial tree honestly instead of omitting the
   shard. *)
let emit_lost_worker_span w ~sent_at ~reason =
  Obs.Span.emit ~name:"supervisor.worker"
    ~attrs:[ ("worker", w.info.Shard.name); ("lost", reason) ]
    ~start_s:sent_at
    ~seconds:(Stopclock.now () -. sent_at)
    ()

(* One coordinator-level journal record per supervised query, built
   from the registry deltas (worker counter deltas were absorbed during
   the gather, so pages_read/heap_ops are fleet totals) with a
   per-shard breakdown in [spans]: the harvested span summary, each
   shard's worker-side wall ms, and a ["lost:<shard>"] marker per shard
   that degraded without delivering telemetry. *)
let journal_supervised t started ~nexi ~k ~(result : Shard.result)
    ~worker_records =
  let j = journal_of t in
  let span_summary =
    if Obs.Span.enabled () then
      match Obs.Span.last () with
      | Some s -> Obs.Span.summarize s
      | None -> []
    else []
  in
  let breakdown =
    List.map
      (fun (name, (r : Obs.Journal.record)) ->
        ("shard:" ^ name, r.Obs.Journal.wall_ms))
      worker_records
  in
  let lost =
    List.sort_uniq compare
      (List.filter_map
         (fun (name, _reason) ->
           if List.mem_assoc name worker_records then None
           else Some ("lost:" ^ name, 0.0))
         result.Shard.degraded_shards)
  in
  let sids =
    List.sort_uniq compare
      (List.concat_map (fun (_, r) -> r.Obs.Journal.sids) worker_records)
  in
  let terms =
    List.sort_uniq String.compare
      (List.concat_map (fun (_, r) -> r.Obs.Journal.terms) worker_records)
  in
  Obs.Journal.set_label (Some nexi);
  Fun.protect
    ~finally:(fun () -> Obs.Journal.set_label None)
    (fun () ->
      ignore
        (Obs.Journal.finish_query j started ~strategy:"supervised" ~sids ~terms
           ~k ~degraded:result.Shard.degraded
           ~spans:(span_summary @ breakdown @ lost)
           ()))

let query t ?(k = 10) ?method_ ?(strict = false) ?deadline_ms ?page_budget ?fanout
    nexi =
  Metrics.incr m_queries;
  let trace = Obs.Span.enabled () in
  let jrnl = Obs.Journal.enabled () in
  let j_started = if jrnl then Some (Obs.Journal.start_query ()) else None in
  t.qseq <- t.qseq + 1;
  let trace_id =
    Printf.sprintf "%s-%d" (Obs.Journal.digest_of nexi) t.qseq
  in
  let worker_records = ref ([] : (string * Obs.Journal.record) list) in
  let result =
  Obs.Span.with_ ~name:"supervisor.query"
    ~attrs:
      [ ("k", string_of_int k);
        ("workers", string_of_int (List.length t.workers));
        ("trace_id", trace_id) ]
  @@ fun () ->
  let started = Stopclock.now () in
  (* Give workers still handshaking a chance to come up before we
     declare them unavailable — bounded by the query's own deadline. *)
  if List.exists (fun w -> match w.phase with P_starting _ -> true | _ -> false)
       t.workers
  then
    ignore
      (await_healthy
         ~timeout_s:
           (match deadline_ms with
           | Some d -> Float.min (d /. 1000.0) t.config.heartbeat_timeout_s
           | None -> t.config.heartbeat_timeout_s)
         t);
  let pages_spent = ref 0 in
  let merged = ref ([] : Answer.t) in
  let tags = ref [] in
  let reports = ref [] in
  let tag name reason = tags := (name, reason) :: !tags in
  let wave_size =
    match fanout with Some f when f > 0 -> f | _ -> max 1 (List.length t.workers)
  in
  let rec waves = function
    | [] -> ()
    | workers ->
        let wave = List.filteri (fun i _ -> i < wave_size) workers in
        let rest = List.filteri (fun i _ -> i >= wave_size) workers in
        run_wave wave;
        waves rest
  and run_wave wave =
    (* The global k-th score at dispatch: every worker in this wave may
       prune below it; later waves see the improved floor. *)
    let floor =
      if List.length !merged >= k then (List.nth !merged (k - 1)).Answer.score
      else 0.0
    in
    let remaining_ms =
      Option.map
        (fun d -> d -. ((Stopclock.now () -. started) *. 1000.0))
        deadline_ms
    in
    let remaining_pages = Option.map (fun p -> p - !pages_spent) page_budget in
    let exhausted =
      (match remaining_ms with Some ms -> ms <= 0.0 | None -> false)
      || match remaining_pages with Some p -> p <= 0 | None -> false
    in
    (* Dispatch phase. *)
    let ready, unavailable =
      List.partition (fun w -> w.phase = P_ready) wave
    in
    List.iter
      (fun w ->
        let name = w.info.Shard.name in
        Metrics.incr m_skipped;
        match w.phase with
        | P_starting _ -> tag name "worker not ready (starting)"
        | P_stopped _ -> tag name "worker restarting (backing off)"
        | P_escalated -> tag name "circuit open (restarts exhausted)"
        | P_busy | P_ready -> tag name "worker unavailable")
      unavailable;
    if exhausted then
      List.iter
        (fun w ->
          Metrics.incr m_skipped;
          tag w.info.Shard.name "query budget exhausted before this shard")
        ready
    else begin
      let active = List.length ready in
      let page_slice =
        Option.map (fun p -> max 1 (p / max 1 active)) remaining_pages
      in
      let dispatches =
        List.filter_map
          (fun w ->
            let name = w.info.Shard.name in
            if not (Breaker.allow w.breaker) then begin
              Metrics.incr m_skipped;
              tag name "circuit open (cooling down)";
              None
            end
            else begin
              if floor > 0.0 then Metrics.incr m_early;
              let fault = w.pending_fault in
              w.pending_fault <- None;
              let q =
                Wire.Query
                  {
                    Wire.q_nexi = nexi;
                    q_k = k;
                    q_method = method_;
                    q_strict = strict;
                    q_floor = floor;
                    q_deadline_ms = remaining_ms;
                    q_page_budget = page_slice;
                    q_scoring = t.scoring;
                    q_fault = fault;
                    q_trace = trace;
                    q_journal = jrnl;
                    q_trace_id = (if trace then Some trace_id else None);
                  }
              in
              let now = Stopclock.now () in
              if send t w q then begin
                w.phase <- P_busy;
                Some
                  {
                    d_worker = w;
                    d_floor = floor;
                    d_sent_at = now;
                    d_kill_at =
                      Option.map
                        (fun ms ->
                          now +. ((ms +. t.config.deadline_grace_ms) /. 1000.0))
                        remaining_ms;
                    d_done = false;
                  }
              end
              else begin
                Metrics.incr m_skipped;
                tag name "worker died at dispatch";
                None
              end
            end)
          ready
      in
      gather dispatches
    end
  and gather dispatches =
    let pending () = List.filter (fun d -> not d.d_done) dispatches in
    let finish d = d.d_done <- true in
    let accept d (a : Wire.answer) =
      let w = d.d_worker in
      let name = w.info.Shard.name in
      let base = w.info.Shard.base in
      w.last_beat <- Stopclock.now ();
      w.phase <- P_ready;
      w.restarts <- 0;
      if a.Wire.a_degraded then begin
        tag name "budget expired mid-shard (partial shard answers)";
        if Breaker.probing w.breaker then
          Breaker.record_failure w.breaker
            ~reason:"half-open probe came back degraded"
      end
      else Breaker.record_success w.breaker;
      pages_spent := !pages_spent + a.Wire.a_pages_used;
      (* Harvest the worker's telemetry: fold its counter delta into
         this registry (both the bare name — the merged fleet total —
         and a per-shard [worker.<shard>.*] view), keep its journal
         record for the coordinator-level breakdown. *)
      Metrics.absorb_counters ~prefix:("worker." ^ name ^ ".")
        a.Wire.a_counters;
      (match a.Wire.a_journal with
      | Some r -> worker_records := (name, r) :: !worker_records
      | None -> ());
      let kept =
        List.map
          (fun (e : Answer.entry) ->
            {
              e with
              Answer.element =
                {
                  e.Answer.element with
                  Trex_invindex.Types.docid =
                    e.Answer.element.Trex_invindex.Types.docid + base;
                };
            })
          a.Wire.a_answers
      in
      merged := Answer.top_k (Answer.merge [ !merged; kept ]) k;
      (* Graft the worker's span tree under a [supervisor.worker] span
         spanning the full round trip; the pid attribute re-homes the
         subtree onto the worker's own track in a Chrome trace. *)
      Obs.Span.emit ~name:"supervisor.worker"
        ~attrs:
          [
            ("worker", name);
            (* "worker_pid", not "pid": the round trip is coordinator-
               observed time and must stay on the coordinator's trace
               track; only the grafted children (stamped "pid" by the
               worker itself) re-home to the worker's track. *)
            ( "worker_pid",
              match w.proc with
              | Some { p_pid = Some pid; _ } -> string_of_int pid
              | Some { p_pid = None; _ } -> "remote"
              | None -> "-" );
          ]
        ~start_s:d.d_sent_at
        ~seconds:(Stopclock.now () -. d.d_sent_at)
        ~children:a.Wire.a_spans ();
      reports :=
        {
          Shard.r_shard = name;
          r_method = a.Wire.a_method;
          r_entries_read = a.Wire.a_entries_read;
          r_elapsed_seconds = a.Wire.a_elapsed_s;
          r_kept = List.length kept;
          r_floor = d.d_floor;
        }
        :: !reports;
      finish d
    in
    let rec loop () =
      match pending () with
      | [] -> ()
      | ps ->
          let now = Stopclock.now () in
          (* Kill workers that blew their deadline slice. *)
          List.iter
            (fun d ->
              match d.d_kill_at with
              | Some at when now >= at ->
                  Metrics.incr m_kills;
                  Metrics.incr m_skipped;
                  tag d.d_worker.info.Shard.name
                    "deadline exceeded (worker killed)";
                  emit_lost_worker_span d.d_worker ~sent_at:d.d_sent_at
                    ~reason:"deadline exceeded (worker killed)";
                  on_death t d.d_worker "killed for blowing its deadline slice";
                  finish d
              | _ -> ())
            ps;
          (match pending () with
          | [] -> ()
          | ps ->
              let timeout =
                List.fold_left
                  (fun acc d ->
                    match d.d_kill_at with
                    | Some at -> Float.min acc (Float.max 0.0 (at -. now))
                    | None -> acc)
                  0.1 ps
              in
              let fds =
                List.filter_map
                  (fun d -> Option.map (fun p -> p.p_fd) d.d_worker.proc)
                  ps
              in
              let ready_fds = readable fds timeout in
              List.iter
                (fun d ->
                  let w = d.d_worker in
                  match w.proc with
                  | Some p when List.mem p.p_fd ready_fds ->
                      let handle = function
                        | Wire.Answer a -> accept d a
                        | Wire.Pong seq -> idle_handle w (Wire.Pong seq)
                        | Wire.Hello _ | Wire.Client_answer _ | Wire.Shed _
                        | Wire.Drain ->
                            ()
                      in
                      if not (pump t w ~handle) then begin
                        (* pump ran on_death; tag unless the answer
                           made it out before the stream died. *)
                        if not d.d_done then begin
                          Metrics.incr m_skipped;
                          tag w.info.Shard.name "worker died mid-query";
                          emit_lost_worker_span w ~sent_at:d.d_sent_at
                            ~reason:"worker died mid-query";
                          finish d
                        end
                      end
                  | Some _ -> () (* no data this round; keep waiting *)
                  | None ->
                      if not d.d_done then begin
                        Metrics.incr m_skipped;
                        tag w.info.Shard.name "worker died mid-query";
                        emit_lost_worker_span w ~sent_at:d.d_sent_at
                          ~reason:"worker died mid-query";
                        finish d
                      end)
                ps;
              loop ())
    in
    loop ()
  in
  waves t.workers;
  let degraded_shards = List.rev !tags in
  if degraded_shards <> [] then Metrics.incr m_degraded;
  {
    Shard.answers = !merged;
    k;
    degraded = degraded_shards <> [];
    degraded_shards;
    reports = List.rev !reports;
  }
  in
  (* The journal record is built after the root span closes so its span
     summary covers the whole supervised evaluation. *)
  (match j_started with
  | Some started ->
      journal_supervised t started ~nexi ~k ~result
        ~worker_records:(List.rev !worker_records)
  | None -> ());
  result

(* ---- the worker process ---- *)

(* How long a half-sent frame may sit on a worker's request stream
   before the worker declares the peer broken (see
   [Framing.recv_deadline]). Generous versus the heartbeat interval so
   it only ever fires on a genuinely torn or malicious stream. *)
let frame_read_timeout_s = 10.0

(* One-shot fault injection: armed by the query message or, for whole
   processes under CLI/CI gates, by the environment. *)
let make_fault_point ~armed ~cleanup point =
  match !armed with
  | Some spec -> (
      match String.index_opt spec ':' with
      | Some i when String.sub spec (i + 1) (String.length spec - i - 1) = point
        -> (
          armed := None;
          match String.sub spec 0 i with
          | "kill" -> Unix.kill (Unix.getpid ()) Sys.sigkill
          | "exit" ->
              cleanup ();
              exit 3
          | "stop" -> Unix.kill (Unix.getpid ()) Sys.sigstop
          | "wedge" -> ignore (Unix.select [] [] [] 3600.0)
          | _ -> ())
      | _ -> ())
  | None -> ()

let env_fault () =
  match Sys.getenv_opt "TREX_WORKER_FAULT" with
  | Some s when s <> "" -> Some s
  | _ -> None

(* One coordinator conversation over (rx, tx): Hello, then answer
   requests until the peer hangs up. Returns how the conversation
   ended; [Shutdown] and an exploding evaluation exit the process in
   place (containment is the point). Shared by the socketpair worker
   (one conversation, then exit) and the TCP listen worker (one
   conversation per accepted connection). *)
let serve_worker_conn ~shard ~env ~index ~armed ~fault_point ~cleanup rx tx =
  let send resp = Framing.write_all tx (Framing.frame (Wire.encode_response resp)) in
  let docs = (Index.stats index).Index.doc_count in
  send
    (Wire.Hello
       { h_shard = shard; h_pid = Unix.getpid (); h_docs = docs;
         h_wire = Wire.version });
  let evaluate (q : Wire.query) =
    let t0 = Stopclock.now () in
    let guard =
      match (q.Wire.q_deadline_ms, q.Wire.q_page_budget) with
      | None, None -> None
      | d, p -> Some (Guard.create ?deadline_ms:d ?page_budget:p ())
    in
    let pages () = match guard with Some g -> Guard.pages_used g | None -> 0 in
    let ast = Nexi_parser.parse q.Wire.q_nexi in
    let translation =
      Translate.translate ~summary:(Index.summary index)
        ~normalize:(Index.normalize_term index) ast
    in
    let sids = Translate.all_sids translation in
    let terms = Translate.all_terms translation in
    if sids = [] || terms = [] then
      ( {
          Wire.a_degraded = false;
          a_method = None;
          a_entries_read = 0;
          a_elapsed_s = Stopclock.now () -. t0;
          a_pages_used = pages ();
          a_answers = [];
          a_spans = [];
          a_counters = [];
          a_journal = None;
        },
        sids,
        terms )
    else begin
      let outcome, _fallbacks =
        Strategy.evaluate_resilient index ~scoring:q.Wire.q_scoring ~sids ~terms
          ~k:q.Wire.q_k ?guard ~floor:q.Wire.q_floor ?method_:q.Wire.q_method ()
      in
      let target = translation.Translate.target_sids in
      (* Floor and strict filters mirror the in-process coordinator;
         truncation to k is sound because the merge order is total, so
         an entry outside this shard's top k is outside the global
         top k too. *)
      let kept =
        List.filter
          (fun (e : Answer.entry) ->
            e.Answer.score > q.Wire.q_floor
            && ((not q.Wire.q_strict)
               || List.mem e.Answer.element.Trex_invindex.Types.sid target))
          outcome.Strategy.answers
      in
      ( {
          Wire.a_degraded = outcome.Strategy.degraded;
          a_method = Some outcome.Strategy.method_used;
          a_entries_read = outcome.Strategy.entries_read;
          a_elapsed_s = outcome.Strategy.elapsed_seconds;
          a_pages_used = pages ();
          a_answers = Answer.top_k kept q.Wire.q_k;
          a_spans = [];
          a_counters = [];
          a_journal = None;
        },
        sids,
        terms )
    end
  in
  let decoder = Framing.Decoder.create () in
  let rec loop () =
    (* Deadline-bounded wait for the next request/heartbeat frame: the
       deadline is anchored at the first byte of an incomplete frame,
       so a coordinator (or, in listen mode, any peer) that tears or
       dribbles a frame cannot wedge this worker forever. *)
    match
      Framing.recv_deadline ~frame_timeout_s:frame_read_timeout_s rx decoder
    with
    | Framing.Eof | Framing.Idle_timeout ->
        (* Coordinator went away: this conversation is over. *)
        `Peer_gone
    | Framing.Frame_timeout -> `Torn
    | Framing.Frame payload ->
        (match Wire.decode_request payload with
        | Wire.Ping seq -> (
            (* "stale-pong:ping" simulates a pre-restart incarnation's
               Pong surviving into the new conversation: the reply
               carries a seq the coordinator never sent to {e this}
               incarnation, and must not count as a heartbeat. *)
            match !armed with
            | Some "stale-pong:ping" ->
                armed := None;
                send (Wire.Pong (seq - 1))
            | _ -> send (Wire.Pong seq))
        | Wire.Shutdown ->
            Env.close env;
            cleanup ();
            exit 0
        | Wire.Client_query _ ->
            (* Clients talk to the serve front door, not to workers. *)
            raise (Wire.Protocol_error "client_query sent to a shard worker")
        | Wire.Query q ->
            (match q.Wire.q_fault with Some f -> armed := Some f | None -> ());
            fault_point "mid-decode";
            (* Telemetry harvest: snapshot the registry, optionally
               trace, evaluate, then ship span tree + counter delta +
               journal record in the answer. The journal record is
               built, never persisted, worker-side — the coordinator
               owns the journal file. *)
            let before = Metrics.counters () in
            let j_started =
              if q.Wire.q_journal then Some (Obs.Journal.start_query ())
              else None
            in
            if q.Wire.q_trace then begin
              Obs.Span.reset ();
              Obs.Span.set_enabled true
            end;
            let root_attrs =
              ("shard", shard)
              :: ("pid", string_of_int (Unix.getpid ()))
              ::
              (match q.Wire.q_trace_id with
              | Some id -> [ ("trace_id", id) ]
              | None -> [])
            in
            let answer, sids, terms =
              match
                Obs.Span.with_ ~name:("shard.query." ^ shard)
                  ~attrs:root_attrs
                  (fun () -> evaluate q)
              with
              | r -> r
              | exception e ->
                  (* Containment is the point: an exploding evaluation
                     kills this worker, not the coordinator. *)
                  Printf.eprintf "shard-worker %s: query failed: %s\n%!" shard
                    (Printexc.to_string e);
                  Env.close env;
                  cleanup ();
                  exit 2
            in
            let spans = if q.Wire.q_trace then Obs.Span.roots () else [] in
            let span_summary =
              if q.Wire.q_trace then
                match Obs.Span.last () with
                | Some s -> Obs.Span.summarize s
                | None -> []
              else []
            in
            if q.Wire.q_trace then begin
              Obs.Span.set_enabled false;
              Obs.Span.reset ()
            end;
            let counters = Metrics.counters_delta before (Metrics.counters ()) in
            let record =
              Option.map
                (fun st ->
                  Obs.Journal.set_label
                    (Some ("shard:" ^ shard ^ "|" ^ q.Wire.q_nexi));
                  Fun.protect
                    ~finally:(fun () -> Obs.Journal.set_label None)
                    (fun () ->
                      Obs.Journal.build_record st
                        ~strategy:
                          (match answer.Wire.a_method with
                          | Some m -> Strategy.method_to_string m
                          | None -> "none")
                        ~sids ~terms ~k:q.Wire.q_k
                        ~degraded:answer.Wire.a_degraded ~spans:span_summary ()))
                j_started
            in
            let answer =
              { answer with
                Wire.a_spans = spans; a_counters = counters; a_journal = record
              }
            in
            fault_point "pre-reply";
            send (Wire.Answer answer);
            fault_point "post-reply");
        loop ()
  in
  try loop ()
  with Framing.Corrupt_frame e | Wire.Protocol_error e -> `Protocol e

let worker_attach ~dir ~shard ~cleanup =
  match Shard.attach_shard ~dir shard with
  | pair -> pair
  | exception e ->
      Printf.eprintf "shard-worker %s: attach failed: %s\n%!" shard
        (Printexc.to_string e);
      cleanup ();
      exit 1

let worker_main ~dir ~shard () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Private copies of the protocol fds; stdout then aliases stderr so
     a stray [print_string] anywhere below cannot tear a frame. *)
  let rx = Unix.dup Unix.stdin and tx = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  let sdir = Filename.concat dir shard in
  let pid_path = Filename.concat sdir "worker.pid" in
  (try
     let oc = open_out pid_path in
     output_string oc (string_of_int (Unix.getpid ()) ^ "\n");
     close_out oc
   with Sys_error _ -> ());
  let cleanup () = try Sys.remove pid_path with Sys_error _ -> () in
  let armed = ref (env_fault ()) in
  let fault_point = make_fault_point ~armed ~cleanup in
  let env, index = worker_attach ~dir ~shard ~cleanup in
  match serve_worker_conn ~shard ~env ~index ~armed ~fault_point ~cleanup rx tx with
  | `Peer_gone ->
      Env.close env;
      cleanup ();
      exit 0
  | `Torn ->
      Printf.eprintf "shard-worker %s: torn frame (read deadline)\n%!" shard;
      Env.close env;
      cleanup ();
      exit 2
  | `Protocol e ->
      Printf.eprintf "shard-worker %s: protocol error: %s\n%!" shard e;
      Env.close env;
      cleanup ();
      exit 2

(* A remote worker: bind, announce the bound address on stderr, then
   serve one coordinator conversation per accepted connection, forever.
   Its lifetime is decoupled from any coordinator — a coordinator
   hanging up (or being killed) just returns this process to accept;
   protocol corruption costs the connection, not the process. *)
let worker_listen ~dir ~shard ~addr () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  (match Unix.bind lfd (sockaddr_of_string addr) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "shard-worker %s: cannot bind %s: %s\n%!" shard addr
        (Unix.error_message e);
      exit 1);
  Unix.listen lfd 8;
  (match Unix.getsockname lfd with
  | Unix.ADDR_INET (ip, port) ->
      (* Parseable by whoever spawned us — how tests learn a port 0. *)
      Printf.eprintf "LISTENING %s:%d\n%!" (Unix.string_of_inet_addr ip) port
  | _ -> ());
  let cleanup () = () in
  let armed = ref (env_fault ()) in
  let fault_point = make_fault_point ~armed ~cleanup in
  let env, index = worker_attach ~dir ~shard ~cleanup in
  ignore env;
  let rec accept_loop () =
    match Unix.accept lfd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | conn, _peer ->
        (match
           serve_worker_conn ~shard ~env ~index ~armed ~fault_point ~cleanup
             conn conn
         with
        | `Peer_gone -> ()
        | `Torn ->
            Printf.eprintf "shard-worker %s: torn frame (read deadline)\n%!"
              shard
        | `Protocol e ->
            Printf.eprintf "shard-worker %s: protocol error: %s\n%!" shard e
        | exception Unix.Unix_error _ ->
            (* A send into a vanished coordinator (EPIPE) ends the
               conversation, not the worker. *)
            ());
        (try Unix.close conn with Unix.Unix_error _ -> ());
        accept_loop ()
  in
  accept_loop ()
