(* Front-door suite: the serve daemon's overload and drain contract.

   What must hold (DESIGN.md §6): every request a client manages to
   send terminates as exactly one of answer, tagged partial, or typed
   [Shed] — overload makes the server fast and honest, never silently
   slow, and never a torn frame; non-shed answers are rank-identical
   to evaluating the same query against the same environment directly;
   SIGTERM drains (finish-or-shed admitted work, exit 0); a remote
   shard worker SIGKILLed under a serving coordinator degrades the
   answer to a tagged sound partial through the front door; peers that
   dribble frames or speak the wrong protocol are disconnected, and
   repeat offenders are refused at accept by their per-IP breaker.

   The server is forked (not exec'd) around an inherited listen
   socket the parent bound to port 0 — no port races, no argv
   plumbing. Remote shard workers exec this binary, so it dispatches
   to [Supervisor.worker_main]/[worker_listen] like the supervisor
   suite does. *)

module Env = Trex_storage.Env
module Framing = Trex_util.Framing
module Metrics = Trex_obs.Metrics
module Shard = Trex_shard.Shard
module Supervisor = Trex_shard.Supervisor
module Wire = Trex_shard.Wire
module Serve = Trex_serve.Serve
module Strategy = Trex_topk.Strategy
module Answer = Trex_topk.Answer
module Types = Trex_invindex.Types

let check = Alcotest.check

let temp_dir () =
  let dir = Filename.temp_file "trex_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let nexi = "//article//sec[about(., information retrieval)]"

(* One corpus, twice: on disk (what the daemon serves) and in memory
   (the baseline the daemon's answers must rank-match). *)
let build_env ~docs:doc_count ~seed =
  let coll = Trex_corpus.Gen.ieee ~doc_count ~seed () in
  let docs = List.of_seq (coll.docs ()) in
  let baseline_env = Env.in_memory () in
  let engine = Trex.build ~env:baseline_env ~alias:coll.alias (List.to_seq docs) in
  let dir = temp_dir () in
  let storage = Env.on_disk dir in
  ignore (Trex.build ~env:storage ~alias:coll.alias (List.to_seq docs));
  Env.close storage;
  (dir, engine)

let build_coordinator ~docs:doc_count ~seed =
  let coll = Trex_corpus.Gen.ieee ~doc_count ~seed () in
  let docs = List.of_seq (coll.docs ()) in
  let baseline_env = Env.in_memory () in
  let engine = Trex.build ~env:baseline_env ~alias:coll.alias (List.to_seq docs) in
  let dir = temp_dir () in
  Shard.close (Shard.create ~dir ~shards:3 ~alias:coll.alias docs);
  (dir, engine)

let baseline engine ~k q =
  Answer.top_k (Trex.query engine ~k q).Trex.strategy.Strategy.answers k

let answers_testable =
  let entry_sig (e : Answer.entry) =
    (e.element.Types.docid, e.element.Types.endpos, e.element.Types.length)
  in
  let equal a b =
    List.compare_lengths a b = 0
    && List.for_all2
         (fun (x : Answer.entry) (y : Answer.entry) ->
           entry_sig x = entry_sig y
           && Float.abs (x.Answer.score -. y.Answer.score) <= 1e-9)
         a b
  in
  Alcotest.testable Answer.pp equal

(* ---- harness: fork the daemon around a pre-bound socket ---- *)

let fork_server ?(policy = Serve.default_policy) ?(remote = []) dir =
  let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen 64;
  let port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try Serve.run ~policy ~remote ~listen_fd:listen ~dir ~addr:"-" ()
        with _ -> 9
      in
      Unix._exit code
  | pid ->
      Unix.close listen;
      (pid, Printf.sprintf "127.0.0.1:%d" port)

let stop_server pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let with_server ?policy ?remote dir f =
  let pid, addr = fork_server ?policy ?remote dir in
  Fun.protect ~finally:(fun () -> stop_server pid) (fun () -> f pid addr)

let client_query ?(k = 10) ?deadline_ms nexi =
  {
    Wire.c_nexi = nexi;
    c_k = k;
    c_method = None;
    c_strict = false;
    c_deadline_ms = deadline_ms;
    c_page_budget = None;
  }

let fd_count pid =
  Array.length (Sys.readdir (Printf.sprintf "/proc/%d/fd" pid))

(* ---- identity: the front door adds transport, not answers ---- *)

let test_answer_identity () =
  let dir, engine = build_env ~docs:24 ~seed:7 in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_server dir @@ fun _pid addr ->
  let c = Serve.Client.connect addr in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  Alcotest.(check bool) "ping answers pong" true (Serve.Client.ping c);
  match Serve.Client.request c (client_query ~k:10 nexi) with
  | Serve.Client.Answer a ->
      Alcotest.(check bool) "untagged" false a.Wire.ca_degraded;
      check answers_testable "served answer = direct evaluation"
        (baseline engine ~k:10 nexi) a.Wire.ca_answers
  | Serve.Client.Shed { reason; _ } -> Alcotest.failf "shed an idle server: %s" reason
  | Serve.Client.Draining -> Alcotest.fail "server draining unprompted"

(* ---- overload soak: every request terminates, exactly once ----

   A 1-slot queue, several connections, every connection pipelining a
   burst of queries without waiting. The server must answer or shed
   each one — C*K terminal frames, no more, no fewer — the answered
   ones rank-identical to direct evaluation, and under this much
   offered load at least one request of each fate. Afterwards the
   daemon's fd table must be back to its pre-soak size: no socket
   leaks. *)
let test_overload_soak () =
  let dir, engine = build_env ~docs:24 ~seed:7 in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let policy =
    { Serve.default_policy with queue_limit = 1; default_deadline_ms = 5_000.0 }
  in
  with_server ~policy dir @@ fun srv_pid addr ->
  let expected = baseline engine ~k:5 nexi in
  (* settle: one full connect/query/disconnect cycle — so the env's
     lazily-opened table files are all open — then measure the fd
     table *)
  (let c = Serve.Client.connect addr in
   Alcotest.(check bool) "warmup ping" true (Serve.Client.ping c);
   (match Serve.Client.request c (client_query ~k:5 nexi) with
   | Serve.Client.Answer _ -> ()
   | _ -> Alcotest.fail "warmup query did not answer");
   Serve.Client.close c);
  Unix.sleepf 0.2;
  let fds_before = fd_count srv_pid in
  let conns = 4 and burst = 6 in
  let clients =
    List.init conns (fun _ -> Serve.Client.connect addr)
  in
  let answered = ref 0 and shed = ref 0 in
  Fun.protect
    ~finally:(fun () -> List.iter Serve.Client.close clients)
    (fun () ->
      (* pipeline the whole burst on every connection first... *)
      List.iter
        (fun c ->
          for _ = 1 to burst do
            Serve.Client.send c (Wire.Client_query (client_query ~k:5 nexi))
          done)
        clients;
      (* ...then collect exactly [burst] terminal replies per
         connection; a missing or extra frame fails the test *)
      List.iter
        (fun c ->
          for _ = 1 to burst do
            match Serve.Client.collect_terminal ~timeout_s:30.0 c with
            | Serve.Client.Answer a ->
                incr answered;
                Alcotest.(check bool) "answer untagged" false a.Wire.ca_degraded;
                check answers_testable "soak answer rank-identical" expected
                  a.Wire.ca_answers
            | Serve.Client.Shed { retry_after_ms; _ } ->
                incr shed;
                Alcotest.(check bool)
                  "retry_after is non-negative" true (retry_after_ms >= 0.0)
            | Serve.Client.Draining -> Alcotest.fail "drain during soak"
          done)
        clients);
  Alcotest.(check int) "every request terminated exactly once" (conns * burst)
    (!answered + !shed);
  Alcotest.(check bool) "some answered" true (!answered > 0);
  Alcotest.(check bool)
    (Printf.sprintf "1-slot queue under %dx pipelined load sheds (answered=%d)"
       conns !answered)
    true (!shed > 0);
  (* no socket leaks: the daemon's fd table returns to its pre-soak
     size once the clients hang up *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    if fd_count srv_pid <= fds_before then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "fd leak: %d fds before soak, %d after" fds_before
        (fd_count srv_pid)
    else begin
      Unix.sleepf 0.05;
      settle ()
    end
  in
  settle ()

(* ---- graceful drain: SIGTERM mid-conversation ---- *)

let test_sigterm_drain () =
  let dir, engine = build_env ~docs:24 ~seed:7 in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let pid, addr = fork_server dir in
  let reaped = ref false in
  Fun.protect
    ~finally:(fun () -> if not !reaped then stop_server pid)
    (fun () ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (* the query and the SIGTERM race: whatever the server decides,
         the client must see one clean terminal frame, never a tear *)
      Serve.Client.send c (Wire.Client_query (client_query ~k:5 nexi));
      Unix.kill pid Sys.sigterm;
      (match Serve.Client.collect_terminal ~timeout_s:30.0 c with
      | Serve.Client.Answer a ->
          check answers_testable "drained answer still rank-identical"
            (baseline engine ~k:5 nexi) a.Wire.ca_answers
      | Serve.Client.Shed _ | Serve.Client.Draining -> ());
      let _, status = Unix.waitpid [] pid in
      reaped := true;
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "drain exited %d, want 0" n
      | Unix.WSIGNALED s -> Alcotest.failf "server died on signal %d" s
      | Unix.WSTOPPED _ -> Alcotest.fail "server stopped");
      (* and the daemon is really gone: fresh connects are refused *)
      match Serve.Client.connect ~timeout_s:1.0 addr with
      | exception Serve.Client.Unreachable _ -> ()
      | c2 ->
          Serve.Client.close c2;
          Alcotest.fail "connected to a drained server")

(* ---- remote shard worker killed mid-service ---- *)

let spawn_listen_worker ~dir ~shard =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      Unix.dup2 w Unix.stderr;
      if w <> Unix.stderr then Unix.close w;
      let prog = Sys.executable_name in
      let argv =
        [| prog; "shard-worker"; "--dir"; dir; "--shard"; shard;
           "--listen"; "127.0.0.1:0" |]
      in
      (try Unix.execv prog argv with _ -> ());
      exit 127
  | pid ->
      Unix.close w;
      let buf = Buffer.create 64 in
      let chunk = Bytes.create 256 in
      let rec find () =
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i ->
            let line = String.sub s 0 i in
            Buffer.clear buf;
            Buffer.add_string buf
              (String.sub s (i + 1) (String.length s - i - 1));
            if String.length line > 10 && String.sub line 0 10 = "LISTENING "
            then String.sub line 10 (String.length line - 10)
            else find ()
        | None -> (
            match Unix.read r chunk 0 (Bytes.length chunk) with
            | 0 -> Alcotest.fail "listen worker died before announcing its port"
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                find ())
      in
      let addr = find () in
      (pid, r, addr)

let test_remote_worker_kill_through_front_door () =
  let dir, engine = build_coordinator ~docs:24 ~seed:11 in
  let infos = Shard.load_map dir in
  let rname = (List.hd infos).Shard.name in
  let wpid, wfd, waddr = spawn_listen_worker ~dir ~shard:rname in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill wpid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] wpid) with Unix.Unix_error _ -> ());
      (try Unix.close wfd with Unix.Unix_error _ -> ());
      rm_rf dir)
  @@ fun () ->
  with_server ~remote:[ (rname, waddr) ] dir @@ fun _pid addr ->
  let c = Serve.Client.connect ~timeout_s:15.0 addr in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  (* healthy: the remote-backed coordinator answers the full ranking *)
  (match Serve.Client.request ~timeout_s:30.0 c (client_query ~k:8 nexi) with
  | Serve.Client.Answer a ->
      Alcotest.(check bool) "healthy scatter untagged" false a.Wire.ca_degraded;
      check answers_testable "front-door scatter = direct evaluation"
        (baseline engine ~k:8 nexi) a.Wire.ca_answers
  | Serve.Client.Shed { reason; _ } -> Alcotest.failf "healthy query shed: %s" reason
  | Serve.Client.Draining -> Alcotest.fail "drain during healthy query");
  (* SIGKILL the remote worker, then query again: the answer must be
     a tagged sound partial naming the lost shard *)
  Unix.kill wpid Sys.sigkill;
  ignore (Unix.waitpid [] wpid);
  match Serve.Client.request ~timeout_s:30.0 c (client_query ~k:8 nexi) with
  | Serve.Client.Answer a ->
      Alcotest.(check bool) "kill degrades" true a.Wire.ca_degraded;
      Alcotest.(check bool)
        "tag names the dead shard" true
        (List.mem_assoc rname a.Wire.ca_tags);
      let lost =
        List.filter_map
          (fun (i : Shard.shard_info) ->
            if i.Shard.name = rname then Some (i.base, i.base + i.docs)
            else None)
          infos
      in
      let surviving =
        Answer.top_k
          (List.filter
             (fun (e : Answer.entry) ->
               not
                 (List.exists
                    (fun (lo, hi) ->
                      e.element.Types.docid >= lo && e.element.Types.docid < hi)
                    lost))
             (baseline engine ~k:1_000_000 nexi))
          8
      in
      check answers_testable "partial = surviving shards exactly" surviving
        a.Wire.ca_answers
  | Serve.Client.Shed { reason; _ } -> Alcotest.failf "degraded query shed: %s" reason
  | Serve.Client.Draining -> Alcotest.fail "drain during degraded query"

(* ---- abuse: slowloris and protocol violations ---- *)

let test_slowloris_disconnect () =
  let dir, _engine = build_env ~docs:8 ~seed:3 in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let policy = { Serve.default_policy with frame_timeout_s = 0.2 } in
  with_server ~policy dir @@ fun _pid addr ->
  let c = Serve.Client.connect addr in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  (* half a frame, then silence: the server must cut us off around
     frame_timeout_s, not wait for the rest *)
  let frame =
    Framing.frame (Wire.encode_request (Wire.Client_query (client_query nexi)))
  in
  let half = Bytes.sub frame 0 (Bytes.length frame / 2) in
  Framing.write_all (Serve.Client.fd c) half;
  let t0 = Unix.gettimeofday () in
  (match Serve.Client.collect_terminal ~timeout_s:10.0 c with
  | exception Serve.Client.Unreachable _ -> ()
  | _ -> Alcotest.fail "server answered half a frame");
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "disconnected near the frame deadline (%.2fs)" dt)
    true
    (dt < 5.0)

let test_protocol_breaker_refuses_repeat_offender () =
  let dir, _engine = build_env ~docs:8 ~seed:3 in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let policy =
    { Serve.default_policy with breaker_strikes = 2; breaker_cooldown_s = 60.0 }
  in
  with_server ~policy dir @@ fun _pid addr ->
  (* strike out: worker-protocol frames on the client port *)
  let c = Serve.Client.connect addr in
  Serve.Client.send c Wire.Shutdown;
  Serve.Client.send c Wire.Shutdown;
  (match Serve.Client.collect_terminal ~timeout_s:5.0 c with
  | exception Serve.Client.Unreachable _ -> ()
  | _ -> Alcotest.fail "server answered the worker protocol");
  Serve.Client.close c;
  (* the peer breaker is open: the next connect is turned away before
     the handshake *)
  match Serve.Client.connect ~timeout_s:2.0 addr with
  | exception Serve.Client.Unreachable _ -> ()
  | c2 ->
      Serve.Client.close c2;
      Alcotest.fail "tripped peer was accepted"

let () =
  (* Remote shard workers exec this very binary: dispatch before
     Alcotest ever sees argv. *)
  (match Array.to_list Sys.argv with
  | _ :: "shard-worker" :: rest ->
      let rec get_opt key = function
        | k :: v :: _ when k = key -> Some v
        | _ :: tl -> get_opt key tl
        | [] -> None
      in
      let get key =
        match get_opt key rest with
        | Some v -> v
        | None ->
            prerr_endline ("shard-worker: missing " ^ key);
            exit 2
      in
      let dir = get "--dir" and shard = get "--shard" in
      (match get_opt "--listen" rest with
      | Some addr -> Supervisor.worker_listen ~dir ~shard ~addr ()
      | None -> Supervisor.worker_main ~dir ~shard ())
  | _ -> ());
  Alcotest.run "trex_serve"
    [
      ( "identity",
        [
          Alcotest.test_case "served answers = direct evaluation" `Quick
            test_answer_identity;
        ] );
      ( "overload",
        [
          Alcotest.test_case
            "soak: every request answers or sheds, no fd leaks" `Quick
            test_overload_soak;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM mid-query: clean terminal frame, exit 0"
            `Quick test_sigterm_drain;
        ] );
      ( "remote",
        [
          Alcotest.test_case "remote worker SIGKILL degrades to tagged partial"
            `Quick test_remote_worker_kill_through_front_door;
        ] );
      ( "abuse",
        [
          Alcotest.test_case "slowloris frames are disconnected" `Quick
            test_slowloris_disconnect;
          Alcotest.test_case "repeat protocol offender refused at accept"
            `Quick test_protocol_breaker_refuses_repeat_offender;
        ] );
    ]
