(* Crash-matrix and corruption-detection tests for the storage
   substrate.

   Strategy: run a deterministic workload once against a clean pager to
   learn its raw-write sequence length, then re-run it once per crash
   point with a fault plan that kills the pager at exactly that write.
   After every simulated crash the file is reopened with recovery and
   must present either a verified-consistent tree or a typed
   [Pager.Corruption] — never fabricated data. *)

module Pager = Trex_storage.Pager
module Bptree = Trex_storage.Bptree
module Env = Trex_storage.Env

let check = Alcotest.check

let temp_dir () =
  let dir = Filename.temp_file "trex_crash" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let key i = Printf.sprintf "key-%06d" i
let value i = Printf.sprintf "val-%d" i
let entries n = List.init n (fun i -> (key i, value i))

let raises_corruption f =
  try
    ignore (f ());
    false
  with Pager.Corruption _ -> true

let flip_bit_in_file path ~off ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (bit land 7))));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let file_length path = (Unix.stat path).Unix.st_size

(* Header region of the pager file format: two 64-byte slots. *)
let header_size = 128

(* Reopen a crashed pager file and classify the surviving state.
   [known] gives the expected value for any key the tree may contain;
   any other value for a key is fabricated data and fails the test. *)
type outcome = Detected | Empty | Sound of int

let reopen_and_classify ?(known = fun _ -> None) path =
  match Pager.open_with_recovery path with
  | exception Pager.Corruption _ -> Detected
  | p, _recovery ->
      let outcome =
        if Pager.verify_checksums p <> [] then Detected
        else if Pager.get_root p < 0 then Empty
        else
          match Bptree.attach p with
          | exception Pager.Corruption _ -> Detected
          | t ->
              let r = Bptree.verify t in
              if r.Bptree.problems <> [] then Detected
              else begin
                let rows = ref 0 in
                Bptree.iter t (fun k v ->
                    incr rows;
                    match known k with
                    | Some expected ->
                        check Alcotest.string ("value of " ^ k) expected v
                    | None ->
                        Alcotest.failf "fabricated key %S after recovery" k);
                Sound !rows
              end
      in
      Pager.abort p;
      outcome

(* ---- crash matrix: bulk load (pages, tail, final header commit) ---- *)

let known_of n k =
  (* key-%06d -> its deterministic value, None for foreign keys *)
  if String.length k = 10 && String.sub k 0 4 = "key-" then
    match int_of_string_opt (String.sub k 4 6) with
    | Some i when i >= 0 && i < n -> Some (value i)
    | _ -> None
  else None

let test_crash_matrix_bulk_load () =
  let dir = temp_dir () in
  let n_entries = 300 in
  (* Clean run: learn the full write sequence length. *)
  let clean = Filename.concat dir "clean.tbl" in
  let p = Pager.create_file ~page_size:512 clean in
  let after_create = Pager.io_seq p in
  ignore (Bptree.bulk_load p (List.to_seq (entries n_entries)));
  let total = Pager.io_seq p in
  Pager.close p;
  Alcotest.(check bool) "workload performs writes" true (total > after_create + 4);
  let sound = ref 0 and empty = ref 0 and detected = ref 0 in
  for n = after_create to total do
    let path = Filename.concat dir (Printf.sprintf "crash-%d.tbl" n) in
    let p =
      Pager.create_faulty
        ~faults:[ Pager.Crash_after_writes n ]
        (Pager.create_file ~page_size:512 path)
    in
    let crashed =
      match Bptree.bulk_load p (List.to_seq (entries n_entries)) with
      | _ -> false
      | exception Pager.Injected_crash _ -> true
    in
    Pager.abort p;
    check Alcotest.bool
      (Printf.sprintf "crash point %d fires iff before the end" n)
      (n < total) crashed;
    (match reopen_and_classify ~known:(known_of n_entries) path with
    | Detected -> incr detected
    | Empty -> incr empty
    | Sound rows ->
        incr sound;
        (* bulk_load commits exactly once, so a sound tree is complete *)
        check Alcotest.int
          (Printf.sprintf "crash point %d: all-or-nothing" n)
          n_entries rows)
  done;
  (* The matrix must actually exercise all three outcomes. *)
  Alcotest.(check bool) "some crash points recover to empty" true (!empty > 0);
  Alcotest.(check bool) "the no-crash run is sound" true (!sound >= 1)

(* ---- crash matrix: incremental inserts with durable commits ---- *)

let test_crash_matrix_inserts () =
  let dir = temp_dir () in
  let n_entries = 240 in
  let batch = 60 in
  let workload p =
    let t = Bptree.create p in
    for b = 0 to (n_entries / batch) - 1 do
      for i = 0 to batch - 1 do
        let j = (b * batch) + i in
        Bptree.insert t ~key:(key j) ~value:(value j)
      done;
      (* Durable commit point after every batch. *)
      Pager.flush ~sync:true p
    done
  in
  let clean = Filename.concat dir "clean.tbl" in
  (* A tiny cache forces dirty-page evictions between commit points, so
     crash points also land inside half-written batches. *)
  let p = Pager.create_file ~page_size:512 ~cache_pages:8 clean in
  let after_create = Pager.io_seq p in
  workload p;
  let total = Pager.io_seq p in
  Pager.close p;
  let sound = ref 0 and detected = ref 0 in
  for n = after_create to total do
    let path = Filename.concat dir (Printf.sprintf "crash-%d.tbl" n) in
    let p =
      Pager.create_faulty
        ~faults:[ Pager.Crash_after_writes n ]
        (Pager.create_file ~page_size:512 ~cache_pages:8 path)
    in
    (match workload p with
    | () -> ()
    | exception Pager.Injected_crash _ -> ());
    Pager.abort p;
    match reopen_and_classify ~known:(known_of n_entries) path with
    | Detected -> incr detected
    | Empty -> ()
    | Sound _ -> incr sound
    (* reopen_and_classify already asserted no fabricated keys/values *)
  done;
  Alcotest.(check bool) "matrix reaches sound recoveries" true (!sound > 0)

(* ---- torn header write: epoch fallback ---- *)

let test_torn_header_falls_back () =
  let dir = temp_dir () in
  let path = Filename.concat dir "torn.tbl" in
  let p = Pager.create_file ~page_size:512 path in
  let t = Bptree.create p in
  for i = 0 to 49 do
    Bptree.insert t ~key:(key i) ~value:(value i)
  done;
  Pager.flush ~sync:true p;
  (* Nothing is dirty now, so the very next raw write is the header
     commit of the next flush: tear it mid-slot. The tear must keep the
     new epoch bytes (offset 8..15) but lose the slot CRC (offset 60),
     otherwise the surviving prefix equals the slot's previous, still
     valid content — which is just "crashed before the header write". *)
  ignore
    (Pager.create_faulty
       ~faults:
         [ Pager.Torn_write { after_writes = Pager.io_seq p; keep_bytes = 32 } ]
       p);
  (match Pager.flush p with
  | () -> Alcotest.fail "expected injected crash"
  | exception Pager.Injected_crash _ -> ());
  Pager.abort p;
  Alcotest.(check bool) "strict open refuses the torn header" true
    (raises_corruption (fun () -> Pager.open_file path));
  let p2, recovery = Pager.open_with_recovery path in
  Alcotest.(check bool) "recovery fell back" true recovery.Pager.recovered;
  check Alcotest.int "recoveries counter" 1 (Pager.stats p2).Pager.recoveries;
  let t2 = Bptree.attach p2 in
  let r = Bptree.verify t2 in
  check (Alcotest.list Alcotest.string) "verify clean" [] r.Bptree.problems;
  check Alcotest.int "previous commit intact" 50 (Bptree.length t2);
  check
    (Alcotest.option Alcotest.string)
    "row readable" (Some (value 17))
    (Bptree.find t2 (key 17));
  (* The next commit reclaims the damaged slot: after it, strict opens
     work again. *)
  Pager.close p2;
  let p3 = Pager.open_file path in
  check Alcotest.int "healed" 50 (Bptree.length (Bptree.attach p3));
  Pager.close p3

(* ---- bit flips: pages and header slots ---- *)

let build_table path =
  let p = Pager.create_file ~page_size:512 path in
  ignore (Bptree.bulk_load p (List.to_seq (entries 200)));
  Pager.close p

let test_page_bit_flip_detected () =
  let dir = temp_dir () in
  let path = Filename.concat dir "flip.tbl" in
  build_table path;
  (* Inside page 0 (the first leaf). *)
  flip_bit_in_file path ~off:(header_size + 17) ~bit:3;
  let p, recovery = Pager.open_with_recovery path in
  Alcotest.(check bool) "header unaffected" false recovery.Pager.recovered;
  Alcotest.(check bool) "sweep reports the page" true
    (Pager.verify_checksums p <> []);
  Alcotest.(check bool) "failure counter visible" true
    ((Pager.stats p).Pager.checksum_failures > 0);
  (* A read that touches the damaged page raises, never returns bytes. *)
  let t = Bptree.attach p in
  Alcotest.(check bool) "lookup raises typed Corruption" true
    (raises_corruption (fun () -> Bptree.find t (key 0)));
  Pager.abort p

let test_header_bit_flip_either_slot () =
  let dir = temp_dir () in
  List.iter
    (fun (label, slot_off) ->
      let path = Filename.concat dir (label ^ ".tbl") in
      build_table path;
      flip_bit_in_file path ~off:(slot_off + 20) ~bit:6;
      Alcotest.(check bool)
        (label ^ ": strict open refuses")
        true
        (raises_corruption (fun () -> Pager.open_file path));
      let p, recovery = Pager.open_with_recovery path in
      Alcotest.(check bool) (label ^ ": recovered") true recovery.Pager.recovered;
      let t = Bptree.attach p in
      check Alcotest.int (label ^ ": rows intact") 200 (Bptree.length t);
      check
        (Alcotest.list Alcotest.string)
        (label ^ ": verify clean")
        [] (Bptree.verify t).Bptree.problems;
      Pager.abort p)
    [ ("slot0", 0); ("slot1", 64) ]

let prop_page_bit_flip_always_detected =
  let open QCheck in
  Test.make ~name:"any page-region bit flip is detected, never served"
    ~count:40
    (pair small_nat (int_bound 7))
    (fun (off_seed, bit) ->
      let dir = temp_dir () in
      let path = Filename.concat dir "prop.tbl" in
      let p = Pager.create_file ~page_size:256 path in
      ignore (Bptree.bulk_load p (List.to_seq (entries 80)));
      Pager.close p;
      let len = file_length path in
      let off = header_size + ((off_seed * 7919) mod (len - header_size)) in
      flip_bit_in_file path ~off ~bit;
      let p, _ = Pager.open_with_recovery path in
      let sweep = Pager.verify_checksums p in
      let counted = (Pager.stats p).Pager.checksum_failures > 0 in
      Pager.abort p;
      sweep <> [] && counted)

(* ---- environment-level recovery ---- *)

let test_env_verify_clean_then_corrupt () =
  let dir = temp_dir () in
  let env = Env.on_disk ~page_size:512 dir in
  let a = Env.table env "alpha" and b = Env.table env "beta" in
  for i = 0 to 99 do
    Bptree.insert a ~key:(key i) ~value:(value i);
    Bptree.insert b ~key:(key i) ~value:(value (i * 2))
  done;
  Env.flush ~sync:true env;
  let reports = Env.verify env in
  check Alcotest.int "two tables" 2 (List.length reports);
  List.iter
    (fun (r : Env.table_report) ->
      Alcotest.(check bool) (r.Env.table ^ " ok") true r.Env.ok;
      Alcotest.(check bool) (r.Env.table ^ " rows") true (r.Env.entries = 100))
    reports;
  List.iter
    (fun (name, (s : Pager.stats)) ->
      check Alcotest.int (name ^ " no checksum failures") 0 s.Pager.checksum_failures;
      check Alcotest.int (name ^ " no recoveries") 0 s.Pager.recoveries)
    (Env.io_stats env);
  Env.close env;
  (* Corrupt one table; verify must localize the damage. *)
  flip_bit_in_file (Filename.concat dir "beta.tbl") ~off:(header_size + 40) ~bit:1;
  let env2 = Env.on_disk ~page_size:512 dir in
  let reports = Env.verify env2 in
  List.iter
    (fun (r : Env.table_report) ->
      check Alcotest.bool (r.Env.table ^ " status") (r.Env.table = "alpha")
        r.Env.ok)
    reports;
  let failures =
    List.fold_left
      (fun acc (_, (s : Pager.stats)) -> acc + s.Pager.checksum_failures)
      0 (Env.io_stats env2)
  in
  Alcotest.(check bool) "io_stats shows checksum failures" true (failures > 0);
  Env.close env2

let test_env_compact_tmp_leftover_cleaned () =
  let dir = temp_dir () in
  let env = Env.on_disk ~page_size:512 dir in
  let t = Env.table env "fat" in
  for i = 0 to 99 do
    Bptree.insert t ~key:(key i) ~value:(value i)
  done;
  Env.close env;
  (* Simulate a compaction that crashed before its atomic rename. *)
  let tmp = Filename.concat dir "fat.compact-tmp.tbl" in
  let oc = open_out tmp in
  output_string oc "partial compaction temp, never renamed";
  close_out oc;
  let env2 = Env.on_disk ~page_size:512 dir in
  Alcotest.(check bool) "leftover removed" false (Sys.file_exists tmp);
  check (Alcotest.list Alcotest.string) "only the real table" [ "fat" ]
    (Env.table_names env2);
  check Alcotest.int "table intact" 100 (Bptree.length (Env.table env2 "fat"));
  Env.close env2

let test_env_compact_valid_tmp_swept () =
  let dir = temp_dir () in
  let env = Env.on_disk ~page_size:512 dir in
  let t = Env.table env "fat" in
  List.iter (fun (k, v) -> Bptree.insert t ~key:k ~value:v) (entries 100);
  Env.close env;
  (* A compaction that crashed after fully building (and syncing) its
     temp file but before the rename: the temp is a perfectly valid
     pager file, and must still be swept — only the rename publishes a
     compaction, so the original stays the truth. *)
  let tmp = Filename.concat dir "fat.compact-tmp.tbl" in
  let p = Pager.create_file ~page_size:512 tmp in
  ignore (Bptree.bulk_load p (List.to_seq (entries 100)));
  Pager.close p;
  let env2 = Env.on_disk ~page_size:512 dir in
  Alcotest.(check bool) "valid temp swept" false (Sys.file_exists tmp);
  check (Alcotest.list Alcotest.string) "only the real table" [ "fat" ]
    (Env.table_names env2);
  check Alcotest.int "table intact" 100 (Bptree.length (Env.table env2 "fat"));
  Env.close env2

(* Crash matrix over the compaction window itself: the fault plan
   targets the temp-file pager inside [Env.compact_table], so every raw
   write between "temp created" and "temp durable" becomes a crash
   point. Whatever the point, reopening must sweep the temp and present
   the original table, complete and unfabricated. *)
let test_crash_matrix_compact_table () =
  let dir = temp_dir () in
  let n_entries = 150 in
  let build sub =
    Unix.mkdir sub 0o755;
    let env = Env.on_disk ~page_size:512 sub in
    let t = Env.table env "fat" in
    List.iter (fun (k, v) -> Bptree.insert t ~key:k ~value:v) (entries n_entries);
    Env.flush ~sync:true env;
    env
  in
  let crash_points = ref 0 and finished = ref false and n = ref 0 in
  while (not !finished) && !n < 5000 do
    let sub = Filename.concat dir (Printf.sprintf "run-%d" !n) in
    let env = build sub in
    (match Env.compact_table ~faults:[ Pager.Crash_after_writes !n ] env "fat" with
    | () -> finished := true
    | exception Pager.Injected_crash _ -> incr crash_points);
    Env.close env;
    let env2 = Env.on_disk ~page_size:512 sub in
    Alcotest.(check bool)
      (Printf.sprintf "crash point %d: temp swept" !n)
      false
      (Sys.file_exists (Filename.concat sub "fat.compact-tmp.tbl"));
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "crash point %d: only the real table" !n)
      [ "fat" ] (Env.table_names env2);
    let t = Env.table env2 "fat" in
    check Alcotest.int
      (Printf.sprintf "crash point %d: rows intact" !n)
      n_entries (Bptree.length t);
    Bptree.iter t (fun k v ->
        match known_of n_entries k with
        | Some expected -> check Alcotest.string ("value of " ^ k) expected v
        | None -> Alcotest.failf "fabricated key %S after compaction crash" k);
    Env.close env2;
    incr n
  done;
  Alcotest.(check bool) "the last run compacts cleanly" true !finished;
  Alcotest.(check bool) "matrix exercised crash points" true (!crash_points > 3)

let test_env_open_with_recovery_reinits_uncommitted () =
  let dir = temp_dir () in
  let env = Env.on_disk ~page_size:512 dir in
  let t = Env.table env "good" in
  Bptree.insert t ~key:"k" ~value:"v";
  Env.close env;
  (* A table whose creating commit never happened: header says root -1. *)
  Pager.abort (Pager.create_file ~page_size:512 (Filename.concat dir "lost.tbl"));
  let env2, reports = Env.open_with_recovery ~page_size:512 dir in
  let lost = List.find (fun (r : Env.table_report) -> r.Env.table = "lost") reports in
  Alcotest.(check bool) "reinit reported as recovery" true lost.Env.recovered;
  Alcotest.(check bool) "reinit is ok" true lost.Env.ok;
  let good = List.find (fun (r : Env.table_report) -> r.Env.table = "good") reports in
  Alcotest.(check bool) "good table ok" true good.Env.ok;
  Alcotest.(check bool) "good table not recovered" false good.Env.recovered;
  check (Alcotest.option Alcotest.string) "good data intact" (Some "v")
    (Bptree.find (Env.table env2 "good") "k");
  check Alcotest.int "lost table reinitialized empty" 0
    (Bptree.length (Env.table env2 "lost"));
  Env.close env2

(* ---- engine level: attach ~verify and queries after corruption ---- *)

let nexi = "//article//sec[about(., information retrieval)]"

let test_engine_attach_verify () =
  let dir = temp_dir () in
  let coll = Trex_corpus.Gen.ieee ~doc_count:20 () in
  let env = Trex.Env.on_disk dir in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
  ignore (Trex.materialize engine nexi);
  let before = Trex.query engine ~k:5 ~method_:Trex.Strategy.Era_method nexi in
  Trex.Env.close env;
  (* Clean reattach with verification enabled; ERA and TA (over the
     persisted materialized lists) must serve the same answers as before
     the restart. *)
  let env2 = Trex.Env.on_disk dir in
  let engine2 = Trex.attach ~env:env2 ~verify:true () in
  let era = Trex.query engine2 ~k:5 ~method_:Trex.Strategy.Era_method nexi in
  let ta = Trex.query engine2 ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  let sig_of answers =
    List.map
      (fun (e : Trex.Answer.entry) ->
        (e.element.Trex.Types.docid, e.element.Trex.Types.endpos))
      answers
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "ERA answers survive restart"
    (sig_of before.strategy.answers)
    (sig_of era.strategy.answers);
  (* TA may break score ties differently; compare score sequences. *)
  let era_top = Trex.Answer.top_k era.strategy.answers 5 in
  check Alcotest.int "TA size" (List.length era_top)
    (List.length ta.strategy.answers);
  List.iter2
    (fun (a : Trex.Answer.entry) (b : Trex.Answer.entry) ->
      check (Alcotest.float 1e-9) "TA score" a.score b.score)
    era_top ta.strategy.answers;
  Trex.Env.close env2;
  (* Corrupt the postings table: attach ~verify must refuse with a typed
     error instead of ever serving wrong answers. *)
  flip_bit_in_file (Filename.concat dir "postings.tbl") ~off:(header_size + 99)
    ~bit:5;
  let env3 = Trex.Env.on_disk dir in
  Alcotest.(check bool) "verified attach refuses corrupt env" true
    (raises_corruption (fun () -> Trex.attach ~env:env3 ~verify:true ()));
  Trex.Env.close env3

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_crash"
    [
      ( "crash-matrix",
        [
          Alcotest.test_case "bulk load" `Quick test_crash_matrix_bulk_load;
          Alcotest.test_case "incremental inserts" `Quick
            test_crash_matrix_inserts;
          Alcotest.test_case "torn header falls back" `Quick
            test_torn_header_falls_back;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "page bit flip detected" `Quick
            test_page_bit_flip_detected;
          Alcotest.test_case "header bit flip either slot" `Quick
            test_header_bit_flip_either_slot;
          qtest prop_page_bit_flip_always_detected;
        ] );
      ( "env",
        [
          Alcotest.test_case "verify clean then corrupt" `Quick
            test_env_verify_clean_then_corrupt;
          Alcotest.test_case "compact tmp leftover cleaned" `Quick
            test_env_compact_tmp_leftover_cleaned;
          Alcotest.test_case "compact valid tmp swept" `Quick
            test_env_compact_valid_tmp_swept;
          Alcotest.test_case "compact crash matrix" `Quick
            test_crash_matrix_compact_table;
          Alcotest.test_case "recovery reinits uncommitted table" `Quick
            test_env_open_with_recovery_reinits_uncommitted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "attach with verification" `Quick
            test_engine_attach_verify;
        ] );
    ]
