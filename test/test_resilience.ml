(* Resilience suite: guards, retry, circuit breakers, transient-fault
   pager I/O, strategy fallback, degraded queries, autopilot healing —
   and the seeded fault soak.

   The soak replays deterministic transient-fault schedules against an
   on-disk engine and holds every query to the DESIGN.md §6 contract:
   it completes with exactly the fault-free answers, or returns a
   correctly-tagged degraded prefix of them, or fails with a typed
   error — never wrong answers, never an unhandled exception.

   TREX_SOAK_SEEDS widens the schedule sweep (CI runs 8). *)

module Pager = Trex_storage.Pager
module Bptree = Trex_storage.Bptree
module Env = Trex_storage.Env
module Guard = Trex_resilience.Guard
module Retry = Trex_resilience.Retry
module Breaker = Trex_resilience.Breaker
module Metrics = Trex_obs.Metrics
module Stopclock = Trex_util.Stopclock

let check = Alcotest.check

let temp_dir () =
  let dir = Filename.temp_file "trex_resil" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let metric name = Metrics.value (Metrics.counter name)

(* Physical I/O under test must not actually sleep between retries. *)
let with_no_sleep_policy f =
  let saved = Pager.retry_policy () in
  Pager.set_retry_policy (Retry.no_sleep saved);
  Fun.protect ~finally:(fun () -> Pager.set_retry_policy saved) f

(* ---- guard ---- *)

let test_guard_unlimited () =
  for _ = 1 to 1000 do
    Guard.tick Guard.unlimited
  done;
  Alcotest.(check bool) "never expires" true (Guard.expired Guard.unlimited = None)

let test_guard_deadline () =
  let g = Guard.create ~deadline_ms:0.0 ~check_every:1 () in
  (match Guard.check g with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Guard.Budget_exceeded { reason = Guard.Deadline; _ } -> ()
  | exception Guard.Budget_exceeded _ -> Alcotest.fail "wrong reason");
  Alcotest.(check bool) "expired reports deadline" true
    (Guard.expired g = Some Guard.Deadline);
  (* tick must raise too once the check interval is reached *)
  let g2 = Guard.create ~deadline_ms:0.0 ~check_every:2 () in
  Guard.tick g2;
  (match Guard.tick g2 with
  | () -> Alcotest.fail "tick past the interval must check"
  | exception Guard.Budget_exceeded _ -> ())

let test_guard_page_budget () =
  (* The guard measures the delta of the process-wide physical-reads
     counter, so bumping the counter is exactly what storage does. *)
  let reads = Metrics.counter "pager.physical_reads" in
  let g = Guard.create ~page_budget:5 ~check_every:1 () in
  Guard.check g;
  for _ = 1 to 6 do
    Metrics.incr reads
  done;
  check Alcotest.int "pages_used sees the delta" 6 (Guard.pages_used g);
  (match Guard.check g with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Guard.Budget_exceeded { reason = Guard.Page_budget; _ } -> ()
  | exception Guard.Budget_exceeded _ -> Alcotest.fail "wrong reason")

(* ---- retry ---- *)

let test_backoff_schedule () =
  let p =
    { Retry.max_attempts = 5; base_delay_ms = 1.0; max_delay_ms = 4.0;
      jitter = Retry.No_jitter; sleep = ignore }
  in
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "doubles then caps" [ 1.0; 2.0; 4.0; 4.0 ] (Retry.backoff_delays_ms p)

let test_decorrelated_jitter () =
  let p =
    { Retry.max_attempts = 8; base_delay_ms = 2.0; max_delay_ms = 50.0;
      jitter = Retry.Decorrelated { seed = 42 }; sleep = ignore }
  in
  let a = Retry.backoff_delays_ms ~salt:1 p in
  (* Deterministic: the same (seed, salt) replays the same schedule. *)
  check
    (Alcotest.list (Alcotest.float 1e-12))
    "replayable" a
    (Retry.backoff_delays_ms ~salt:1 p);
  check Alcotest.int "full length" 7 (List.length a);
  (* Bounded: every delay within [base, cap]. *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "delay %g within [base, cap]" d)
        true
        (d >= p.Retry.base_delay_ms && d <= p.Retry.max_delay_ms))
    a;
  (* Decorrelated: distinct salts (one per reconnecting peer) and
     distinct seeds yield distinct schedules — no thundering herd. *)
  let b = Retry.backoff_delays_ms ~salt:2 p in
  Alcotest.(check bool) "salts decorrelate" true (a <> b);
  let c =
    Retry.backoff_delays_ms ~salt:1
      { p with Retry.jitter = Retry.Decorrelated { seed = 43 } }
  in
  Alcotest.(check bool) "seeds decorrelate" true (a <> c);
  (* The default stays pure capped-exponential. *)
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "no-jitter default unchanged" [ 1.0; 2.0; 4.0 ]
    (Retry.backoff_delays_ms ~salt:7 Retry.default_policy)

let test_jittered_retry_sleeps_its_schedule () =
  let slept = ref [] in
  let policy =
    { Retry.max_attempts = 4; base_delay_ms = 1.0; max_delay_ms = 16.0;
      jitter = Retry.Decorrelated { seed = 7 };
      sleep = (fun s -> slept := s :: !slept) }
  in
  (match
     Retry.with_retries ~policy ~name:"jittered" ~retryable:(fun _ -> true)
       (fun () -> failwith "always")
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Retry.Exhausted _ -> ());
  let expect =
    List.map
      (fun ms -> ms /. 1000.)
      (Retry.backoff_delays_ms ~salt:(Hashtbl.hash "jittered") policy)
  in
  check
    (Alcotest.list (Alcotest.float 1e-12))
    "slept exactly the salted schedule" expect (List.rev !slept)

let test_retry_recovers () =
  let slept = ref [] in
  let policy =
    {
      Retry.max_attempts = 4;
      base_delay_ms = 1.0;
      max_delay_ms = 16.0;
      jitter = Retry.No_jitter;
      sleep = (fun s -> slept := s :: !slept);
    }
  in
  let attempts = ref 0 in
  let r0 = metric "resilience.retries" in
  let v =
    Retry.with_retries ~policy ~name:"test" ~retryable:(fun _ -> true) (fun () ->
        incr attempts;
        if !attempts < 3 then failwith "transient";
        7)
  in
  check Alcotest.int "returns the value" 7 v;
  check Alcotest.int "took three attempts" 3 !attempts;
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "slept the deterministic schedule" [ 0.001; 0.002 ] (List.rev !slept);
  check Alcotest.int "retries counted" 2 (metric "resilience.retries" - r0)

let test_retry_exhausts_typed () =
  let policy = Retry.no_sleep { Retry.default_policy with max_attempts = 3 } in
  let attempts = ref 0 in
  let e0 = metric "resilience.retry_exhaustions" in
  (match
     Retry.with_retries ~policy ~name:"doomed" ~retryable:(fun _ -> true)
       (fun () ->
         incr attempts;
         failwith "always")
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Retry.Exhausted { name; attempts = n; last } ->
      check Alcotest.string "carries the name" "doomed" name;
      check Alcotest.int "all attempts spent" 3 n;
      Alcotest.(check bool) "carries the last error" true
        (match last with Failure _ -> true | _ -> false));
  check Alcotest.int "the policy bounds the attempts" 3 !attempts;
  check Alcotest.int "exhaustion counted" 1
    (metric "resilience.retry_exhaustions" - e0);
  (* Non-retryable exceptions must propagate untouched, first try. *)
  let tries = ref 0 in
  (match
     Retry.with_retries ~policy ~retryable:(fun _ -> false) (fun () ->
         incr tries;
         raise Not_found)
   with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ());
  check Alcotest.int "no retry on non-retryable" 1 !tries

(* ---- breaker ---- *)

let test_breaker_lifecycle () =
  let trips0 = metric "resilience.breaker_trips" in
  let b = Breaker.create ~failure_threshold:2 ~cooldown_s:3600.0 "tbl" in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  Breaker.record_failure b ~reason:"one";
  Alcotest.(check bool) "below threshold stays closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~reason:"two";
  Alcotest.(check bool) "threshold opens" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open rejects during cooldown" false (Breaker.allow b);
  Breaker.set_cooldown b 0.0;
  Alcotest.(check bool) "elapsed cooldown admits the probe" true (Breaker.allow b);
  Alcotest.(check bool) "now half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_failure b ~reason:"probe failed";
  Alcotest.(check bool) "half-open failure re-opens" true
    (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "probe again" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b = Breaker.Closed);
  Breaker.trip b ~reason:"corruption";
  Alcotest.(check bool) "trip opens immediately" true
    (Breaker.state b = Breaker.Open);
  check
    (Alcotest.option Alcotest.string)
    "last reason kept" (Some "corruption") (Breaker.last_reason b);
  check Alcotest.int "three openings counted" 3
    (metric "resilience.breaker_trips" - trips0)

(* Two flapping workers restarted on the shared backoff schedule (the
   supervisor indexes [backoff_delays_ms] by restart count, clamped to
   the last entry) must keep independent probe slots: one worker's
   in-flight half-open probe must neither take nor block the other's,
   and each circuit resolves on its own probe outcome alone. *)
let test_probe_slots_independent () =
  let policy =
    { Retry.max_attempts = 4; base_delay_ms = 1.0; max_delay_ms = 4.0;
      jitter = Retry.No_jitter; sleep = ignore }
  in
  let delays = Retry.backoff_delays_ms policy in
  let delay_for restarts =
    List.nth delays (min restarts (List.length delays - 1))
  in
  (* Past the end of the schedule the supervisor keeps paying the cap,
     never wraps back to the aggressive base delay. *)
  check (Alcotest.float 1e-9) "clamped past the schedule" policy.max_delay_ms
    (delay_for 100);
  let a = Breaker.create ~failure_threshold:2 ~cooldown_s:1e9 "worker-a" in
  let b = Breaker.create ~failure_threshold:2 ~cooldown_s:1e9 "worker-b" in
  (* Restart storm: interleaved crash-loops burn both restart budgets. *)
  List.iter
    (fun _delay ->
      Breaker.record_failure a ~reason:"crash loop";
      Breaker.record_failure b ~reason:"crash loop")
    delays;
  Alcotest.(check bool) "a escalated open" true (Breaker.state a = Breaker.Open);
  Alcotest.(check bool) "b escalated open" true (Breaker.state b = Breaker.Open);
  Breaker.set_cooldown a 0.0;
  Breaker.set_cooldown b 0.0;
  (* A claims its probe slot first... *)
  Alcotest.(check bool) "a admits its probe" true (Breaker.allow a);
  Alcotest.(check bool) "a probe in flight" true (Breaker.probing a);
  (* ...which must not starve B's slot, nor open A's to a second caller. *)
  Alcotest.(check bool) "b admits its probe despite a's" true (Breaker.allow b);
  Alcotest.(check bool) "a rejects a second probe" false (Breaker.allow a);
  Alcotest.(check bool) "b rejects a second probe" false (Breaker.allow b);
  (* A's probe dies: only A re-opens; B's probe is still live. *)
  Breaker.record_failure a ~reason:"probe died";
  Alcotest.(check bool) "a re-opened alone" true (Breaker.state a = Breaker.Open);
  Alcotest.(check bool) "b probe survived a's failure" true (Breaker.probing b);
  Breaker.record_success b;
  Alcotest.(check bool) "b closed on its own probe" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed b admits traffic freely" true
    (Breaker.allow b && Breaker.allow b);
  (* A pays another capped backoff round, then converges too. *)
  check (Alcotest.float 1e-9) "a still at the capped delay" policy.max_delay_ms
    (delay_for (List.length delays + 3));
  Breaker.set_cooldown a 0.0;
  Alcotest.(check bool) "a re-probes after cooldown" true (Breaker.allow a);
  Breaker.record_success a;
  Alcotest.(check bool) "a closed independently" true
    (Breaker.state a = Breaker.Closed)

(* A reference model of the breaker state machine, checked against the
   implementation over random operation sequences: the breaker must
   track the model exactly (no invalid transition is reachable), and
   once the cooldown elapses it must always be able to re-close via a
   single successful probe. Threshold 2; the cooldown starts effectively
   infinite and an explicit "elapse" operation drops it to zero (time
   is modeled as a sticky bit — before the drop nothing has elapsed,
   after it everything has). *)
type breaker_model = {
  mutable m_state : Breaker.state;
  mutable m_failures : int;
  mutable m_probe : bool;
  mutable m_elapsed : bool;
}

let prop_breaker_matches_model =
  QCheck.Test.make ~name:"breaker follows the reference model" ~count:500
    QCheck.(list (int_bound 4))
    (fun ops ->
      let b = Breaker.create ~failure_threshold:2 ~cooldown_s:1e9 "model" in
      let m =
        { m_state = Breaker.Closed; m_failures = 0; m_probe = false; m_elapsed = false }
      in
      let model_trip () =
        m.m_state <- Breaker.Open;
        m.m_probe <- false
      in
      let apply op =
        match op with
        | 0 ->
            let expect =
              match m.m_state with
              | Breaker.Closed -> true
              | Breaker.Half_open ->
                  if m.m_probe then false
                  else begin
                    m.m_probe <- true;
                    true
                  end
              | Breaker.Open ->
                  if m.m_elapsed then begin
                    m.m_state <- Breaker.Half_open;
                    m.m_probe <- true;
                    true
                  end
                  else false
            in
            Breaker.allow b = expect
        | 1 ->
            Breaker.record_success b;
            m.m_state <- Breaker.Closed;
            m.m_failures <- 0;
            m.m_probe <- false;
            true
        | 2 ->
            Breaker.record_failure b ~reason:"model";
            m.m_failures <- m.m_failures + 1;
            (match m.m_state with
            | Breaker.Half_open -> model_trip ()
            | Breaker.Closed -> if m.m_failures >= 2 then model_trip ()
            | Breaker.Open -> ());
            true
        | 3 ->
            Breaker.trip b ~reason:"model";
            model_trip ();
            true
        | _ ->
            Breaker.set_cooldown b 0.0;
            m.m_elapsed <- true;
            true
      in
      let agrees () =
        Breaker.state b = m.m_state
        && Breaker.probing b = (m.m_state = Breaker.Half_open && m.m_probe)
        && Breaker.ready b
           = (match m.m_state with
             | Breaker.Closed -> true
             | Breaker.Half_open -> not m.m_probe
             | Breaker.Open -> m.m_elapsed)
      in
      let ok = List.for_all (fun op -> apply op && agrees ()) ops in
      (* Liveness: whatever state the sequence left behind, an elapsed
         cooldown plus one successful probe must re-close the circuit. *)
      Breaker.set_cooldown b 0.0;
      let reclosed =
        (match Breaker.state b with
        | Breaker.Closed -> true
        | Breaker.Open -> Breaker.allow b && Breaker.state b = Breaker.Half_open
        | Breaker.Half_open -> Breaker.probing b || Breaker.allow b)
        &&
        (Breaker.record_success b;
         Breaker.state b = Breaker.Closed && Breaker.allow b)
      in
      ok && reclosed)

(* ---- pager transient faults ---- *)

let key i = Printf.sprintf "key-%06d" i
let value i = Printf.sprintf "val-%d" i

let build_table ?(n = 200) path =
  let p = Pager.create_file ~page_size:512 path in
  ignore (Bptree.bulk_load p (List.to_seq (List.init n (fun i -> (key i, value i)))));
  Pager.close p

let test_transient_reads_masked () =
  with_no_sleep_policy @@ fun () ->
  let dir = temp_dir () in
  let path = Filename.concat dir "t.tbl" in
  build_table path;
  let faults0 = metric "pager.transient_faults" in
  let retries0 = metric "resilience.retries" in
  let exhaust0 = metric "resilience.retry_exhaustions" in
  (* streak 2 < the default 4 attempts: every episode must be absorbed *)
  let p =
    Pager.create_faulty
      ~faults:[ Pager.Transient_read { seed = 7; fail_one_in = 3; fail_streak = 2 } ]
      (Pager.open_file path)
  in
  let t = Bptree.attach p in
  for i = 0 to 199 do
    check
      (Alcotest.option Alcotest.string)
      ("read through faults: " ^ key i)
      (Some (value i)) (Bptree.find t (key i))
  done;
  Pager.abort p;
  Alcotest.(check bool) "faults actually fired" true
    (metric "pager.transient_faults" - faults0 > 0);
  Alcotest.(check bool) "retries absorbed them" true
    (metric "resilience.retries" - retries0 > 0);
  check Alcotest.int "nothing exhausted" 0
    (metric "resilience.retry_exhaustions" - exhaust0)

let test_transient_exhaustion_typed () =
  with_no_sleep_policy @@ fun () ->
  let dir = temp_dir () in
  let path = Filename.concat dir "t.tbl" in
  build_table path;
  let exhaust0 = metric "resilience.retry_exhaustions" in
  (* streak 10 > the retry budget: the first episode must escape as a
     typed Exhausted, never as garbage data or a raw Unix error *)
  let p =
    Pager.create_faulty
      ~faults:[ Pager.Transient_read { seed = 5; fail_one_in = 2; fail_streak = 10 } ]
      (Pager.open_file path)
  in
  let t = Bptree.attach p in
  (match
     for i = 0 to 199 do
       ignore (Bptree.find t (key i))
     done
   with
  | () -> Alcotest.fail "expected retry exhaustion"
  | exception Retry.Exhausted { name; _ } ->
      check Alcotest.string "from the read path" "pager.read" name);
  Pager.abort p;
  Alcotest.(check bool) "exhaustion counted" true
    (metric "resilience.retry_exhaustions" - exhaust0 > 0)

(* ---- engine helpers ---- *)

let nexi = "//article//sec[about(., information retrieval)]"

let sig_of answers =
  List.map
    (fun (e : Trex.Answer.entry) ->
      (e.element.Trex.Types.docid, e.element.Trex.Types.endpos))
    answers

let sig_testable = Alcotest.(list (pair int int))

let build_collection dir ~docs ~seed =
  let coll = Trex_corpus.Gen.ieee ~doc_count:docs ~seed () in
  let env = Trex.Env.on_disk dir in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
  (env, engine)

(* ---- strategy fallback after corruption ---- *)

let header_size = 128

let flip_bit_in_file path ~off ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (bit land 7))));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let test_fallback_on_corrupt_rpls () =
  let dir = temp_dir () in
  let env, engine = build_collection dir ~docs:20 ~seed:42 in
  ignore (Trex.materialize engine nexi);
  let merge_baseline =
    Trex.query engine ~k:5 ~method_:Trex.Strategy.Merge_method nexi
  in
  Trex.Env.close env;
  (* Damage every page of the RPL lists table on disk (whichever leaf a
     cursor lands on, the checksum fails); the catalogs stay intact, so
     planning still believes TA is available until the breaker trips. *)
  let rpls = Filename.concat dir "rpls.tbl" in
  let len = (Unix.stat rpls).Unix.st_size in
  let page_size = 8192 in
  let off = ref (header_size + 17) in
  while !off < len do
    flip_bit_in_file rpls ~off:!off ~bit:3;
    off := !off + page_size
  done;
  let env2 = Trex.Env.on_disk dir in
  let engine2 = Trex.attach ~env:env2 () in
  let fb0 = metric "resilience.fallbacks" in
  let outcome = Trex.query engine2 ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  Alcotest.(check bool) "TA was abandoned" true
    (List.exists
       (fun (f : Trex.Strategy.failover) -> f.failed = Trex.Strategy.Ta_method)
       outcome.fallbacks);
  Alcotest.(check bool) "answered by another method" true
    (outcome.strategy.method_used <> Trex.Strategy.Ta_method);
  check sig_testable "fallback answers equal the fault-free ones"
    (sig_of merge_baseline.strategy.answers)
    (sig_of outcome.strategy.answers);
  Alcotest.(check bool) "not tagged degraded (answers are complete)" false
    outcome.degraded;
  Alcotest.(check bool) "rpls breaker is open" false
    (Env.table_available env2 "rpls");
  Alcotest.(check bool) "fallback counted" true
    (metric "resilience.fallbacks" - fb0 > 0);
  (* Planning now routes around TA without another failure. *)
  let again = Trex.query engine2 ~k:5 nexi in
  check (Alcotest.list Alcotest.unit) "no new failovers" []
    (List.map (fun (_ : Trex.Strategy.failover) -> ()) again.fallbacks);
  check sig_testable "replanned answers still exact"
    (sig_of merge_baseline.strategy.answers)
    (sig_of again.strategy.answers);
  Trex.Env.close env2

(* ---- degraded queries ---- *)

let test_deadline_degrades () =
  let dir = temp_dir () in
  let env, engine = build_collection dir ~docs:30 ~seed:7 in
  let exact = Trex.query engine ~k:1000 ~method_:Trex.Strategy.Era_method nexi in
  let exact_scores =
    List.map
      (fun (e : Trex.Answer.entry) ->
        ((e.element.Trex.Types.docid, e.element.Trex.Types.endpos), e.score))
      exact.strategy.answers
  in
  let d0 = metric "resilience.degraded_runs" in
  let outcome = Trex.query engine ~k:5 ~deadline_ms:0.0 nexi in
  Alcotest.(check bool) "tagged degraded" true outcome.degraded;
  (* Sound prefix: every salvaged answer is a real answer and its
     partial score never exceeds the exact one. *)
  List.iter
    (fun (e : Trex.Answer.entry) ->
      let id = (e.element.Trex.Types.docid, e.element.Trex.Types.endpos) in
      match List.assoc_opt id exact_scores with
      | None -> Alcotest.fail "degraded run fabricated an answer"
      | Some exact_score ->
          Alcotest.(check bool) "partial score is a lower bound" true
            (e.score <= exact_score +. 1e-9))
    outcome.strategy.answers;
  Alcotest.(check bool) "degraded run counted" true
    (metric "resilience.degraded_runs" - d0 > 0);
  (* Without limits the same query is exact and untagged. *)
  let full = Trex.query engine ~k:5 nexi in
  Alcotest.(check bool) "unlimited is not degraded" false full.degraded;
  Trex.Env.close env

(* ---- Stopclock.with_paused is exception-safe (ITA invariant) ---- *)

let test_with_paused_exception_safe () =
  let c = Stopclock.create () in
  Alcotest.(check bool) "starts running" true (Stopclock.is_running c);
  let v = Stopclock.with_paused c (fun () -> 9) in
  check Alcotest.int "passes the value through" 9 v;
  Alcotest.(check bool) "resumed after return" true (Stopclock.is_running c);
  (match Stopclock.with_paused c (fun () -> failwith "abort mid-measure") with
  | _ -> Alcotest.fail "expected the exception to propagate"
  | exception Failure _ -> ());
  Alcotest.(check bool) "resumed after raise" true (Stopclock.is_running c);
  let e0 = Stopclock.elapsed c in
  let fin = Unix.gettimeofday () +. 0.005 in
  while Unix.gettimeofday () < fin do
    ()
  done;
  Alcotest.(check bool) "clock accumulates again after the raise" true
    (Stopclock.elapsed c > e0)

(* ---- autopilot healing ---- *)

let test_autopilot_heal_rebuilds () =
  let dir = temp_dir () in
  let env, engine = build_collection dir ~docs:20 ~seed:42 in
  ignore (Trex.materialize engine nexi);
  let ta_baseline = Trex.query engine ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  let pilot =
    Trex.Autopilot.create (Trex.index engine) ~scoring:(Trex.scoring engine)
      ~budget:max_int ()
  in
  let t = Trex.translate engine (Trex.parse engine nexi) in
  Trex.Autopilot.record pilot ~id:nexi ~sids:(Trex.Translate.all_sids t)
    ~terms:(Trex.Translate.all_terms t) ~k:5;
  Env.trip_table env "rpls" ~reason:"injected for the heal test";
  (* Inside cooldown the pilot must only report, not touch the table. *)
  (match Trex.Autopilot.maybe_heal pilot with
  | [ { Trex.Autopilot.table = "rpls"; action = Trex.Autopilot.Cooling_down } ] ->
      ()
  | _ -> Alcotest.fail "expected a single cooling-down report");
  Alcotest.(check bool) "still quarantined" false (Env.table_available env "rpls");
  Breaker.set_cooldown (Env.breaker env "rpls") 0.0;
  let r0 = metric "resilience.rebuilds" in
  (match Trex.Autopilot.maybe_heal pilot with
  | [ { Trex.Autopilot.table = "rpls"; action = Trex.Autopilot.Rebuilt { tables; _ } } ]
    ->
      (* the catalog is condemned with its lists — pair quarantine *)
      check
        (Alcotest.list Alcotest.string)
        "pair quarantined together" [ "rpls"; "rpl_catalog" ]
        (List.sort (fun a b -> compare (String.length a) (String.length b)) tables)
  | _ -> Alcotest.fail "expected a single rebuilt report");
  check Alcotest.int "rebuild counted" 1 (metric "resilience.rebuilds" - r0);
  Alcotest.(check bool) "breaker closed" true (Env.table_available env "rpls");
  check (Alcotest.list Alcotest.unit) "nothing left to heal" []
    (List.map (fun _ -> ()) (Trex.Autopilot.maybe_heal pilot));
  (* The rebuilt lists serve TA exactly as before the damage. *)
  let after = Trex.query engine ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  check sig_testable "TA answers restored"
    (sig_of ta_baseline.strategy.answers)
    (sig_of after.strategy.answers);
  Alcotest.(check bool) "no failover needed" true (after.fallbacks = []);
  Trex.Env.close env

(* ---- seeded fault soak ---- *)

let soak_seeds () =
  match Sys.getenv_opt "TREX_SOAK_SEEDS" with
  | Some s -> max 1 (int_of_string s)
  | None -> 4

let soak_queries =
  [ nexi; "//article//p[about(., database systems)]" ]

let soak_methods =
  [
    None;
    Some Trex.Strategy.Era_method;
    Some Trex.Strategy.Ta_method;
    Some Trex.Strategy.Merge_method;
  ]

let run_soak_seed seed =
  with_no_sleep_policy @@ fun () ->
  let dir = temp_dir () in
  (* Build + materialize, then collect fault-free baselines per
     (query, method) and the exact full answer set per query. *)
  let env, engine = build_collection dir ~docs:12 ~seed:(1000 + seed) in
  List.iter (fun q -> ignore (Trex.materialize engine q)) soak_queries;
  let baselines = Hashtbl.create 16 in
  let exact_scores = Hashtbl.create 16 in
  List.iter
    (fun q ->
      List.iter
        (fun m ->
          let o = Trex.query engine ~k:5 ?method_:m q in
          Hashtbl.replace baselines (q, o.strategy.method_used)
            (sig_of o.strategy.answers))
        soak_methods;
      (* ERA with an unbounded k yields the exact full answer set. *)
      let exact = Trex.query engine ~k:1_000_000 ~method_:Trex.Strategy.Era_method q in
      Hashtbl.replace exact_scores q
        (List.map
           (fun (e : Trex.Answer.entry) ->
             ((e.element.Trex.Types.docid, e.element.Trex.Types.endpos), e.score))
           exact.strategy.answers))
    soak_queries;
  Trex.Env.close env;
  (* Fresh attach with a small cache so queries really hit the disk,
     then arm a deterministic transient-read schedule on every table.
     Even seeds keep the failure streak under the retry budget (always
     recoverable); odd seeds exceed it (exhaustions, breaker trips,
     failovers, typed errors). *)
  let env2 = Trex.Env.on_disk ~cache_pages:16 dir in
  let engine2 = Trex.attach ~env:env2 () in
  let streak = if seed mod 2 = 0 then 2 else 8 in
  List.iteri
    (fun i name ->
      ignore
        (Pager.create_faulty
           ~faults:
             [
               Pager.Transient_read
                 { seed = (seed * 31) + i; fail_one_in = 25; fail_streak = streak };
             ]
           (Bptree.pager (Env.table env2 name))))
    (List.sort String.compare (Env.table_names env2));
  let trips0 = metric "resilience.breaker_trips" in
  let exact_runs = ref 0
  and degraded_runs = ref 0
  and typed_failures = ref 0
  and failovers = ref 0 in
  List.iter
    (fun q ->
      let scores = Hashtbl.find exact_scores q in
      List.iter
        (fun (m, page_budget, deadline_ms) ->
          match Trex.query engine2 ~k:5 ?method_:m ?page_budget ?deadline_ms q with
          | outcome ->
              if outcome.fallbacks <> [] then incr failovers;
              if outcome.degraded then begin
                incr degraded_runs;
                List.iter
                  (fun (e : Trex.Answer.entry) ->
                    let id =
                      (e.element.Trex.Types.docid, e.element.Trex.Types.endpos)
                    in
                    match List.assoc_opt id scores with
                    | None ->
                        Alcotest.failf "seed %d: degraded run fabricated %d/%d"
                          seed (fst id) (snd id)
                    | Some exact_score ->
                        Alcotest.(check bool)
                          "degraded score is a lower bound" true
                          (e.score <= exact_score +. 1e-9))
                  outcome.strategy.answers
              end
              else begin
                incr exact_runs;
                (* Untagged results must be bit-identical to the
                   fault-free run of whatever method answered. *)
                match Hashtbl.find_opt baselines (q, outcome.strategy.method_used) with
                | Some expected ->
                    check sig_testable
                      (Printf.sprintf "seed %d: exact answers (%s)" seed
                         (Trex.Strategy.method_to_string
                            outcome.strategy.method_used))
                      expected
                      (sig_of outcome.strategy.answers)
                | None -> Alcotest.failf "seed %d: no baseline method" seed
              end
          | exception Retry.Exhausted _ -> incr typed_failures
          | exception Pager.Corruption _ -> incr typed_failures)
        (List.map (fun m -> (m, None, None)) soak_methods
        @ [
            (* a page budget binds only on cache misses; the zero
               deadline forces the degraded path deterministically *)
            (Some Trex.Strategy.Era_method, Some 3, None);
            (Some Trex.Strategy.Era_method, None, Some 0.0);
          ]))
    soak_queries;
  (* Consistency between what happened and what health would report:
     breakers opened iff trips were counted, and a failover implies an
     open breaker behind it. *)
  let open_breakers =
    List.filter (fun (_, s) -> s <> Breaker.Closed) (Env.breaker_states env2)
  in
  let trips = metric "resilience.breaker_trips" - trips0 in
  Alcotest.(check bool) "trips counted iff breakers opened" true
    (trips > 0 = (open_breakers <> []));
  if !failovers > 0 then
    Alcotest.(check bool) "failover implies an open breaker" true
      (open_breakers <> []);
  Trex.Env.close env2;
  Printf.printf
    "soak seed %d: %d exact, %d degraded, %d typed failures, %d failovers, %d trips\n%!"
    seed !exact_runs !degraded_runs !typed_failures !failovers trips;
  (* The contract: every run fell in one of the three buckets; the
     checks above already failed the test otherwise. At least one run
     must have completed exactly, or the soak proved nothing. *)
  Alcotest.(check bool) "some runs exact" true (!exact_runs > 0);
  !degraded_runs

let test_soak () =
  let seeds = soak_seeds () in
  let degraded = ref 0 in
  for seed = 1 to seeds do
    degraded := !degraded + run_soak_seed seed
  done;
  Alcotest.(check bool) "the soak reached the degraded bucket" true
    (!degraded > 0)

let () =
  Alcotest.run "trex_resilience"
    [
      ( "guard",
        [
          Alcotest.test_case "unlimited never expires" `Quick test_guard_unlimited;
          Alcotest.test_case "deadline" `Quick test_guard_deadline;
          Alcotest.test_case "page budget" `Quick test_guard_page_budget;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "decorrelated jitter" `Quick test_decorrelated_jitter;
          Alcotest.test_case "jittered retry sleeps its schedule" `Quick
            test_jittered_retry_sleeps_its_schedule;
          Alcotest.test_case "recovers after transients" `Quick test_retry_recovers;
          Alcotest.test_case "exhausts typed" `Quick test_retry_exhausts_typed;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "probe slots independent under restart storm"
            `Quick test_probe_slots_independent;
          QCheck_alcotest.to_alcotest prop_breaker_matches_model;
        ] );
      ( "pager",
        [
          Alcotest.test_case "transient reads masked" `Quick
            test_transient_reads_masked;
          Alcotest.test_case "exhaustion is typed" `Quick
            test_transient_exhaustion_typed;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "fallback on corrupt RPLs" `Quick
            test_fallback_on_corrupt_rpls;
        ] );
      ( "degradation",
        [ Alcotest.test_case "deadline degrades soundly" `Quick test_deadline_degrades ] );
      ( "stopclock",
        [
          Alcotest.test_case "with_paused exception-safe" `Quick
            test_with_paused_exception_safe;
        ] );
      ( "autopilot",
        [
          Alcotest.test_case "heal rebuilds quarantined pair" `Quick
            test_autopilot_heal_rebuilds;
        ] );
      ("soak", [ Alcotest.test_case "seeded fault schedules" `Slow test_soak ]);
    ]
