(* Raw vs block-compressed layout equivalence.

   Compression must be invisible to every reader: identical positions
   from posting iterators, identical entries — exact scores included —
   from RPL/ERPL cursors, identical rankings from ERA/TA/Merge. These
   tests build the same corpus in both layouts and compare. *)

module Env = Trex_storage.Env
module Summary = Trex_summary.Summary
module Types = Trex_invindex.Types
module Index = Trex_invindex.Index
module Tables = Trex_invindex.Tables
module Scorer = Trex_scoring.Scorer
module Answer = Trex_topk.Answer
module Era = Trex_topk.Era
module Rpl = Trex_topk.Rpl
module Ta = Trex_topk.Ta
module Merge = Trex_topk.Merge

let check = Alcotest.check
let scoring = Scorer.default

let build_pair ?(doc_count = 25) ?(seed = 11) () =
  let mk compress =
    let coll = Trex_corpus.Gen.ieee ~doc_count ~seed () in
    let env = Env.in_memory () in
    let summary = Summary.create ~alias:coll.alias Summary.Incoming in
    let index = Index.build ~env ~summary ~compress (coll.docs ()) in
    (index, summary)
  in
  (mk false, mk true)

let fixture = lazy (build_pair ())

let queries (index, summary) =
  let translate nexi =
    let q = Trex_nexi.Parser.parse nexi in
    let t =
      Trex_nexi.Translate.translate ~summary
        ~normalize:(Index.normalize_term index) q
    in
    (Trex_nexi.Translate.all_sids t, Trex_nexi.Translate.all_terms t)
  in
  List.map translate
    [
      "//article//sec[about(., introduction information retrieval)]";
      "//bdy//*[about(., model checking state)]";
      "//article[about(., ontologies)]";
    ]

(* ---- posting segments ---- *)

(* The segment codec is exercised directly: cut, re-read, compare. *)
let test_posting_segment_roundtrip () =
  let positions =
    (* Several docs, bursts of same-doc offsets, one sparse doc far
       away — exercises all three bit-packed streams. *)
    let out = ref [] in
    for doc = 0 to 200 do
      let docid = if doc = 200 then 100000 else doc * 3 in
      for i = 0 to 17 do
        out := { Types.docid; offset = (i * (doc + 7)) + doc } :: !out
      done
    done;
    List.sort compare (List.rev !out)
  in
  let rows = Tables.Posting_lists.segment_rows ~token:"tok" positions in
  Alcotest.(check bool) "several rows" true (List.length rows > 1);
  let decoded =
    List.concat_map (fun (_, v) -> Tables.Posting_lists.decode_value v) rows
  in
  Alcotest.(check int) "count" (List.length positions) (List.length decoded);
  Alcotest.(check bool) "positions identical" true (positions = decoded)

let test_posting_layouts_agree () =
  let (raw, raw_summary), (comp, _) = Lazy.force fixture in
  List.iter
    (fun (sids, terms) ->
      let score ix =
        Era.score_results ix ~scoring ~terms (fst (Era.run ix ~sids ~terms))
      in
      Alcotest.(check bool)
        (Printf.sprintf "ERA identical (%d sids, %d terms)" (List.length sids)
           (List.length terms))
        true
        (Answer.equal ~eps:0.0 (score raw) (score comp)))
    (queries (raw, raw_summary))

(* ---- RPL/ERPL cursors ---- *)

let materialize index ~sids ~terms ~layout =
  ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ~layout ())

let drain c =
  let out = ref [] in
  let rec go () =
    match Rpl.Cursor.next c with
    | Some e ->
        out := e :: !out;
        go ()
    | None -> List.rev !out
  in
  go ()

let entry_eq (a : Rpl.entry) (b : Rpl.entry) =
  Types.compare_element a.element b.element = 0 && a.score = b.score

let test_cursor_layouts_agree () =
  let (raw, summary), (comp, _) = Lazy.force fixture in
  List.iter
    (fun (sids, terms) ->
      materialize raw ~sids ~terms ~layout:Rpl.Raw;
      materialize comp ~sids ~terms ~layout:Rpl.Compressed;
      List.iter
        (fun kind ->
          List.iter
            (fun term ->
              let a = drain (Rpl.Cursor.create raw kind ~term ~sids) in
              let b = drain (Rpl.Cursor.create comp kind ~term ~sids) in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s bit-identical" (Rpl.kind_to_string kind)
                   term)
                true
                (List.length a = List.length b && List.for_all2 entry_eq a b))
            terms)
        [ Rpl.Rpl; Rpl.Erpl ])
    (queries (raw, summary))

let test_skip_to_equals_filtered_scan () =
  let (raw, summary), (comp, _) = Lazy.force fixture in
  let sids, terms = List.hd (queries (raw, summary)) in
  materialize raw ~sids ~terms ~layout:Rpl.Raw;
  materialize comp ~sids ~terms ~layout:Rpl.Compressed;
  let term = List.hd terms in
  let full = drain (Rpl.Cursor.create comp Rpl.Erpl ~term ~sids) in
  Alcotest.(check bool) "fixture has entries" true (List.length full > 4);
  (* Aim at the position of an entry past the middle of the stream. *)
  let target = List.nth full (List.length full / 2) in
  let docid = target.Rpl.element.Types.docid
  and endpos = target.Rpl.element.Types.endpos in
  let expected =
    List.filter
      (fun (e : Rpl.entry) ->
        e.element.Types.docid > docid
        || (e.element.Types.docid = docid && e.element.Types.endpos >= endpos))
      full
  in
  List.iter
    (fun index ->
      let c = Rpl.Cursor.create index Rpl.Erpl ~term ~sids in
      Rpl.Cursor.skip_to c ~docid ~endpos;
      let got = drain c in
      Alcotest.(check bool) "skip_to = filtered scan" true
        (List.length got = List.length expected
        && List.for_all2 entry_eq got expected);
      Alcotest.(check bool) "skips recorded" true
        (Rpl.Cursor.entries_skipped c > 0))
    [ raw; comp ]

let test_set_bound_yields_prefix () =
  let (raw, summary), (comp, _) = Lazy.force fixture in
  let sids, terms = List.hd (queries (raw, summary)) in
  materialize raw ~sids ~terms ~layout:Rpl.Raw;
  materialize comp ~sids ~terms ~layout:Rpl.Compressed;
  let term = List.hd terms in
  let sid = [ List.hd sids ] in
  let full = drain (Rpl.Cursor.create comp Rpl.Rpl ~term ~sids:sid) in
  if List.length full > 2 then begin
    (* Floor at the median score: everything above it must survive. *)
    let floor = (List.nth full (List.length full / 2)).Rpl.score in
    let c = Rpl.Cursor.create comp Rpl.Rpl ~term ~sids:sid in
    Rpl.Cursor.set_bound c floor;
    let bounded = drain c in
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: a, y :: b -> entry_eq x y && is_prefix a b
      | _ :: _, [] -> false
    in
    Alcotest.(check bool) "bounded stream is a prefix" true
      (is_prefix bounded full);
    List.iter
      (fun (e : Rpl.entry) ->
        if e.score > floor then
          Alcotest.(check bool) "above-floor entry kept" true
            (List.exists (entry_eq e) bounded))
      full;
    if List.length bounded < List.length full then begin
      Alcotest.(check bool) "skip flagged as truncation" true
        (Rpl.Cursor.truncated c);
      Alcotest.(check bool) "bound recorded" true
        (Rpl.Cursor.truncation_bound c > 0.0)
    end
  end;
  (* ERPL cursors must refuse a score bound. *)
  let e = Rpl.Cursor.create comp Rpl.Erpl ~term ~sids:sid in
  Alcotest.check_raises "ERPL set_bound rejected"
    (Invalid_argument "Rpl.Cursor.set_bound: RPL cursors only") (fun () ->
      Rpl.Cursor.set_bound e 1.0)

(* ---- catalog truncation flag ---- *)

let test_catalog_truncation_flag () =
  (* Fresh index: [Rpl.build] reuses existing complete lists, which
     would turn the prefix build below into a no-op. *)
  let _, (comp, summary) = build_pair ~doc_count:8 ~seed:5 () in
  let sids, terms = List.hd (queries (comp, summary)) in
  let term = List.hd terms and sid = List.hd sids in
  ignore
    (Rpl.build comp ~scoring ~sids:[ sid ] ~terms:[ term ] ~kinds:[ Rpl.Rpl ]
       ~rpl_prefix:1 ());
  Alcotest.(check bool) "prefix list flagged truncated" true
    (Rpl.list_truncated comp Rpl.Rpl ~term ~sid);
  let c = Rpl.Cursor.create comp Rpl.Rpl ~term ~sids:[ sid ] in
  Alcotest.(check bool) "cursor sees the flag" true (Rpl.Cursor.truncated c);
  Rpl.drop comp Rpl.Rpl ~term ~sid;
  ignore
    (Rpl.build comp ~scoring ~sids:[ sid ] ~terms:[ term ] ~kinds:[ Rpl.Rpl ] ());
  Alcotest.(check bool) "complete list not truncated" false
    (Rpl.list_truncated comp Rpl.Rpl ~term ~sid);
  check (Alcotest.float 0.0) "complete list bound 0.0" 0.0
    (Rpl.list_bound comp Rpl.Rpl ~term ~sid)

(* ---- strategy rank identity ---- *)

let test_strategies_rank_identical_across_layouts () =
  let (raw, summary), (comp, _) = Lazy.force fixture in
  List.iter
    (fun (sids, terms) ->
      materialize raw ~sids ~terms ~layout:Rpl.Raw;
      materialize comp ~sids ~terms ~layout:Rpl.Compressed;
      let ta ix = fst (Ta.run ix ~sids ~terms ~k:10 ()) in
      let merge ix = fst (Merge.run ix ~sids ~terms) in
      Alcotest.(check bool) "TA identical" true
        (Answer.equal ~eps:0.0 (ta raw) (ta comp));
      Alcotest.(check bool) "Merge identical" true
        (Answer.equal ~eps:0.0 (merge raw) (merge comp)))
    (queries (raw, summary))

let test_full_rpl_skip_identical () =
  let (raw, summary), (comp, _) = Lazy.force fixture in
  let sids, terms = List.hd (queries (raw, summary)) in
  ignore (Rpl.Full.build raw ~scoring ~layout:Rpl.Raw ~terms ());
  ignore (Rpl.Full.build comp ~scoring ~layout:Rpl.Compressed ~terms ());
  materialize raw ~sids ~terms ~layout:Rpl.Raw;
  materialize comp ~sids ~terms ~layout:Rpl.Compressed;
  let run ix ~use_full_rpls =
    fst (Ta.run ix ~sids ~terms ~k:10 ~use_full_rpls ())
  in
  let base = run raw ~use_full_rpls:false in
  List.iter
    (fun (name, answers) ->
      Alcotest.(check bool) (name ^ " identical") true
        (Answer.equal ~eps:0.0 base answers))
    [
      ("full-rpl raw", run raw ~use_full_rpls:true);
      ("full-rpl compressed", run comp ~use_full_rpls:true);
      ("pair compressed", run comp ~use_full_rpls:false);
    ]

(* Compressed full-term segments carry a per-block sid bitmap; skipped
   blocks must actually be skipped, not just produce the same answer.
   A single rare sid is the best case: blocks without its hash bit are
   dropped undecoded. *)
let test_full_rpl_bitmap_skips_blocks () =
  (* Enough docs that a term's full RPL spans several blocks, some of
     which hold only foreign-extent entries. *)
  let _, (comp, summary) = build_pair ~doc_count:60 ~seed:3 () in
  let _, terms = List.hd (queries (comp, summary)) in
  ignore (Rpl.Full.build comp ~scoring ~layout:Rpl.Compressed ~terms ());
  let term = List.hd terms in
  let drain_full c =
    let out = ref [] in
    let rec go () =
      match Rpl.Full.next c with
      | Some e ->
          out := e :: !out;
          go ()
      | None -> List.rev !out
    in
    go ()
  in
  (* Census pass over every extent, then target the rarest sid. *)
  let all_sids = Summary.sids summary in
  let everything = drain_full (Rpl.Full.cursor comp ~term ~sids:all_sids) in
  Alcotest.(check bool) "multi-block fixture" true
    (List.length everything > 256);
  let by_sid = Hashtbl.create 16 in
  List.iter
    (fun (e : Rpl.entry) ->
      let s = e.element.Types.sid in
      Hashtbl.replace by_sid s (1 + Option.value ~default:0 (Hashtbl.find_opt by_sid s)))
    everything;
  let rare, _ =
    Hashtbl.fold
      (fun s n (bs, bn) -> if n < bn then (s, n) else (bs, bn))
      by_sid (-1, max_int)
  in
  let c = Rpl.Full.cursor comp ~term ~sids:[ rare ] in
  let got = drain_full c in
  let expected =
    List.filter (fun (e : Rpl.entry) -> e.element.Types.sid = rare) everything
  in
  Alcotest.(check bool) "skip-scan equals filtered scan" true
    (List.length got = List.length expected
    && List.for_all2 entry_eq got expected);
  Alcotest.(check bool) "blocks skipped by bitmap" true
    (Rpl.Full.blocks_skipped c > 0)

let () =
  Alcotest.run "trex_compression"
    [
      ( "postings",
        [
          Alcotest.test_case "segment roundtrip" `Quick
            test_posting_segment_roundtrip;
          Alcotest.test_case "layouts agree under ERA" `Quick
            test_posting_layouts_agree;
        ] );
      ( "cursors",
        [
          Alcotest.test_case "entries bit-identical" `Quick
            test_cursor_layouts_agree;
          Alcotest.test_case "skip_to = filtered scan" `Quick
            test_skip_to_equals_filtered_scan;
          Alcotest.test_case "set_bound yields a prefix" `Quick
            test_set_bound_yields_prefix;
          Alcotest.test_case "catalog truncation flag" `Quick
            test_catalog_truncation_flag;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "rank identity across layouts" `Quick
            test_strategies_rank_identical_across_layouts;
          Alcotest.test_case "full-RPL skip identical" `Quick
            test_full_rpl_skip_identical;
          Alcotest.test_case "sid bitmap skips blocks" `Quick
            test_full_rpl_bitmap_skips_blocks;
        ] );
    ]
