(* Sharded scatter-gather suite.

   The contract under test (DESIGN.md §6): a sharded coordinator is
   rank-identical to the single-environment engine when healthy; a
   lost, tripped, slow or quarantined shard degrades the answer to a
   tagged sound partial (never wrong answers, never an escaped
   exception); and split/merge rebalances are crash-atomic — at every
   crash point a document is in exactly its pre- or post-rebalance
   shard.

   TREX_SOAK_SEEDS widens the seeded shard-fault soak (CI runs 8). *)

module Pager = Trex_storage.Pager
module Env = Trex_storage.Env
module Breaker = Trex_resilience.Breaker
module Retry = Trex_resilience.Retry
module Metrics = Trex_obs.Metrics
module Journal = Trex_obs.Journal
module Shard = Trex_shard.Shard
module Strategy = Trex_topk.Strategy
module Answer = Trex_topk.Answer
module Index = Trex_invindex.Index
module Types = Trex_invindex.Types
module Translate = Trex_nexi.Translate
module Workload = Trex_selfman.Workload
module Queries = Trex_corpus.Queries

let check = Alcotest.check
let metric name = Metrics.value (Metrics.counter name)

let temp_dir () =
  let dir = Filename.temp_file "trex_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let rec cp_r src dst =
  match (Unix.lstat src).Unix.st_kind with
  | Unix.S_DIR ->
      Unix.mkdir dst 0o755;
      Array.iter
        (fun e -> cp_r (Filename.concat src e) (Filename.concat dst e))
        (Sys.readdir src)
  | _ ->
      let ic = open_in_bin src in
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      close_in ic;
      let oc = open_out_bin dst in
      output_string oc bytes;
      close_out oc

let with_no_sleep_policy f =
  let saved = Pager.retry_policy () in
  Pager.set_retry_policy (Retry.no_sleep saved);
  Fun.protect ~finally:(fun () -> Pager.set_retry_policy saved) f

let nexi = "//article//sec[about(., information retrieval)]"

let table1 =
  List.map (fun (q : Queries.t) -> q.nexi) (Queries.for_collection Queries.Ieee)

(* One corpus, one single-env baseline engine (in memory), shared doc
   list for building coordinators. *)
let corpus ~docs:doc_count ~seed =
  let coll = Trex_corpus.Gen.ieee ~doc_count ~seed () in
  let docs = List.of_seq (coll.docs ()) in
  let env = Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (List.to_seq docs) in
  (coll, docs, engine)

let baseline engine ?method_ ~k q = (Trex.query engine ~k ?method_ q).Trex.strategy.Strategy.answers

(* Rank identity is over (docid, endpos, length, score): a shard's
   summary numbers its sids locally, so sid labels differ from the
   single-env summary even when the ranked elements are identical. *)
let answers_testable =
  let entry_sig (e : Answer.entry) =
    (e.element.Types.docid, e.element.Types.endpos, e.element.Types.length)
  in
  let equal a b =
    List.compare_lengths a b = 0
    && List.for_all2
         (fun (x : Answer.entry) (y : Answer.entry) ->
           entry_sig x = entry_sig y
           && Float.abs (x.Answer.score -. y.Answer.score) <= 1e-9)
         a b
  in
  Alcotest.testable Answer.pp equal

(* The shard map must tile the docid space: bases ascending, no gap,
   no overlap. *)
let check_contiguous t ~total =
  let last =
    List.fold_left
      (fun expect (i : Shard.shard_info) ->
        check Alcotest.int ("base of " ^ i.name) expect i.base;
        expect + i.docs)
      0 (Shard.shards t)
  in
  check Alcotest.int "shards cover every document" total last

(* ---- rank identity across shard counts (1/2/8) ---- *)

let test_rank_identity () =
  let coll, docs, engine = corpus ~docs:24 ~seed:42 in
  List.iter
    (fun n ->
      let dir = temp_dir () in
      let t = Shard.create ~dir ~shards:n ~alias:coll.alias docs in
      check_contiguous t ~total:24;
      List.iter
        (fun q ->
          let sharded = Shard.query t ~k:10 q in
          Alcotest.(check bool)
            (Printf.sprintf "%d shards never degraded" n)
            false sharded.Shard.degraded;
          check answers_testable
            (Printf.sprintf "%d shards rank-identical: %s" n q)
            (baseline engine ~k:10 q) sharded.Shard.answers)
        table1;
      Shard.close t;
      rm_rf dir)
    [ 1; 2; 8 ]

let test_rank_identity_ta () =
  (* Same identity through the materialized-list path: RPL scores are
     baked at build time, so this also proves the corpus-wide scoring
     overrides reach the RPL builder. *)
  let coll, docs, engine = corpus ~docs:20 ~seed:7 in
  ignore (Trex.materialize engine nexi);
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:4 ~alias:coll.alias docs in
  Shard.materialize t nexi;
  List.iter
    (fun m ->
      let sharded = Shard.query t ~k:5 ~method_:m nexi in
      Alcotest.(check bool) "not degraded" false sharded.Shard.degraded;
      check answers_testable
        ("rank-identical via " ^ Strategy.method_to_string m)
        (baseline engine ~method_:m ~k:5 nexi)
        sharded.Shard.answers)
    [ Strategy.Ta_method; Strategy.Merge_method; Strategy.Era_method ];
  Shard.close t;
  rm_rf dir

(* ---- global-threshold early termination ---- *)

let test_floor_early_termination () =
  let coll, docs, _engine = corpus ~docs:32 ~seed:11 in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:4 ~alias:coll.alias docs in
  Shard.materialize t nexi;
  let e0 = metric "shard.early_terminations" in
  let r = Shard.query t ~k:3 ~method_:Strategy.Ta_method nexi in
  Alcotest.(check bool) "not degraded" false r.Shard.degraded;
  Alcotest.(check bool) "floor-assisted shard visits counted" true
    (metric "shard.early_terminations" - e0 > 0);
  (* Re-run every floored shard in isolation with no floor: the
     coordinator's floor must never cost entries, and must save some
     across the scatter. *)
  let floored =
    List.filter (fun (s : Shard.shard_report) -> s.r_floor > 0.0) r.Shard.reports
  in
  Alcotest.(check bool) "later shards saw a floor" true (floored <> []);
  let with_floor = ref 0 and without_floor = ref 0 in
  List.iter
    (fun (s : Shard.shard_report) ->
      let index =
        match Shard.index_of t s.r_shard with
        | Some i -> i
        | None -> Alcotest.fail "shard not attached"
      in
      let translation =
        Translate.translate ~summary:(Index.summary index)
          ~normalize:(Index.normalize_term index)
          (Trex_nexi.Parser.parse nexi)
      in
      let alone =
        Strategy.evaluate index ~scoring:Trex_scoring.Scorer.default
          ~sids:(Translate.all_sids translation)
          ~terms:(Translate.all_terms translation)
          ~k:3 Strategy.Ta_method
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: floor never reads more (%d with vs %d without)"
           s.r_shard s.r_entries_read alone.Strategy.entries_read)
        true
        (s.r_entries_read <= alone.Strategy.entries_read);
      with_floor := !with_floor + s.r_entries_read;
      without_floor := !without_floor + alone.Strategy.entries_read)
    floored;
  Alcotest.(check bool)
    (Printf.sprintf "the floor saves reads overall (%d with vs %d without)"
       !with_floor !without_floor)
    true
    (!with_floor < !without_floor);
  Shard.close t;
  rm_rf dir

(* ---- shard loss mid-query ---- *)

(* The sound partial a query missing some shards must return: the
   single-env ranking restricted to the documents of the surviving
   shards. *)
let surviving_baseline engine t ~lost ~k q =
  let full = baseline engine ~k:1_000_000 q in
  let ranges =
    List.filter_map
      (fun (i : Shard.shard_info) ->
        if List.mem i.name lost then Some (i.base, i.base + i.docs) else None)
      (Shard.shards t)
  in
  let kept =
    List.filter
      (fun (e : Answer.entry) ->
        not
          (List.exists
             (fun (lo, hi) ->
               e.element.Types.docid >= lo && e.element.Types.docid < hi)
             ranges))
      full
  in
  Answer.top_k kept k

let test_shard_loss_mid_query () =
  let coll, docs, engine = corpus ~docs:20 ~seed:3 in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:4 ~alias:coll.alias docs in
  Shard.set_shard_hook t
    (Some (fun name -> if name = "shard-001" then failwith "injected shard loss"));
  let d0 = metric "shard.degraded_queries" in
  let r = Shard.query t ~k:5 nexi in
  Alcotest.(check bool) "tagged degraded" true r.Shard.degraded;
  Alcotest.(check bool) "the lost shard is named" true
    (List.mem_assoc "shard-001" r.Shard.degraded_shards);
  check Alcotest.int "degraded query counted" 1
    (metric "shard.degraded_queries" - d0);
  check answers_testable "answers = exact ranking of the surviving shards"
    (surviving_baseline engine t ~lost:[ "shard-001" ] ~k:5 nexi)
    r.Shard.answers;
  (* Repeated losses trip the shard's breaker; the coordinator then
     skips it without even attempting evaluation. *)
  let b = Shard.breaker t "shard-001" in
  while Breaker.state b <> Breaker.Open do
    ignore (Shard.query t ~k:5 nexi)
  done;
  Shard.set_shard_hook t None;
  let r2 = Shard.query t ~k:5 nexi in
  Alcotest.(check bool) "still degraded while open" true r2.Shard.degraded;
  (match List.assoc_opt "shard-001" r2.Shard.degraded_shards with
  | Some reason ->
      Alcotest.(check bool) "skipped by the breaker" true
        (String.length reason >= 7 && String.sub reason 0 7 = "circuit")
  | None -> Alcotest.fail "breaker skip must be tagged");
  check answers_testable "breaker-skip partial still sound"
    (surviving_baseline engine t ~lost:[ "shard-001" ] ~k:5 nexi)
    r2.Shard.answers;
  (* After cooldown the next query is the probe; its success closes
     the breaker and restores the full ranking. *)
  Breaker.set_cooldown b 0.0;
  let r3 = Shard.query t ~k:5 nexi in
  Alcotest.(check bool) "probe run recovers" false r3.Shard.degraded;
  Alcotest.(check bool) "breaker closed again" true (Breaker.state b = Breaker.Closed);
  check answers_testable "full ranking restored" (baseline engine ~k:5 nexi)
    r3.Shard.answers;
  Shard.close t;
  rm_rf dir

let test_deadline_skips_shards () =
  let coll, docs, _engine = corpus ~docs:12 ~seed:9 in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:3 ~alias:coll.alias docs in
  let s0 = metric "shard.shards_skipped" in
  let r = Shard.query t ~k:5 ~deadline_ms:0.0 nexi in
  Alcotest.(check bool) "tagged degraded" true r.Shard.degraded;
  check Alcotest.int "every shard skipped and tagged" 3
    (List.length r.Shard.degraded_shards);
  check Alcotest.int "skips counted" 3 (metric "shard.shards_skipped" - s0);
  check Alcotest.int "no answers fabricated" 0 (List.length r.Shard.answers);
  Shard.close t;
  rm_rf dir

(* ---- rebalance: split / merge preserve the ranking ---- *)

let test_rebalance_preserves_ranking () =
  let coll, docs, engine = corpus ~docs:16 ~seed:21 in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:4 ~alias:coll.alias docs in
  let expect = baseline engine ~k:8 nexi in
  let r0 = metric "shard.rebalances" in
  let a, b = Shard.split t "shard-001" in
  check_contiguous t ~total:16;
  check answers_testable "ranking survives a split" expect
    (Shard.query t ~k:8 nexi).Shard.answers;
  let merged = Shard.merge t a.Shard.name b.Shard.name in
  check_contiguous t ~total:16;
  check answers_testable "ranking survives the merge back" expect
    (Shard.query t ~k:8 nexi).Shard.answers;
  (* Merging across an original shard boundary exercises summary
     growth over the second source's documents. *)
  ignore (Shard.merge t "shard-000" merged.Shard.name);
  check_contiguous t ~total:16;
  check answers_testable "ranking survives a cross-boundary merge" expect
    (Shard.query t ~k:8 nexi).Shard.answers;
  check Alcotest.int "rebalances counted" 3 (metric "shard.rebalances" - r0);
  (* The coordinator survives close/reopen with the post-rebalance map. *)
  Shard.close t;
  let t2 = Shard.open_ dir in
  check_contiguous t2 ~total:16;
  check
    (Alcotest.list Alcotest.string)
    "nothing unresolved" [] (Shard.unresolved t2);
  check answers_testable "reopened coordinator identical" expect
    (Shard.query t2 ~k:8 nexi).Shard.answers;
  Shard.close t2;
  rm_rf dir

(* ---- rebalance crash matrix ---- *)

let test_rebalance_crash_matrix () =
  let coll, docs, engine = corpus ~docs:12 ~seed:5 in
  let expect = baseline engine ~k:50 nexi in
  let template = temp_dir () in
  let t = Shard.create ~dir:template ~shards:3 ~alias:coll.alias docs in
  Shard.close t;
  (* Dry run to enumerate the hook points of this split. *)
  let dry = temp_dir () in
  rm_rf dry;
  cp_r template dry;
  let t = Shard.open_ dry in
  let points = ref [] in
  Shard.set_op_hook t (Some (fun p -> points := p :: !points));
  ignore (Shard.split t "shard-001");
  Shard.close t;
  rm_rf dry;
  let points = List.rev !points in
  Alcotest.(check bool) "matrix has hook points" true (List.length points >= 5);
  let pre = [ "shard-000"; "shard-001"; "shard-002" ] in
  let post = [ "shard-000"; "shard-002"; "shard-003"; "shard-004" ] in
  List.iteri
    (fun n point ->
      let dir = temp_dir () in
      rm_rf dir;
      cp_r template dir;
      let t = Shard.open_ dir in
      let fired = ref 0 in
      Shard.set_op_hook t
        (Some
           (fun _ ->
             incr fired;
             if !fired = n + 1 then
               raise (Pager.Injected_crash ("crash matrix: " ^ point))));
      (match Shard.split t "shard-001" with
      | _ -> Alcotest.failf "point %s: expected the injected crash" point
      | exception Pager.Injected_crash _ -> ());
      Shard.abort t;
      let t2 = Shard.open_ dir in
      check
        (Alcotest.list Alcotest.string)
        (point ^ ": recovery resolves the op")
        [] (Shard.unresolved t2);
      let names =
        List.sort String.compare
          (List.map (fun (i : Shard.shard_info) -> i.Shard.name) (Shard.shards t2))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: placement is exactly pre or post (%s)" point
           (String.concat "," names))
        true
        (names = pre || names = post);
      check_contiguous t2 ~total:12;
      (* Full-depth rank identity proves every document is served from
         exactly one shard with its correct global docid. *)
      let r = Shard.query t2 ~k:50 nexi in
      Alcotest.(check bool) (point ^ ": recovered query not degraded") false
        r.Shard.degraded;
      check answers_testable (point ^ ": recovered ranking exact") expect
        r.Shard.answers;
      Shard.close t2;
      rm_rf dir)
    points;
  rm_rf template

let test_unresolvable_rebalance_quarantines () =
  let coll, docs, engine = corpus ~docs:12 ~seed:13 in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:3 ~alias:coll.alias docs in
  Shard.set_op_hook t
    (Some
       (fun p ->
         if p = "rebalance:committed" then
           raise (Pager.Injected_crash "crash after commit")));
  (match Shard.split t "shard-001" with
  | _ -> Alcotest.fail "expected the injected crash"
  | exception Pager.Injected_crash _ -> ());
  Shard.abort t;
  (* The op committed, but one of its half-built shards is destroyed
     before recovery runs: roll-forward is impossible. *)
  rm_rf (Filename.concat dir "shard-004");
  let t2 = Shard.open_ dir in
  Alcotest.(check bool) "op reported unresolved" true (Shard.unresolved t2 <> []);
  Alcotest.(check bool) "source shard quarantined" true
    (List.mem_assoc "shard-001" (Shard.blocked t2));
  let quarantined =
    List.filter (fun (h : Shard.health) -> not h.Shard.h_attached) (Shard.health t2)
  in
  check
    (Alcotest.list Alcotest.string)
    "health shows exactly the quarantined shard" [ "shard-001" ]
    (List.map (fun (h : Shard.health) -> h.Shard.h_shard) quarantined);
  let r = Shard.query t2 ~k:5 nexi in
  Alcotest.(check bool) "queries degrade" true r.Shard.degraded;
  Alcotest.(check bool) "the quarantined shard is named" true
    (List.mem_assoc "shard-001" r.Shard.degraded_shards);
  check answers_testable "partial is the exact surviving ranking"
    (surviving_baseline engine t2 ~lost:[ "shard-001" ] ~k:5 nexi)
    r.Shard.answers;
  Shard.close t2;
  rm_rf dir

(* ---- observed workload attribution ---- *)

let test_workload_by_shard () =
  let coll, docs, _engine = corpus ~docs:8 ~seed:17 in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:2 ~alias:coll.alias docs in
  Journal.set_enabled true;
  Fun.protect ~finally:(fun () -> Journal.set_enabled false) @@ fun () ->
  ignore (Shard.query t ~k:5 nexi);
  ignore (Shard.query t ~k:5 nexi);
  let records =
    List.concat_map
      (fun (i : Shard.shard_info) ->
        match Shard.index_of t i.Shard.name with
        | Some index -> Journal.records (Env.journal (Index.env index))
        | None -> [])
      (Shard.shards t)
  in
  let groups = Workload.by_shard records in
  check
    (Alcotest.list Alcotest.string)
    "one observed workload per shard" [ "shard-000"; "shard-001" ]
    (List.sort String.compare (List.map fst groups));
  List.iter
    (fun (_, w) ->
      match Workload.queries w with
      | [ q ] ->
          check (Alcotest.float 1e-9) "single query at full frequency" 1.0
            q.Workload.frequency;
          check Alcotest.int "k preserved" 5 q.Workload.k
      | qs -> Alcotest.failf "expected one grouped query, got %d" (List.length qs))
    groups;
  Shard.close t;
  rm_rf dir

(* ---- seeded shard-fault soak ---- *)

let soak_seeds () =
  match Sys.getenv_opt "TREX_SOAK_SEEDS" with
  | Some s -> max 1 (int_of_string s)
  | None -> 3

let soak_queries = [ nexi; "//article//p[about(., database systems)]" ]

(* One soak round: a disk-backed coordinator under a deterministic
   fault schedule — transient I/O streaks on every shard table, one
   shard lost outright on some seeds, and budget pressure — must
   answer every query either exactly or as a tagged sound partial.
   Exceptions never escape the coordinator. *)
let run_soak_seed seed =
  with_no_sleep_policy @@ fun () ->
  let coll, docs, engine = corpus ~docs:12 ~seed:(2000 + seed) in
  let dir = temp_dir () in
  let t = Shard.create ~dir ~shards:3 ~alias:coll.alias docs in
  (* Exact full answer sets for soundness checks. *)
  let exact_scores =
    List.map
      (fun q ->
        ( q,
          List.map
            (fun (e : Answer.entry) ->
              ((e.element.Types.docid, e.element.Types.endpos), e.score))
            (baseline engine ~k:1_000_000 q) ))
      soak_queries
  in
  (* Arm a deterministic transient-read schedule on every table of
     every shard; even seeds stay under the retry budget (recoverable),
     odd seeds exceed it (exhaustions → shard tagged). *)
  let streak = if seed mod 2 = 0 then 2 else 8 in
  List.iteri
    (fun si (i : Shard.shard_info) ->
      match Shard.index_of t i.Shard.name with
      | None -> ()
      | Some index ->
          let env = Index.env index in
          List.iteri
            (fun ti name ->
              ignore
                (Pager.create_faulty
                   ~faults:
                     [
                       Pager.Transient_read
                         {
                           seed = (seed * 131) + (si * 17) + ti;
                           fail_one_in = 30;
                           fail_streak = streak;
                         };
                     ]
                   (Trex_storage.Bptree.pager (Env.table env name))))
            (List.sort String.compare (Env.table_names env)))
    (Shard.shards t);
  (* Some seeds also lose a whole shard mid-query. *)
  let lost = if seed mod 3 = 0 then [ "shard-001" ] else [] in
  Shard.set_shard_hook t
    (Some
       (fun name ->
         if List.mem name lost then failwith "soak: injected shard loss"));
  let exact_runs = ref 0 and degraded_runs = ref 0 in
  List.iter
    (fun q ->
      let scores = List.assoc q exact_scores in
      List.iter
        (fun deadline_ms ->
          match Shard.query t ~k:5 ?deadline_ms q with
          | r ->
              if r.Shard.degraded then begin
                incr degraded_runs;
                (* Sound partial: every answer is a real element with a
                   never-overstated score. *)
                List.iter
                  (fun (e : Answer.entry) ->
                    let id = (e.element.Types.docid, e.element.Types.endpos) in
                    match List.assoc_opt id scores with
                    | None ->
                        Alcotest.failf "seed %d: degraded run fabricated %d/%d"
                          seed (fst id) (snd id)
                    | Some exact ->
                        Alcotest.(check bool) "score is a lower bound" true
                          (e.Answer.score <= exact +. 1e-9))
                  r.Shard.answers
              end
              else begin
                incr exact_runs;
                check answers_testable
                  (Printf.sprintf "seed %d: untagged answers exact" seed)
                  (baseline engine ~k:5 q) r.Shard.answers
              end
          | exception e ->
              Alcotest.failf "seed %d: escaped the coordinator: %s" seed
                (Printexc.to_string e))
        [ None; Some 0.0 ])
    soak_queries;
  Shard.close t;
  rm_rf dir;
  Printf.printf "shard soak seed %d: %d exact, %d degraded\n%!" seed !exact_runs
    !degraded_runs;
  (!exact_runs, !degraded_runs)

let test_soak () =
  let seeds = soak_seeds () in
  let exact = ref 0 and degraded = ref 0 in
  for seed = 1 to seeds do
    let e, d = run_soak_seed seed in
    exact := !exact + e;
    degraded := !degraded + d
  done;
  Alcotest.(check bool) "some runs exact" true (!exact > 0);
  Alcotest.(check bool) "the soak reached the degraded bucket" true (!degraded > 0)

let () =
  Alcotest.run "trex_shard"
    [
      ( "identity",
        [
          Alcotest.test_case "rank-identical at 1/2/8 shards" `Quick
            test_rank_identity;
          Alcotest.test_case "rank-identical via TA/Merge/ERA" `Quick
            test_rank_identity_ta;
        ] );
      ( "early-termination",
        [
          Alcotest.test_case "global threshold cuts shard reads" `Quick
            test_floor_early_termination;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "shard loss yields tagged sound partial" `Quick
            test_shard_loss_mid_query;
          Alcotest.test_case "deadline skips shards soundly" `Quick
            test_deadline_skips_shards;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "split/merge preserve the ranking" `Quick
            test_rebalance_preserves_ranking;
          Alcotest.test_case "crash matrix: pre or post, never between" `Quick
            test_rebalance_crash_matrix;
          Alcotest.test_case "unresolvable op quarantines" `Quick
            test_unresolvable_rebalance_quarantines;
        ] );
      ( "selfman",
        [
          Alcotest.test_case "journal attributes traffic per shard" `Quick
            test_workload_by_shard;
        ] );
      ("soak", [ Alcotest.test_case "seeded shard-fault soak" `Slow test_soak ]);
    ]
