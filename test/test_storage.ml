(* Tests for trex_storage: pager, B+tree, environment. *)

module Pager = Trex_storage.Pager
module Bptree = Trex_storage.Bptree
module Env = Trex_storage.Env
module Prng = Trex_util.Prng

let check = Alcotest.check

let temp_dir () =
  let dir = Filename.temp_file "trex_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

(* ---- pager ---- *)

let test_pager_memory_rw () =
  let p = Pager.create_memory ~page_size:256 () in
  let id0 = Pager.allocate p in
  let id1 = Pager.allocate p in
  check Alcotest.int "ids sequential" 1 id1;
  let buf = Bytes.make 256 'x' in
  Pager.write p id0 buf;
  check Alcotest.string "read back" (Bytes.to_string buf)
    (Bytes.to_string (Pager.read p id0));
  check Alcotest.string "other page zeroed" (String.make 256 '\x00')
    (Bytes.to_string (Pager.read p id1))

let test_pager_out_of_range () =
  let p = Pager.create_memory () in
  Alcotest.check_raises "read unallocated"
    (Invalid_argument "Pager: page id 0 out of range [0,0)") (fun () ->
      ignore (Pager.read p 0))

let test_pager_file_persistence () =
  let dir = temp_dir () in
  let path = Filename.concat dir "test.pg" in
  let p = Pager.create_file ~page_size:512 path in
  let id = Pager.allocate p in
  let buf = Bytes.make 512 'q' in
  Pager.write p id buf;
  Pager.set_root p id;
  Pager.close p;
  let p2 = Pager.open_file path in
  check Alcotest.int "page size restored" 512 (Pager.page_size p2);
  check Alcotest.int "page count restored" 1 (Pager.page_count p2);
  check Alcotest.int "root restored" id (Pager.get_root p2);
  check Alcotest.string "content restored" (Bytes.to_string buf)
    (Bytes.to_string (Pager.read p2 id));
  Pager.close p2

let raises_corruption f =
  try
    ignore (f ());
    false
  with Pager.Corruption _ -> true

let test_pager_open_bad_file () =
  let dir = temp_dir () in
  let path = Filename.concat dir "junk" in
  let oc = open_out path in
  (* Long enough to hold both header slots, but garbage. *)
  output_string oc (String.concat "" (List.init 8 (fun _ -> "not a pager file....")));
  close_out oc;
  Alcotest.(check bool) "bad magic is typed Corruption" true
    (raises_corruption (fun () -> Pager.open_file path))

let test_pager_open_truncated_file () =
  let dir = temp_dir () in
  let path = Filename.concat dir "short" in
  let oc = open_out path in
  output_string oc "TRExPG02tiny";
  close_out oc;
  Alcotest.(check bool) "truncated header is typed Corruption" true
    (raises_corruption (fun () -> Pager.open_file path));
  Alcotest.(check bool) "recovery refuses it too" true
    (raises_corruption (fun () -> Pager.open_with_recovery path))

let test_pager_open_truncated_pages () =
  let dir = temp_dir () in
  let path = Filename.concat dir "chopped.pg" in
  let p = Pager.create_file ~page_size:256 path in
  let id = Pager.allocate p in
  Pager.write p id (Bytes.make 256 'z');
  Pager.set_root p id;
  Pager.close p;
  (* Chop the page region off: the header says 1 page, the file has 0. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd 140;
  Unix.close fd;
  Alcotest.(check bool) "page_count inconsistent with length" true
    (raises_corruption (fun () -> Pager.open_file path))

let test_pager_open_absurd_header () =
  let dir = temp_dir () in
  let path = Filename.concat dir "absurd.pg" in
  let p = Pager.create_file ~page_size:256 path in
  Pager.close p;
  (* Both slots valid; overwrite both with an absurd page_size but a
     correct checksum, which must still be rejected (typed). *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let slot = Bytes.create 64 in
  ignore (Unix.read fd slot 0 64);
  Bytes.set_int64_be slot 16 (Int64.of_int (2 * 1024 * 1024));
  Bytes.set_int32_be slot 60 (Trex_util.Crc32.bytes slot ~pos:0 ~len:60);
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  ignore (Unix.write fd slot 0 64);
  ignore (Unix.write fd slot 0 64);
  Unix.close fd;
  Alcotest.(check bool) "absurd page_size rejected" true
    (raises_corruption (fun () -> Pager.open_file path));
  Alcotest.(check bool) "even with recovery" true
    (raises_corruption (fun () -> Pager.open_with_recovery path))

let test_pager_read_copy_isolated () =
  let run p =
    let id = Pager.allocate p in
    Pager.write p id (Bytes.make (Pager.page_size p) 'a');
    let copy = Pager.read_copy p id in
    Bytes.fill copy 0 (Bytes.length copy) '!';
    check Alcotest.string "mutating the copy leaves the page alone"
      (String.make (Pager.page_size p) 'a')
      (Bytes.to_string (Pager.read p id));
    (* The live buffer from [read] aliases the cache: a later write is
       visible through it, which is exactly why read_copy exists. *)
    let live = Pager.read p id in
    Pager.write p id (Bytes.make (Pager.page_size p) 'b');
    check Alcotest.string "live buffer sees the write"
      (String.make (Pager.page_size p) 'b')
      (Bytes.to_string live);
    check Alcotest.string "earlier copy does not"
      (String.make (Pager.page_size p) '!')
      (Bytes.to_string copy)
  in
  run (Pager.create_memory ~page_size:128 ());
  let dir = temp_dir () in
  let p = Pager.create_file ~page_size:128 (Filename.concat dir "rc.pg") in
  run p;
  Pager.close p

let test_pager_eviction_under_small_cache () =
  let dir = temp_dir () in
  let path = Filename.concat dir "evict.pg" in
  let p = Pager.create_file ~page_size:128 ~cache_pages:4 path in
  let ids = List.init 20 (fun _ -> Pager.allocate p) in
  List.iteri
    (fun i id ->
      let buf = Bytes.make 128 (Char.chr (65 + (i mod 26))) in
      Pager.write p id buf)
    ids;
  (* Read everything back; the cache holds only 4 pages, so most reads
     must hit the backing file and still return the right bytes. *)
  List.iteri
    (fun i id ->
      let expected = String.make 128 (Char.chr (65 + (i mod 26))) in
      check Alcotest.string
        (Printf.sprintf "page %d content" i)
        expected
        (Bytes.to_string (Pager.read p id)))
    ids;
  let stats = Pager.stats p in
  Alcotest.(check bool) "evictions caused physical writes" true
    (stats.physical_writes > 0);
  Alcotest.(check bool) "cache misses recorded" true (stats.cache_misses > 0);
  Pager.close p

(* ---- B+tree ---- *)

let key_of_int i = Printf.sprintf "key-%06d" i

let test_bptree_insert_find () =
  let t = Bptree.create (Pager.create_memory ~page_size:512 ()) in
  for i = 0 to 499 do
    Bptree.insert t ~key:(key_of_int i) ~value:(string_of_int (i * i))
  done;
  for i = 0 to 499 do
    check
      (Alcotest.option Alcotest.string)
      (Printf.sprintf "find %d" i)
      (Some (string_of_int (i * i)))
      (Bptree.find t (key_of_int i))
  done;
  check (Alcotest.option Alcotest.string) "missing" None (Bptree.find t "nope");
  check Alcotest.int "length" 500 (Bptree.length t)

let test_bptree_replace () =
  let t = Bptree.create (Pager.create_memory ()) in
  Bptree.insert t ~key:"k" ~value:"v1";
  Bptree.insert t ~key:"k" ~value:"v2";
  check (Alcotest.option Alcotest.string) "replaced" (Some "v2") (Bptree.find t "k");
  check Alcotest.int "no duplicate" 1 (Bptree.length t)

let test_bptree_remove () =
  let t = Bptree.create (Pager.create_memory ~page_size:512 ()) in
  for i = 0 to 99 do
    Bptree.insert t ~key:(key_of_int i) ~value:"v"
  done;
  Alcotest.(check bool) "removed" true (Bptree.remove t (key_of_int 50));
  Alcotest.(check bool) "already gone" false (Bptree.remove t (key_of_int 50));
  check (Alcotest.option Alcotest.string) "gone" None (Bptree.find t (key_of_int 50));
  check Alcotest.int "length drops" 99 (Bptree.length t)

let test_bptree_cursor_order () =
  let t = Bptree.create (Pager.create_memory ~page_size:512 ()) in
  let keys = List.init 300 key_of_int in
  let shuffled = Array.of_list keys in
  Prng.shuffle (Prng.create 11) shuffled;
  Array.iter (fun k -> Bptree.insert t ~key:k ~value:("v" ^ k)) shuffled;
  let collected = ref [] in
  Bptree.iter t (fun k _ -> collected := k :: !collected);
  check (Alcotest.list Alcotest.string) "in order" keys (List.rev !collected)

let test_bptree_seek_positions_at_lower_bound () =
  let t = Bptree.create (Pager.create_memory ~page_size:512 ()) in
  List.iter
    (fun i -> Bptree.insert t ~key:(key_of_int i) ~value:"v")
    [ 10; 20; 30; 40 ];
  let c = Bptree.Cursor.seek t (key_of_int 25) in
  (match Bptree.Cursor.next c with
  | Some (k, _) -> check Alcotest.string "lower bound" (key_of_int 30) k
  | None -> Alcotest.fail "expected entry");
  let c2 = Bptree.Cursor.seek t (key_of_int 99) in
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "past end" None
    (Bptree.Cursor.next c2)

let test_bptree_iter_prefix () =
  let t = Bptree.create (Pager.create_memory ~page_size:512 ()) in
  List.iter
    (fun k -> Bptree.insert t ~key:k ~value:"v")
    [ "aa1"; "aa2"; "ab1"; "b1"; "aa3" ];
  let out = ref [] in
  Bptree.iter_prefix t ~prefix:"aa" (fun k _ -> out := k :: !out);
  check (Alcotest.list Alcotest.string) "prefix scan" [ "aa1"; "aa2"; "aa3" ]
    (List.rev !out)

let test_bptree_fold_range () =
  let t = Bptree.create (Pager.create_memory ~page_size:512 ()) in
  for i = 0 to 49 do
    Bptree.insert t ~key:(key_of_int i) ~value:"v"
  done;
  let count =
    Bptree.fold_range t ~low:(key_of_int 10)
      ~high:(Some (key_of_int 20))
      ~init:0
      ~f:(fun acc _ _ -> acc + 1)
  in
  check Alcotest.int "half-open range" 10 count;
  let all =
    Bptree.fold_range t ~low:"" ~high:None ~init:0 ~f:(fun acc _ _ -> acc + 1)
  in
  check Alcotest.int "unbounded" 50 all

let test_bptree_bulk_load_equals_inserts () =
  let entries = List.init 400 (fun i -> (key_of_int i, Printf.sprintf "val%d" i)) in
  let bulk = Bptree.bulk_load (Pager.create_memory ~page_size:512 ()) (List.to_seq entries) in
  check Alcotest.int "length" 400 (Bptree.length bulk);
  List.iter
    (fun (k, v) ->
      check (Alcotest.option Alcotest.string) k (Some v) (Bptree.find bulk k))
    entries;
  let out = ref [] in
  Bptree.iter bulk (fun k v -> out := (k, v) :: !out);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "scan order" entries (List.rev !out)

let test_bptree_bulk_load_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Bptree.bulk_load: keys not strictly ascending") (fun () ->
      ignore
        (Bptree.bulk_load
           (Pager.create_memory ())
           (List.to_seq [ ("b", "1"); ("a", "2") ])))

let test_bptree_bulk_load_empty () =
  let t = Bptree.bulk_load (Pager.create_memory ()) Seq.empty in
  check Alcotest.int "empty" 0 (Bptree.length t);
  check (Alcotest.option Alcotest.string) "find" None (Bptree.find t "x")

let test_bptree_oversized_entry_rejected () =
  let pager = Pager.create_memory ~page_size:512 () in
  let t = Bptree.create pager in
  let big = String.make (Bptree.entry_budget pager + 1) 'z' in
  Alcotest.(check bool) "raises" true
    (try
       Bptree.insert t ~key:"k" ~value:big;
       false
     with Invalid_argument _ -> true)

let test_bptree_persistence () =
  let dir = temp_dir () in
  let path = Filename.concat dir "tree.pg" in
  let t = Bptree.create (Pager.create_file ~page_size:512 path) in
  for i = 0 to 199 do
    Bptree.insert t ~key:(key_of_int i) ~value:(string_of_int i)
  done;
  Pager.close (Bptree.pager t);
  let t2 = Bptree.attach (Pager.open_file path) in
  check Alcotest.int "length after reopen" 200 (Bptree.length t2);
  check (Alcotest.option Alcotest.string) "value survives" (Some "123")
    (Bptree.find t2 (key_of_int 123));
  Pager.close (Bptree.pager t2)

(* Model-based property: a B+tree behaves like a sorted string map
   under random inserts, removes and lookups. *)
let prop_bptree_model =
  let open QCheck in
  let op_gen =
    Gen.(
      oneof
        [
          map2 (fun k v -> `Insert (k, v)) (string_size (1 -- 8)) (string_size (0 -- 12));
          map (fun k -> `Remove k) (string_size (1 -- 8));
          map (fun k -> `Find k) (string_size (1 -- 8));
        ])
  in
  let ops_arb =
    make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | `Insert (k, v) -> Printf.sprintf "ins(%S,%S)" k v
               | `Remove k -> Printf.sprintf "del(%S)" k
               | `Find k -> Printf.sprintf "find(%S)" k)
             ops))
      Gen.(list_size (0 -- 200) op_gen)
  in
  Test.make ~name:"bptree matches sorted-map model" ~count:60 ops_arb (fun ops ->
      let t = Bptree.create (Pager.create_memory ~page_size:256 ()) in
      let model = Hashtbl.create 16 in
      List.for_all
        (function
          | `Insert (k, v) ->
              Bptree.insert t ~key:k ~value:v;
              Hashtbl.replace model k v;
              true
          | `Remove k ->
              let expected = Hashtbl.mem model k in
              Hashtbl.remove model k;
              Bptree.remove t k = expected
          | `Find k -> Bptree.find t k = Hashtbl.find_opt model k)
        ops
      &&
      (* Final scan must equal the sorted model. *)
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      let actual = ref [] in
      Bptree.iter t (fun k v -> actual := (k, v) :: !actual);
      List.rev !actual = expected)

(* ---- environment ---- *)

let test_env_tables () =
  let env = Env.in_memory () in
  let t1 = Env.table env "alpha" in
  Bptree.insert t1 ~key:"k" ~value:"v";
  let t1' = Env.table env "alpha" in
  check (Alcotest.option Alcotest.string) "same table" (Some "v")
    (Bptree.find t1' "k");
  Alcotest.(check bool) "has" true (Env.has_table env "alpha");
  Alcotest.(check bool) "has not" false (Env.has_table env "beta");
  check (Alcotest.list Alcotest.string) "names" [ "alpha" ] (Env.table_names env)

let test_env_bad_name () =
  let env = Env.in_memory () in
  Alcotest.check_raises "bad name" (Invalid_argument "Env.table: bad name a/b")
    (fun () -> ignore (Env.table env "a/b"))

let test_env_drop () =
  let env = Env.in_memory () in
  let t = Env.table env "victim" in
  Bptree.insert t ~key:"k" ~value:"v";
  Env.drop_table env "victim";
  let t2 = Env.table env "victim" in
  check (Alcotest.option Alcotest.string) "fresh after drop" None (Bptree.find t2 "k")

let test_env_compact_reclaims_space () =
  let run_on env =
    let t = Env.table env "fat" in
    for i = 0 to 999 do
      Bptree.insert t ~key:(key_of_int i) ~value:(String.make 64 'x')
    done;
    for i = 0 to 899 do
      ignore (Bptree.remove t (key_of_int i))
    done;
    let before = Env.table_bytes env "fat" in
    Env.compact_table env "fat";
    let t = Env.table env "fat" in
    Alcotest.(check bool) "smaller" true (Env.table_bytes env "fat" < before);
    check Alcotest.int "entries survive" 100 (Bptree.length t);
    check
      (Alcotest.option Alcotest.string)
      "value survives"
      (Some (String.make 64 'x'))
      (Bptree.find t (key_of_int 950))
  in
  run_on (Env.in_memory ~page_size:512 ());
  let dir = temp_dir () in
  let env = Env.on_disk ~page_size:512 dir in
  run_on env;
  (* Compacted table persists across close/reopen. *)
  Env.close env;
  let env2 = Env.on_disk dir in
  check Alcotest.int "persists" 100 (Bptree.length (Env.table env2 "fat"));
  Env.close env2

let test_env_compact_missing_table_noop () =
  let env = Env.in_memory () in
  Env.compact_table env "ghost";
  Alcotest.(check bool) "still absent" false (Env.has_table env "ghost")

let test_env_on_disk_roundtrip () =
  let dir = temp_dir () in
  let env = Env.on_disk dir in
  let t = Env.table env "data" in
  Bptree.insert t ~key:"hello" ~value:"world";
  Env.close env;
  let env2 = Env.on_disk dir in
  let t2 = Env.table env2 "data" in
  check (Alcotest.option Alcotest.string) "reattached" (Some "world")
    (Bptree.find t2 "hello");
  Alcotest.(check bool) "bytes positive" true (Env.table_bytes env2 "data" > 0);
  Alcotest.(check bool) "total counts it" true
    (Env.total_bytes env2 >= Env.table_bytes env2 "data");
  Env.close env2

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_storage"
    [
      ( "pager",
        [
          Alcotest.test_case "memory read/write" `Quick test_pager_memory_rw;
          Alcotest.test_case "out of range" `Quick test_pager_out_of_range;
          Alcotest.test_case "file persistence" `Quick test_pager_file_persistence;
          Alcotest.test_case "open bad file" `Quick test_pager_open_bad_file;
          Alcotest.test_case "open truncated file" `Quick
            test_pager_open_truncated_file;
          Alcotest.test_case "open truncated pages" `Quick
            test_pager_open_truncated_pages;
          Alcotest.test_case "open absurd header" `Quick
            test_pager_open_absurd_header;
          Alcotest.test_case "read_copy isolation" `Quick
            test_pager_read_copy_isolated;
          Alcotest.test_case "eviction with small cache" `Quick
            test_pager_eviction_under_small_cache;
        ] );
      ( "bptree",
        [
          Alcotest.test_case "insert/find" `Quick test_bptree_insert_find;
          Alcotest.test_case "replace" `Quick test_bptree_replace;
          Alcotest.test_case "remove" `Quick test_bptree_remove;
          Alcotest.test_case "cursor order" `Quick test_bptree_cursor_order;
          Alcotest.test_case "seek lower bound" `Quick
            test_bptree_seek_positions_at_lower_bound;
          Alcotest.test_case "iter_prefix" `Quick test_bptree_iter_prefix;
          Alcotest.test_case "fold_range" `Quick test_bptree_fold_range;
          Alcotest.test_case "bulk load equals inserts" `Quick
            test_bptree_bulk_load_equals_inserts;
          Alcotest.test_case "bulk load rejects unsorted" `Quick
            test_bptree_bulk_load_rejects_unsorted;
          Alcotest.test_case "bulk load empty" `Quick test_bptree_bulk_load_empty;
          Alcotest.test_case "oversized entry rejected" `Quick
            test_bptree_oversized_entry_rejected;
          Alcotest.test_case "persistence" `Quick test_bptree_persistence;
          qtest prop_bptree_model;
        ] );
      ( "env",
        [
          Alcotest.test_case "tables" `Quick test_env_tables;
          Alcotest.test_case "bad name" `Quick test_env_bad_name;
          Alcotest.test_case "drop" `Quick test_env_drop;
          Alcotest.test_case "compact reclaims space" `Quick
            test_env_compact_reclaims_space;
          Alcotest.test_case "compact missing table" `Quick
            test_env_compact_missing_table_noop;
          Alcotest.test_case "on-disk roundtrip" `Quick test_env_on_disk_roundtrip;
        ] );
    ]
