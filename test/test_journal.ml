(* Durability and integration tests for the persistent query journal:
   framing survives torn tails and corrupt records (the valid prefix is
   always recovered), strategy evaluation writes exactly one record per
   top-level query, and the advisor demonstrably consumes the journaled
   workload after an env reopen. *)

module Journal = Trex_obs.Journal
module Metrics = Trex_obs.Metrics
module Span = Trex_obs.Span
module Env = Trex_storage.Env
module Workload = Trex_selfman.Workload
module Autopilot = Trex_selfman.Autopilot
module Advisor = Trex_selfman.Advisor

let check = Alcotest.check

let temp_dir () =
  let dir = Filename.temp_file "trex_journal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let counter name = Metrics.value (Metrics.counter name)

let flip_bit_in_file path ~off ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (bit land 7))));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let file_length path = (Unix.stat path).Unix.st_size

let mk ?(digest = "00c0ffee") ?(label = "") ?(strategy = "TA") ?(k = 5)
    ?(ms = 1.5) () : Journal.record =
  {
    qid = 0;
    ts = 1700000000.0;
    digest;
    label;
    strategy;
    k;
    wall_ms = ms;
    pages_read = 3;
    cache_hit_ratio = 0.5;
    heap_ops = 7;
    degraded = false;
    fallbacks = 0;
    retried = false;
    sids = [ 1; 2 ];
    terms = [ "alpha"; "beta" ];
    spans = [ ("eval.TA", 1.25) ];
  }

(* Byte offset of frame [i] (0-based) given the records as stored:
   8-byte magic, then per frame a 8-byte header plus the JSON payload. *)
let frame_offset stored i =
  let payload_len r =
    String.length (Trex_obs.Json.to_string (Journal.record_to_json r))
  in
  List.fold_left
    (fun acc r -> acc + 8 + payload_len r)
    8
    (List.filteri (fun j _ -> j < i) stored)

(* ---- codec ---- *)

let test_record_json_roundtrip () =
  let r =
    mk ~digest:"deadbeef" ~label:"//sec[about(., x \"y\")]" ~strategy:"Merge"
      ~k:100 ~ms:12.75 ()
  in
  let r = { r with degraded = true; fallbacks = 2; retried = true } in
  match Journal.record_of_json (Trex_obs.Json.parse
      (Trex_obs.Json.to_string (Journal.record_to_json r)))
  with
  | Some r' -> Alcotest.(check bool) "roundtrip" true (r = r')
  | None -> Alcotest.fail "decode failed"

let test_digest_stable () =
  check Alcotest.string "stable digest" (Journal.digest_of "abc")
    (Journal.digest_of "abc");
  Alcotest.(check bool) "distinct inputs differ" true
    (Journal.digest_of "abc" <> Journal.digest_of "abd");
  check Alcotest.int "8 hex chars" 8 (String.length (Journal.digest_of "abc"))

(* ---- lifecycle ---- *)

let test_append_reopen_roundtrip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "j.qj" in
  let j = Journal.open_file path in
  let r1 = Journal.append j (mk ~digest:"aaaaaaaa" ()) in
  let r2 = Journal.append j (mk ~digest:"bbbbbbbb" ~strategy:"ERA" ()) in
  check Alcotest.int "qids sequence" 1 (r2.Journal.qid - r1.Journal.qid);
  check Alcotest.int "length" 2 (Journal.length j);
  Journal.close j;
  let j2 = Journal.open_file path in
  let rs = Journal.records j2 in
  check Alcotest.int "reopened length" 2 (List.length rs);
  Alcotest.(check bool) "records identical" true (rs = [ r1; r2 ]);
  (* Appending after reopen continues the qid sequence. *)
  let r3 = Journal.append j2 (mk ~digest:"cccccccc" ()) in
  check Alcotest.int "qid continues" (r2.Journal.qid + 1) r3.Journal.qid;
  Journal.close j2

let test_in_memory_journal () =
  let j = Journal.in_memory () in
  ignore (Journal.append j (mk ()));
  check Alcotest.int "held" 1 (Journal.length j);
  Alcotest.(check bool) "no path" true (Journal.path j = None);
  Journal.close j

(* ---- torn tails ---- *)

(* Truncate the file at every byte position inside the final frame; each
   time, reopen must recover exactly the first two records, never raise,
   and the journal must accept appends afterwards. *)
let test_torn_tail_matrix () =
  let dir = temp_dir () in
  let mk_journal path =
    let j = Journal.open_file path in
    let stored =
      List.map
        (fun d -> Journal.append j (mk ~digest:d ()))
        [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc" ]
    in
    Journal.close j;
    (stored, file_length path)
  in
  let probe = Filename.concat dir "probe.qj" in
  let stored, full = mk_journal probe in
  let last_start = frame_offset stored 2 in
  Sys.remove probe;
  for cut = last_start + 1 to full - 1 do
    let path = Filename.concat dir (Printf.sprintf "torn-%d.qj" cut) in
    let stored', _ = mk_journal path in
    Unix.truncate path cut;
    let torn0 = counter "journal.torn_tails" in
    let j = Journal.open_file path in
    check Alcotest.int
      (Printf.sprintf "cut at %d keeps the valid prefix" cut)
      2 (Journal.length j);
    Alcotest.(check bool) "prefix intact" true
      (Journal.records j = List.filteri (fun i _ -> i < 2) stored');
    check Alcotest.int "torn tail counted" (torn0 + 1)
      (counter "journal.torn_tails");
    (* The tail was truncated away: the file ends at the valid prefix
       and appending resumes cleanly. *)
    check Alcotest.int "file truncated to prefix" last_start (file_length path);
    ignore (Journal.append j (mk ~digest:"dddddddd" ()));
    Journal.close j;
    let j2 = Journal.open_file path in
    check Alcotest.int "append after repair survives" 3 (Journal.length j2);
    Journal.close j2
  done

(* A frame decapitated at the length field itself (cut inside the 8-byte
   header) is also a torn tail. *)
let test_torn_header () =
  let dir = temp_dir () in
  let path = Filename.concat dir "j.qj" in
  let j = Journal.open_file path in
  let stored = List.map (fun d -> Journal.append j (mk ~digest:d ())) [ "aaaaaaaa"; "bbbbbbbb" ] in
  Journal.close j;
  Unix.truncate path (frame_offset stored 1 + 3);
  let j2 = Journal.open_file path in
  check Alcotest.int "one record left" 1 (Journal.length j2);
  Journal.close j2

(* ---- corrupt records ---- *)

let test_corrupt_record_skipped () =
  let dir = temp_dir () in
  let path = Filename.concat dir "j.qj" in
  let j = Journal.open_file path in
  let stored =
    List.map
      (fun d -> Journal.append j (mk ~digest:d ()))
      [ "aaaaaaaa"; "bbbbbbbb"; "cccccccc" ]
  in
  Journal.close j;
  (* Flip a payload bit in the *middle* record: its CRC no longer
     matches, so it is skipped — but the records on both sides are
     served, because framing resynchronizes on the length fields. *)
  flip_bit_in_file path ~off:(frame_offset stored 1 + 8 + 5) ~bit:3;
  let corrupt0 = counter "journal.corrupt_records" in
  let j2 = Journal.open_file path in
  check Alcotest.int "corrupt counted" (corrupt0 + 1)
    (counter "journal.corrupt_records");
  check Alcotest.int "two survivors" 2 (Journal.length j2);
  Alcotest.(check bool) "first and last survive" true
    (List.map (fun (r : Journal.record) -> r.Journal.digest) (Journal.records j2)
    = [ "aaaaaaaa"; "cccccccc" ]);
  Journal.close j2

let test_corrupt_length_field_truncates () =
  (* A bit flip in a length field makes the rest of the file
     unframeable; everything before it must still be served. *)
  let dir = temp_dir () in
  let path = Filename.concat dir "j.qj" in
  let j = Journal.open_file path in
  let stored =
    List.map (fun d -> Journal.append j (mk ~digest:d ())) [ "aaaaaaaa"; "bbbbbbbb" ]
  in
  Journal.close j;
  (* bit 30 of the length word makes it ~1 GiB: implausible. *)
  flip_bit_in_file path ~off:(frame_offset stored 1 + 3) ~bit:6;
  let j2 = Journal.open_file path in
  check Alcotest.int "valid prefix only" 1 (Journal.length j2);
  Journal.close j2

let test_foreign_file_reset () =
  let dir = temp_dir () in
  let path = Filename.concat dir "j.qj" in
  let oc = open_out path in
  output_string oc "this is not a journal at all";
  close_out oc;
  let j = Journal.open_file path in
  check Alcotest.int "no records" 0 (Journal.length j);
  ignore (Journal.append j (mk ()));
  Journal.close j;
  let j2 = Journal.open_file path in
  check Alcotest.int "usable after reset" 1 (Journal.length j2);
  Journal.close j2

(* ---- env integration ---- *)

let test_env_sweeps_journal_on_open () =
  let dir = temp_dir () in
  let env = Env.on_disk dir in
  Alcotest.(check bool) "no journal yet" false (Env.has_journal env);
  let j = Env.journal env in
  ignore (Journal.append j (mk ()));
  ignore (Journal.append j (mk ~digest:"bbbbbbbb" ()));
  Env.close env;
  let path = Option.get (Env.journal_path env) in
  (* Tear the tail as a crash would, then reopen the *env*: the sweep
     happens at Env.on_disk, before anyone touches the journal. *)
  Unix.truncate path (file_length path - 2);
  let torn0 = counter "journal.torn_tails" in
  let env2 = Env.on_disk dir in
  check Alcotest.int "swept at env open" (torn0 + 1)
    (counter "journal.torn_tails");
  check Alcotest.int "valid prefix served" 1 (Journal.length (Env.journal env2));
  Env.close env2

(* ---- one record per top-level evaluation ---- *)

let with_journaling f =
  Journal.set_enabled true;
  Fun.protect ~finally:(fun () -> Journal.set_enabled false) f

let build_engine ~env =
  let coll = Trex_corpus.Gen.ieee ~doc_count:20 ~seed:17 () in
  Trex.build ~env ~alias:coll.alias (coll.docs ())

let test_one_record_per_query () =
  let env = Env.in_memory () in
  let engine = build_engine ~env in
  let j = Env.journal env in
  with_journaling (fun () ->
      let q = "//sec[about(., information retrieval)]" in
      ignore (Trex.query engine ~k:5 q);
      check Alcotest.int "one record for resilient eval" 1 (Journal.length j);
      let r = List.hd (Journal.records j) in
      Alcotest.(check bool) "label carried" true (r.Journal.label = q);
      check Alcotest.string "digest is of the label" (Journal.digest_of q)
        r.Journal.digest;
      (* Materialize both list kinds so race really runs two legs —
         still one journal record, because the legs are inner
         evaluations of one top-level query. *)
      ignore (Trex.materialize engine q);
      let tr = Trex.translate engine (Trex.parse engine q) in
      let sids = Trex_nexi.Translate.all_sids tr in
      let terms = Trex_nexi.Translate.all_terms tr in
      let n_before = Journal.length j in
      ignore
        (Trex_topk.Strategy.race (Trex.index engine)
           ~scoring:(Trex.scoring engine) ~sids ~terms ~k:5);
      check Alcotest.int "race writes one record" (n_before + 1)
        (Journal.length j))

let test_spans_summarized_when_tracing () =
  let env = Env.in_memory () in
  let engine = build_engine ~env in
  let j = Env.journal env in
  with_journaling (fun () ->
      Span.reset ();
      Span.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Span.set_enabled false)
        (fun () ->
          ignore (Trex.query engine ~k:5 "//sec[about(., information retrieval)]"));
      match Journal.records j with
      | [ r ] ->
          Alcotest.(check bool) "span summary present" true
            (List.exists
               (fun (p, _) ->
                 String.length p >= 5 && String.sub p 0 5 = "eval.")
               r.Journal.spans)
      | rs -> Alcotest.failf "expected one record, got %d" (List.length rs))

(* ---- the advisor eats the journal ---- *)

let test_journal_drives_advisor () =
  let dir = temp_dir () in
  let ir = "//sec[about(., information retrieval)]" in
  let mu = "//article[about(., music)]" in
  (* Serve a skewed mix with journaling on, then close the env. *)
  let env = Env.on_disk dir in
  let engine = build_engine ~env in
  with_journaling (fun () ->
      for _ = 1 to 9 do
        ignore (Trex.query engine ~k:5 ir)
      done;
      ignore (Trex.query engine ~k:5 mu));
  Env.close env;
  (* Reopen: the journal is the only survivor of the process "restart". *)
  let env2 = Env.on_disk dir in
  let records = Journal.records (Env.journal env2) in
  check Alcotest.int "ten journaled queries" 10 (List.length records);
  let wl = Workload.of_journal records in
  let freq_of nexi =
    match Workload.find wl (Journal.digest_of nexi) with
    | Some q -> q.Workload.frequency
    | None -> Alcotest.failf "query %s missing from observed workload" nexi
  in
  check (Alcotest.float 1e-9) "ir frequency" 0.9 (freq_of ir);
  check (Alcotest.float 1e-9) "music frequency" 0.1 (freq_of mu);
  (* Replay into a fresh autopilot and replan: the plan must support the
     journal's heavy hitter. *)
  let engine2 = Trex.attach ~env:env2 () in
  let pilot =
    Autopilot.create (Trex.index engine2) ~scoring:(Trex.scoring engine2)
      ~budget:max_int ~min_observations:10 ~drift_threshold:0.3 ()
  in
  check Alcotest.int "absorbed all" 10 (Autopilot.absorb_journal pilot records);
  (match Autopilot.maybe_replan pilot with
  | Autopilot.Replanned { plan; _ } ->
      Alcotest.(check bool) "heavy query indexed" true
        (List.assoc (Journal.digest_of ir) plan.Advisor.decisions
        <> Advisor.No_index)
  | v ->
      Alcotest.failf "expected Replanned, got %s"
        (Format.asprintf "%a" Autopilot.pp_verdict v));
  Env.close env2

let () =
  Alcotest.run "trex_journal"
    [
      ( "codec",
        [
          Alcotest.test_case "record json roundtrip" `Quick
            test_record_json_roundtrip;
          Alcotest.test_case "digest stable" `Quick test_digest_stable;
        ] );
      ( "durability",
        [
          Alcotest.test_case "append/reopen roundtrip" `Quick
            test_append_reopen_roundtrip;
          Alcotest.test_case "in-memory journal" `Quick test_in_memory_journal;
          Alcotest.test_case "torn tail matrix" `Quick test_torn_tail_matrix;
          Alcotest.test_case "torn header" `Quick test_torn_header;
          Alcotest.test_case "corrupt record skipped" `Quick
            test_corrupt_record_skipped;
          Alcotest.test_case "corrupt length truncates" `Quick
            test_corrupt_length_field_truncates;
          Alcotest.test_case "foreign file reset" `Quick test_foreign_file_reset;
          Alcotest.test_case "env sweeps journal on open" `Quick
            test_env_sweeps_journal_on_open;
        ] );
      ( "integration",
        [
          Alcotest.test_case "one record per query" `Quick
            test_one_record_per_query;
          Alcotest.test_case "spans summarized" `Quick
            test_spans_summarized_when_tracing;
          Alcotest.test_case "journal drives advisor" `Quick
            test_journal_drives_advisor;
        ] );
    ]
