(* Process-isolated shard worker suite.

   The contract under test (DESIGN.md §6): with every worker process
   healthy, supervised scatter-gather is answer-identical to the
   in-process coordinator and to the single-environment engine; a
   worker killed, wedged, stopped or crashed at any seeded point
   degrades the answer to a tagged sound partial naming the dead
   shard — never a wrong answer, never a dead coordinator; and after
   the supervisor restarts the worker, a follow-up query returns the
   full untagged answer. Escalation hands persistent flappers to the
   shard's circuit breaker, whose half-open probe respawns them.

   The supervisor execs its own binary in worker mode, so this
   executable dispatches to [Supervisor.worker_main] when invoked as
   [shard-worker] (see the bottom of the file).

   TREX_SOAK_SEEDS widens the seeded kill-matrix soak (CI runs 8). *)

module Env = Trex_storage.Env
module Breaker = Trex_resilience.Breaker
module Retry = Trex_resilience.Retry
module Metrics = Trex_obs.Metrics
module Span = Trex_obs.Span
module Journal = Trex_obs.Journal
module Shard = Trex_shard.Shard
module Supervisor = Trex_shard.Supervisor
module Wire = Trex_shard.Wire
module Strategy = Trex_topk.Strategy
module Answer = Trex_topk.Answer
module Types = Trex_invindex.Types

let check = Alcotest.check
let metric name = Metrics.value (Metrics.counter name)

let temp_dir () =
  let dir = Filename.temp_file "trex_supervisor" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let nexi = "//article//sec[about(., information retrieval)]"
let nexi2 = "//article//p[about(., database systems)]"

(* One corpus on disk as a 3-shard coordinator, plus a single-env
   in-memory baseline engine over the same documents. *)
let build_coordinator ~docs:doc_count ~seed =
  let coll = Trex_corpus.Gen.ieee ~doc_count ~seed () in
  let docs = List.of_seq (coll.docs ()) in
  let env = Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (List.to_seq docs) in
  let dir = temp_dir () in
  Shard.close (Shard.create ~dir ~shards:3 ~alias:coll.alias docs);
  (dir, engine)

let baseline engine ?method_ ~k q =
  (Trex.query engine ~k ?method_ q).Trex.strategy.Strategy.answers

(* Rank identity over (docid, endpos, length, score) — shard summaries
   number sids locally, so sid labels legitimately differ. *)
let answers_testable =
  let entry_sig (e : Answer.entry) =
    (e.element.Types.docid, e.element.Types.endpos, e.element.Types.length)
  in
  let equal a b =
    List.compare_lengths a b = 0
    && List.for_all2
         (fun (x : Answer.entry) (y : Answer.entry) ->
           entry_sig x = entry_sig y
           && Float.abs (x.Answer.score -. y.Answer.score) <= 1e-9)
         a b
  in
  Alcotest.testable Answer.pp equal

(* The exact answer over every document outside the lost shards. *)
let surviving_baseline engine infos ~lost ~k q =
  let full = baseline engine ~k:1_000_000 q in
  let ranges =
    List.filter_map
      (fun (i : Shard.shard_info) ->
        if List.mem i.Shard.name lost then Some (i.base, i.base + i.docs)
        else None)
      infos
  in
  let kept =
    List.filter
      (fun (e : Answer.entry) ->
        not
          (List.exists
             (fun (lo, hi) ->
               e.element.Types.docid >= lo && e.element.Types.docid < hi)
             ranges))
      full
  in
  Answer.top_k kept k

(* Tight timings so the suite exercises heartbeats and restarts in
   tens of milliseconds instead of seconds. *)
let fast_config =
  {
    Supervisor.heartbeat_interval_s = 0.05;
    heartbeat_timeout_s = 0.5;
    deadline_grace_ms = 150.0;
    max_restarts = 3;
    restart_policy =
      { Retry.default_policy with base_delay_ms = 5.0; max_delay_ms = 20.0 };
    connect_timeout_s = 1.0;
  }

let with_supervisor ?(config = fast_config) ?remote dir f =
  let s = Supervisor.create ~config ?remote dir in
  Fun.protect ~finally:(fun () -> Supervisor.close s) (fun () -> f s)

let require_healthy ?(timeout_s = 10.0) s =
  if not (Supervisor.await_healthy ~timeout_s s) then
    Alcotest.fail "workers did not become healthy in time"

(* ---- wire roundtrips ---- *)

let test_wire_roundtrip () =
  let q =
    Wire.Query
      {
        Wire.q_nexi = nexi;
        q_k = 7;
        q_method = Some Strategy.Ta_method;
        q_strict = true;
        q_floor = 0.123456789012345678;
        q_deadline_ms = Some 1234.5;
        q_page_budget = Some 99;
        q_scoring = Trex_scoring.Scorer.default;
        q_fault = Some "kill:pre-reply";
        q_trace = true;
        q_journal = true;
        q_trace_id = Some "deadbeef-7";
      }
  in
  (match Wire.decode_request (Wire.encode_request q) with
  | Wire.Query q' ->
      Alcotest.(check string) "nexi" nexi q'.Wire.q_nexi;
      Alcotest.(check int) "k" 7 q'.Wire.q_k;
      Alcotest.(check bool) "floor is bit-identical" true
        (q'.Wire.q_floor = 0.123456789012345678);
      Alcotest.(check (option string)) "fault" (Some "kill:pre-reply")
        q'.Wire.q_fault;
      Alcotest.(check bool) "trace flag" true q'.Wire.q_trace;
      Alcotest.(check bool) "journal flag" true q'.Wire.q_journal;
      Alcotest.(check (option string)) "trace id" (Some "deadbeef-7")
        q'.Wire.q_trace_id
  | _ -> Alcotest.fail "query did not roundtrip");
  let entry score =
    {
      Answer.element = { Types.sid = 3; docid = 5; endpos = 120; length = 17 };
      score;
    }
  in
  let leaf =
    {
      Span.name = "eval.ta";
      seconds = 0.002;
      start_s = 101.5;
      attrs = [ ("strategy", "ta") ];
      children = [];
    }
  in
  let root =
    {
      Span.name = "shard.query.shard-001";
      seconds = 0.003;
      start_s = 101.4;
      attrs = [ ("pid", "4242") ];
      children = [ leaf ];
    }
  in
  let wrecord =
    {
      Journal.qid = 0;
      ts = 1700000000.0;
      digest = "0badcafe";
      label = "shard:shard-001|" ^ nexi;
      strategy = "ta";
      k = 7;
      wall_ms = 3.25;
      pages_read = 11;
      cache_hit_ratio = 0.5;
      heap_ops = 17;
      degraded = false;
      fallbacks = 0;
      retried = false;
      sids = [ 2; 9 ];
      terms = [ "xml" ];
      spans = [ ("shard.query.shard-001", 3.0) ];
    }
  in
  let a =
    Wire.Answer
      {
        Wire.a_degraded = true;
        a_method = Some Strategy.Merge_method;
        a_entries_read = 42;
        a_elapsed_s = 0.0375;
        a_pages_used = 6;
        a_answers = [ entry 0.9876543210123456; entry 1e-300 ];
        a_spans = [ root ];
        a_counters = [ ("pager.physical_reads", 11); ("ta.heap_operations", 17) ];
        a_journal = Some wrecord;
      }
  in
  match Wire.decode_response (Wire.encode_response a) with
  | Wire.Answer a' ->
      Alcotest.(check bool) "degraded" true a'.Wire.a_degraded;
      Alcotest.(check int) "pages" 6 a'.Wire.a_pages_used;
      check answers_testable "entries bit-identical"
        [ entry 0.9876543210123456; entry 1e-300 ]
        a'.Wire.a_answers;
      (match a'.Wire.a_spans with
      | [ r ] ->
          Alcotest.(check string) "span root" "shard.query.shard-001" r.Span.name;
          Alcotest.(check (float 1e-12)) "span start survives" 101.4 r.Span.start_s;
          (match r.Span.children with
          | [ l ] -> Alcotest.(check string) "span child" "eval.ta" l.Span.name
          | _ -> Alcotest.fail "span children did not roundtrip")
      | _ -> Alcotest.fail "spans did not roundtrip");
      Alcotest.(check (list (pair string int)))
        "counters roundtrip"
        [ ("pager.physical_reads", 11); ("ta.heap_operations", 17) ]
        a'.Wire.a_counters;
      (match a'.Wire.a_journal with
      | Some r ->
          Alcotest.(check string) "journal strategy" "ta" r.Journal.strategy;
          Alcotest.(check int) "journal pages" 11 r.Journal.pages_read;
          Alcotest.(check (list int)) "journal sids" [ 2; 9 ] r.Journal.sids
      | None -> Alcotest.fail "journal record did not roundtrip")
  | _ -> Alcotest.fail "answer did not roundtrip"

(* A worker that predates wire versioning (no "wire" member in Hello)
   or speaks a different revision must be rejected at decode — the
   supervisor then treats it as a worker failure, so a mixed fleet
   fails loud instead of silently dropping telemetry. *)
let test_wire_version_mismatch () =
  let expect_mismatch json =
    match Wire.decode_response json with
    | exception Wire.Protocol_error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the mismatch: %s" e)
          true
          (String.length e >= 12 && String.sub e 0 12 = "wire version")
    | _ -> Alcotest.fail "stale Hello was accepted"
  in
  expect_mismatch {|{"hello":"shard-001","pid":42,"docs":7}|};
  expect_mismatch {|{"hello":"shard-001","pid":42,"docs":7,"wire":1}|};
  match
    Wire.decode_response
      (Printf.sprintf {|{"hello":"shard-001","pid":42,"docs":7,"wire":%d}|}
         Wire.version)
  with
  | Wire.Hello h -> Alcotest.(check int) "current version accepted" Wire.version h.h_wire
  | _ -> Alcotest.fail "current-version Hello rejected"

(* v3 serving messages: client query/answer, shed, drain. *)
let test_wire_client_roundtrip () =
  let cq =
    Wire.Client_query
      {
        Wire.c_nexi = nexi;
        c_k = 9;
        c_method = Some Strategy.Merge_method;
        c_strict = true;
        c_deadline_ms = Some 250.0;
        c_page_budget = Some 64;
      }
  in
  (match Wire.decode_request (Wire.encode_request cq) with
  | Wire.Client_query c ->
      Alcotest.(check string) "nexi" nexi c.Wire.c_nexi;
      Alcotest.(check int) "k" 9 c.Wire.c_k;
      Alcotest.(check bool) "strict" true c.Wire.c_strict;
      Alcotest.(check (option (float 1e-9))) "deadline" (Some 250.0)
        c.Wire.c_deadline_ms;
      Alcotest.(check (option int)) "page budget" (Some 64) c.Wire.c_page_budget
  | _ -> Alcotest.fail "client query did not roundtrip");
  let entry =
    {
      Answer.element = { Types.sid = 3; docid = 105; endpos = 120; length = 17 };
      score = 0.5000000000000012;
    }
  in
  let ca =
    Wire.Client_answer
      {
        Wire.ca_answers = [ entry ];
        ca_k = 9;
        ca_degraded = true;
        ca_tags = [ ("shard-001", "worker died mid-query") ];
        ca_method = Some "merge";
        ca_elapsed_s = 0.0125;
      }
  in
  (match Wire.decode_response (Wire.encode_response ca) with
  | Wire.Client_answer c ->
      check answers_testable "answers bit-identical" [ entry ] c.Wire.ca_answers;
      Alcotest.(check bool) "degraded" true c.Wire.ca_degraded;
      Alcotest.(check (list (pair string string)))
        "tags"
        [ ("shard-001", "worker died mid-query") ]
        c.Wire.ca_tags;
      Alcotest.(check (option string)) "method" (Some "merge") c.Wire.ca_method
  | _ -> Alcotest.fail "client answer did not roundtrip");
  (match
     Wire.decode_response
       (Wire.encode_response
          (Wire.Shed { retry_after_ms = 75.5; reason = "queue full" }))
   with
  | Wire.Shed { retry_after_ms; reason } ->
      Alcotest.(check (float 1e-9)) "retry_after" 75.5 retry_after_ms;
      Alcotest.(check string) "reason" "queue full" reason
  | _ -> Alcotest.fail "shed did not roundtrip");
  match Wire.decode_response (Wire.encode_response Wire.Drain) with
  | Wire.Drain -> ()
  | _ -> Alcotest.fail "drain did not roundtrip"

(* ---- healthy path: rank identity through worker processes ---- *)

let test_rank_identity () =
  let dir, engine = build_coordinator ~docs:24 ~seed:42 in
  with_supervisor dir @@ fun s ->
  require_healthy s;
  List.iter
    (fun q ->
      List.iter
        (fun k ->
          let r = Supervisor.query s ~k q in
          Alcotest.(check bool)
            (Printf.sprintf "untagged (k=%d)" k)
            false r.Shard.degraded;
          check answers_testable
            (Printf.sprintf "process scatter = single env (k=%d)" k)
            (baseline engine ~k q) r.Shard.answers)
        [ 1; 5; 10 ])
    [ nexi; nexi2 ];
  let r = Supervisor.query s ~k:5 nexi in
  Alcotest.(check int) "every shard reports" 3 (List.length r.Shard.reports);
  rm_rf dir

(* fanout=1 serializes the scatter into waves, so later waves receive a
   non-zero floor — results must not change. *)
let test_rank_identity_waved () =
  let dir, engine = build_coordinator ~docs:24 ~seed:43 in
  with_supervisor dir @@ fun s ->
  require_healthy s;
  let r = Supervisor.query s ~k:3 ~fanout:1 nexi in
  Alcotest.(check bool) "untagged" false r.Shard.degraded;
  check answers_testable "waved scatter = single env" (baseline engine ~k:3 nexi)
    r.Shard.answers;
  Alcotest.(check bool) "a later wave saw a floor" true
    (List.exists (fun (rep : Shard.shard_report) -> rep.r_floor > 0.0)
       r.Shard.reports);
  rm_rf dir

(* ---- the kill matrix ----

   Each case arms one fault, asserts the degraded query is a tagged
   sound partial (identical to the exact answer over the surviving
   shards), waits for the supervisor to restart the worker, and
   asserts the follow-up query is the full untagged answer. *)

let victim = "shard-001"

type matrix_case = {
  c_name : string;
  c_fault : string option;  (* armed on the victim's next query *)
  c_deadline_ms : float option;
  c_pre : Supervisor.t -> unit;  (* fired just before the query *)
  c_answers_full : bool;
      (* the victim's answer escapes before the fault fires *)
}

let nothing _ = ()

let matrix =
  [
    {
      c_name = "pre-scatter";
      c_fault = None;
      c_deadline_ms = None;
      c_pre =
        (fun s ->
          match Supervisor.worker_pid s victim with
          | Some pid -> Unix.kill pid Sys.sigkill
          | None -> Alcotest.fail "victim has no live worker");
      c_answers_full = false;
    };
    {
      c_name = "kill:mid-decode";
      c_fault = Some "kill:mid-decode";
      c_deadline_ms = None;
      c_pre = nothing;
      c_answers_full = false;
    };
    {
      c_name = "exit:mid-decode";
      c_fault = Some "exit:mid-decode";
      c_deadline_ms = None;
      c_pre = nothing;
      c_answers_full = false;
    };
    {
      c_name = "kill:pre-reply";
      c_fault = Some "kill:pre-reply";
      c_deadline_ms = None;
      c_pre = nothing;
      c_answers_full = false;
    };
    {
      c_name = "wedge:mid-decode";
      c_fault = Some "wedge:mid-decode";
      c_deadline_ms = Some 800.0;
      c_pre = nothing;
      c_answers_full = false;
    };
    {
      c_name = "stop:post-reply";
      c_fault = Some "stop:post-reply";
      c_deadline_ms = None;
      c_pre = nothing;
      c_answers_full = true;
    };
  ]

let run_matrix_case engine infos s case ~k ~q =
  (match case.c_fault with
  | Some f -> Supervisor.set_fault s ~shard:victim (Some f)
  | None -> ());
  case.c_pre s;
  let r = Supervisor.query s ~k ?deadline_ms:case.c_deadline_ms q in
  if case.c_answers_full then begin
    (* The fault fires after the answer frame: this query is whole;
       the damage surfaces through heartbeats below. *)
    Alcotest.(check bool) (case.c_name ^ ": untagged") false r.Shard.degraded;
    check answers_testable
      (case.c_name ^ ": full answer")
      (baseline engine ~k q) r.Shard.answers;
    (* Drive supervision until the heartbeat timeout reaps the stopped
       worker. *)
    let t0 = Unix.gettimeofday () in
    let before = metric "supervisor.heartbeat_timeouts" in
    while
      metric "supervisor.heartbeat_timeouts" = before
      && Unix.gettimeofday () -. t0 < 10.0
    do
      Supervisor.tick s;
      ignore (Unix.select [] [] [] 0.02)
    done;
    Alcotest.(check bool)
      (case.c_name ^ ": heartbeat timeout fired")
      true
      (metric "supervisor.heartbeat_timeouts" > before)
  end
  else begin
    Alcotest.(check bool) (case.c_name ^ ": degraded") true r.Shard.degraded;
    Alcotest.(check bool)
      (case.c_name ^ ": victim tagged")
      true
      (List.mem_assoc victim r.Shard.degraded_shards);
    check answers_testable
      (case.c_name ^ ": sound partial over survivors")
      (surviving_baseline engine infos ~lost:[ victim ] ~k q)
      r.Shard.answers
  end;
  (* Recovery: the worker restarts and the next query is whole. *)
  require_healthy s;
  let r2 = Supervisor.query s ~k q in
  Alcotest.(check bool) (case.c_name ^ ": recovered untagged") false
    r2.Shard.degraded;
  check answers_testable
    (case.c_name ^ ": recovered full answer")
    (baseline engine ~k q) r2.Shard.answers

let test_kill_matrix () =
  let dir, engine = build_coordinator ~docs:18 ~seed:77 in
  with_supervisor dir @@ fun s ->
  require_healthy s;
  let infos = Supervisor.shards s in
  let spawns0 = metric "supervisor.spawns" in
  let restarts0 = metric "supervisor.restarts" in
  List.iter (fun case -> run_matrix_case engine infos s case ~k:5 ~q:nexi) matrix;
  Alcotest.(check bool) "every case respawned a worker" true
    (metric "supervisor.spawns" - spawns0 >= List.length matrix);
  Alcotest.(check bool) "restarts were counted" true
    (metric "supervisor.restarts" - restarts0 >= List.length matrix);
  rm_rf dir

(* ---- escalation to the breaker, recovery via half-open probe ---- *)

let test_escalation_and_probe () =
  let dir, engine = build_coordinator ~docs:12 ~seed:99 in
  let config = { fast_config with Supervisor.max_restarts = 1 } in
  with_supervisor ~config dir @@ fun s ->
  require_healthy s;
  let b = Supervisor.breaker s victim in
  let esc0 = metric "supervisor.escalations" in
  (* Two deaths with no successful answer between exhaust the restart
     budget (max_restarts = 1) and trip the breaker. *)
  let rec flap n =
    if Breaker.state b <> Breaker.Open then begin
      if n > 40 then Alcotest.fail "victim never escalated";
      Supervisor.set_fault s ~shard:victim (Some "kill:mid-decode");
      ignore (Supervisor.query s ~k:3 nexi);
      (* Let the backoff elapse and the worker respawn so the next
         fault has a live target. *)
      ignore (Supervisor.await_healthy ~timeout_s:2.0 s);
      flap (n + 1)
    end
  in
  flap 0;
  Alcotest.(check bool) "escalation was counted" true
    (metric "supervisor.escalations" > esc0);
  (* While escalated: queries degrade to tagged sound partials. *)
  let r = Supervisor.query s ~k:3 nexi in
  Alcotest.(check bool) "degraded while escalated" true r.Shard.degraded;
  check answers_testable "escalated partial is sound"
    (surviving_baseline engine (Supervisor.shards s) ~lost:[ victim ] ~k:3 nexi)
    r.Shard.answers;
  (* Cooldown over: the next tick admits a respawn as the half-open
     probe; its successful handshake closes the circuit. *)
  Breaker.set_cooldown b 0.0;
  require_healthy s;
  Alcotest.(check bool) "probe closed the breaker" true
    (Breaker.state b = Breaker.Closed);
  let r2 = Supervisor.query s ~k:3 nexi in
  Alcotest.(check bool) "recovered untagged" false r2.Shard.degraded;
  check answers_testable "recovered full answer" (baseline engine ~k:3 nexi)
    r2.Shard.answers;
  rm_rf dir

(* Two flapping workers escalate independently and neither starves the
   other's half-open probe slot: both breakers close once their own
   probe handshakes. *)
let test_probe_storm_two_workers () =
  let dir, engine = build_coordinator ~docs:12 ~seed:101 in
  let config = { fast_config with Supervisor.max_restarts = 0 } in
  with_supervisor ~config dir @@ fun s ->
  require_healthy s;
  let victims = [ "shard-000"; "shard-002" ] in
  List.iter
    (fun v -> Supervisor.set_fault s ~shard:v (Some "kill:mid-decode"))
    victims;
  (* max_restarts = 0: the first death escalates immediately — both
     victims trip their breakers in the same query. *)
  let r = Supervisor.query s ~k:3 nexi in
  Alcotest.(check bool) "both victims tagged" true
    (List.for_all (fun v -> List.mem_assoc v r.Shard.degraded_shards) victims);
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " breaker open") true
        (Breaker.state (Supervisor.breaker s v) = Breaker.Open))
    victims;
  check answers_testable "double-loss partial is sound"
    (surviving_baseline engine (Supervisor.shards s) ~lost:victims ~k:3 nexi)
    r.Shard.answers;
  (* Clear both cooldowns; both probes must be admitted — one worker's
     probe slot is per-breaker, not global. *)
  List.iter (fun v -> Breaker.set_cooldown (Supervisor.breaker s v) 0.0) victims;
  require_healthy s;
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " breaker closed by its own probe") true
        (Breaker.state (Supervisor.breaker s v) = Breaker.Closed))
    victims;
  let r2 = Supervisor.query s ~k:3 nexi in
  Alcotest.(check bool) "recovered untagged" false r2.Shard.degraded;
  check answers_testable "recovered full answer" (baseline engine ~k:3 nexi)
    r2.Shard.answers;
  rm_rf dir

(* ---- stale worker artifacts are swept at coordinator open ---- *)

let test_stale_artifact_sweep () =
  let dir, _engine = build_coordinator ~docs:12 ~seed:7 in
  (* A dead-for-sure pid: a reaped child. *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let sdir = Filename.concat dir "shard-000" in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  write (Filename.concat sdir "worker.pid") (string_of_int dead_pid ^ "\n");
  write (Filename.concat (Filename.concat dir "shard-001") "worker.pid") "garbage\n";
  write (Filename.concat sdir "worker.sock") "";
  (* A pid file naming a live process must be left alone. *)
  let live =
    Filename.concat (Filename.concat dir "shard-002") "worker.pid"
  in
  write live (string_of_int (Unix.getpid ()) ^ "\n");
  let before = metric "supervisor.stale_sweeps" in
  let t = Shard.open_ dir in
  Shard.close t;
  check Alcotest.int "three stale artifacts swept" 3
    (metric "supervisor.stale_sweeps" - before);
  Alcotest.(check bool) "dead pid file removed" false
    (Sys.file_exists (Filename.concat sdir "worker.pid"));
  Alcotest.(check bool) "socket path removed" false
    (Sys.file_exists (Filename.concat sdir "worker.sock"));
  Alcotest.(check bool) "live pid file kept" true (Sys.file_exists live);
  Sys.remove live;
  (* The supervisor leaves a live worker.pid behind only on unclean
     death; a clean close removes it. *)
  with_supervisor dir (fun s ->
      require_healthy s;
      Alcotest.(check bool) "worker wrote its pid file" true
        (Sys.file_exists (Filename.concat sdir "worker.pid")));
  let t0 = Unix.gettimeofday () in
  while
    Sys.file_exists (Filename.concat sdir "worker.pid")
    && Unix.gettimeofday () -. t0 < 5.0
  do
    ignore (Unix.select [] [] [] 0.02)
  done;
  Alcotest.(check bool) "clean shutdown removed the pid file" false
    (Sys.file_exists (Filename.concat sdir "worker.pid"));
  rm_rf dir

(* ---- cross-process telemetry harvest ---- *)

let with_telemetry f =
  Span.set_enabled true;
  Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Journal.set_enabled false;
      Span.reset ())
    f

let find_supervisor_root () =
  match
    List.find_opt
      (fun (s : Span.t) -> s.Span.name = "supervisor.query")
      (Span.roots ())
  with
  | Some s -> s
  | None -> Alcotest.fail "no supervisor.query span was recorded"

(* The acceptance bar for the harvest: the merged registry's counters
   for the process path equal the in-process path for the same query,
   per-shard worker.<shard>.* views exist, the merged span tree carries
   worker-side spans under supervisor.worker, and the coordinator
   journals one record per supervised query with per-shard breakdown.
   Two levellers make the comparison exact: fanout:1 serializes the
   scatter so the floor evolves exactly as the in-process coordinator's
   sequential loop (concurrent waves see weaker floors and legitimately
   read more), and a warm-up query runs on the in-process path first —
   workers arrive warm because the Hello handshake's [Index.stats] scan
   pages the shard in, so the cold-cache miss/hit split would otherwise
   differ while the work stays identical. *)
let test_telemetry_merge () =
  let dir, _engine = build_coordinator ~docs:24 ~seed:55 in
  let tracked =
    [
      "pager.physical_reads";
      "pager.cache_hits";
      "era.positions_scanned";
      "era.elements_emitted";
      "ta.heap_operations";
      "strategy.runs.ERA";
    ]
  in
  let deltas f =
    let before = List.map metric tracked in
    let r = f () in
    (r, List.map2 (fun n b -> metric n - b) tracked before)
  in
  let t = Shard.open_ dir in
  ignore (Shard.query t ~k:5 nexi) (* warm the page cache *);
  let r_in, in_deltas = deltas (fun () -> Shard.query t ~k:5 nexi) in
  Shard.close t;
  Alcotest.(check bool) "in-process work is visible (hits > 0)" true
    (List.nth in_deltas 1 > 0);
  with_telemetry @@ fun () ->
  with_supervisor dir (fun s ->
      require_healthy s;
      Span.reset ();
      let wb = metric "worker.shard-000.pager.cache_hits" in
      let r, proc_deltas =
        deltas (fun () -> Supervisor.query s ~k:5 ~fanout:1 nexi)
      in
      Alcotest.(check bool) "untagged" false r.Shard.degraded;
      check answers_testable "answers identical across paths"
        r_in.Shard.answers r.Shard.answers;
      List.iteri
        (fun i n ->
          check Alcotest.int
            (n ^ ": merged process-path delta = in-process delta")
            (List.nth in_deltas i) (List.nth proc_deltas i))
        tracked;
      Alcotest.(check bool) "per-shard worker.* view absorbed" true
        (metric "worker.shard-000.pager.cache_hits" > wb);
      (* One merged tree: every worker's spans grafted under its
         supervisor.worker span. *)
      let root = find_supervisor_root () in
      let workers =
        List.filter
          (fun (c : Span.t) -> c.Span.name = "supervisor.worker")
          root.Span.children
      in
      Alcotest.(check int) "one supervisor.worker span per shard" 3
        (List.length workers);
      List.iter
        (fun (w : Span.t) ->
          Alcotest.(check bool)
            "worker-side shard.query.* span grafted underneath" true
            (List.exists
               (fun (c : Span.t) ->
                 String.starts_with ~prefix:"shard.query." c.Span.name)
               w.Span.children))
        workers);
  (* The coordinator journal saw the supervised query. *)
  let j = Journal.open_file (Filename.concat dir "query_journal.qj") in
  let recs = Journal.records j in
  Journal.close j;
  (match recs with
  | [ r ] ->
      Alcotest.(check string) "strategy" "supervised" r.Journal.strategy;
      Alcotest.(check string) "label is the NEXI text" nexi r.Journal.label;
      Alcotest.(check bool) "untagged" false r.Journal.degraded;
      (* Workers run warm (Hello's stats scan pages the shard in), so
         physical reads are 0; the absorbed cache hits still surface in
         the record's hit ratio — the fleet's pager activity was
         journaled, not lost. *)
      Alcotest.(check bool) "fleet pager activity absorbed" true
        (r.Journal.cache_hit_ratio > 0.0);
      Alcotest.(check bool) "terms harvested from workers" true
        (r.Journal.terms <> []);
      List.iter
        (fun shard ->
          Alcotest.(check bool)
            ("per-shard breakdown entry for " ^ shard)
            true
            (List.mem_assoc ("shard:" ^ shard) r.Journal.spans))
        [ "shard-000"; "shard-001"; "shard-002" ];
      Alcotest.(check bool) "span summary journaled" true
        (List.mem_assoc "supervisor.query" r.Journal.spans)
  | recs ->
      Alcotest.failf "expected exactly one coordinator record, got %d"
        (List.length recs));
  rm_rf dir

(* Worker death mid-query: telemetry degrades — the merged tree keeps a
   tagged, child-less span for the lost worker, the registry absorbs
   nothing from it, and the journal record marks the shard lost. *)
let test_degraded_telemetry () =
  let dir, engine = build_coordinator ~docs:18 ~seed:66 in
  with_telemetry @@ fun () ->
  with_supervisor dir (fun s ->
      require_healthy s;
      Supervisor.set_fault s ~shard:victim (Some "kill:pre-reply");
      Span.reset ();
      let vb = metric ("worker." ^ victim ^ ".pager.cache_hits") in
      let r = Supervisor.query s ~k:5 nexi in
      Alcotest.(check bool) "degraded" true r.Shard.degraded;
      check answers_testable "sound partial over survivors"
        (surviving_baseline engine (Supervisor.shards s) ~lost:[ victim ] ~k:5
           nexi)
        r.Shard.answers;
      Alcotest.(check int) "dead worker poisoned no counters" vb
        (metric ("worker." ^ victim ^ ".pager.cache_hits"));
      let root = find_supervisor_root () in
      let workers =
        List.filter
          (fun (c : Span.t) -> c.Span.name = "supervisor.worker")
          root.Span.children
      in
      Alcotest.(check int) "every shard represented in the tree" 3
        (List.length workers);
      match
        List.filter
          (fun (w : Span.t) -> List.mem_assoc "lost" w.Span.attrs)
          workers
      with
      | [ lost ] ->
          Alcotest.(check (option string))
            "lost span names the victim" (Some victim)
            (List.assoc_opt "worker" lost.Span.attrs);
          Alcotest.(check int) "lost span has no harvested children" 0
            (List.length lost.Span.children)
      | l -> Alcotest.failf "expected one lost-worker span, got %d" (List.length l));
  let j = Journal.open_file (Filename.concat dir "query_journal.qj") in
  let recs = Journal.records j in
  Journal.close j;
  (match recs with
  | [ r ] ->
      Alcotest.(check bool) "record tagged degraded" true r.Journal.degraded;
      Alcotest.(check bool) "lost shard marked in breakdown" true
        (List.mem_assoc ("lost:" ^ victim) r.Journal.spans);
      Alcotest.(check bool) "survivors still broken down" true
        (List.mem_assoc "shard:shard-000" r.Journal.spans)
  | recs ->
      Alcotest.failf "expected exactly one coordinator record, got %d"
        (List.length recs));
  rm_rf dir

(* ---- heartbeat sequence integrity ----

   A Pong carrying a stale sequence number (the signature of a
   pre-restart worker incarnation) must satisfy neither the
   outstanding Ping nor the liveness clock: the heartbeat timeout
   still fires and the worker is restarted. *)
let test_stale_pong_is_not_a_heartbeat () =
  let dir, engine = build_coordinator ~docs:12 ~seed:88 in
  with_supervisor dir @@ fun s ->
  require_healthy s;
  Supervisor.set_fault s ~shard:victim (Some "stale-pong:ping");
  let r = Supervisor.query s ~k:3 nexi in
  Alcotest.(check bool) "arming query is whole" false r.Shard.degraded;
  let before = metric "supervisor.heartbeat_timeouts" in
  let t0 = Unix.gettimeofday () in
  while
    metric "supervisor.heartbeat_timeouts" = before
    && Unix.gettimeofday () -. t0 < 10.0
  do
    Supervisor.tick s;
    ignore (Unix.select [] [] [] 0.01)
  done;
  Alcotest.(check bool) "stale pong did not satisfy the ping" true
    (metric "supervisor.heartbeat_timeouts" > before);
  require_healthy s;
  let r2 = Supervisor.query s ~k:3 nexi in
  Alcotest.(check bool) "recovered untagged" false r2.Shard.degraded;
  check answers_testable "recovered full answer" (baseline engine ~k:3 nexi)
    r2.Shard.answers;
  rm_rf dir

(* ---- worker health report (what `shard health --workers` prints) ---- *)

let test_worker_health_report () =
  let dir, _engine = build_coordinator ~docs:12 ~seed:21 in
  with_supervisor dir @@ fun s ->
  require_healthy s;
  let rows = Supervisor.health s in
  Alcotest.(check int) "one row per shard" 3 (List.length rows);
  List.iter
    (fun h ->
      Alcotest.(check bool) (h.Supervisor.w_shard ^ " ready") true
        (h.Supervisor.w_state = Supervisor.Ready);
      Alcotest.(check bool) "live pid reported" true (h.Supervisor.w_pid <> None);
      Alcotest.(check int) "no lifetime restarts yet" 0
        h.Supervisor.w_total_restarts;
      Alcotest.(check bool) "heartbeat age known" true
        (h.Supervisor.w_beat_age_s <> None))
    rows;
  (* One kill: after recovery and a successful answer, the consecutive
     counter resets but the lifetime count must survive. *)
  Supervisor.set_fault s ~shard:victim (Some "kill:mid-decode");
  ignore (Supervisor.query s ~k:3 nexi);
  require_healthy s;
  ignore (Supervisor.query s ~k:3 nexi);
  let h =
    List.find (fun h -> h.Supervisor.w_shard = victim) (Supervisor.health s)
  in
  Alcotest.(check int) "consecutive restarts reset by success" 0
    h.Supervisor.w_restarts;
  Alcotest.(check bool) "lifetime restart count retained" true
    (h.Supervisor.w_total_restarts >= 1);
  Alcotest.(check bool) "restarted worker has a live pid" true
    (h.Supervisor.w_pid <> None);
  let untouched =
    List.filter (fun h -> h.Supervisor.w_shard <> victim) (Supervisor.health s)
  in
  List.iter
    (fun h ->
      Alcotest.(check int)
        (h.Supervisor.w_shard ^ " kept a clean lifetime count")
        0 h.Supervisor.w_total_restarts)
    untouched;
  rm_rf dir

(* ---- seeded kill-matrix soak ---- *)

let soak_seeds () =
  match Sys.getenv_opt "TREX_SOAK_SEEDS" with
  | Some s -> max 1 (int_of_string s)
  | None -> 3

let test_soak () =
  let dir, engine = build_coordinator ~docs:18 ~seed:1234 in
  with_supervisor dir @@ fun s ->
  require_healthy s;
  let infos = Supervisor.shards s in
  let queries = [ nexi; nexi2 ] in
  let exact = ref 0 and degraded = ref 0 in
  for seed = 1 to soak_seeds () do
    let case = List.nth matrix (seed mod List.length matrix) in
    let q = List.nth queries (seed mod List.length queries) in
    let k = 3 + (seed mod 5) in
    run_matrix_case engine infos s case ~k ~q;
    if case.c_answers_full then incr exact else incr degraded
  done;
  Printf.printf "supervisor soak: %d degraded cases, %d wedge cases\n%!" !degraded
    !exact;
  Alcotest.(check bool) "soak exercised degraded cases" true (!degraded > 0);
  rm_rf dir

(* ---- remote (TCP) workers ---- *)

(* Fork/exec this binary as a long-lived listen worker on an ephemeral
   port, and read the "LISTENING host:port" announcement off its
   stderr. *)
let spawn_listen_worker ~dir ~shard =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      Unix.dup2 w Unix.stderr;
      if w <> Unix.stderr then Unix.close w;
      let prog = Sys.executable_name in
      let argv =
        [| prog; "shard-worker"; "--dir"; dir; "--shard"; shard;
           "--listen"; "127.0.0.1:0" |]
      in
      (try Unix.execv prog argv with _ -> ());
      exit 127
  | pid ->
      Unix.close w;
      let buf = Buffer.create 64 in
      let chunk = Bytes.create 256 in
      let rec find () =
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i ->
            let line = String.sub s 0 i in
            Buffer.clear buf;
            Buffer.add_string buf
              (String.sub s (i + 1) (String.length s - i - 1));
            if String.length line > 10 && String.sub line 0 10 = "LISTENING "
            then String.sub line 10 (String.length line - 10)
            else find ()
        | None -> (
            match Unix.read r chunk 0 (Bytes.length chunk) with
            | 0 -> Alcotest.fail "listen worker died before announcing its port"
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                find ())
      in
      let addr = find () in
      (pid, r, addr)

let reap_listen_worker (pid, rfd, _addr) =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  try Unix.close rfd with Unix.Unix_error _ -> ()

(* One shard served by a remote TCP worker, the rest by local
   socketpair children: healthy scatter is rank-identical to the
   single-env baseline (so the telemetry-era protocol, floor filter and
   base offsets all survive the network hop), and SIGKILLing the remote
   process mid-query degrades to a tagged sound partial that keeps
   holding on subsequent queries — reconnects are refused, backoff and
   breaker escalation own the socket, the coordinator never wedges. *)
let test_remote_worker_identity_and_kill () =
  let dir, engine = build_coordinator ~docs:24 ~seed:11 in
  let infos = Shard.load_map dir in
  let rname = (List.hd infos).Shard.name in
  let handle = spawn_listen_worker ~dir ~shard:rname in
  let _, _, addr = handle in
  Fun.protect
    ~finally:(fun () ->
      reap_listen_worker handle;
      rm_rf dir)
  @@ fun () ->
  with_supervisor ~remote:[ (rname, addr) ] dir @@ fun s ->
  require_healthy s;
  let r = Supervisor.query s ~k:10 nexi in
  Alcotest.(check bool) "healthy remote scatter untagged" false r.Shard.degraded;
  Alcotest.(check int) "every shard reports" 3 (List.length r.Shard.reports);
  check answers_testable "remote scatter = single env" (baseline engine ~k:10 nexi)
    r.Shard.answers;
  (* Kill the remote worker mid-query via the armed fault (the fault
     rides the query and SIGKILLs before evaluating). *)
  Supervisor.set_fault s ~shard:rname (Some "kill:mid-decode");
  let r = Supervisor.query s ~k:10 nexi in
  Alcotest.(check bool) "kill mid-query degrades" true r.Shard.degraded;
  Alcotest.(check bool)
    "tag names the remote shard" true
    (List.mem_assoc rname r.Shard.degraded_shards);
  check answers_testable "partial = surviving shards exactly"
    (surviving_baseline engine infos ~lost:[ rname ] ~k:10 nexi)
    r.Shard.answers;
  (* The listener is gone for good: reconnects are refused, so further
     queries stay tagged sound partials (no wedge, no wrong answers). *)
  let r = Supervisor.query s ~k:5 nexi2 in
  Alcotest.(check bool) "still degraded while unreachable" true r.Shard.degraded;
  check answers_testable "still the surviving-shard answer"
    (surviving_baseline engine infos ~lost:[ rname ] ~k:5 nexi2)
    r.Shard.answers

(* A remote worker outlives its coordinator: when one supervisor hangs
   up, the listener returns to accept and serves the next one the full
   untagged answer. *)
let test_remote_worker_survives_coordinator () =
  let dir, engine = build_coordinator ~docs:18 ~seed:13 in
  let infos = Shard.load_map dir in
  let rname = (List.hd infos).Shard.name in
  let handle = spawn_listen_worker ~dir ~shard:rname in
  let _, _, addr = handle in
  Fun.protect
    ~finally:(fun () ->
      reap_listen_worker handle;
      rm_rf dir)
  @@ fun () ->
  let run () =
    with_supervisor ~remote:[ (rname, addr) ] dir @@ fun s ->
    require_healthy s;
    let r = Supervisor.query s ~k:7 nexi in
    Alcotest.(check bool) "untagged" false r.Shard.degraded;
    check answers_testable "rank identity" (baseline engine ~k:7 nexi)
      r.Shard.answers
  in
  run ();
  (* Second coordinator, same listener process. *)
  run ()

let () =
  (* The supervisor execs this very binary as its worker: dispatch
     before Alcotest ever sees argv. *)
  (match Array.to_list Sys.argv with
  | _ :: "shard-worker" :: rest ->
      let rec get_opt key = function
        | k :: v :: _ when k = key -> Some v
        | _ :: tl -> get_opt key tl
        | [] -> None
      in
      let get key =
        match get_opt key rest with
        | Some v -> v
        | None ->
            prerr_endline ("shard-worker: missing " ^ key);
            exit 2
      in
      let dir = get "--dir" and shard = get "--shard" in
      (match get_opt "--listen" rest with
      | Some addr -> Supervisor.worker_listen ~dir ~shard ~addr ()
      | None -> Supervisor.worker_main ~dir ~shard ())
  | _ -> ());
  Alcotest.run "trex_supervisor"
    [
      ( "wire",
        [
          Alcotest.test_case "message roundtrips" `Quick test_wire_roundtrip;
          Alcotest.test_case "version mismatch fails loud" `Quick
            test_wire_version_mismatch;
          Alcotest.test_case "client message roundtrips" `Quick
            test_wire_client_roundtrip;
        ] );
      ( "identity",
        [
          Alcotest.test_case "rank-identical through worker processes" `Quick
            test_rank_identity;
          Alcotest.test_case "rank-identical with waved scatter (floor)" `Quick
            test_rank_identity_waved;
        ] );
      ( "kill-matrix",
        [ Alcotest.test_case "all seeded kill points" `Quick test_kill_matrix ] );
      ( "escalation",
        [
          Alcotest.test_case "restart budget trips the breaker; probe recovers"
            `Quick test_escalation_and_probe;
          Alcotest.test_case "two flappers keep independent probe slots" `Quick
            test_probe_storm_two_workers;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "harvest merges spans, counters, journal" `Quick
            test_telemetry_merge;
          Alcotest.test_case "worker death degrades telemetry, never poisons"
            `Quick test_degraded_telemetry;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "stale pong is not a heartbeat" `Quick
            test_stale_pong_is_not_a_heartbeat;
        ] );
      ( "health",
        [
          Alcotest.test_case "per-worker restart counts, pid, beat age" `Quick
            test_worker_health_report;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "stale worker artifacts swept at open" `Quick
            test_stale_artifact_sweep;
        ] );
      ( "remote",
        [
          Alcotest.test_case "TCP worker: rank identity, kill, sound partial"
            `Quick test_remote_worker_identity_and_kill;
          Alcotest.test_case "listener outlives its coordinators" `Quick
            test_remote_worker_survives_coordinator;
        ] );
      ("soak", [ Alcotest.test_case "seeded kill soak" `Slow test_soak ]);
    ]
