(* Tests for trex_selfman: workload validation, greedy vs optimal index
   selection, the 2-approximation guarantee, and applying plans. *)

module Workload = Trex_selfman.Workload
module Cost = Trex_selfman.Cost
module Advisor = Trex_selfman.Advisor
module Rpl = Trex_topk.Rpl
module Ta = Trex_topk.Ta
module Merge = Trex_topk.Merge
module Env = Trex_storage.Env
module Summary = Trex_summary.Summary
module Index = Trex_invindex.Index
module Prng = Trex_util.Prng

let check = Alcotest.check

(* ---- workload ---- *)

let q id f = { Workload.id; sids = [ 1 ]; terms = [ "t" ]; k = 10; frequency = f }

let test_workload_valid () =
  let w = Workload.create [ q "a" 0.25; q "b" 0.75 ] in
  check Alcotest.int "two queries" 2 (List.length (Workload.queries w));
  Alcotest.(check bool) "find" true (Workload.find w "a" <> None);
  Alcotest.(check bool) "find missing" true (Workload.find w "zz" = None)

let test_workload_invalid () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true (raises (fun () -> Workload.create []));
  Alcotest.(check bool) "bad sum" true
    (raises (fun () -> Workload.create [ q "a" 0.5; q "b" 0.1 ]));
  Alcotest.(check bool) "duplicate ids" true
    (raises (fun () -> Workload.create [ q "a" 0.5; q "a" 0.5 ]));
  Alcotest.(check bool) "zero frequency" true
    (raises (fun () -> Workload.create [ q "a" 0.0; q "b" 1.0 ]));
  Alcotest.(check bool) "bad k" true
    (raises (fun () ->
         Workload.create [ { (q "a" 1.0) with Workload.k = 0 } ]))

let test_workload_unweighted () =
  let w = Workload.of_unweighted [ ("a", [ 1 ], [ "t" ], 5); ("b", [ 2 ], [ "u" ], 5) ] in
  List.iter
    (fun (qq : Workload.query) ->
      check (Alcotest.float 1e-9) "uniform" 0.5 qq.frequency)
    (Workload.queries w)

(* ---- synthetic profiles ---- *)

let profile ~id ~f ~era ~merge ~ta ~rpl ~erpl =
  Cost.make ~id ~frequency:f ~time_era:era ~time_merge:merge ~time_ta:ta
    ~rpl_lists:rpl ~erpl_lists:erpl

let test_savings () =
  let p = profile ~id:"q" ~f:0.5 ~era:10.0 ~merge:2.0 ~ta:4.0 ~rpl:[] ~erpl:[] in
  check (Alcotest.float 1e-9) "merge saving" 4.0 (Cost.saving_merge p);
  check (Alcotest.float 1e-9) "ta saving" 3.0 (Cost.saving_ta p);
  (* A method slower than ERA saves nothing. *)
  let p2 = profile ~id:"q2" ~f:1.0 ~era:1.0 ~merge:5.0 ~ta:0.5 ~rpl:[] ~erpl:[] in
  check (Alcotest.float 1e-9) "negative clipped" 0.0 (Cost.saving_merge p2)

(* ---- advisor on hand-built instances ---- *)

let two_queries =
  [
    (* Q1: huge merge win, costs 100 bytes of ERPLs. *)
    profile ~id:"q1" ~f:0.5 ~era:10.0 ~merge:1.0 ~ta:8.0
      ~rpl:[ ("t1", 1, 100) ]
      ~erpl:[ ("t1", 1, 100) ];
    (* Q2: moderate TA win, costs 50 bytes of RPLs. *)
    profile ~id:"q2" ~f:0.5 ~era:6.0 ~merge:5.5 ~ta:2.0
      ~rpl:[ ("t2", 2, 50) ]
      ~erpl:[ ("t2", 2, 50) ];
  ]

let decision plan id = List.assoc id plan.Advisor.decisions

let test_greedy_fits_budget () =
  let plan = Advisor.greedy ~budget:120 two_queries in
  Alcotest.(check bool) "within budget" true (plan.bytes_used <= 120);
  (* 120 bytes cannot hold both (150); the ratio favours q2's TA
     (0.5*4/50 = 0.04) over q1's Merge (0.5*9/100 = 0.045)... q1 wins,
     then q2 no longer fits. *)
  check Alcotest.string "q1 gets ERPL" "ERPL (Merge)"
    (Advisor.choice_to_string (decision plan "q1"));
  check Alcotest.string "q2 unsupported" "none"
    (Advisor.choice_to_string (decision plan "q2"))

let test_greedy_unlimited_budget_takes_best_of_each () =
  let plan = Advisor.greedy ~budget:1_000_000 two_queries in
  check Alcotest.string "q1 merge" "ERPL (Merge)"
    (Advisor.choice_to_string (decision plan "q1"));
  check Alcotest.string "q2 ta" "RPL (TA)"
    (Advisor.choice_to_string (decision plan "q2"));
  check (Alcotest.float 1e-9) "saving" (0.5 *. 9.0 +. 0.5 *. 4.0)
    plan.expected_saving

let test_zero_budget () =
  let plan = Advisor.greedy ~budget:0 two_queries in
  check Alcotest.int "nothing stored" 0 plan.bytes_used;
  check (Alcotest.float 0.0) "no saving" 0.0 plan.expected_saving;
  let opt = Advisor.branch_and_bound ~budget:0 two_queries in
  check (Alcotest.float 0.0) "optimal also zero" 0.0 opt.expected_saving

let test_shared_lists_counted_once () =
  (* Both queries need the same (term, sid) ERPL: storing it once serves
     both, so the union is 100 bytes, not 200. *)
  let shared =
    [
      profile ~id:"a" ~f:0.5 ~era:5.0 ~merge:1.0 ~ta:5.0
        ~rpl:[] ~erpl:[ ("shared", 1, 100) ];
      profile ~id:"b" ~f:0.5 ~era:5.0 ~merge:1.0 ~ta:5.0
        ~rpl:[] ~erpl:[ ("shared", 1, 100) ];
    ]
  in
  let plan = Advisor.greedy ~budget:100 shared in
  check Alcotest.int "union bytes" 100 plan.bytes_used;
  check (Alcotest.float 1e-9) "both supported" 4.0 plan.expected_saving;
  let opt = Advisor.branch_and_bound ~budget:100 shared in
  check (Alcotest.float 1e-9) "optimal agrees" 4.0 opt.expected_saving

let test_branch_and_bound_beats_greedy_when_ratio_misleads () =
  (* Classic knapsack trap: greedy's best ratio choice blocks the
     optimal pair. *)
  let trap =
    [
      profile ~id:"big" ~f:0.4 ~era:11.0 ~merge:1.0 ~ta:11.0
        ~rpl:[] ~erpl:[ ("t", 1, 60) ];
      profile ~id:"s1" ~f:0.3 ~era:11.0 ~merge:1.0 ~ta:11.0
        ~rpl:[] ~erpl:[ ("u", 2, 50) ];
      profile ~id:"s2" ~f:0.3 ~era:11.0 ~merge:1.0 ~ta:11.0
        ~rpl:[] ~erpl:[ ("v", 3, 50) ];
    ]
  in
  (* savings: big = 4.0 (ratio .0667), s1 = s2 = 3.0 (ratio .06).
     budget 100: greedy takes big (4.0), optimal takes s1+s2 (6.0). *)
  let g = Advisor.greedy ~budget:100 trap in
  let o = Advisor.branch_and_bound ~budget:100 trap in
  check (Alcotest.float 1e-9) "greedy" 4.0 g.expected_saving;
  check (Alcotest.float 1e-9) "optimal" 6.0 o.expected_saving;
  Alcotest.(check bool) "2-approx holds here" true
    (o.expected_saving <= 2.0 *. g.expected_saving +. 1e-9)

(* Brute force reference for small instances. *)
let brute_force ~budget profiles =
  let rec go acc = function
    | [] -> [ List.rev acc ]
    | (p : Cost.profile) :: rest ->
        List.concat_map
          (fun c -> go ((p.id, c) :: acc) rest)
          [ Advisor.No_index; Advisor.Use_erpl; Advisor.Use_rpl ]
  in
  let assignments = go [] profiles in
  List.fold_left
    (fun best decisions ->
      if Advisor.plan_bytes profiles decisions > budget then best
      else
        let saving = Advisor.plan_saving profiles decisions in
        match best with
        | Some (bs, _) when bs >= saving -> best
        | _ -> Some (saving, decisions))
    None assignments
  |> Option.get |> fst

let random_instance rng =
  let n = 2 + Prng.int rng 4 in
  let freqs = Array.init n (fun _ -> 0.05 +. Prng.float rng 1.0) in
  let total = Array.fold_left ( +. ) 0.0 freqs in
  (* Shared lists must have one canonical size per (term, sid) key, or
     byte accounting would depend on discovery order. *)
  let shared_pool = [| ("s1", 40); ("s2", 60); ("s3", 80) |] in
  List.init n (fun i ->
      let lists kind_tag =
        List.init
          (1 + Prng.int rng 2)
          (fun j ->
            (* Mix shared and private lists. *)
            if Prng.bool rng then
              let name, bytes = Prng.pick rng shared_pool in
              (name, 0, bytes)
            else (Printf.sprintf "%s-p%d-%d" kind_tag i j, i, 10 + Prng.int rng 90))
      in
      let era = 5.0 +. Prng.float rng 10.0 in
      profile
        ~id:(Printf.sprintf "q%d" i)
        ~f:(freqs.(i) /. total)
        ~era
        ~merge:(Prng.float rng era)
        ~ta:(Prng.float rng era)
        ~rpl:(lists "rpl") ~erpl:(lists "erpl"))

let prop_bnb_is_optimal =
  QCheck.Test.make ~name:"branch-and-bound equals brute force" ~count:60 QCheck.int
    (fun seed ->
      let rng = Prng.create seed in
      let profiles = random_instance rng in
      let budget = 50 + Prng.int rng 300 in
      let bnb = Advisor.branch_and_bound ~budget profiles in
      let brute = brute_force ~budget profiles in
      Float.abs (bnb.expected_saving -. brute) < 1e-9
      && bnb.bytes_used <= budget)

(* Theorem 4.2's model (like the paper's LP in §4.1) accounts each
   query's index sizes independently — no cross-query sharing — so the
   2-approximation property is tested on instances with private lists
   only. With sharing, list sizes become a submodular cost and only the
   weaker sanity property below is claimed. *)
let random_private_instance rng =
  let n = 2 + Prng.int rng 4 in
  let freqs = Array.init n (fun _ -> 0.05 +. Prng.float rng 1.0) in
  let total = Array.fold_left ( +. ) 0.0 freqs in
  List.init n (fun i ->
      let lists kind_tag =
        List.init
          (1 + Prng.int rng 2)
          (fun j -> (Printf.sprintf "%s-p%d-%d" kind_tag i j, i, 10 + Prng.int rng 150))
      in
      let era = 5.0 +. Prng.float rng 10.0 in
      profile
        ~id:(Printf.sprintf "q%d" i)
        ~f:(freqs.(i) /. total)
        ~era
        ~merge:(Prng.float rng era)
        ~ta:(Prng.float rng era)
        ~rpl:(lists "rpl") ~erpl:(lists "erpl"))

let prop_greedy_two_approximation =
  QCheck.Test.make ~name:"greedy is a 2-approximation (Theorem 4.2)" ~count:200
    QCheck.int (fun seed ->
      let rng = Prng.create seed in
      let profiles = random_private_instance rng in
      let budget = 50 + Prng.int rng 400 in
      let g = Advisor.greedy ~budget profiles in
      let o = Advisor.branch_and_bound ~budget profiles in
      g.bytes_used <= budget
      && o.expected_saving <= (2.0 *. g.expected_saving) +. 1e-9)

let prop_greedy_never_beats_optimal =
  QCheck.Test.make ~name:"greedy never exceeds optimal (shared lists)" ~count:100
    QCheck.int (fun seed ->
      let rng = Prng.create seed in
      let profiles = random_instance rng in
      let budget = 50 + Prng.int rng 300 in
      let g = Advisor.greedy ~budget profiles in
      let o = Advisor.branch_and_bound ~budget profiles in
      g.bytes_used <= budget
      && g.expected_saving <= o.expected_saving +. 1e-9)

let prop_greedy_within_budget_and_consistent =
  QCheck.Test.make ~name:"greedy plans are internally consistent" ~count:100 QCheck.int
    (fun seed ->
      let rng = Prng.create seed in
      let profiles = random_instance rng in
      let budget = Prng.int rng 400 in
      let g = Advisor.greedy ~budget profiles in
      g.bytes_used <= budget
      && Float.abs
           (Advisor.plan_saving profiles g.decisions -. g.expected_saving)
         < 1e-9
      && Advisor.plan_bytes profiles g.decisions = g.bytes_used)

let test_measure_with_prefix_rpls () =
  let coll = Trex_corpus.Gen.ieee ~doc_count:25 ~seed:13 () in
  let env = Env.in_memory () in
  let summary = Summary.create ~alias:coll.alias Summary.Incoming in
  let index = Index.build ~env ~summary (coll.docs ()) in
  let t =
    Trex_nexi.Translate.translate ~summary
      ~normalize:(Index.normalize_term index)
      (Trex_nexi.Parser.parse "//sec[about(., information retrieval)]")
  in
  let q =
    {
      Workload.id = "p";
      sids = Trex_nexi.Translate.all_sids t;
      terms = Trex_nexi.Translate.all_terms t;
      k = 3;
      frequency = 1.0;
    }
  in
  let scoring = Trex_scoring.Scorer.default in
  (* Full-list profile first (on a fresh index copy semantics: measure
     rebuilds lists as needed). *)
  let full = Cost.measure index ~scoring ~runs:1 q in
  Alcotest.(check bool) "no prefix recorded" true (full.rpl_prefix = None);
  let prefixed = Cost.measure index ~scoring ~runs:1 ~prefix_rpls:true q in
  let bytes p = List.fold_left (fun a (_, b) -> a + b) 0 p.Cost.rpl_lists in
  (match prefixed.rpl_prefix with
  | Some depth ->
      Alcotest.(check bool) "positive depth" true (depth > 0);
      Alcotest.(check bool) "S_RPL shrinks" true (bytes prefixed < bytes full);
      (* TA still answers the workload's k on the truncated lists. *)
      let answers, _ = Ta.run index ~sids:q.sids ~terms:q.terms ~k:q.k () in
      check Alcotest.int "k answers" q.k (List.length answers)
  | None ->
      (* Legitimate when the lists are too short to save anything. *)
      Alcotest.(check bool) "full bytes unchanged" true (bytes prefixed = bytes full))

(* ---- end-to-end: measure + plan + apply on a live index ---- *)

let test_measure_and_apply () =
  let coll = Trex_corpus.Gen.ieee ~doc_count:25 ~seed:3 () in
  let env = Env.in_memory () in
  let summary = Summary.create ~alias:coll.alias Summary.Incoming in
  let index = Index.build ~env ~summary (coll.docs ()) in
  let translate nexi =
    let t =
      Trex_nexi.Translate.translate ~summary
        ~normalize:(Index.normalize_term index)
        (Trex_nexi.Parser.parse nexi)
    in
    (Trex_nexi.Translate.all_sids t, Trex_nexi.Translate.all_terms t)
  in
  let s1, t1 = translate "//sec[about(., information retrieval)]" in
  let s2, t2 = translate "//article[about(., music)]" in
  let w =
    Workload.create
      [
        { Workload.id = "w1"; sids = s1; terms = t1; k = 5; frequency = 0.6 };
        { Workload.id = "w2"; sids = s2; terms = t2; k = 5; frequency = 0.4 };
      ]
  in
  let scoring = Trex_scoring.Scorer.default in
  let profiles =
    List.map (fun q -> Cost.measure index ~scoring ~runs:1 q) (Workload.queries w)
  in
  check Alcotest.int "profiles" 2 (List.length profiles);
  List.iter
    (fun (p : Cost.profile) ->
      Alcotest.(check bool) "times non-negative" true
        (p.time_era >= 0.0 && p.time_merge >= 0.0 && p.time_ta >= 0.0);
      Alcotest.(check bool) "lists profiled" true (p.rpl_lists <> []))
    profiles;
  (* Drop everything measured, then apply a fresh greedy plan and check
     the chosen methods actually run. *)
  List.iter
    (fun (term, sid, _, _) -> Rpl.drop index Rpl.Rpl ~term ~sid)
    (Rpl.catalog index Rpl.Rpl);
  List.iter
    (fun (term, sid, _, _) -> Rpl.drop index Rpl.Erpl ~term ~sid)
    (Rpl.catalog index Rpl.Erpl);
  let plan = Advisor.greedy ~budget:max_int profiles in
  Advisor.apply index ~scoring ~workload:w plan;
  List.iter
    (fun (id, choice) ->
      let qq = Option.get (Workload.find w id) in
      match choice with
      | Advisor.Use_rpl | Advisor.Use_rpl_raw ->
          let answers, _ = Ta.run index ~sids:qq.sids ~terms:qq.terms ~k:qq.k () in
          ignore answers
      | Advisor.Use_erpl | Advisor.Use_erpl_raw ->
          let answers, _ = Merge.run index ~sids:qq.sids ~terms:qq.terms in
          ignore answers
      | Advisor.No_index -> ())
    plan.decisions;
  Alcotest.(check bool) "some query supported" true
    (List.exists (fun (_, c) -> c <> Advisor.No_index) plan.decisions)

(* ---- autopilot ---- *)

let test_autopilot_lifecycle () =
  let module Autopilot = Trex_selfman.Autopilot in
  let coll = Trex_corpus.Gen.ieee ~doc_count:20 ~seed:17 () in
  let env = Env.in_memory () in
  let summary = Summary.create ~alias:coll.alias Summary.Incoming in
  let index = Index.build ~env ~summary (coll.docs ()) in
  let translate nexi =
    let t =
      Trex_nexi.Translate.translate ~summary
        ~normalize:(Index.normalize_term index)
        (Trex_nexi.Parser.parse nexi)
    in
    (Trex_nexi.Translate.all_sids t, Trex_nexi.Translate.all_terms t)
  in
  let ir_sids, ir_terms = translate "//sec[about(., information retrieval)]" in
  let mu_sids, mu_terms = translate "//article[about(., music)]" in
  let pilot =
    Autopilot.create index ~scoring:Trex_scoring.Scorer.default ~budget:max_int
      ~min_observations:10 ~drift_threshold:0.3 ()
  in
  (* Not enough data yet. *)
  (match Autopilot.maybe_replan pilot with
  | Autopilot.Too_few_observations n -> check Alcotest.int "zero seen" 0 n
  | _ -> Alcotest.fail "expected Too_few_observations");
  (* An IR-heavy mix triggers the first plan. *)
  for _ = 1 to 9 do
    Autopilot.record pilot ~id:"ir" ~sids:ir_sids ~terms:ir_terms ~k:5
  done;
  Autopilot.record pilot ~id:"music" ~sids:mu_sids ~terms:mu_terms ~k:5;
  (match Autopilot.maybe_replan pilot with
  | Autopilot.Replanned { plan; _ } ->
      Alcotest.(check bool) "plan recorded" true (Autopilot.current_plan pilot = Some plan);
      Alcotest.(check bool) "ir query supported" true
        (List.assoc "ir" plan.Trex_selfman.Advisor.decisions
        <> Trex_selfman.Advisor.No_index)
  | v ->
      Alcotest.failf "expected Replanned, got %s"
        (Format.asprintf "%a" Autopilot.pp_verdict v));
  (* Same mix again: no drift, no replanning. *)
  for _ = 1 to 9 do
    Autopilot.record pilot ~id:"ir" ~sids:ir_sids ~terms:ir_terms ~k:5
  done;
  Autopilot.record pilot ~id:"music" ~sids:mu_sids ~terms:mu_terms ~k:5;
  (match Autopilot.maybe_replan pilot with
  | Autopilot.No_drift d -> Alcotest.(check bool) "small drift" true (d < 0.3)
  | _ -> Alcotest.fail "expected No_drift");
  (* Flip the mix to music-heavy: drift fires and the plan changes. *)
  for _ = 1 to 120 do
    Autopilot.record pilot ~id:"music" ~sids:mu_sids ~terms:mu_terms ~k:5
  done;
  (match Autopilot.maybe_replan pilot with
  | Autopilot.Replanned { drift; _ } ->
      Alcotest.(check bool) "large drift" true (drift >= 0.3)
  | _ -> Alcotest.fail "expected Replanned on drift");
  (* Frequencies sum to one. *)
  let total =
    List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Autopilot.observed_frequencies pilot)
  in
  check (Alcotest.float 1e-9) "frequencies normalized" 1.0 total

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_selfman"
    [
      ( "workload",
        [
          Alcotest.test_case "valid" `Quick test_workload_valid;
          Alcotest.test_case "invalid" `Quick test_workload_invalid;
          Alcotest.test_case "unweighted" `Quick test_workload_unweighted;
        ] );
      ( "cost",
        [ Alcotest.test_case "savings" `Quick test_savings ] );
      ( "advisor",
        [
          Alcotest.test_case "greedy fits budget" `Quick test_greedy_fits_budget;
          Alcotest.test_case "unlimited budget" `Quick
            test_greedy_unlimited_budget_takes_best_of_each;
          Alcotest.test_case "zero budget" `Quick test_zero_budget;
          Alcotest.test_case "shared lists counted once" `Quick
            test_shared_lists_counted_once;
          Alcotest.test_case "bnb beats greedy on ratio trap" `Quick
            test_branch_and_bound_beats_greedy_when_ratio_misleads;
          qtest prop_bnb_is_optimal;
          qtest prop_greedy_two_approximation;
          qtest prop_greedy_never_beats_optimal;
          qtest prop_greedy_within_budget_and_consistent;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "measure and apply" `Quick test_measure_and_apply;
          Alcotest.test_case "prefix-rpl measurement" `Quick
            test_measure_with_prefix_rpls;
          Alcotest.test_case "autopilot lifecycle" `Quick test_autopilot_lifecycle;
        ] );
    ]
