(* Tests for trex_topk: ERA, RPL/ERPL store, TA/ITA, Merge, strategy.

   The central invariant, checked many ways: all strategies agree. ERA
   and Merge return identical full rankings; TA/ITA return a top-k whose
   scores match the ERA ranking (elements may differ only on exact score
   ties at the k boundary). *)

module Env = Trex_storage.Env
module Summary = Trex_summary.Summary
module Types = Trex_invindex.Types
module Index = Trex_invindex.Index
module Analyzer = Trex_text.Analyzer
module Scorer = Trex_scoring.Scorer
module Answer = Trex_topk.Answer
module Era = Trex_topk.Era
module Rpl = Trex_topk.Rpl
module Ta = Trex_topk.Ta
module Merge = Trex_topk.Merge
module Strategy = Trex_topk.Strategy

let check = Alcotest.check
let scoring = Scorer.default

(* ---- tiny hand-checkable fixture ---- *)

let tiny_docs =
  [
    ("d0.xml", "<a><b>red fox red</b><b>dog</b></a>");
    ("d1.xml", "<a><b>fox</b><c>red fox</c></a>");
  ]

let tiny () =
  let env = Env.in_memory () in
  let summary = Summary.create Summary.Incoming in
  let index = Index.build ~env ~summary ~analyzer:Analyzer.exact (List.to_seq tiny_docs) in
  (index, summary)

let sid_of summary path = Option.get (Summary.sid_of_path summary path)

let test_era_tiny_tf_counts () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  let results, stats = Era.run index ~sids:[ sid_b ] ~terms:[ "red"; "fox" ] in
  (* b elements containing red or fox: d0's first b (red x2, fox x1) and
     d1's b (fox x1). d0's second b has neither. *)
  check Alcotest.int "two results" 2 (List.length results);
  let tf_of docid =
    let r = List.find (fun (r : Era.result) -> r.element.Types.docid = docid) results in
    Array.to_list r.tf
  in
  check (Alcotest.list Alcotest.int) "d0 tf" [ 2; 1 ] (tf_of 0);
  check (Alcotest.list Alcotest.int) "d1 tf" [ 0; 1 ] (tf_of 1);
  Alcotest.(check bool) "positions scanned" true (stats.positions_scanned > 0)

let test_era_multiple_sids () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  let sid_c = sid_of summary [ "a"; "c" ] in
  let results, _ = Era.run index ~sids:[ sid_b; sid_c ] ~terms:[ "red" ] in
  (* red appears in d0's first b and d1's c. *)
  check Alcotest.int "two hits" 2 (List.length results);
  let sids = List.map (fun (r : Era.result) -> r.element.Types.sid) results in
  Alcotest.(check bool) "both extents" true
    (List.mem sid_b sids && List.mem sid_c sids)

let test_era_degenerate_inputs () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  check Alcotest.int "no sids" 0
    (List.length (fst (Era.run index ~sids:[] ~terms:[ "red" ])));
  check Alcotest.int "no terms" 0
    (List.length (fst (Era.run index ~sids:[ sid_b ] ~terms:[])));
  check Alcotest.int "unknown term" 0
    (List.length (fst (Era.run index ~sids:[ sid_b ] ~terms:[ "zzz" ])));
  check Alcotest.int "unknown sid" 0
    (List.length (fst (Era.run index ~sids:[ 9999 ] ~terms:[ "red" ])))

let test_era_duplicate_sids_ignored () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  let r1, _ = Era.run index ~sids:[ sid_b ] ~terms:[ "red"; "fox" ] in
  let r2, _ = Era.run index ~sids:[ sid_b; sid_b; sid_b ] ~terms:[ "red"; "fox" ] in
  check Alcotest.int "same results" (List.length r1) (List.length r2)

(* ---- generated fixture shared by the agreement tests ---- *)

let generated =
  lazy
    (let coll = Trex_corpus.Gen.ieee ~doc_count:40 ~seed:7 () in
     let env = Env.in_memory () in
     let summary = Summary.create ~alias:coll.alias Summary.Incoming in
     let index = Index.build ~env ~summary (coll.docs ()) in
     (index, summary))

let queries_for_agreement index summary =
  let translate nexi =
    let q = Trex_nexi.Parser.parse nexi in
    let t =
      Trex_nexi.Translate.translate ~summary ~normalize:(Index.normalize_term index) q
    in
    (Trex_nexi.Translate.all_sids t, Trex_nexi.Translate.all_terms t)
  in
  List.map translate
    [
      "//article//sec[about(., introduction information retrieval)]";
      "//sec[about(., code signing verification)]";
      "//bdy//*[about(., model checking state)]";
      "//article[about(., ontologies)]";
    ]

let era_answers index ~sids ~terms =
  let results, _ = Era.run index ~sids ~terms in
  Era.score_results index ~scoring ~terms results

(* TA agreement modulo ties: identical score sequence, and each TA
   element carries its exact ERA score. *)
let ta_matches_era ~k (ta : Answer.t) (era : Answer.t) =
  let era_top = Answer.top_k era k in
  List.length ta = List.length era_top
  && List.for_all2
       (fun (a : Answer.entry) (b : Answer.entry) ->
         Float.abs (a.score -. b.score) < 1e-9)
       ta era_top
  && List.for_all
       (fun (a : Answer.entry) ->
         List.exists
           (fun (b : Answer.entry) ->
             Types.compare_element a.element b.element = 0
             && Float.abs (a.score -. b.score) < 1e-9)
           era)
       ta

let test_merge_equals_era () =
  let index, summary = Lazy.force generated in
  List.iter
    (fun (sids, terms) ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Erpl ] ());
      let era = era_answers index ~sids ~terms in
      let merge, _ = Merge.run index ~sids ~terms in
      Alcotest.(check bool)
        (Printf.sprintf "merge=era on %d sids/%d terms (%d answers)"
           (List.length sids) (List.length terms) (Answer.size era))
        true
        (Answer.equal ~eps:1e-9 era merge))
    (queries_for_agreement index summary)

let test_ta_matches_era_at_many_k () =
  let index, summary = Lazy.force generated in
  List.iter
    (fun (sids, terms) ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ());
      let era = era_answers index ~sids ~terms in
      List.iter
        (fun k ->
          let ta, _ = Ta.run index ~sids ~terms ~k () in
          Alcotest.(check bool)
            (Printf.sprintf "ta=era k=%d (%d answers)" k (Answer.size era))
            true
            (ta_matches_era ~k ta era))
        [ 1; 2; 5; 10; 100; 100000 ])
    (queries_for_agreement index summary)

let test_ita_same_answers_as_ta () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ());
      let ta, _ = Ta.run index ~sids ~terms ~k:20 () in
      let ita, stats = Ta.run index ~sids ~terms ~k:20 ~ideal_heap:true () in
      Alcotest.(check bool) "same ranking" true (Answer.equal ta ita);
      Alcotest.(check bool) "heap time measured" true (stats.heap_seconds >= 0.0)
  | [] -> Alcotest.fail "no queries"

(* ITA accounting invariants (paper §3.3): the heap-excluded clock never
   reports more than the wall time around the run, the excluded heap
   time is what paused the clock, and a non-ideal run excludes nothing.
   Timing comparisons use by-construction bounds and a min-over-runs so
   the test cannot flake on a loaded machine. *)
let test_ita_clock_invariants () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ());
      let w0 = Unix.gettimeofday () in
      let _, ita = Ta.run index ~sids ~terms ~k:20 ~ideal_heap:true () in
      let wall = Unix.gettimeofday () -. w0 in
      let eps = 1e-3 in
      Alcotest.(check bool) "heap time non-negative" true (ita.heap_seconds >= 0.0);
      Alcotest.(check bool) "elapsed+heap within wall" true
        (ita.elapsed_seconds +. ita.heap_seconds <= wall +. eps);
      let _, ta = Ta.run index ~sids ~terms ~k:20 () in
      Alcotest.(check (float 0.0)) "non-ideal excludes nothing" 0.0 ta.heap_seconds;
      (* ITA's reported time excludes heap management, so its minimum
         over a few runs cannot exceed TA's by more than scheduling
         noise on identical deterministic work. *)
      let min_over f = List.fold_left min infinity (List.init 3 (fun _ -> f ())) in
      let e_ita =
        min_over (fun () ->
            (snd (Ta.run index ~sids ~terms ~k:20 ~ideal_heap:true ())).Ta.elapsed_seconds)
      in
      let e_ta =
        min_over (fun () -> (snd (Ta.run index ~sids ~terms ~k:20 ())).Ta.elapsed_seconds)
      in
      Alcotest.(check bool) "ita <= ta + noise" true (e_ita <= e_ta +. 2e-3)
  | [] -> Alcotest.fail "no queries"

(* The public stats records are views over the registry: one run must
   advance the process-wide counters by exactly the per-run values. *)
let test_stats_are_registry_views () =
  let module Metrics = Trex_obs.Metrics in
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ());
      let delta name f =
        let c = Metrics.counter name in
        let v0 = Metrics.value c in
        let r = f () in
        (r, Metrics.value c - v0)
      in
      let ta_stats, d_sorted =
        delta "ta.sorted_accesses" (fun () -> snd (Ta.run index ~sids ~terms ~k:10 ()))
      in
      check Alcotest.int "ta sorted_accesses delta" ta_stats.Ta.sorted_accesses d_sorted;
      let ta_stats2, d_pushes =
        delta "ta.heap_pushes" (fun () -> snd (Ta.run index ~sids ~terms ~k:10 ()))
      in
      check Alcotest.int "ta heap_pushes delta" ta_stats2.Ta.heap_pushes d_pushes;
      let era_stats, d_pos =
        delta "era.positions_scanned" (fun () -> snd (Era.run index ~sids ~terms))
      in
      check Alcotest.int "era positions delta" era_stats.Era.positions_scanned d_pos;
      let merge_stats, d_read =
        delta "merge.entries_read" (fun () -> snd (Merge.run index ~sids ~terms))
      in
      check Alcotest.int "merge entries delta" merge_stats.Merge.entries_read d_read
  | [] -> Alcotest.fail "no queries"

(* The k-way merge must preserve the old stats contract: entries_read is
   every stored ERPL entry of the query (Merge always drains its lists),
   elements_merged is the answer count. *)
let test_merge_stats_exact () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Erpl ] ());
      let answers, stats = Merge.run index ~sids ~terms in
      let stored =
        List.fold_left
          (fun acc term ->
            List.fold_left
              (fun acc sid -> acc + Rpl.list_entries index Rpl.Erpl ~term ~sid)
              acc sids)
          0 terms
      in
      check Alcotest.int "entries_read = stored entries" stored stats.Merge.entries_read;
      check Alcotest.int "elements_merged = answers" (List.length answers)
        stats.Merge.elements_merged
  | [] -> Alcotest.fail "no queries"

let test_ta_invalid_k () =
  let index, summary = Lazy.force generated in
  ignore summary;
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Ta.run index ~sids:[ 1 ] ~terms:[ "x" ] ~k:0 ());
       false
     with Invalid_argument _ -> true)

let test_ta_missing_rpl_raises () =
  let index, _summary = tiny () in
  Alcotest.(check bool) "missing list" true
    (try
       ignore (Ta.run index ~sids:[ 1 ] ~terms:[ "red" ] ~k:5 ());
       false
     with Rpl.Cursor.Missing_list _ -> true)

let test_merge_missing_erpl_raises () =
  let index, _summary = tiny () in
  Alcotest.(check bool) "missing list" true
    (try
       ignore (Merge.run index ~sids:[ 1 ] ~terms:[ "red" ]);
       false
     with Rpl.Cursor.Missing_list _ -> true)

(* ---- RPL / ERPL store ---- *)

let test_rpl_build_and_catalog () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  let sid_c = sid_of summary [ "a"; "c" ] in
  let report =
    Rpl.build index ~scoring ~sids:[ sid_b; sid_c ] ~terms:[ "red"; "fox" ]
      ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ()
  in
  check Alcotest.int "2 kinds x 2 terms x 2 sids" 8 (List.length report.pairs_built);
  Alcotest.(check bool) "entries written" true (report.entries_written > 0);
  Alcotest.(check bool) "is_materialized" true
    (Rpl.is_materialized index Rpl.Rpl ~term:"red" ~sid:sid_b);
  Alcotest.(check bool) "covers" true
    (Rpl.covers index Rpl.Rpl ~sids:[ sid_b; sid_c ] ~terms:[ "red"; "fox" ]);
  Alcotest.(check bool) "does not cover unknown term" false
    (Rpl.covers index Rpl.Rpl ~sids:[ sid_b ] ~terms:[ "zzz" ]);
  (* Idempotence. *)
  let report2 =
    Rpl.build index ~scoring ~sids:[ sid_b; sid_c ] ~terms:[ "red"; "fox" ]
      ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ()
  in
  check Alcotest.int "all reused" 8 report2.pairs_reused;
  check Alcotest.int "nothing rebuilt" 0 (List.length report2.pairs_built);
  check Alcotest.int "catalog size" 4 (List.length (Rpl.catalog index Rpl.Rpl))

let test_rpl_cursor_descending_scores () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ());
      List.iter
        (fun term ->
          let c = Rpl.Cursor.create index Rpl.Rpl ~term ~sids in
          let rec drain prev n =
            match Rpl.Cursor.next c with
            | None -> n
            | Some e ->
                Alcotest.(check bool) "descending" true (e.Rpl.score <= prev +. 1e-12);
                drain e.Rpl.score (n + 1)
          in
          let n = drain infinity 0 in
          check Alcotest.int "entries_read" n (Rpl.Cursor.entries_read c))
        terms
  | [] -> Alcotest.fail "no queries"

let test_erpl_cursor_position_order () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Erpl ] ());
      List.iter
        (fun term ->
          let c = Rpl.Cursor.create index Rpl.Erpl ~term ~sids in
          let rec drain prev =
            match Rpl.Cursor.next c with
            | None -> ()
            | Some e ->
                let pos = (e.Rpl.element.Types.docid, e.Rpl.element.Types.endpos) in
                Alcotest.(check bool) "position order" true (pos > prev);
                drain pos
          in
          drain (-1, -1))
        terms
  | [] -> Alcotest.fail "no queries"

let test_rpl_drop () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_b ] ~terms:[ "red" ] ~kinds:[ Rpl.Rpl ] ());
  Alcotest.(check bool) "present" true
    (Rpl.is_materialized index Rpl.Rpl ~term:"red" ~sid:sid_b);
  let bytes_before = Rpl.total_bytes index Rpl.Rpl in
  Rpl.drop index Rpl.Rpl ~term:"red" ~sid:sid_b;
  Alcotest.(check bool) "gone" false
    (Rpl.is_materialized index Rpl.Rpl ~term:"red" ~sid:sid_b);
  Alcotest.(check bool) "bytes decreased" true
    (Rpl.total_bytes index Rpl.Rpl < bytes_before);
  (* TA on the dropped list now fails. *)
  Alcotest.(check bool) "ta fails after drop" true
    (try
       ignore (Ta.run index ~sids:[ sid_b ] ~terms:[ "red" ] ~k:1 ());
       false
     with Rpl.Cursor.Missing_list _ -> true)

let test_rpl_empty_list_materialized () =
  let index, summary = tiny () in
  let sid_c = sid_of summary [ "a"; "c" ] in
  (* "dog" never occurs under c: the list is empty but exists. *)
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_c ] ~terms:[ "dog" ] ~kinds:[ Rpl.Rpl ] ());
  Alcotest.(check bool) "materialized though empty" true
    (Rpl.is_materialized index Rpl.Rpl ~term:"dog" ~sid:sid_c);
  check Alcotest.int "no entries" 0 (Rpl.list_entries index Rpl.Rpl ~term:"dog" ~sid:sid_c);
  (* TA can now run and returns nothing. *)
  let answers, _ = Ta.run index ~sids:[ sid_c ] ~terms:[ "dog" ] ~k:5 () in
  check Alcotest.int "no answers" 0 (List.length answers)

(* ---- ERA vs a brute-force DOM oracle ---- *)

(* Reference implementation: walk every document's DOM, and for every
   element of the requested extents count the query-term occurrences in
   its descendant text. ERA must produce exactly this. *)
let naive_results docs summary analyzer ~sids ~terms =
  let terms_arr = Array.of_list terms in
  let out = ref [] in
  List.iteri
    (fun docid (_, xml) ->
      let doc = Trex_xml.Dom.parse xml in
      Trex_xml.Dom.iter_elements doc (fun path el ->
          match Summary.sid_of_path summary path with
          | Some sid when List.mem sid sids ->
              let tokens =
                Trex_text.Analyzer.terms analyzer (Trex_xml.Dom.text_content el)
              in
              let tf =
                Array.map
                  (fun term -> List.length (List.filter (( = ) term) tokens))
                  terms_arr
              in
              if Array.exists (fun c -> c > 0) tf then
                out :=
                  ( {
                      Types.sid;
                      docid;
                      endpos = el.end_pos;
                      length = Trex_xml.Dom.length el;
                    },
                    Array.to_list tf )
                  :: !out
          | Some _ | None -> ()))
    docs;
  List.sort compare !out

let test_era_matches_naive_oracle () =
  let docs =
    let coll = Trex_corpus.Gen.ieee ~doc_count:8 ~seed:31 () in
    List.of_seq (coll.docs ())
  in
  let env = Env.in_memory () in
  let summary = Summary.create Summary.Incoming in
  let index = Index.build ~env ~summary (List.to_seq docs) in
  let analyzer = Index.analyzer index in
  List.iter
    (fun (pattern, terms_raw) ->
      let sids =
        Summary.match_pattern summary (Trex_summary.Pattern.parse pattern)
      in
      let terms = List.filter_map (Trex_text.Analyzer.normalize analyzer) terms_raw in
      let era, _ = Era.run index ~sids ~terms in
      let era_normalized =
        List.map (fun (r : Era.result) -> (r.element, Array.to_list r.tf)) era
        |> List.sort compare
      in
      let naive = naive_results docs summary analyzer ~sids ~terms in
      Alcotest.(check bool)
        (Printf.sprintf "%s x [%s]: %d results" pattern (String.concat "," terms)
           (List.length naive))
        true
        (era_normalized = naive))
    [
      ("//sec", [ "information"; "retrieval" ]);
      ("//article//p", [ "model"; "checking"; "state" ]);
      ("//bdy//*", [ "music" ]);
      ("//article", [ "ontologies"; "case"; "study" ]);
      ("//fig//fgc", [ "evaluation" ]);
    ]

let test_per_term_scores_sum_to_combined () =
  (* The per-term scores that fill RPLs must sum to the combined score
     ERA reports for the same element. *)
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      let results, _ = Era.run index ~sids ~terms in
      let combined = Era.score_results index ~scoring ~terms results in
      let per_term = Era.per_term_scores index ~scoring ~terms results in
      let key (e : Types.element) = (e.docid, e.endpos) in
      let sums = Hashtbl.create 64 in
      List.iter
        (fun (_, entries) ->
          List.iter
            (fun (el, s) ->
              Hashtbl.replace sums (key el)
                (s +. Option.value ~default:0.0 (Hashtbl.find_opt sums (key el))))
            entries)
        per_term;
      List.iter
        (fun (entry : Answer.entry) ->
          let sum = Option.value ~default:0.0 (Hashtbl.find_opt sums (key entry.element)) in
          Alcotest.(check (float 1e-9)) "per-term sums match" entry.score sum)
        combined
  | [] -> Alcotest.fail "no queries"

(* Randomized cross-strategy agreement: fresh corpus per seed, all four
   strategies on a pool of queries. *)
let prop_strategies_agree_on_random_corpora =
  QCheck.Test.make ~name:"strategies agree on random corpora" ~count:6
    QCheck.small_nat (fun seed ->
      let coll = Trex_corpus.Gen.ieee ~doc_count:12 ~seed:(seed + 100) () in
      let env = Env.in_memory () in
      let summary = Summary.create ~alias:coll.alias Summary.Incoming in
      let index = Index.build ~env ~summary (coll.docs ()) in
      let translate nexi =
        let t =
          Trex_nexi.Translate.translate ~summary
            ~normalize:(Index.normalize_term index)
            (Trex_nexi.Parser.parse nexi)
        in
        (Trex_nexi.Translate.all_sids t, Trex_nexi.Translate.all_terms t)
      in
      List.for_all
        (fun nexi ->
          let sids, terms = translate nexi in
          if sids = [] || terms = [] then true
          else begin
            ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ());
            let era = era_answers index ~sids ~terms in
            let merge, _ = Merge.run index ~sids ~terms in
            let ta, _ = Ta.run index ~sids ~terms ~k:7 () in
            Answer.equal ~eps:1e-9 era merge && ta_matches_era ~k:7 ta era
          end)
        [
          "//sec[about(., information retrieval)]";
          "//article[about(., music)]";
          "//bdy//*[about(., state space)]";
        ])

(* ---- prefix-materialized RPLs (paper §4's space optimization) ---- *)

let test_prefix_rpl_saves_space_and_stays_correct () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      (* Reference: full lists. *)
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ());
      let bytes_now () =
        List.fold_left
          (fun acc term ->
            List.fold_left
              (fun acc sid -> acc + Rpl.list_bytes index Rpl.Rpl ~term ~sid)
              acc sids)
          0 terms
      in
      let full_bytes = bytes_now () in
      let era = era_answers index ~sids ~terms in
      let reference, _ = Ta.run index ~sids ~terms ~k:3 () in
      let drop_all () =
        List.iter
          (fun term -> List.iter (fun sid -> Rpl.drop index Rpl.Rpl ~term ~sid) sids)
          terms
      in
      (* Whatever happens, leave the shared fixture with full lists. *)
      Fun.protect
        ~finally:(fun () ->
          drop_all ();
          ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ()))
        (fun () ->
          (* Rebuild truncated to a 40-entry prefix per list. *)
          drop_all ();
          ignore
            (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ]
               ~rpl_prefix:40 ());
          Alcotest.(check bool) "prefix saves space" true (bytes_now () < full_bytes);
          (* Small k: either the prefixes certify the answer — then it
             must be exactly right — or TA honestly refuses. *)
          (match Ta.run index ~sids ~terms ~k:3 () with
          | ta, _ ->
              Alcotest.(check bool) "k=3 correct when certified" true
                (Answer.equal ta reference && ta_matches_era ~k:3 ta era)
          | exception Ta.Truncated_rpl -> ());
          (* Huge k: the prefixes can never certify the answer. *)
          Alcotest.(check bool) "huge k refused" true
            (try
               ignore (Ta.run index ~sids ~terms ~k:(Answer.size era + 1000) ());
               false
             with Ta.Truncated_rpl -> true))
  | [] -> Alcotest.fail "no queries"

(* Deterministic certification semantics on the tiny fixture: "fox" has
   two b-extent entries; a 1-entry prefix certifies k=1 (the bound
   proves nothing dropped can beat the top entry's seen score... the
   threshold equals the bound, which the stored top score matches) and
   must refuse k=2. *)
let test_prefix_rpl_certification_boundary () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_b ] ~terms:[ "fox" ] ~kinds:[ Rpl.Rpl ]
       ~rpl_prefix:1 ());
  Alcotest.(check bool) "bound positive" true
    (Rpl.list_bound index Rpl.Rpl ~term:"fox" ~sid:sid_b > 0.0);
  check Alcotest.int "one entry kept" 1
    (Rpl.list_entries index Rpl.Rpl ~term:"fox" ~sid:sid_b);
  let top1, stats = Ta.run index ~sids:[ sid_b ] ~terms:[ "fox" ] ~k:1 () in
  check Alcotest.int "k=1 answered" 1 (List.length top1);
  check Alcotest.int "read only the prefix" 1 stats.sorted_accesses;
  Alcotest.(check bool) "k=2 refused" true
    (try
       ignore (Ta.run index ~sids:[ sid_b ] ~terms:[ "fox" ] ~k:2 ());
       false
     with Ta.Truncated_rpl -> true)

(* ---- full-term RPLs (the paper's skip-scanned layout) ---- *)

let test_full_rpl_build_and_skipping_ta () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl ] ());
      let report = Rpl.Full.build index ~scoring ~terms () in
      Alcotest.(check bool) "entries written" true (report.entries_written > 0);
      List.iter
        (fun term ->
          Alcotest.(check bool) ("materialized " ^ term) true
            (Rpl.Full.is_materialized index ~term);
          (* The full list covers every extent, so it is at least as
             large as the query's merged per-sid lists. *)
          let merged =
            List.fold_left
              (fun acc sid -> acc + Rpl.list_entries index Rpl.Rpl ~term ~sid)
              0 sids
          in
          Alcotest.(check bool) "full >= merged" true
            (Rpl.Full.list_entries index ~term >= merged))
        terms;
      (* Idempotent. *)
      let report2 = Rpl.Full.build index ~scoring ~terms () in
      check Alcotest.int "reused" (List.length terms) report2.pairs_reused;
      (* Skip-scanning TA agrees with the default layout. *)
      List.iter
        (fun k ->
          let default_ta, _ = Ta.run index ~sids ~terms ~k () in
          let full_ta, stats = Ta.run index ~sids ~terms ~k ~use_full_rpls:true () in
          Alcotest.(check bool)
            (Printf.sprintf "same scores at k=%d" k)
            true
            (List.for_all2
               (fun (a : Answer.entry) (b : Answer.entry) ->
                 Float.abs (a.score -. b.score) < 1e-9)
               default_ta full_ta);
          Alcotest.(check bool) "reads include skips" true
            (stats.sorted_accesses >= stats.skipped_accesses))
        [ 1; 10; 1000 ];
      (* Querying a single sid forces skipping. *)
      let one_sid = [ List.hd sids ] in
      ignore (Rpl.build index ~scoring ~sids:one_sid ~terms ~kinds:[ Rpl.Rpl ] ());
      let _, stats = Ta.run index ~sids:one_sid ~terms ~k:100000 ~use_full_rpls:true () in
      Alcotest.(check bool) "skips happen on narrow queries" true
        (stats.skipped_accesses > 0)
  | [] -> Alcotest.fail "no queries"

let test_full_rpl_missing_and_drop () =
  let index, summary = tiny () in
  ignore summary;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Rpl.Full.cursor index ~term:"red" ~sids:[ 1 ]);
       false
     with Rpl.Full.Missing _ -> true);
  ignore (Rpl.Full.build index ~scoring ~terms:[ "red" ] ());
  Alcotest.(check bool) "built" true (Rpl.Full.is_materialized index ~term:"red");
  Rpl.Full.drop index ~term:"red";
  Alcotest.(check bool) "dropped" false (Rpl.Full.is_materialized index ~term:"red")

let test_full_rpl_descending_and_complete () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  let sid_c = sid_of summary [ "a"; "c" ] in
  ignore (Rpl.Full.build index ~scoring ~terms:[ "fox" ] ());
  let c = Rpl.Full.cursor index ~term:"fox" ~sids:[ sid_b; sid_c ] in
  let rec drain prev acc =
    match Rpl.Full.next c with
    | None -> List.rev acc
    | Some e ->
        Alcotest.(check bool) "descending" true (e.Rpl.score <= prev +. 1e-12);
        drain e.Rpl.score (e :: acc)
  in
  let entries = drain infinity [] in
  (* fox appears in 3 elements (2 b's, 1 c). *)
  check Alcotest.int "all extents covered" 3 (List.length entries)

(* ---- strategy ---- *)

let test_strategy_availability () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  let avail () = Strategy.available index ~sids:[ sid_b ] ~terms:[ "red" ] in
  check (Alcotest.list Alcotest.string) "only era"
    [ "ERA" ]
    (List.map Strategy.method_to_string (avail ()));
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_b ] ~terms:[ "red" ] ~kinds:[ Rpl.Rpl ] ());
  check (Alcotest.list Alcotest.string) "era+ta"
    [ "ERA"; "TA"; "ITA" ]
    (List.map Strategy.method_to_string (avail ()));
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_b ] ~terms:[ "red" ] ~kinds:[ Rpl.Erpl ] ());
  check (Alcotest.list Alcotest.string) "all"
    [ "ERA"; "TA"; "ITA"; "Merge" ]
    (List.map Strategy.method_to_string (avail ()))

let test_strategy_choose () =
  let index, summary = Lazy.force generated in
  match queries_for_agreement index summary with
  | (sids, terms) :: _ ->
      ignore (Rpl.build index ~scoring ~sids ~terms ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ());
      let total =
        List.fold_left
          (fun acc term ->
            List.fold_left
              (fun acc sid -> acc + Rpl.list_entries index Rpl.Rpl ~term ~sid)
              acc sids)
          0 terms
      in
      let small_k = Strategy.choose index ~sids ~terms ~k:1 in
      let large_k = Strategy.choose index ~sids ~terms ~k:(max 1 total) in
      Alcotest.(check bool) "tiny k prefers TA" true (small_k = Strategy.Ta_method);
      Alcotest.(check bool) "huge k prefers Merge" true (large_k = Strategy.Merge_method)
  | [] -> Alcotest.fail "no queries"

let test_strategy_choose_without_indexes () =
  let index, _ = tiny () in
  check Alcotest.string "era fallback" "ERA"
    (Strategy.method_to_string (Strategy.choose index ~sids:[ 1 ] ~terms:[ "red" ] ~k:5))

let test_strategy_race () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  (* With only the base index the race falls back to ERA. *)
  let o = Strategy.race index ~scoring ~sids:[ sid_b ] ~terms:[ "red" ] ~k:5 in
  check Alcotest.string "fallback" "ERA" (Strategy.method_to_string o.Strategy.method_used);
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_b ] ~terms:[ "red" ]
       ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ());
  let o = Strategy.race index ~scoring ~sids:[ sid_b ] ~terms:[ "red" ] ~k:5 in
  Alcotest.(check bool) "winner is ta or merge" true
    (o.Strategy.method_used = Strategy.Ta_method
    || o.Strategy.method_used = Strategy.Merge_method);
  Alcotest.(check bool) "race detail" true
    (String.length o.Strategy.detail > 0 && o.Strategy.answers <> [])

let test_strategy_evaluate_dispatch () =
  let index, summary = tiny () in
  let sid_b = sid_of summary [ "a"; "b" ] in
  ignore
    (Rpl.build index ~scoring ~sids:[ sid_b ] ~terms:[ "red"; "fox" ]
       ~kinds:[ Rpl.Rpl; Rpl.Erpl ] ());
  List.iter
    (fun m ->
      let o =
        Strategy.evaluate index ~scoring ~sids:[ sid_b ] ~terms:[ "red"; "fox" ] ~k:5 m
      in
      Alcotest.(check bool)
        (Strategy.method_to_string m ^ " returns answers")
        true
        (List.length o.Strategy.answers > 0);
      Alcotest.(check bool) "elapsed sane" true (o.Strategy.elapsed_seconds >= 0.0))
    Strategy.all_methods

let () =
  Alcotest.run "trex_topk"
    [
      ( "era",
        [
          Alcotest.test_case "tf counts" `Quick test_era_tiny_tf_counts;
          Alcotest.test_case "multiple sids" `Quick test_era_multiple_sids;
          Alcotest.test_case "degenerate inputs" `Quick test_era_degenerate_inputs;
          Alcotest.test_case "duplicate sids" `Quick test_era_duplicate_sids_ignored;
          Alcotest.test_case "matches brute-force oracle" `Quick
            test_era_matches_naive_oracle;
          Alcotest.test_case "per-term scores sum to combined" `Quick
            test_per_term_scores_sum_to_combined;
          QCheck_alcotest.to_alcotest prop_strategies_agree_on_random_corpora;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "merge equals era" `Quick test_merge_equals_era;
          Alcotest.test_case "ta matches era across k" `Quick
            test_ta_matches_era_at_many_k;
          Alcotest.test_case "ita equals ta" `Quick test_ita_same_answers_as_ta;
          Alcotest.test_case "ita clock invariants" `Quick test_ita_clock_invariants;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats are registry views" `Quick
            test_stats_are_registry_views;
          Alcotest.test_case "merge stats exact" `Quick test_merge_stats_exact;
        ] );
      ( "errors",
        [
          Alcotest.test_case "ta invalid k" `Quick test_ta_invalid_k;
          Alcotest.test_case "ta missing rpl" `Quick test_ta_missing_rpl_raises;
          Alcotest.test_case "merge missing erpl" `Quick test_merge_missing_erpl_raises;
        ] );
      ( "rpl",
        [
          Alcotest.test_case "build and catalog" `Quick test_rpl_build_and_catalog;
          Alcotest.test_case "rpl cursor descending" `Quick
            test_rpl_cursor_descending_scores;
          Alcotest.test_case "erpl cursor position order" `Quick
            test_erpl_cursor_position_order;
          Alcotest.test_case "drop" `Quick test_rpl_drop;
          Alcotest.test_case "empty list materialized" `Quick
            test_rpl_empty_list_materialized;
        ] );
      ( "prefix-rpl",
        [
          Alcotest.test_case "saves space, stays correct" `Quick
            test_prefix_rpl_saves_space_and_stays_correct;
          Alcotest.test_case "certification boundary" `Quick
            test_prefix_rpl_certification_boundary;
        ] );
      ( "full-rpl",
        [
          Alcotest.test_case "build + skipping TA" `Quick
            test_full_rpl_build_and_skipping_ta;
          Alcotest.test_case "missing and drop" `Quick test_full_rpl_missing_and_drop;
          Alcotest.test_case "descending and complete" `Quick
            test_full_rpl_descending_and_complete;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "availability" `Quick test_strategy_availability;
          Alcotest.test_case "choose by k" `Quick test_strategy_choose;
          Alcotest.test_case "choose without indexes" `Quick
            test_strategy_choose_without_indexes;
          Alcotest.test_case "race" `Quick test_strategy_race;
          Alcotest.test_case "evaluate dispatch" `Quick test_strategy_evaluate_dispatch;
        ] );
    ]
