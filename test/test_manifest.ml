(* Crash-matrix tests for the cross-table operation manifest.

   Strategy, in the style of test_crash.ml: run each multi-table
   operation once against a pristine copy of an on-disk index with a
   counting hook to learn its sequence points, then once per point with
   a hook that raises [Pager.Injected_crash] there. After every
   simulated crash the environment is abandoned ([Env.abort]) and
   reopened with recovery; the result must verify clean and answer
   queries exactly as the pre-operation or post-operation index —
   never a mix (no stale-generation list is ever read). A byte-level
   truncation matrix over MANIFEST.mf covers torn commit records the
   hook points cannot reach.

   TREX_SOAK_SEEDS widens the truncation matrix (CI runs 8). *)

module Pager = Trex_storage.Pager
module Bptree = Trex_storage.Bptree
module Env = Trex_storage.Env
module Manifest = Trex_storage.Manifest
module Breaker = Trex_resilience.Breaker
module Metrics = Trex_obs.Metrics
module Rpl = Trex_topk.Rpl
module Index = Trex_invindex.Index

let check = Alcotest.check

let soak_seeds () =
  match Sys.getenv_opt "TREX_SOAK_SEEDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let temp_dir () =
  let dir = Filename.temp_file "trex_manifest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let copy_file src dst =
  let ic = open_in_bin src in
  let oc = open_out_bin dst in
  let buf = Bytes.create 65536 in
  let rec loop () =
    let n = input ic buf 0 (Bytes.length buf) in
    if n > 0 then begin
      output oc buf 0 n;
      loop ()
    end
  in
  loop ();
  close_in ic;
  close_out oc

(* Flat directory copy: env dirs hold only regular files. *)
let copy_dir src dst =
  if Sys.file_exists dst then
    Array.iter (fun f -> Sys.remove (Filename.concat dst f)) (Sys.readdir dst)
  else Unix.mkdir dst 0o755;
  Array.iter
    (fun f -> copy_file (Filename.concat src f) (Filename.concat dst f))
    (Sys.readdir src)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd len;
  Unix.close fd

let file_length path = (Unix.stat path).Unix.st_size

let nexi = "//article//sec[about(., information retrieval)]"

let sig_of (o : Trex.outcome) =
  List.map
    (fun (e : Trex.Answer.entry) ->
      (e.element.Trex.Types.docid, e.element.Trex.Types.endpos))
    o.strategy.answers

let sig_testable = Alcotest.(list (pair int int))

let build_collection dir ~docs ~seed =
  let coll = Trex_corpus.Gen.ieee ~doc_count:docs ~seed () in
  let env = Trex.Env.on_disk dir in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
  (env, engine)

let era_sig engine =
  sig_of (Trex.query engine ~k:5 ~method_:Trex.Strategy.Era_method nexi)

let assert_verify_clean ctx reports =
  List.iter
    (fun (r : Env.table_report) ->
      if not r.Env.ok then
        Alcotest.failf "%s: table %s not clean after recovery: %s" ctx r.Env.table
          (String.concat "; " (r.Env.problems @ r.Env.notes)))
    reports

(* Run [f ()] with a hook that raises [Injected_crash] at the [at]-th
   sequence point; returns the number of points seen. With [at] beyond
   the end, nothing fires and [f]'s result stands. *)
let run_with_crash_at at f =
  let count = ref 0 in
  Env.set_op_hook
    (Some
       (fun point ->
         let i = !count in
         incr count;
         if i = at then raise (Pager.Injected_crash ("hook:" ^ point))));
  Fun.protect ~finally:(fun () -> Env.set_op_hook None) (fun () ->
      match f () with
      | () -> (!count, false)
      | exception Pager.Injected_crash _ -> (!count, true))

(* ---- manifest framing ---- *)

let sample_records =
  [
    Manifest.Begin
      {
        op_id = 1;
        op = "add_document";
        tables = [ "elements"; "postings" ];
        rollback = [];
        generation = 1;
      };
    Manifest.Step
      { op_id = 1; action = Manifest.Put { table = "elements"; key = "\x00k"; value = "v\xff" } };
    Manifest.Step
      { op_id = 1; action = Manifest.Remove { table = "postings"; key = "gone" } };
    Manifest.Step
      { op_id = 1; action = Manifest.Remove_prefix { table = "postings"; prefix = "pre" } };
    Manifest.Commit { op_id = 1 };
    Manifest.End { op_id = 1 };
    Manifest.Begin
      { op_id = 2; op = "rpl_build"; tables = [ "rpls" ]; rollback = [ "rpls" ]; generation = 2 };
    Manifest.Abort { op_id = 2; note = "build failed: boom" };
  ]

let test_roundtrip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.mf" in
  let m = Manifest.open_file path in
  List.iter (Manifest.append m) sample_records;
  Manifest.sync m;
  check Alcotest.int "generation committed" 1 (Manifest.generation m);
  check Alcotest.int "nothing pending" 0 (List.length (Manifest.pending m));
  Manifest.close m;
  let m2 = Manifest.open_file path in
  check Alcotest.bool "records survive reopen" true
    (Manifest.records m2 = sample_records);
  check Alcotest.int "generation survives" 1 (Manifest.generation m2);
  check Alcotest.int "op ids continue past the highest" 3 (Manifest.fresh_op_id m2);
  Manifest.close m2

let test_pending_classification () =
  let m = Manifest.in_memory () in
  (* Committed but no End -> roll forward, with its steps. *)
  let a = Manifest.Put { table = "t"; key = "k"; value = "v" } in
  Manifest.append m
    (Manifest.Begin { op_id = 1; op = "fwd"; tables = [ "t" ]; rollback = []; generation = 1 });
  Manifest.append m (Manifest.Step { op_id = 1; action = a });
  Manifest.append m (Manifest.Commit { op_id = 1 });
  (* Begun but never committed -> roll back. *)
  Manifest.append m
    (Manifest.Begin
       { op_id = 2; op = "back"; tables = [ "u" ]; rollback = [ "u" ]; generation = 2 });
  match Manifest.pending m with
  | [ p1; p2 ] ->
      check Alcotest.bool "op 1 rolls forward" true
        (p1.Manifest.p_op_id = 1
        && p1.Manifest.p_status = Manifest.Roll_forward
        && p1.Manifest.p_steps = [ a ]);
      check Alcotest.bool "op 2 rolls back" true
        (p2.Manifest.p_op_id = 2
        && p2.Manifest.p_status = Manifest.Roll_back
        && p2.Manifest.p_rollback = [ "u" ])
  | l -> Alcotest.failf "expected 2 pending ops, got %d" (List.length l)

let test_torn_tail_matrix () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.mf" in
  let m = Manifest.open_file path in
  List.iter (Manifest.append m) sample_records;
  Manifest.sync m;
  let full = Manifest.records m in
  Manifest.close m;
  let total = file_length path in
  (* Truncating at any byte must yield a valid prefix of the records —
     never a decode error, never a fabricated record. *)
  for len = 0 to total do
    let p = Filename.concat dir (Printf.sprintf "torn-%d.mf" len) in
    copy_file path p;
    truncate_file p len;
    let m = Manifest.open_file p in
    let recs = Manifest.records m in
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: xs, y :: ys -> x = y && is_prefix xs ys
      | _ :: _, [] -> false
    in
    check Alcotest.bool
      (Printf.sprintf "truncation at %d yields a record prefix" len)
      true
      (is_prefix recs full);
    Manifest.close m
  done

let test_corrupt_frame_skipped () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.mf" in
  let m = Manifest.open_file path in
  List.iter (Manifest.append m) sample_records;
  Manifest.sync m;
  Manifest.close m;
  (* Flip one payload byte mid-file: that frame dies, the rest live. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let off = file_length path / 2 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let before = Metrics.value (Metrics.counter "manifest.corrupt_records") in
  let m = Manifest.open_file path in
  check Alcotest.bool "some records survive" true (Manifest.records m <> []);
  check Alcotest.bool "fewer records than written" true
    (List.length (Manifest.records m) < List.length sample_records);
  check Alcotest.bool "corruption counted" true
    (Metrics.value (Metrics.counter "manifest.corrupt_records") > before);
  Manifest.close m

let test_compact_checkpoint () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.mf" in
  let m = Manifest.open_file path in
  List.iter (Manifest.append m) sample_records;
  Manifest.sync m;
  let gen = Manifest.generation m in
  let next_id = Manifest.fresh_op_id m in
  Manifest.compact m;
  check Alcotest.bool "compacted below raw size" true (file_length path < 200);
  Manifest.close m;
  let m2 = Manifest.open_file path in
  check Alcotest.int "generation preserved across compaction" gen
    (Manifest.generation m2);
  check Alcotest.int "op ids preserved across compaction" (next_id + 1)
    (Manifest.fresh_op_id m2);
  check Alcotest.int "nothing pending" 0 (List.length (Manifest.pending m2));
  Manifest.close m2

(* ---- run_logged_op ---- *)

let test_run_logged_op_applies () =
  let env = Trex.Env.in_memory () in
  let t = Env.table env "a" in
  Bptree.insert t ~key:"stale" ~value:"x";
  Bptree.insert t ~key:"stale2" ~value:"y";
  Env.run_logged_op env ~op:"test"
    ~steps:
      [
        Manifest.Remove_prefix { table = "a"; prefix = "stale" };
        Manifest.Put { table = "a"; key = "k1"; value = "v1" };
        Manifest.Put { table = "b"; key = "k2"; value = "v2" };
        Manifest.Remove { table = "b"; key = "absent" };
      ]
    ();
  check Alcotest.(option string) "put applied" (Some "v1") (Bptree.find t "k1");
  check Alcotest.(option string) "prefix removed" None (Bptree.find t "stale");
  check Alcotest.(option string) "prefix removed 2" None (Bptree.find t "stale2");
  check
    Alcotest.(option string)
    "second table written" (Some "v2")
    (Bptree.find (Env.table env "b") "k2");
  check Alcotest.int "generation bumped" 1 (Env.generation env)

(* ---- add_document crash matrix (hook points) ---- *)

(* Shared fixture: a small on-disk index with materialized lists, the
   document to add, and the pre/post expectations. *)
type add_fixture = {
  pristine : string;
  doc_xml : string;
  pre_docs : int;
  post_docs : int;
  pre_sig : (int * int) list;
  post_sig : (int * int) list;
  pre_catalog : (Rpl.kind * string * int) list;  (** materialized pairs *)
  post_catalog : (Rpl.kind * string * int) list;
}

let catalog_pairs engine =
  List.concat_map
    (fun kind ->
      List.map
        (fun (term, sid, _, _) -> (kind, term, sid))
        (Rpl.catalog (Trex.index engine) kind))
    [ Rpl.Rpl; Rpl.Erpl ]

let make_add_fixture () =
  let pristine = temp_dir () in
  let env, engine = build_collection pristine ~docs:6 ~seed:11 in
  ignore (Trex.materialize engine nexi);
  let pre_sig = era_sig engine in
  let pre_docs = (Index.stats (Trex.index engine)).Index.doc_count in
  let pre_catalog = catalog_pairs engine in
  Trex.Env.close env;
  let doc_xml =
    "<article><sec>information retrieval of indexed xml data</sec></article>"
  in
  (* One clean post-run to learn the expected post state. *)
  let post = temp_dir () in
  copy_dir pristine post;
  let env = Trex.Env.on_disk post in
  let engine = Trex.attach ~env () in
  ignore (Trex.add_document engine ~name:"crash-doc" ~xml:doc_xml);
  let post_sig = era_sig engine in
  let post_docs = (Index.stats (Trex.index engine)).Index.doc_count in
  let post_catalog = catalog_pairs engine in
  Trex.Env.close env;
  check Alcotest.int "fixture: document counted" (pre_docs + 1) post_docs;
  check Alcotest.bool "fixture: lists invalidated" true
    (List.length post_catalog < List.length pre_catalog);
  check Alcotest.bool "fixture: new document is relevant" true
    (pre_sig <> post_sig);
  { pristine; doc_xml; pre_docs; post_docs; pre_sig; post_sig; pre_catalog; post_catalog }

(* Recover [dir] and check it is exactly the pre- or post-operation
   index; returns [true] for post. *)
let assert_pre_or_post ctx fx dir =
  let env, reports = Env.open_with_recovery dir in
  assert_verify_clean ctx reports;
  check Alcotest.int (ctx ^ ": nothing unresolved") 0 (Env.manifest_unresolved env);
  let engine = Trex.attach ~env () in
  let docs = (Index.stats (Trex.index engine)).Index.doc_count in
  let catalog = catalog_pairs engine in
  let s = era_sig engine in
  let is_post =
    if docs = fx.post_docs then true
    else if docs = fx.pre_docs then false
    else Alcotest.failf "%s: doc_count %d is neither pre nor post" ctx docs
  in
  if is_post then begin
    (* The document is visible, so every list it invalidates must be
       gone with it — a servable stale list here is the bug this PR
       exists to close. *)
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
      (ctx ^ ": stale lists dropped with the visible document")
      (List.map (fun (_, t, s) -> (t, s)) fx.post_catalog)
      (List.map (fun (_, t, s) -> (t, s)) catalog);
    check sig_testable (ctx ^ ": post answers") fx.post_sig s
  end
  else begin
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
      (ctx ^ ": pre catalog intact")
      (List.map (fun (_, t, s) -> (t, s)) fx.pre_catalog)
      (List.map (fun (_, t, s) -> (t, s)) catalog);
    check sig_testable (ctx ^ ": pre answers") fx.pre_sig s
  end;
  Trex.Env.close env;
  is_post

let crash_add_at fx work at =
  copy_dir fx.pristine work;
  let env = Trex.Env.on_disk work in
  let engine = Trex.attach ~env () in
  let seen, crashed =
    run_with_crash_at at (fun () ->
        ignore (Trex.add_document engine ~name:"crash-doc" ~xml:fx.doc_xml))
  in
  Env.abort env;
  (seen, crashed)

let test_add_document_crash_matrix () =
  let fx = make_add_fixture () in
  let work = temp_dir () in
  (* Counting pass: no crash point fires. *)
  let total, crashed = crash_add_at fx work max_int in
  check Alcotest.bool "counting pass completes" false crashed;
  check Alcotest.bool "add_document has sequence points" true (total >= 5);
  ignore (assert_pre_or_post "counting pass" fx work);
  let pre = ref 0 and post = ref 0 in
  for at = 0 to total - 1 do
    let seen, crashed = crash_add_at fx work at in
    check Alcotest.int (Printf.sprintf "point %d: crashed at that point" at) (at + 1) seen;
    check Alcotest.bool (Printf.sprintf "point %d: crash fired" at) true crashed;
    let ctx = Printf.sprintf "add_document crash at point %d" at in
    if assert_pre_or_post ctx fx work then incr post else incr pre
  done;
  (* The matrix must witness both resolutions or it proved nothing. *)
  check Alcotest.bool "some crash points roll back" true (!pre > 0);
  check Alcotest.bool "some crash points roll forward" true (!post > 0)

(* ---- add_document crash matrix (manifest byte positions) ---- *)

let test_add_document_truncation_matrix () =
  let fx = make_add_fixture () in
  (* Crash right after the steps were applied but before any flush: the
     manifest holds Begin..Commit and the tables hold nothing durable,
     so every truncation point of MANIFEST.mf decides pre vs post. *)
  let crashed_dir = temp_dir () in
  let at =
    (* find the "applied" point of the add_document op *)
    let points = ref [] in
    copy_dir fx.pristine crashed_dir;
    let env = Trex.Env.on_disk crashed_dir in
    let engine = Trex.attach ~env () in
    Env.set_op_hook (Some (fun p -> points := p :: !points));
    ignore (Trex.add_document engine ~name:"crash-doc" ~xml:fx.doc_xml);
    Env.set_op_hook None;
    Trex.Env.close env;
    let points = List.rev !points in
    let rec find i = function
      | [] -> Alcotest.fail "no applied point"
      | p :: _ when p = "op:add_document:applied" -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 points
  in
  let _seen, crashed = crash_add_at fx crashed_dir at in
  check Alcotest.bool "crashed at applied" true crashed;
  let mf = Filename.concat crashed_dir "MANIFEST.mf" in
  let total = file_length mf in
  check Alcotest.bool "manifest non-trivial" true (total > 64);
  let work = temp_dir () in
  let stride = if soak_seeds () > 2 then 4 else 16 in
  let lens =
    (* every byte of the tail (the Commit record region), strided
       earlier positions, and the exact ends *)
    let l = ref [] in
    let add x = if x >= 0 && x <= total && not (List.mem x !l) then l := x :: !l in
    for i = 0 to 64 do add (total - i) done;
    let i = ref 0 in
    while !i < total do
      add !i;
      i := !i + stride
    done;
    List.sort compare !l
  in
  let pre = ref 0 and post = ref 0 in
  List.iter
    (fun len ->
      copy_dir crashed_dir work;
      truncate_file (Filename.concat work "MANIFEST.mf") len;
      let ctx = Printf.sprintf "manifest truncated to %d bytes" len in
      if assert_pre_or_post ctx fx work then incr post else incr pre)
    lens;
  check Alcotest.bool "truncation matrix reaches pre state" true (!pre > 0);
  check Alcotest.bool "truncation matrix reaches post state" true (!post > 0)

(* ---- materialize (Rpl.build) crash matrix ---- *)

let test_materialize_crash_matrix () =
  let pristine = temp_dir () in
  let env, engine = build_collection pristine ~docs:6 ~seed:23 in
  let pre_sig = era_sig engine in
  Trex.Env.close env;
  let work = temp_dir () in
  let run at =
    copy_dir pristine work;
    let env = Trex.Env.on_disk work in
    let engine = Trex.attach ~env () in
    let r = run_with_crash_at at (fun () -> ignore (Trex.materialize engine nexi)) in
    Env.abort env;
    r
  in
  let total, crashed = run max_int in
  check Alcotest.bool "counting pass completes" false crashed;
  check Alcotest.bool "materialize has sequence points" true (total >= 4);
  let committed = ref 0 and rolled_back = ref 0 in
  for at = 0 to total - 1 do
    let _, crashed = run at in
    check Alcotest.bool (Printf.sprintf "point %d: crash fired" at) true crashed;
    let ctx = Printf.sprintf "materialize crash at point %d" at in
    let env, reports = Env.open_with_recovery work in
    assert_verify_clean ctx reports;
    check Alcotest.int (ctx ^ ": nothing unresolved") 0 (Env.manifest_unresolved env);
    let engine = Trex.attach ~env () in
    let t = Trex.translate engine (Trex.parse engine nexi) in
    let sids = Trex.Translate.all_sids t and terms = Trex.Translate.all_terms t in
    let covers kind = Rpl.covers (Trex.index engine) kind ~sids ~terms in
    let empty kind = Rpl.catalog (Trex.index engine) kind = [] in
    (* Per kind: the build either committed whole or was rolled back
       whole — a catalog advertising a partial generation is the bug. *)
    List.iter
      (fun kind ->
        check Alcotest.bool
          (Printf.sprintf "%s: %s lists all-or-nothing" ctx (Rpl.kind_to_string kind))
          true
          (covers kind || empty kind);
        if covers kind then incr committed else incr rolled_back)
      [ Rpl.Rpl; Rpl.Erpl ];
    (* Ground truth is untouched either way. *)
    check sig_testable (ctx ^ ": ERA answers unchanged") pre_sig (era_sig engine);
    (* And the resilient path serves the query whatever survived. *)
    let o = Trex.query engine ~k:5 nexi in
    check sig_testable (ctx ^ ": resilient answers unchanged") pre_sig (sig_of o);
    Trex.Env.close env
  done;
  check Alcotest.bool "matrix saw committed builds" true (!committed > 0);
  check Alcotest.bool "matrix saw rolled-back builds" true (!rolled_back > 0)

(* ---- Advisor.apply crash matrix ---- *)

let test_advisor_apply_crash_matrix () =
  let pristine = temp_dir () in
  let env, engine = build_collection pristine ~docs:6 ~seed:31 in
  let pre_sig = era_sig engine in
  (* Plan once (measurement passes drop/build lists; do it on the
     pristine env so crash runs only replay [apply]). *)
  let t = Trex.translate engine (Trex.parse engine nexi) in
  let workload =
    Trex.Workload.create
      [
        {
          Trex.Workload.id = "q1";
          sids = Trex.Translate.all_sids t;
          terms = Trex.Translate.all_terms t;
          k = 5;
          frequency = 1.0;
        };
      ]
  in
  let plan, profiles = Trex.advise engine ~workload ~budget:max_int ~runs:1 () in
  Trex.vacuum engine;
  Trex.Env.close env;
  check Alcotest.bool "plan selects an index" true
    (List.exists (fun (_, c) -> c <> Trex.Advisor.No_index) plan.Trex.Advisor.decisions);
  let work = temp_dir () in
  let run at =
    copy_dir pristine work;
    let env = Trex.Env.on_disk work in
    let engine = Trex.attach ~env () in
    let r =
      run_with_crash_at at (fun () ->
          Trex.Advisor.apply (Trex.index engine) ~scoring:(Trex.scoring engine)
            ~workload ~profiles plan)
    in
    Env.abort env;
    r
  in
  let total, crashed = run max_int in
  check Alcotest.bool "counting pass completes" false crashed;
  check Alcotest.bool "apply has sequence points" true (total >= 6);
  for at = 0 to total - 1 do
    let _, crashed = run at in
    check Alcotest.bool (Printf.sprintf "point %d: crash fired" at) true crashed;
    let ctx = Printf.sprintf "advisor apply crash at point %d" at in
    let env, reports = Env.open_with_recovery work in
    assert_verify_clean ctx reports;
    check Alcotest.int (ctx ^ ": nothing unresolved") 0 (Env.manifest_unresolved env);
    let engine = Trex.attach ~env () in
    (* Every list a catalog still advertises must be fully readable:
       a cursor over it drains without error. *)
    List.iter
      (fun kind ->
        List.iter
          (fun (term, sid, entries, _) ->
            let c = Rpl.Cursor.create (Trex.index engine) kind ~term ~sids:[ sid ] in
            let n = ref 0 in
            while Rpl.Cursor.next c <> None do incr n done;
            check Alcotest.int
              (Printf.sprintf "%s: %s list (%s, %d) complete" ctx
                 (Rpl.kind_to_string kind) term sid)
              entries !n)
          (Rpl.catalog (Trex.index engine) kind))
      [ Rpl.Rpl; Rpl.Erpl ];
    check sig_testable (ctx ^ ": answers unchanged") pre_sig (era_sig engine);
    Trex.Env.close env
  done

(* ---- Autopilot.maybe_heal interrupted mid-rebuild ---- *)

let test_heal_interrupted_converges () =
  (* In-memory env: the interruption is in-process (the breaker layer's
     concern), not a process crash. *)
  let coll = Trex_corpus.Gen.ieee ~doc_count:10 ~seed:47 () in
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
  ignore (Trex.materialize engine nexi);
  let baseline = Trex.query engine ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  let pilot =
    Trex.Autopilot.create (Trex.index engine) ~scoring:(Trex.scoring engine)
      ~budget:max_int ()
  in
  let t = Trex.translate engine (Trex.parse engine nexi) in
  Trex.Autopilot.record pilot ~id:nexi ~sids:(Trex.Translate.all_sids t)
    ~terms:(Trex.Translate.all_terms t) ~k:5;
  Env.trip_table env "rpls" ~reason:"injected for the interruption test";
  Breaker.set_cooldown (Env.breaker env "rpls") 0.0;
  (* First heal attempt: crash inside the rebuild's table writes. *)
  Env.set_op_hook
    (Some
       (fun point ->
         if point = "op:rpl_build:flushed:rpls" then
           raise (Pager.Injected_crash ("hook:" ^ point))));
  (match
     Fun.protect
       ~finally:(fun () -> Env.set_op_hook None)
       (fun () -> Trex.Autopilot.maybe_heal pilot)
   with
  | [ { Trex.Autopilot.action = Trex.Autopilot.Still_failing _; _ } ] -> ()
  | reports ->
      Alcotest.failf "expected one still-failing report, got %d"
        (List.length reports));
  (* The interruption must leave the pair quarantined, not half-built.
     (The breaker's cooldown is 0 here, so [table_available] would
     admit a half-open probe; the state is what must not be Closed.) *)
  Alcotest.(check bool) "breaker stays open" true
    (Breaker.state (Env.breaker env "rpls") <> Breaker.Closed);
  check Alcotest.int "rpls left empty, not half-rebuilt" 0
    (List.length (Rpl.catalog (Trex.index engine) Rpl.Rpl));
  (* Next pass (cooldown elapsed) converges: rebuild completes. *)
  Breaker.set_cooldown (Env.breaker env "rpls") 0.0;
  Breaker.set_cooldown (Env.breaker env "rpl_catalog") 0.0;
  (match Trex.Autopilot.maybe_heal pilot with
  | [ { Trex.Autopilot.action = Trex.Autopilot.Rebuilt _; _ } ] -> ()
  | reports ->
      Alcotest.failf "expected one rebuilt report, got %d" (List.length reports));
  Alcotest.(check bool) "breaker closed" true (Env.table_available env "rpls");
  check Alcotest.int "nothing left to heal" 0
    (List.length (Trex.Autopilot.maybe_heal pilot));
  let after = Trex.query engine ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  check sig_testable "TA serves exactly as before the damage" (sig_of baseline)
    (sig_of after)

(* ---- stale generation blocks cursors, verify flags it ---- *)

let test_unresolved_blocks_generation () =
  let dir = temp_dir () in
  let env, engine = build_collection dir ~docs:6 ~seed:59 in
  ignore (Trex.materialize engine nexi);
  let pre_sig = era_sig engine in
  Trex.Env.close env;
  (* Forge a committed operation whose replay cannot succeed (a step
     into an invalid table name): recovery must leave it pending,
     block its tables, and refuse to serve their lists. *)
  let m = Manifest.open_file (Filename.concat dir "MANIFEST.mf") in
  let op_id = Manifest.fresh_op_id m in
  Manifest.append m
    (Manifest.Begin
       {
         op_id;
         op = "forged";
         tables = [ "rpls"; "rpl_catalog" ];
         rollback = [];
         generation = Manifest.next_generation m;
       });
  Manifest.append m
    (Manifest.Step
       { op_id; action = Manifest.Put { table = "no/such table"; key = "k"; value = "v" } });
  Manifest.append m (Manifest.Commit { op_id });
  Manifest.sync m;
  Manifest.close m;
  let env, reports = Env.open_with_recovery dir in
  check Alcotest.int "one unresolved op" 1 (Env.manifest_unresolved env);
  check Alcotest.bool "rpls blocked" true (Env.table_blocked env "rpls");
  check Alcotest.bool "unrelated table not blocked" false
    (Env.table_blocked env "elements");
  (* The blocked table's report is demoted so operators see it. *)
  let rpls_report =
    List.find (fun (r : Env.table_report) -> r.Env.table = "rpls") reports
  in
  check Alcotest.bool "blocked table reported not-ok" false rpls_report.Env.ok;
  let engine = Trex.attach ~env () in
  let t = Trex.translate engine (Trex.parse engine nexi) in
  let terms = Trex.Translate.all_terms t and sids = Trex.Translate.all_sids t in
  (* Cursors refuse the uncommitted generation... *)
  (match Rpl.Cursor.create (Trex.index engine) Rpl.Rpl ~term:(List.hd terms) ~sids with
  | exception Rpl.Stale_generation { table = "rpls"; _ } -> ()
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "cursor served a blocked table");
  (* ...and the resilient path routes around them with right answers. *)
  let o = Trex.query engine ~k:5 nexi in
  check sig_testable "blocked lists never reach answers" pre_sig (sig_of o);
  Trex.Env.close env

(* ---- satellite: directory fsync after unlink ---- *)

let test_drop_table_syncs_directory () =
  let dir = temp_dir () in
  let env = Trex.Env.on_disk dir in
  let t = Env.table env "doomed" in
  Bptree.insert t ~key:"k" ~value:"v";
  Env.flush ~sync:true env;
  let path = Filename.concat dir "doomed.tbl" in
  check Alcotest.bool "table file exists" true (Sys.file_exists path);
  let d0 = Metrics.value (Metrics.counter "env.dir_fsyncs") in
  Env.drop_table env "doomed";
  check Alcotest.bool "drop fsyncs the directory" true
    (Metrics.value (Metrics.counter "env.dir_fsyncs") > d0);
  check Alcotest.bool "file unlinked" false (Sys.file_exists path);
  let t2 = Env.table env "doomed2" in
  Bptree.insert t2 ~key:"k" ~value:"v";
  Env.flush ~sync:true env;
  let d1 = Metrics.value (Metrics.counter "env.dir_fsyncs") in
  Env.quarantine_table env "doomed2";
  check Alcotest.bool "quarantine fsyncs the directory" true
    (Metrics.value (Metrics.counter "env.dir_fsyncs") > d1);
  Trex.Env.close env;
  (* The deletion is durable: a reopen cannot resurrect the table. *)
  let env2 = Trex.Env.on_disk dir in
  check Alcotest.bool "dropped table stays dropped" false (Env.has_table env2 "doomed");
  check Alcotest.bool "quarantined table stays dropped" false
    (Env.has_table env2 "doomed2");
  Trex.Env.close env2

(* ---- manifest compaction at open ---- *)

let test_manifest_compacts_at_open () =
  let dir = temp_dir () in
  let env, engine = build_collection dir ~docs:4 ~seed:71 in
  ignore (Trex.add_document engine ~name:"extra" ~xml:"<a><b>word</b></a>");
  ignore (Trex.materialize engine nexi);
  let gen = Env.generation env in
  check Alcotest.bool "operations committed generations" true (gen >= 2);
  Trex.Env.close env;
  let env2 = Trex.Env.on_disk dir in
  check Alcotest.int "generation survives reopen" gen (Env.generation env2);
  check Alcotest.int "resolved history compacted to a checkpoint" 1
    (Manifest.length (Env.manifest env2));
  check Alcotest.bool "manifest file shrunk" true
    (file_length (Filename.concat dir "MANIFEST.mf") < 128);
  Trex.Env.close env2

let () =
  Alcotest.run "trex_manifest"
    [
      ( "framing",
        [
          Alcotest.test_case "record roundtrip + reopen" `Quick test_roundtrip;
          Alcotest.test_case "pending classification" `Quick
            test_pending_classification;
          Alcotest.test_case "torn tail matrix" `Quick test_torn_tail_matrix;
          Alcotest.test_case "corrupt frame skipped" `Quick
            test_corrupt_frame_skipped;
          Alcotest.test_case "compact to checkpoint" `Quick test_compact_checkpoint;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "run_logged_op applies steps" `Quick
            test_run_logged_op_applies;
          Alcotest.test_case "manifest compacts at open" `Quick
            test_manifest_compacts_at_open;
          Alcotest.test_case "dir fsync after unlink" `Quick
            test_drop_table_syncs_directory;
        ] );
      ( "crash-matrix",
        [
          Alcotest.test_case "add_document hook points" `Slow
            test_add_document_crash_matrix;
          Alcotest.test_case "add_document manifest bytes" `Slow
            test_add_document_truncation_matrix;
          Alcotest.test_case "materialize hook points" `Slow
            test_materialize_crash_matrix;
          Alcotest.test_case "advisor apply hook points" `Slow
            test_advisor_apply_crash_matrix;
        ] );
      ( "generations",
        [
          Alcotest.test_case "heal interruption converges" `Quick
            test_heal_interrupted_converges;
          Alcotest.test_case "unresolved op blocks generation" `Quick
            test_unresolved_blocks_generation;
        ] );
    ]
