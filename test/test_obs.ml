(* Tests for trex_obs: the metrics registry, span tracing, and the
   hand-rolled JSON printer/parser the observability output rides on. *)

module Metrics = Trex_obs.Metrics
module Span = Trex_obs.Span
module Json = Trex_obs.Json
module Bench_compare = Trex_obs.Bench_compare

let check = Alcotest.check

(* ---- metrics: counters ---- *)

let test_counter_basic () =
  let c = Metrics.counter "test.counter.basic" in
  let v0 = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "incr+add" (v0 + 5) (Metrics.value c);
  (* Same name resolves to the same cell. *)
  let c' = Metrics.counter "test.counter.basic" in
  Metrics.incr c';
  check Alcotest.int "aliased handle" (v0 + 6) (Metrics.value c)

let test_counter_listed () =
  ignore (Metrics.counter "test.counter.listed");
  let names = List.map fst (Metrics.counters ()) in
  Alcotest.(check bool) "registered name appears" true
    (List.mem "test.counter.listed" names);
  let sorted = List.sort String.compare names in
  check (Alcotest.list Alcotest.string) "sorted by name" sorted names

let test_counters_with_prefix () =
  ignore (Metrics.counter "test.prefix.a");
  ignore (Metrics.counter "test.prefix.b");
  let hits = Metrics.counters_with_prefix "test.prefix." in
  check Alcotest.int "both found" 2 (List.length hits)

let test_registry_reset_keeps_handles () =
  let c = Metrics.counter "test.counter.reset" in
  Metrics.add c 7;
  Metrics.reset ();
  check Alcotest.int "zeroed" 0 (Metrics.value c);
  Metrics.incr c;
  check Alcotest.int "handle still live" 1 (Metrics.value c);
  Alcotest.(check bool) "registry sees the bump" true
    (List.assoc_opt "test.counter.reset" (Metrics.counters ()) = Some 1)

(* ---- metrics: gauges ---- *)

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  check (Alcotest.float 0.0) "set/read" 2.5 (Metrics.gauge_value g);
  Metrics.set g (-1.0);
  check (Alcotest.float 0.0) "overwrite" (-1.0) (Metrics.gauge_value g)

(* ---- metrics: histograms ---- *)

let test_histogram_snapshot () =
  let h = Metrics.histogram "test.hist.snapshot" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let s = Metrics.histogram_snapshot h in
  check Alcotest.int "n" 4 s.Metrics.n;
  check (Alcotest.float 1e-9) "sum" 10.0 s.Metrics.sum;
  check (Alcotest.float 0.0) "min" 1.0 s.Metrics.min;
  check (Alcotest.float 0.0) "max" 4.0 s.Metrics.max

let test_histogram_quantiles_bounded () =
  let h = Metrics.histogram "test.hist.quantiles" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  (* Log buckets only estimate, but quantiles must stay ordered, inside
     the observed range, and the median must sit in a sane band. *)
  let q50 = Metrics.quantile h 0.5
  and q95 = Metrics.quantile h 0.95
  and q99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool) "ordered" true (q50 <= q95 && q95 <= q99);
  Alcotest.(check bool) "in range" true (q50 >= 1.0 && q99 <= 1000.0);
  Alcotest.(check bool) "median sane" true (q50 >= 250.0 && q50 <= 1000.0)

let test_histogram_empty () =
  let h = Metrics.histogram "test.hist.empty" in
  check (Alcotest.float 0.0) "empty quantile" 0.0 (Metrics.quantile h 0.5);
  List.iter
    (fun q -> check (Alcotest.float 0.0) "every q defined" 0.0 (Metrics.quantile h q))
    [ 0.0; 0.01; 0.99; 1.0 ];
  check Alcotest.int "empty n" 0 (Metrics.histogram_snapshot h).Metrics.n

let test_histogram_single_sample () =
  (* A single sample must come back exactly — never a log-bucket
     midpoint — at every quantile, including values far outside the
     bucket grid's sweet spot. *)
  List.iteri
    (fun i v ->
      let h = Metrics.histogram (Printf.sprintf "test.hist.single.%d" i) in
      Metrics.observe h v;
      List.iter
        (fun q ->
          check (Alcotest.float 0.0)
            (Printf.sprintf "sample %g at q=%g" v q)
            v (Metrics.quantile h q))
        [ 0.0; 0.5; 0.95; 1.0 ];
      let s = Metrics.histogram_snapshot h in
      check (Alcotest.float 0.0) "p50 snapshot" v s.Metrics.p50;
      check (Alcotest.float 0.0) "p99 snapshot" v s.Metrics.p99)
    [ 0.37; 1e-12; 5e9; 1.0 ]

(* ---- spans ---- *)

let with_tracing f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let test_span_disabled_is_transparent () =
  Span.reset ();
  Span.set_enabled false;
  check Alcotest.int "result flows through" 42 (Span.with_ ~name:"off" (fun () -> 42));
  check Alcotest.int "nothing recorded" 0 (List.length (Span.roots ()))

let test_span_nesting () =
  with_tracing (fun () ->
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner1" (fun () -> ());
          Span.with_ ~name:"inner2" (fun () -> ()));
      match Span.roots () with
      | [ root ] ->
          check Alcotest.string "root name" "outer" root.Span.name;
          check
            (Alcotest.list Alcotest.string)
            "children in order" [ "inner1"; "inner2" ]
            (List.map (fun (s : Span.t) -> s.Span.name) root.Span.children);
          Alcotest.(check bool) "root covers children" true
            (root.Span.seconds
            >= List.fold_left
                 (fun a (s : Span.t) -> a +. s.Span.seconds)
                 0.0 root.Span.children
               -. 1e-3)
      | roots -> Alcotest.failf "expected one root, got %d" (List.length roots))

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try Span.with_ ~name:"boom" (fun () -> failwith "boom") with Failure _ -> ());
      Span.with_ ~name:"after" (fun () -> ());
      check
        (Alcotest.list Alcotest.string)
        "both recorded at top level" [ "boom"; "after" ]
        (List.map (fun (s : Span.t) -> s.Span.name) (Span.roots ())))

let test_span_feeds_histogram () =
  with_tracing (fun () ->
      let snap () =
        Metrics.histogram_snapshot (Metrics.histogram "span.obs-test.ms")
      in
      let n0 = (snap ()).Metrics.n in
      Span.with_ ~name:"obs-test" (fun () -> Unix.sleepf 0.002);
      let s = snap () in
      check Alcotest.int "one observation" (n0 + 1) s.Metrics.n;
      (* The histogram is in milliseconds: a 2 ms sleep must record at
         least 1 ms (and well under a second's worth of ms). *)
      Alcotest.(check bool) "ms scale" true
        (s.Metrics.max >= 1.0 && s.Metrics.max < 1000.0))

let test_span_attrs () =
  with_tracing (fun () ->
      Span.with_ ~name:"attributed"
        ~attrs:[ ("strategy", "ta"); ("k", "10") ]
        (fun () -> ());
      match Span.roots () with
      | [ root ] -> (
          check
            (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
            "attrs kept" [ ("strategy", "ta"); ("k", "10") ]
            root.Span.attrs;
          let json = Span.to_json [ root ] in
          match Json.parse (Json.to_string json) with
          | Json.List [ j ] ->
              Alcotest.(check bool) "attrs serialized" true
                (match Json.member "attrs" j with
                | Some (Json.Obj fields) ->
                    List.assoc_opt "strategy" fields = Some (Json.String "ta")
                    && List.assoc_opt "k" fields = Some (Json.String "10")
                | _ -> false)
          | _ -> Alcotest.fail "unexpected json shape")
      | roots -> Alcotest.failf "expected one root, got %d" (List.length roots))

let test_span_last_and_summarize () =
  with_tracing (fun () ->
      check (Alcotest.option Alcotest.string) "empty after reset" None
        (Option.map (fun (s : Span.t) -> s.Span.name) (Span.last ()));
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"mid" (fun () -> Span.with_ ~name:"leaf" (fun () -> ())));
      match Span.last () with
      | None -> Alcotest.fail "no last span"
      | Some s ->
          check Alcotest.string "last is the outermost completed" "outer"
            s.Span.name;
          check
            (Alcotest.list Alcotest.string)
            "paths depth-first"
            [ "outer"; "outer/mid"; "outer/mid/leaf" ]
            (List.map fst (Span.summarize s));
          (* Truncation is visible: the cap keeps max_entries path
             entries and appends one sentinel counting the dropped
             spans. *)
          match List.rev (Span.summarize ~max_entries:2 s) with
          | (sentinel, dropped) :: kept ->
              check Alcotest.int "max_entries caps" 2 (List.length kept);
              check Alcotest.string "sentinel appended" "…truncated" sentinel;
              check (Alcotest.float 0.0) "dropped count" 1.0 dropped
          | [] -> Alcotest.fail "summarize returned nothing")

let test_span_json () =
  with_tracing (fun () ->
      Span.with_ ~name:"a" (fun () -> Span.with_ ~name:"b" (fun () -> ()));
      let json = Span.to_json (Span.roots ()) in
      (* Round-trips through the printer/parser and keeps the shape. *)
      match Json.parse (Json.to_string ~pretty:true json) with
      | Json.List [ root ] ->
          check
            (Alcotest.option Alcotest.string)
            "name field" (Some "a")
            (match Json.member "name" root with
            | Some (Json.String s) -> Some s
            | _ -> None)
      | _ -> Alcotest.fail "unexpected shape")

let test_span_of_json_roundtrip () =
  let leaf =
    {
      Span.name = "leaf";
      seconds = 0.002;
      start_s = 50.25;
      attrs = [ ("pid", "77") ];
      children = [];
    }
  in
  let root =
    {
      Span.name = "root";
      seconds = 0.004;
      start_s = 50.0;
      attrs = [];
      children = [ leaf ];
    }
  in
  (match Span.of_json (Span.to_json [ root ]) with
  | [ r ] ->
      check Alcotest.string "root name" "root" r.Span.name;
      check (Alcotest.float 1e-12) "seconds" 0.004 r.Span.seconds;
      check (Alcotest.float 1e-12) "start" 50.0 r.Span.start_s;
      (match r.Span.children with
      | [ l ] ->
          check Alcotest.string "leaf name" "leaf" l.Span.name;
          check
            (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
            "leaf attrs" [ ("pid", "77") ] l.Span.attrs
      | _ -> Alcotest.fail "children lost")
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  (* Lenient decode: malformed nodes are skipped, never raised on. *)
  check Alcotest.int "non-list decodes empty" 0
    (List.length (Span.of_json (Json.String "junk")));
  match Json.parse {|[{"ms": 3.0}, {"name": "ok", "ms": 1.0}]|} with
  | j ->
      check Alcotest.int "nameless node skipped" 1 (List.length (Span.of_json j))

(* ---- metrics: cross-process delta/absorb ---- *)

let test_counters_delta_and_absorb () =
  let a = Metrics.counter "test.delta.a" in
  let b = Metrics.counter "test.delta.b" in
  let before = Metrics.counters () in
  Metrics.add a 5;
  Metrics.add b 2;
  let delta = Metrics.counters_delta before (Metrics.counters ()) in
  check Alcotest.int "a moved by 5" 5 (List.assoc "test.delta.a" delta);
  check Alcotest.int "b moved by 2" 2 (List.assoc "test.delta.b" delta);
  Alcotest.(check bool) "unmoved counters dropped" false
    (List.exists (fun (n, _) -> n = "test.counter.basic") delta);
  (* Absorbing a worker's delta: merged total plus a per-source view. *)
  let va = Metrics.value a in
  Metrics.absorb_counters ~prefix:"worker.s0." delta;
  check Alcotest.int "merged total" (va + 5) (Metrics.value a);
  check Alcotest.int "per-source view" 5
    (Metrics.value (Metrics.counter "worker.s0.test.delta.a"))

(* ---- Chrome trace export ---- *)

let test_chrome_trace_export () =
  let module Export = Trex_obs.Export in
  let worker_span =
    {
      Span.name = "shard.query.shard-000";
      seconds = 0.002;
      start_s = 100.001;
      attrs = [ ("pid", "4343"); ("shard", "shard-000") ];
      children = [];
    }
  in
  let root =
    {
      Span.name = "supervisor.query";
      seconds = 0.005;
      start_s = 100.0;
      attrs = [ ("k", "5") ];
      children =
        [
          {
            Span.name = "supervisor.worker";
            seconds = 0.003;
            start_s = 100.0005;
            attrs = [ ("worker", "shard-000"); ("worker_pid", "4343") ];
            children = [ worker_span ];
          };
        ];
    }
  in
  let doc =
    Export.chrome_trace
      [ { Export.p_pid = 1000; p_name = "coordinator"; p_spans = [ root ] } ]
  in
  (* The document survives its own printer and has the catapult shape. *)
  let doc = Json.parse (Json.to_string ~pretty:true doc) in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let complete =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.String "X"))
      events
  in
  check Alcotest.int "three complete events" 3 (List.length complete);
  let pid_of e =
    match Json.member "pid" e with Some (Json.Int p) -> p | _ -> -1 in
  let pids = List.sort_uniq compare (List.map pid_of complete) in
  check (Alcotest.list Alcotest.int)
    "coordinator and worker pids both present" [ 1000; 4343 ] pids;
  (* supervisor.worker stays on the coordinator track; the worker's own
     span re-homes to its pid. *)
  let find name =
    List.find
      (fun e -> Json.member "name" e = Some (Json.String name))
      complete
  in
  check Alcotest.int "round trip on coordinator track" 1000
    (pid_of (find "supervisor.worker"));
  check Alcotest.int "worker span on worker track" 4343
    (pid_of (find "shard.query.shard-000"));
  (* Timestamps are normalized to the earliest start, in microseconds. *)
  let ts_of e =
    match Json.member "ts" e with
    | Some (Json.Float ts) -> ts
    | Some (Json.Int ts) -> float_of_int ts
    | _ -> Alcotest.fail "no ts"
  in
  check (Alcotest.float 1e-6) "t0 is zero" 0.0 (ts_of (find "supervisor.query"));
  check (Alcotest.float 1e-3) "offset in us" 1000.0
    (ts_of (find "shard.query.shard-000"));
  (* Metadata names both processes. *)
  let metadata =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.String "M"))
      events
  in
  check Alcotest.int "one process_name per pid" 2 (List.length metadata)

(* ---- JSON ---- *)

let test_json_roundtrip () =
  (* Exactly-representable floats so parse (to_string x) = x holds. *)
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("string", Json.String "a \"quoted\"\nline\twith \\ and unicode \xc3\xa9");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "compact roundtrip" true (Json.parse (Json.to_string doc) = doc);
  Alcotest.(check bool) "pretty roundtrip" true
    (Json.parse (Json.to_string ~pretty:true doc) = doc)

let test_json_non_finite_floats () =
  check Alcotest.string "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad s =
    match Json.parse_result s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "flase");
  Alcotest.(check bool) "unclosed list" true (bad "[1, 2")

let test_json_escapes_and_unicode () =
  check Alcotest.string "escaped output" "\"a\\\"b\\\\c\\nd\""
    (Json.to_string (Json.String "a\"b\\c\nd"));
  (* \u escapes decode to UTF-8. *)
  Alcotest.(check bool) "u00e9 decodes" true
    (Json.parse "\"caf\\u00e9\"" = Json.String "caf\xc3\xa9")

let test_json_member () =
  let doc = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "present" true (Json.member "a" doc = Some (Json.Int 1));
  Alcotest.(check bool) "absent" true (Json.member "b" doc = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 3) = None)

(* ---- bench compare ---- *)

(* A synthetic trex-bench-v1 document: [rows] is
   (query, strategy, k, ms) in document order. *)
let bench_doc ?(section = "synthetic") rows =
  let order = ref [] in
  let by_query = Hashtbl.create 8 in
  List.iter
    (fun (q, strategy, k, ms) ->
      let r =
        Json.Obj
          [
            ("strategy", Json.String strategy);
            ("k", Json.Int k);
            ("ms", Json.Float ms);
            ("counters", Json.Obj []);
          ]
      in
      match Hashtbl.find_opt by_query q with
      | Some l -> l := r :: !l
      | None ->
          order := q :: !order;
          Hashtbl.add by_query q (ref [ r ]))
    rows;
  Json.Obj
    [
      ("schema", Json.String "trex-bench-v1");
      ("section", Json.String section);
      ("quick", Json.Bool true);
      ( "resilience",
        Json.Obj
          [
            ("retries", Json.Int 0);
            ("breaker_trips", Json.Int 0);
            ("degraded_runs", Json.Int 0);
          ] );
      ( "queries",
        Json.Obj
          (List.rev_map
             (fun q -> (q, Json.List (List.rev !(Hashtbl.find by_query q))))
             !order) );
    ]

let baseline_rows =
  [
    ("202", "TA", 10, 1.0);
    ("202", "Merge", 10, 2.0);
    ("203", "TA", 10, 4.0);
    ("203", "ERA", 10, 8.0);
    ("290", "TA", 100, 3.0);
  ]

let report = function
  | Ok r -> r
  | Error e -> Alcotest.failf "compare failed: %s" e

let test_compare_identical () =
  let doc = bench_doc baseline_rows in
  let r = report (Bench_compare.compare_docs ~threshold:0.25 doc doc) in
  Alcotest.(check bool) "not regressed" false r.Bench_compare.regressed;
  check (Alcotest.float 1e-9) "median 1.0" 1.0 r.Bench_compare.median_ratio;
  check Alcotest.int "all matched" 5 r.Bench_compare.matched;
  check Alcotest.int "no regressions" 0
    (List.length r.Bench_compare.regressions)

let test_compare_detects_2x_slowdown () =
  (* The acceptance case: every current row is 2x its baseline. *)
  let base = bench_doc baseline_rows in
  let cur =
    bench_doc (List.map (fun (q, s, k, ms) -> (q, s, k, ms *. 2.0)) baseline_rows)
  in
  let r = report (Bench_compare.compare_docs ~threshold:0.25 base cur) in
  Alcotest.(check bool) "regressed" true r.Bench_compare.regressed;
  check (Alcotest.float 1e-9) "median ratio 2x" 2.0 r.Bench_compare.median_ratio;
  check Alcotest.int "every row listed" 5
    (List.length r.Bench_compare.regressions);
  let worst = List.hd r.Bench_compare.regressions in
  check (Alcotest.float 1e-9) "per-row ratio" 2.0 worst.Bench_compare.ratio

let test_compare_single_outlier_is_reported_not_fatal () =
  let base = bench_doc baseline_rows in
  let cur =
    bench_doc
      (List.map
         (fun (q, s, k, ms) ->
           (q, s, k, if q = "290" then ms *. 10.0 else ms))
         baseline_rows)
  in
  let r = report (Bench_compare.compare_docs ~threshold:0.25 base cur) in
  Alcotest.(check bool) "median verdict holds" false r.Bench_compare.regressed;
  check Alcotest.int "outlier listed" 1 (List.length r.Bench_compare.regressions);
  check Alcotest.string "outlier query" "290"
    (List.hd r.Bench_compare.regressions).Bench_compare.query

let test_compare_min_ms_floor () =
  (* Instrumentation-only rows (ms = 0, like sizes/table1) must not
     produce ratios — even when the current side grew. *)
  let base = bench_doc [ ("202", "TA", 10, 0.0); ("203", "TA", 10, 1.0) ] in
  let cur = bench_doc [ ("202", "TA", 10, 0.04); ("203", "TA", 10, 1.0) ] in
  let r = report (Bench_compare.compare_docs ~threshold:0.25 base cur) in
  check Alcotest.int "matched both" 2 r.Bench_compare.matched;
  check Alcotest.int "compared only the timed row" 1 r.Bench_compare.compared;
  Alcotest.(check bool) "not regressed" false r.Bench_compare.regressed

let test_compare_occurrence_matching () =
  (* Repeated (query, strategy, k) rows — the io section's cache sweep —
     pair positionally, so a swap-free 2x on the second occurrence only
     is attributed to occurrence #1. *)
  let base = bench_doc [ ("io", "ERA", 0, 1.0); ("io", "ERA", 0, 4.0) ] in
  let cur = bench_doc [ ("io", "ERA", 0, 1.0); ("io", "ERA", 0, 8.0) ] in
  let r = report (Bench_compare.compare_docs ~threshold:0.25 base cur) in
  check Alcotest.int "matched both occurrences" 2 r.Bench_compare.matched;
  check Alcotest.int "one regression" 1 (List.length r.Bench_compare.regressions);
  check Alcotest.int "second occurrence flagged" 1
    (List.hd r.Bench_compare.regressions).Bench_compare.occurrence

let test_compare_added_and_missing_rows () =
  let base = bench_doc [ ("202", "TA", 10, 1.0); ("gone", "TA", 10, 1.0) ] in
  let cur = bench_doc [ ("202", "TA", 10, 1.0); ("new", "TA", 10, 1.0) ] in
  let r = report (Bench_compare.compare_docs ~threshold:0.25 base cur) in
  check Alcotest.int "matched" 1 r.Bench_compare.matched;
  check Alcotest.int "baseline-only" 1 r.Bench_compare.only_baseline;
  check Alcotest.int "current-only" 1 r.Bench_compare.only_current

let test_compare_rejects_mismatch () =
  let is_error = function Error _ -> true | Ok _ -> false in
  let a = bench_doc ~section:"alpha" [ ("q", "TA", 10, 1.0) ] in
  let b = bench_doc ~section:"beta" [ ("q", "TA", 10, 1.0) ] in
  Alcotest.(check bool) "section mismatch rejected" true
    (is_error (Bench_compare.compare_docs ~threshold:0.25 a b));
  Alcotest.(check bool) "wrong schema rejected" true
    (is_error
       (Bench_compare.compare_docs ~threshold:0.25
          (Json.Obj [ ("schema", Json.String "nope") ])
          a))

(* ---- metrics to_json ---- *)

let test_metrics_to_json_parses () =
  ignore (Metrics.counter "test.tojson.counter");
  Metrics.observe (Metrics.histogram "test.tojson.hist") 0.5;
  let dump = Json.to_string ~pretty:true (Metrics.to_json ()) in
  match Json.parse dump with
  | parsed ->
      Alcotest.(check bool) "has counters section" true
        (Json.member "counters" parsed <> None);
      Alcotest.(check bool) "has histograms section" true
        (Json.member "histograms" parsed <> None)
  | exception Json.Parse_error msg -> Alcotest.failf "dump does not parse: %s" msg

let () =
  Alcotest.run "trex_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basic" `Quick test_counter_basic;
          Alcotest.test_case "counter listed" `Quick test_counter_listed;
          Alcotest.test_case "counters_with_prefix" `Quick test_counters_with_prefix;
          Alcotest.test_case "delta and absorb" `Quick
            test_counters_delta_and_absorb;
          Alcotest.test_case "reset keeps handles" `Quick
            test_registry_reset_keeps_handles;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
          Alcotest.test_case "histogram quantiles bounded" `Quick
            test_histogram_quantiles_bounded;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "histogram single sample" `Quick
            test_histogram_single_sample;
          Alcotest.test_case "to_json parses" `Quick test_metrics_to_json_parses;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "survives exception" `Quick test_span_survives_exception;
          Alcotest.test_case "feeds histogram" `Quick test_span_feeds_histogram;
          Alcotest.test_case "attrs" `Quick test_span_attrs;
          Alcotest.test_case "last and summarize" `Quick
            test_span_last_and_summarize;
          Alcotest.test_case "to_json" `Quick test_span_json;
          Alcotest.test_case "of_json roundtrip" `Quick
            test_span_of_json_roundtrip;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace events" `Quick
            test_chrome_trace_export;
        ] );
      ( "bench_compare",
        [
          Alcotest.test_case "identical runs pass" `Quick test_compare_identical;
          Alcotest.test_case "2x slowdown detected" `Quick
            test_compare_detects_2x_slowdown;
          Alcotest.test_case "single outlier reported" `Quick
            test_compare_single_outlier_is_reported_not_fatal;
          Alcotest.test_case "min_ms floor" `Quick test_compare_min_ms_floor;
          Alcotest.test_case "occurrence matching" `Quick
            test_compare_occurrence_matching;
          Alcotest.test_case "added and missing rows" `Quick
            test_compare_added_and_missing_rows;
          Alcotest.test_case "schema/section mismatch" `Quick
            test_compare_rejects_mismatch;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite_floats;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "escapes and unicode" `Quick test_json_escapes_and_unicode;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
    ]
