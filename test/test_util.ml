(* Tests for trex_util: codecs, PRNG, Zipf, heap, stop-clock, counters. *)

module Codec = Trex_util.Codec
module Prng = Trex_util.Prng
module Zipf = Trex_util.Zipf
module Heap = Trex_util.Heap
module Stopclock = Trex_util.Stopclock
module Counters = Trex_util.Counters
module Framing = Trex_util.Framing

let check = Alcotest.check

(* ---- codec unit tests ---- *)

let test_int_key_roundtrip () =
  List.iter
    (fun n ->
      let k = Codec.key_of_int n in
      check Alcotest.int "8 bytes" 8 (String.length k);
      let n', next = Codec.int_of_key k ~pos:0 in
      check Alcotest.int "roundtrip" n n';
      check Alcotest.int "consumed" 8 next)
    [ 0; 1; -1; 42; max_int; min_int; 1 lsl 40; -(1 lsl 40) ]

let test_int_key_order () =
  let pairs = [ (min_int, -1); (-1, 0); (0, 1); (1, max_int); (-500, 500) ] in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d < %d" a b)
        true
        (String.compare (Codec.key_of_int a) (Codec.key_of_int b) < 0))
    pairs

let test_string_key_escaping () =
  let s = "a\x00b\x00\x00c" in
  let k = Codec.key_of_string s in
  let s', _ = Codec.string_of_key k ~pos:0 in
  check Alcotest.string "NUL roundtrip" s s'

let test_string_key_prefix_free () =
  (* "ab" vs "ab\x00c": neither encoded key may be a prefix of the other
     in a way that breaks composite ordering. *)
  let a = Codec.key_of_string "ab" and b = Codec.key_of_string "abc" in
  Alcotest.(check bool) "ab < abc" true (String.compare a b < 0);
  let a2 = Codec.concat_keys [ Codec.key_of_string "ab"; Codec.key_of_int 9 ] in
  let b2 = Codec.concat_keys [ Codec.key_of_string "abc"; Codec.key_of_int 0 ] in
  Alcotest.(check bool) "composite order follows first field" true
    (String.compare a2 b2 < 0)

let test_float_key_order () =
  let vals = [ -1e10; -1.5; -0.0; 0.0; 1e-9; 1.0; 3.14; 1e10 ] in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        if a < b then
          Alcotest.(check bool)
            (Printf.sprintf "%g < %g" a b)
            true
            (String.compare (Codec.key_of_float a) (Codec.key_of_float b) < 0);
        pairs rest
    | _ -> ()
  in
  pairs vals

let test_varint_roundtrip () =
  let b = Codec.Buf.create () in
  let values = [ 0; 1; -1; 63; 64; -64; 1000000; -1000000; max_int / 2 ] in
  List.iter (Codec.Buf.add_varint b) values;
  let r = Codec.Reader.of_string (Codec.Buf.contents b) in
  List.iter
    (fun v -> check Alcotest.int "varint" v (Codec.Reader.varint r))
    values;
  Alcotest.(check bool) "at end" true (Codec.Reader.at_end r)

let test_buf_string_float () =
  let b = Codec.Buf.create () in
  Codec.Buf.add_string b "hello";
  Codec.Buf.add_float b 2.5;
  Codec.Buf.add_string b "";
  let r = Codec.Reader.of_string (Codec.Buf.contents b) in
  check Alcotest.string "string" "hello" (Codec.Reader.string r);
  check (Alcotest.float 0.0) "float" 2.5 (Codec.Reader.float r);
  check Alcotest.string "empty string" "" (Codec.Reader.string r)

let test_reader_truncated () =
  let r = Codec.Reader.of_string "\x05ab" in
  Alcotest.check_raises "truncated string" Codec.Reader.Truncated (fun () ->
      ignore (Codec.Reader.string r))

(* ---- codec property tests ---- *)

let prop_int_key_order =
  QCheck.Test.make ~name:"int key order matches int order" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let ka = Codec.key_of_int a and kb = Codec.key_of_int b in
      compare a b = compare (String.compare ka kb) 0 |> ignore;
      (* signum comparison *)
      let sgn x = compare x 0 in
      sgn (compare a b) = sgn (String.compare ka kb))

let prop_string_key_order =
  QCheck.Test.make ~name:"string key order matches string order" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 20)) (string_of_size Gen.(0 -- 20)))
    (fun (a, b) ->
      let sgn x = compare x 0 in
      sgn (String.compare a b)
      = sgn (String.compare (Codec.key_of_string a) (Codec.key_of_string b)))

let prop_string_key_roundtrip =
  QCheck.Test.make ~name:"string key roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 40))
    (fun s ->
      let decoded, _ = Codec.string_of_key (Codec.key_of_string s) ~pos:0 in
      decoded = s)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500 QCheck.int (fun n ->
      let b = Codec.Buf.create () in
      Codec.Buf.add_varint b n;
      Codec.Reader.varint (Codec.Reader.of_string (Codec.Buf.contents b)) = n)

let prop_float_key_order =
  QCheck.Test.make ~name:"float key order matches float order" ~count:500
    QCheck.(pair (float_bound_exclusive 1e15) (float_bound_exclusive 1e15))
    (fun (a, b) ->
      let sgn x = compare x 0 in
      sgn (compare a b)
      = sgn (String.compare (Codec.key_of_float a) (Codec.key_of_float b)))

(* ---- PRNG ---- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 50 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Prng.float rng 3.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.0)
  done

let test_prng_split_independent () =
  let a = Prng.create 99 in
  let b = Prng.split a in
  let va = Prng.int a 1000000 in
  let vb = Prng.int b 1000000 in
  Alcotest.(check bool) "streams differ" true (va <> vb)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 3 in
  let arr = Array.init 30 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 30 (fun i -> i)) sorted

(* ---- Zipf ---- *)

let test_zipf_rank0_most_frequent () =
  let z = Zipf.create 100 in
  let rng = Prng.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank0 beats rank10" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank1 beats rank50" true (counts.(1) > counts.(50))

let test_zipf_mass_sums_to_one () =
  let z = Zipf.create 50 in
  let total = ref 0.0 in
  for r = 0 to 49 do
    total := !total +. Zipf.expected_frequency z r
  done;
  check (Alcotest.float 1e-9) "mass" 1.0 !total

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create") (fun () ->
      ignore (Zipf.create 0))

(* ---- Heap ---- *)

module Int_heap = Heap.Make (Int)

let test_heap_basic () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check Alcotest.int "length" 6 (Int_heap.length h);
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Int_heap.peek h);
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 5; 8; 9 ]
    (Int_heap.to_sorted_list h)

let test_heap_push_pop () =
  let h = Int_heap.create () in
  check Alcotest.int "push_pop empty" 7 (Int_heap.push_pop h 7);
  List.iter (Int_heap.push h) [ 4; 6 ];
  check Alcotest.int "push_pop below min" 1 (Int_heap.push_pop h 1);
  check Alcotest.int "push_pop above min" 4 (Int_heap.push_pop h 9);
  check Alcotest.int "size unchanged" 2 (Int_heap.length h)

let test_heap_counts_operations () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 3; 1; 2 ];
  Alcotest.(check bool) "ops counted" true (Int_heap.operations h > 0)

(* Regression: the early-return paths of push_pop (empty heap, x below
   the minimum) used to skip the ops bump, under-counting exactly the
   invocations TA's accounting needs to charge. *)
let test_heap_push_pop_counts_ops () =
  let h = Int_heap.create () in
  let ops0 = Int_heap.operations h in
  ignore (Int_heap.push_pop h 7);
  Alcotest.(check bool) "empty heap counted" true (Int_heap.operations h > ops0);
  Int_heap.push h 5;
  let ops1 = Int_heap.operations h in
  ignore (Int_heap.push_pop h 1);
  Alcotest.(check bool) "below-min counted" true (Int_heap.operations h > ops1);
  let ops2 = Int_heap.operations h in
  ignore (Int_heap.push_pop h 9);
  Alcotest.(check bool) "replace counted" true (Int_heap.operations h > ops2)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drain equals sort" ~count:300
    QCheck.(list int)
    (fun l ->
      let h = Int_heap.create () in
      List.iter (Int_heap.push h) l;
      Int_heap.to_sorted_list h = List.sort compare l)

(* ---- Stopclock ---- *)

let spin seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

let test_stopclock_pause_excludes_time () =
  let c = Stopclock.create () in
  spin 0.01;
  Stopclock.pause c;
  spin 0.03;
  Stopclock.resume c;
  spin 0.01;
  let e = Stopclock.elapsed c in
  let p = Stopclock.paused_time c in
  Alcotest.(check bool) "elapsed excludes pause" true (e < 0.03);
  Alcotest.(check bool) "paused time recorded" true (p >= 0.025)

let test_stopclock_idempotent_pause () =
  let c = Stopclock.create () in
  Stopclock.pause c;
  Stopclock.pause c;
  Stopclock.resume c;
  Stopclock.resume c;
  Alcotest.(check bool) "still sane" true (Stopclock.elapsed c >= 0.0)

(* Accounting invariants across a pause/resume cycle: elapsed covers at
   least the running spins, paused covers at least the paused spin, and
   neither exceeds the wall time around the whole sequence. *)
let test_stopclock_accounting () =
  let w0 = Unix.gettimeofday () in
  let c = Stopclock.create () in
  spin 0.01;
  Stopclock.pause c;
  spin 0.01;
  Stopclock.resume c;
  spin 0.005;
  Stopclock.pause c;
  let wall = Unix.gettimeofday () -. w0 in
  let e = Stopclock.elapsed c in
  let p = Stopclock.paused_time c in
  let eps = 1e-3 in
  Alcotest.(check bool) "elapsed covers running spins" true (e >= 0.012);
  Alcotest.(check bool) "paused covers paused spin" true (p >= 0.008);
  Alcotest.(check bool) "elapsed within wall" true (e <= wall +. eps);
  Alcotest.(check bool) "elapsed+paused within wall" true (e +. p <= wall +. eps)

(* [now] is CLOCK_MONOTONIC with a non-decreasing clamp: consecutive
   reads never go backwards and real elapsed time is reflected. *)
let test_stopclock_now_monotonic () =
  let prev = ref (Stopclock.now ()) in
  for _ = 1 to 10_000 do
    let t = Stopclock.now () in
    Alcotest.(check bool) "never decreases" true (t >= !prev);
    prev := t
  done

let test_stopclock_now_advances () =
  let t0 = Stopclock.now () in
  spin 0.01;
  let t1 = Stopclock.now () in
  Alcotest.(check bool) "advances with elapsed time" true (t1 -. t0 >= 0.008)

(* ---- Counters ---- *)

let test_counters () =
  let c = Counters.create () in
  Counters.bump c "a";
  Counters.bump c "a";
  Counters.add c "b" 5;
  check Alcotest.int "a" 2 (Counters.get c "a");
  check Alcotest.int "b" 5 (Counters.get c "b");
  check Alcotest.int "missing" 0 (Counters.get c "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "to_list sorted"
    [ ("a", 2); ("b", 5) ]
    (Counters.to_list c);
  Counters.reset c;
  check Alcotest.int "after reset" 0 (Counters.get c "a")

(* Regression: reset used to Hashtbl.reset the table, orphaning every
   ref handed out by [cell] — bumps through a pre-reset handle became
   invisible to [get]/[to_list]. Reset must zero the cells in place. *)
let test_counters_reset_keeps_cells () =
  let c = Counters.create () in
  let r = Counters.cell c "hot" in
  r := 5;
  check Alcotest.int "cell visible" 5 (Counters.get c "hot");
  Counters.reset c;
  check Alcotest.int "zeroed" 0 (Counters.get c "hot");
  r := !r + 1;
  check Alcotest.int "pre-reset handle still live" 1 (Counters.get c "hot");
  Counters.bump c "hot";
  check Alcotest.int "bump hits the same cell" 2 !r

(* ---- crc32 ---- *)

let test_crc32_vectors () =
  (* The "check" value of the CRC-32/ISO-HDLC catalogue entry. *)
  check Alcotest.int32 "123456789" 0xCBF43926l
    (Trex_util.Crc32.string "123456789");
  check Alcotest.int32 "empty" 0l (Trex_util.Crc32.string "");
  check Alcotest.int32 "four zero bytes" 0x2144DF1Cl
    (Trex_util.Crc32.string (String.make 4 '\x00'))

let test_crc32_chaining () =
  let whole = Trex_util.Crc32.string "hello, world" in
  let part = Trex_util.Crc32.string "hello, " in
  check Alcotest.int32 "chained equals whole" whole
    (Trex_util.Crc32.string ~init:part "world");
  let b = Bytes.of_string "xxhello, worldyy" in
  check Alcotest.int32 "range" whole
    (Trex_util.Crc32.bytes b ~pos:2 ~len:12)

let prop_crc32_bit_flip_detected =
  let open QCheck in
  Test.make ~name:"crc32 detects any single bit flip" ~count:200
    (pair (string_of_size Gen.(1 -- 64)) (pair small_nat small_nat))
    (fun (s, (byte, bit)) ->
      let byte = byte mod String.length s and bit = bit mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      Trex_util.Crc32.string s
      <> Trex_util.Crc32.bytes b ~pos:0 ~len:(Bytes.length b))

(* ---- framing: incremental stream decoder ---- *)

(* Cut a byte stream into chunks at positions drawn from [cuts],
   simulating the short reads/writes a socket delivers. *)
let chunks_of stream cuts =
  let n = String.length stream in
  let rec go pos cuts acc =
    if pos >= n then List.rev acc
    else
      let take =
        match cuts with c :: _ -> min (c + 1) (n - pos) | [] -> n - pos
      in
      let rest = match cuts with _ :: r -> r | [] -> [] in
      go (pos + take) rest (String.sub stream pos take :: acc)
  in
  go 0 cuts []

let prop_framing_chunked_decode =
  let open QCheck in
  Test.make ~name:"frame decoding is chunking-invariant" ~count:300
    (pair
       (list_of_size Gen.(0 -- 12) (string_of_size Gen.(0 -- 64)))
       (list_of_size Gen.(0 -- 40) (int_bound 16)))
    (fun (payloads, cuts) ->
      let stream =
        String.concat ""
          (List.map (fun p -> Bytes.to_string (Framing.frame p)) payloads)
      in
      let d = Framing.Decoder.create () in
      let out = ref [] in
      let rec drain () =
        match Framing.Decoder.next d with
        | Some p ->
            out := p :: !out;
            drain ()
        | None -> ()
      in
      List.iter
        (fun chunk ->
          Framing.Decoder.feed_string d chunk;
          drain ())
        (chunks_of stream cuts);
      List.rev !out = payloads && Framing.Decoder.buffered d = 0)

let prop_framing_corruption_detected =
  let open QCheck in
  Test.make ~name:"decoder rejects any payload bit flip" ~count:200
    (pair (string_of_size Gen.(1 -- 64)) (pair small_nat small_nat))
    (fun (payload, (byte, bit)) ->
      let b = Framing.frame payload in
      let byte = 8 + (byte mod String.length payload) and bit = bit mod 8 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      let d = Framing.Decoder.create () in
      Framing.Decoder.feed d b 0 (Bytes.length b);
      match Framing.Decoder.next d with
      | exception Framing.Corrupt_frame _ -> true
      | _ -> false)

let test_framing_decoder_absurd_length () =
  let d = Framing.Decoder.create () in
  let b = Bytes.make 8 '\x00' in
  Bytes.set_int32_le b 0 0x7f000000l;
  Framing.Decoder.feed d b 0 8;
  match Framing.Decoder.next d with
  | exception Framing.Corrupt_frame _ -> ()
  | _ -> Alcotest.fail "absurd length header must raise Corrupt_frame"

(* write_all / recv across a real socketpair: multi-frame traffic with
   one payload larger than recv's 64KiB read chunk, then a clean EOF. *)
let test_framing_socketpair_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payloads = [ "alpha"; ""; String.init 70_000 (fun i -> Char.chr (i mod 251)) ] in
  List.iter (fun p -> Framing.append a p) payloads;
  Unix.close a;
  let d = Framing.Decoder.create () in
  List.iter
    (fun expect ->
      match Framing.recv b d with
      | Some got -> Alcotest.(check string) "payload" expect got
      | None -> Alcotest.fail "premature EOF")
    payloads;
  Alcotest.(check bool) "clean EOF" true (Framing.recv b d = None);
  Unix.close b

let test_framing_eof_inside_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let whole = Framing.frame "cut short" in
  Framing.write_all a (Bytes.sub whole 0 (Bytes.length whole - 3));
  Unix.close a;
  let d = Framing.Decoder.create () in
  (match Framing.recv b d with
  | exception Framing.Corrupt_frame _ -> ()
  | _ -> Alcotest.fail "EOF inside a frame must raise Corrupt_frame");
  Unix.close b

(* ---- framing: deadline-bounded reads ---- *)

let test_recv_deadline_basics () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Idle peer → Idle_timeout, promptly. *)
  let d = Framing.Decoder.create () in
  let t0 = Trex_util.Stopclock.now () in
  (match Framing.recv_deadline ~idle_timeout_s:0.03 b d with
  | Framing.Idle_timeout -> ()
  | _ -> Alcotest.fail "expected Idle_timeout on a silent peer");
  let dt = Trex_util.Stopclock.now () -. t0 in
  Alcotest.(check bool) "idle timeout fired promptly" true (dt < 1.0);
  (* A whole frame already buffered beats both deadlines. *)
  Framing.append a "prompt";
  (match Framing.recv_deadline ~idle_timeout_s:0.03 ~frame_timeout_s:0.03 b d with
  | Framing.Frame p -> Alcotest.(check string) "payload" "prompt" p
  | _ -> Alcotest.fail "expected the buffered frame");
  (* Clean EOF at a frame boundary. *)
  Unix.close a;
  (match Framing.recv_deadline ~idle_timeout_s:1.0 b d with
  | Framing.Eof -> ()
  | _ -> Alcotest.fail "expected Eof");
  Unix.close b

let test_recv_deadline_eof_inside_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let whole = Framing.frame "cut short" in
  Framing.write_all a (Bytes.sub whole 0 (Bytes.length whole - 3));
  Unix.close a;
  let d = Framing.Decoder.create () in
  (match Framing.recv_deadline ~frame_timeout_s:1.0 b d with
  | exception Framing.Corrupt_frame _ -> ()
  | _ -> Alcotest.fail "EOF inside a frame must raise Corrupt_frame");
  Unix.close b

(* The slowloris property: a peer dribbling a frame byte-by-byte keeps
   the stream "active" (every inter-byte gap is well under the frame
   deadline) yet must NOT be able to extend that deadline — the read
   returns Frame_timeout at the absolute deadline, long before the
   dribble would have completed the frame. *)
let prop_recv_deadline_dribble_cannot_extend =
  let open QCheck in
  Test.make ~name:"byte dribble cannot extend the frame deadline" ~count:8
    (pair (string_of_size Gen.(8 -- 24)) (int_bound 3))
    (fun (payload, jitter) ->
      let frame = Framing.frame payload in
      let n = Bytes.length frame in
      let gap_s = 0.015 +. (0.002 *. float_of_int jitter) in
      let deadline_s = 0.06 in
      (* The dribble alone would need far longer than the deadline. *)
      assert (float_of_int (n - 1) *. gap_s > 2.0 *. deadline_s);
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          (* Child: dribble one byte per gap, forever as far as the
             parent's deadline is concerned. *)
          Unix.close b;
          (try
             for i = 0 to n - 1 do
               Framing.write_all a (Bytes.sub frame i 1);
               ignore (Unix.select [] [] [] gap_s)
             done
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close a;
          let d = Framing.Decoder.create () in
          let t0 = Trex_util.Stopclock.now () in
          let outcome = Framing.recv_deadline ~frame_timeout_s:deadline_s b d in
          let dt = Trex_util.Stopclock.now () -. t0 in
          Unix.close b;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          (* Timed out as a torn frame, at the deadline — not at the
             dribble's own pace (which would be ≥ (n-1) * gap). *)
          outcome = Framing.Frame_timeout
          && dt >= deadline_s *. 0.5
          && dt < float_of_int (n - 1) *. gap_s)

(* ---- varint strictness, bit packing, block segments ---- *)

let test_malformed_varints () =
  let reject name s =
    let r = Codec.Reader.of_string s in
    match Codec.Reader.uvarint r with
    | _ -> Alcotest.failf "%s decoded" name
    | exception Codec.Reader.Malformed _ -> ()
  in
  (* Overlong: a redundant trailing zero group re-encodes the same
     value with more bytes. *)
  reject "overlong 0x80 0x00" "\x80\x00";
  (* Too long: ten continuation groups shift past bit 63. *)
  reject "ten continuation bytes" (String.make 10 '\x81');
  let r = Codec.Reader.of_string "\x80" in
  Alcotest.check_raises "truncated mid-varint" Codec.Reader.Truncated
    (fun () -> ignore (Codec.Reader.uvarint r))

let prop_uvarint_roundtrip =
  QCheck.Test.make ~name:"uvarint roundtrip" ~count:500
    QCheck.(map abs int)
    (fun n ->
      let n = abs n in
      let b = Codec.Buf.create () in
      Codec.Buf.add_uvarint b n;
      Codec.Reader.uvarint (Codec.Reader.of_string (Codec.Buf.contents b)) = n)

let prop_bitpack_roundtrip =
  QCheck.Test.make ~name:"bitpack roundtrip at exact width" ~count:500
    QCheck.(pair (int_bound Codec.Bitpack.max_width) (list small_nat))
    (fun (extra_width, l) ->
      let values = Array.of_list l in
      let w = min Codec.Bitpack.max_width (Codec.Bitpack.width values + (extra_width mod 3)) in
      let b = Codec.Buf.create () in
      Codec.Bitpack.pack b ~width:w values;
      let s = Codec.Buf.contents b in
      (* Packed size is exactly ceil(count * width / 8). *)
      String.length s = ((Array.length values * w) + 7) / 8
      && Codec.Bitpack.unpack (Codec.Reader.of_string s) ~width:w
           ~count:(Array.length values)
         = values)

let test_bitpack_bounds () =
  let b = Codec.Buf.create () in
  Alcotest.check_raises "value wider than width"
    (Invalid_argument "Codec.Bitpack.pack: value exceeds width") (fun () ->
      Codec.Bitpack.pack b ~width:2 [| 4 |]);
  Alcotest.check_raises "width over max"
    (Invalid_argument "Codec.Bitpack.pack: width out of range") (fun () ->
      Codec.Bitpack.pack b ~width:57 [| 0 |]);
  (match
     Codec.Bitpack.unpack (Codec.Reader.of_string "") ~width:57 ~count:0
   with
  | _ -> Alcotest.fail "unpack accepted width 57"
  | exception Codec.Reader.Malformed _ -> ());
  (* max_width itself round-trips the largest value. *)
  let v = (1 lsl Codec.Bitpack.max_width) - 1 in
  let b = Codec.Buf.create () in
  Codec.Bitpack.pack b ~width:Codec.Bitpack.max_width [| v; 0; v |];
  check (Alcotest.array Alcotest.int) "56-bit values" [| v; 0; v |]
    (Codec.Bitpack.unpack
       (Codec.Reader.of_string (Codec.Buf.contents b))
       ~width:Codec.Bitpack.max_width ~count:3)

let segment_gen =
  (* A segment of 1-6 blocks with random short header/payload strings,
     plus an optional extra. *)
  QCheck.Gen.(
    let str = string_size ~gen:printable (1 -- 12) in
    triple (string_size ~gen:printable (0 -- 8))
      (list_size (1 -- 6) (pair str str))
      (pair small_nat small_nat))

let prop_block_segment_roundtrip =
  QCheck.Test.make ~name:"block segment roundtrip" ~count:300
    (QCheck.make segment_gen)
    (fun (extra, blocks, _) ->
      let w = Codec.Block.Writer.create () in
      List.iter
        (fun (header, payload) -> Codec.Block.Writer.add w ~header ~payload)
        blocks;
      let s = Codec.Block.Writer.contents ~extra w in
      match Codec.Block.of_string s with
      | None -> false
      | Some seg ->
          Codec.Block.extra seg = extra
          && Codec.Block.block_count seg = List.length blocks
          && List.for_all2
               (fun i (header, payload) ->
                 let h = Codec.Block.header seg i in
                 let p = Codec.Block.payload seg i in
                 Codec.Reader.raw h (String.length header) = header
                 && Codec.Reader.raw p (String.length payload) = payload)
               (List.init (List.length blocks) Fun.id)
               blocks)

let prop_block_segment_corruption_detected =
  QCheck.Test.make ~name:"corrupt segment never decodes" ~count:300
    (QCheck.make segment_gen)
    (fun (extra, blocks, (byte, bit)) ->
      let w = Codec.Block.Writer.create () in
      List.iter
        (fun (header, payload) -> Codec.Block.Writer.add w ~header ~payload)
        blocks;
      let s = Codec.Block.Writer.contents ~extra w in
      let b = Bytes.of_string s in
      let byte = byte mod Bytes.length b and bit = bit mod 8 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      (* A single flipped bit must never yield a valid segment: the CRC
         rejects it (Malformed), the length prefix overruns (Truncated),
         or the marker no longer reads as a segment (None — handed to
         the v1 decoder, which has its own checks). *)
      match Codec.Block.of_string (Bytes.to_string b) with
      | None -> true
      | Some _ -> false
      | exception (Codec.Reader.Malformed _ | Codec.Reader.Truncated) -> true)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_util"
    [
      ( "codec",
        [
          Alcotest.test_case "int key roundtrip" `Quick test_int_key_roundtrip;
          Alcotest.test_case "int key order" `Quick test_int_key_order;
          Alcotest.test_case "string key escaping" `Quick test_string_key_escaping;
          Alcotest.test_case "string key prefix-free" `Quick test_string_key_prefix_free;
          Alcotest.test_case "float key order" `Quick test_float_key_order;
          Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "buf string/float" `Quick test_buf_string_float;
          Alcotest.test_case "reader truncated" `Quick test_reader_truncated;
          qtest prop_int_key_order;
          qtest prop_string_key_order;
          qtest prop_string_key_roundtrip;
          qtest prop_varint_roundtrip;
          qtest prop_float_key_order;
        ] );
      ( "compression-codec",
        [
          Alcotest.test_case "malformed varints rejected" `Quick
            test_malformed_varints;
          Alcotest.test_case "bitpack bounds" `Quick test_bitpack_bounds;
          qtest prop_uvarint_roundtrip;
          qtest prop_bitpack_roundtrip;
          qtest prop_block_segment_roundtrip;
          qtest prop_block_segment_corruption_detected;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "rank0 most frequent" `Quick test_zipf_rank0_most_frequent;
          Alcotest.test_case "mass sums to one" `Quick test_zipf_mass_sums_to_one;
          Alcotest.test_case "invalid size" `Quick test_zipf_invalid;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "push_pop" `Quick test_heap_push_pop;
          Alcotest.test_case "operation counting" `Quick test_heap_counts_operations;
          Alcotest.test_case "push_pop counts ops" `Quick
            test_heap_push_pop_counts_ops;
          qtest prop_heap_sorts;
        ] );
      ( "stopclock",
        [
          Alcotest.test_case "pause excludes time" `Quick test_stopclock_pause_excludes_time;
          Alcotest.test_case "idempotent pause/resume" `Quick test_stopclock_idempotent_pause;
          Alcotest.test_case "pause/resume accounting" `Quick test_stopclock_accounting;
          Alcotest.test_case "now never decreases" `Quick test_stopclock_now_monotonic;
          Alcotest.test_case "now advances" `Quick test_stopclock_now_advances;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters;
          Alcotest.test_case "reset keeps cells live" `Quick
            test_counters_reset_keeps_cells;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "chaining" `Quick test_crc32_chaining;
          qtest prop_crc32_bit_flip_detected;
        ] );
      ( "framing",
        [
          qtest prop_framing_chunked_decode;
          qtest prop_framing_corruption_detected;
          Alcotest.test_case "absurd length header" `Quick
            test_framing_decoder_absurd_length;
          Alcotest.test_case "socketpair roundtrip" `Quick
            test_framing_socketpair_roundtrip;
          Alcotest.test_case "EOF inside a frame" `Quick
            test_framing_eof_inside_frame;
          Alcotest.test_case "recv_deadline basics" `Quick
            test_recv_deadline_basics;
          Alcotest.test_case "recv_deadline EOF inside frame" `Quick
            test_recv_deadline_eof_inside_frame;
          qtest prop_recv_deadline_dribble_cannot_extend;
        ] );
    ]
