(* Machine-readable bench output: each section accumulates records and
   flushes them to BENCH_<section>.json next to the human tables, so
   runs can be diffed or plotted without scraping stdout.

   Schema (trex-bench-v1):
     { "schema": "trex-bench-v1",
       "section": "<section>",
       "quick": bool,
       "resilience": { "retries": int, "breaker_trips": int,
                       "degraded_runs": int },
       "queries": {
         "<query>": [ { "strategy": str, "k": int, "ms": float,
                        "counters": { "<name>": int, ... } }, ... ] } }
*)

module Json = Trex_obs.Json
module Metrics = Trex_obs.Metrics

(* Output directory for BENCH_<section>.json files; "." keeps the
   historical write-to-cwd behavior. *)
let out_dir = ref "."

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let set_dir dir =
  mkdir_p dir;
  out_dir := dir

type record = {
  query : string;
  strategy : string;
  k : int;
  ms : float;
  counters : (string * int) list;
}

let sections : (string, record list ref) Hashtbl.t = Hashtbl.create 8

let record ~section ~query ~strategy ~k ~ms counters =
  let rs =
    match Hashtbl.find_opt sections section with
    | Some rs -> rs
    | None ->
        let rs = ref [] in
        Hashtbl.add sections section rs;
        rs
  in
  rs := { query; strategy; k; ms; counters } :: !rs

let json_of_record r =
  Json.Obj
    [
      ("strategy", Json.String r.strategy);
      ("k", Json.Int r.k);
      ("ms", Json.Float r.ms);
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) r.counters) );
    ]

let flush ~quick section =
  match Hashtbl.find_opt sections section with
  | None -> ()
  | Some rs ->
      let records = List.rev !rs in
      Hashtbl.remove sections section;
      (* Group by query, keeping first-appearance order of both the
         queries and the records within each. *)
      let order = ref [] in
      let by_query : (string, record list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun r ->
          match Hashtbl.find_opt by_query r.query with
          | Some l -> l := r :: !l
          | None ->
              order := r.query :: !order;
              Hashtbl.add by_query r.query (ref [ r ]))
        records;
      let queries =
        List.rev_map
          (fun q ->
            let rows = List.rev !(Hashtbl.find by_query q) in
            (q, Json.List (List.map json_of_record rows)))
          !order
      in
      (* Process-wide resilience totals at flush time: a clean bench run
         should show zeros; nonzero values flag I/O trouble behind the
         timings. *)
      let resilience =
        let v name = Metrics.value (Metrics.counter name) in
        Json.Obj
          [
            ("retries", Json.Int (v "resilience.retries"));
            ("breaker_trips", Json.Int (v "resilience.breaker_trips"));
            ("degraded_runs", Json.Int (v "resilience.degraded_runs"));
          ]
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "trex-bench-v1");
            ("section", Json.String section);
            ("quick", Json.Bool quick);
            ("resilience", resilience);
            ("queries", Json.Obj queries);
          ]
      in
      let path = Filename.concat !out_dir (Printf.sprintf "BENCH_%s.json" section) in
      let oc = open_out path in
      output_string oc (Json.to_string ~pretty:true doc);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s (%d records)\n%!" path (List.length records)
