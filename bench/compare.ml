(* Diff two trex-bench-v1 documents and gate on latency regression.

     dune exec bench/compare.exe -- [--threshold F] [--min-ms F] \
       [--gate-counter NAME]... BASELINE.json CURRENT.json

   --gate-counter (repeatable) additionally fails the comparison when
   the named per-row counter (e.g. postings_bytes, physical_reads)
   grows past 1 + threshold on any matched row — exact measurements
   are gated row-by-row, not by median.

   Exit codes: 0 no regression; 1 usage or schema error; 3 the median
   current/baseline latency ratio exceeded 1 + threshold or a gated
   counter regressed. Per-row regressions are printed either way (see
   Trex_obs.Bench_compare). *)

module Bench_compare = Trex_obs.Bench_compare

let usage () =
  prerr_endline
    "usage: compare [--threshold F] [--min-ms F] [--gate-counter NAME]... \
     BASELINE.json CURRENT.json";
  exit 1

let () =
  let threshold = ref 0.25 in
  let min_ms = ref 0.05 in
  let counters = ref [] in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := float_of_string v;
        parse rest
    | "--min-ms" :: v :: rest ->
        min_ms := float_of_string v;
        parse rest
    | "--gate-counter" :: v :: rest ->
        counters := v :: !counters;
        parse rest
    | [ ("--threshold" | "--min-ms" | "--gate-counter") ] -> usage ()
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline; current ] -> (
      match
        Bench_compare.compare_files ~threshold:!threshold ~min_ms:!min_ms
          ~counters:(List.rev !counters) baseline current
      with
      | Error msg ->
          Printf.eprintf "bench-compare: %s\n" msg;
          exit 1
      | Ok report ->
          Format.printf "%a@." Bench_compare.pp_report report;
          if report.regressed then exit 3)
  | _ -> usage ()
